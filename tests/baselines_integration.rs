//! Cross-crate integration tests of the baseline suite: all methods train
//! on one shared synthetic dataset and answer the same queries, and the
//! paper's Figure 1 outlier scenario behaves as described.

use odt::baselines::{
    DeepOd, DeepStRouter, DeepTea, DijkstraRouter, Gbm, LinearRegression, Murat, NeuralConfig,
    OdtOracle, OracleContext, Rne, Router, StNn, Stdgcn, Temp, Wddra,
};
use odt::prelude::*;
use odt::traj::sim::CitySimConfig;

fn dataset() -> Dataset {
    let mut cfg = CitySimConfig::chengdu_like();
    cfg.nx = 10;
    cfg.ny = 10;
    Dataset::simulated(cfg, 300, 10, 17)
}

fn quick_neural() -> NeuralConfig {
    NeuralConfig {
        iters: 40,
        ..Default::default()
    }
}

#[test]
fn every_baseline_answers_every_query() {
    let data = dataset();
    let ctx = OracleContext {
        grid: data.grid,
        proj: data.proj,
    };
    let net = data.network.clone().unwrap();
    let train = data.split(Split::Train);
    let neural = quick_neural();

    let temp = Temp::fit(ctx, train);
    let lr = LinearRegression::fit(ctx, train);
    let gbm = Gbm::fit(ctx, train);
    let rne = Rne::fit(ctx, train, &neural);
    let stnn = StNn::fit(ctx, train, &neural);
    let murat = Murat::fit(ctx, train, &neural);
    let deepod = DeepOd::fit(ctx, train, &neural);
    let oracles: Vec<&dyn OdtOracle> = vec![&temp, &lr, &gbm, &rne, &stnn, &murat, &deepod];

    let dij = DijkstraRouter::fit(ctx, net.clone(), train);
    let deepst = DeepStRouter::fit(ctx, net, train);
    let wddra = Wddra::fit(ctx, train, &neural);
    let stdgcn = Stdgcn::fit(ctx, train, &neural);

    for trip in data.split(Split::Test).iter().take(5) {
        let q = OdtInput::from_trajectory(trip);
        for o in &oracles {
            let p = o.predict_seconds(&q);
            assert!(p.is_finite() && p >= 0.0, "{} produced {p}", o.name());
        }
        for r in [&dij as &dyn Router, &deepst] {
            let p = r.predict_seconds(&q);
            assert!(p.is_finite() && p >= 0.0, "{} produced {p}", r.name());
            let nodes = r.route_nodes(&q);
            assert!(!nodes.is_empty(), "{} produced empty route", r.name());
        }
        let path = deepst.route_points(&q);
        for pb in [&wddra, &stdgcn] {
            let p = pb.predict_with_path(&q, &path);
            assert!(p.is_finite() && p >= 0.0, "{} produced {p}", pb.name());
        }
    }
}

#[test]
fn model_sizes_are_ordered_sensibly() {
    // Paper Table 5 shape: LR and GBM are tiny; neural models are larger;
    // TEMP scales with the training set.
    let data = dataset();
    let ctx = OracleContext {
        grid: data.grid,
        proj: data.proj,
    };
    let train = data.split(Split::Train);
    let neural = quick_neural();
    let lr = LinearRegression::fit(ctx, train);
    let gbm = Gbm::fit(ctx, train);
    let temp = Temp::fit(ctx, train);
    let murat = Murat::fit(ctx, train, &neural);
    assert!(lr.model_size_bytes() < 200);
    assert!(gbm.model_size_bytes() < murat.model_size_bytes());
    assert!(temp.model_size_bytes() > 1_000);
}

#[test]
fn deeptea_filters_simulated_outliers() {
    // Crank the simulator's outlier rate and verify DeepTEA removes
    // disproportionately many slow trips.
    let mut cfg = CitySimConfig::chengdu_like();
    cfg.nx = 10;
    cfg.ny = 10;
    cfg.outlier_rate = 0.25;
    let data = Dataset::simulated(cfg, 350, 10, 23);
    let ctx = OracleContext {
        grid: data.grid,
        proj: data.proj,
    };
    let train = data.split(Split::Train);
    let tea = DeepTea::fit(ctx, train);
    let kept = tea.filter(train, 0.2);
    // Detour outliers are circuitous: along-track distance far above the
    // crow-fly distance. Dropped trips should be more circuitous on average
    // than kept ones.
    let circuity = |t: &Trajectory| {
        let crow = ctx
            .proj
            .to_point(t.points[0].loc)
            .distance(&ctx.proj.to_point(t.points[t.points.len() - 1].loc))
            .max(1.0);
        t.travel_distance(&ctx.proj) / crow
    };
    let mean_circ = |ts: &[Trajectory]| ts.iter().map(circuity).sum::<f64>() / ts.len() as f64;
    let dropped: Vec<Trajectory> = train
        .iter()
        .filter(|t| !kept.contains(t))
        .cloned()
        .collect();
    assert!(!dropped.is_empty());
    assert!(
        mean_circ(&dropped) > mean_circ(&kept),
        "dropped trips should be more circuitous: dropped {:.2} vs kept {:.2}",
        mean_circ(&dropped),
        mean_circ(&kept)
    );
}

#[test]
fn figure1_scenario_temp_vs_dot_estimator_story() {
    // Figure 1 in miniature: three consistent 15-minute trips plus one
    // 35-minute detour between the same OD at the same hour. TEMP answers
    // the polluted average (20 min) by construction.
    use odt::roadnet::{LngLat, Point, Projection};
    let proj = Projection::new(LngLat {
        lng: 104.0,
        lat: 30.6,
    });
    let grid = GridSpec::new(
        proj.to_lnglat(Point::new(-500.0, -500.0)),
        proj.to_lnglat(Point::new(5_000.0, 5_000.0)),
        10,
    );
    let ctx = OracleContext { grid, proj };
    let mk = |offset_m: f64, t0: f64, tt: f64| {
        Trajectory::new(vec![
            GpsPoint {
                loc: proj.to_lnglat(Point::new(offset_m, 0.0)),
                t: t0,
            },
            GpsPoint {
                loc: proj.to_lnglat(Point::new(3_000.0 + offset_m, 0.0)),
                t: t0 + tt,
            },
        ])
    };
    let trips = vec![
        mk(0.0, 8.00 * 3600.0, 900.0),
        mk(30.0, 8.03 * 3600.0, 900.0),
        mk(-30.0, 8.08 * 3600.0, 900.0),
        mk(10.0, 8.06 * 3600.0, 2_100.0), // T_4, via point B
    ];
    let temp = Temp::fit(ctx, &trips);
    let q = OdtInput {
        origin: proj.to_lnglat(Point::new(0.0, 0.0)),
        dest: proj.to_lnglat(Point::new(3_000.0, 0.0)),
        t_dep: 8.16 * 3600.0,
    };
    let pred = temp.predict_seconds(&q);
    assert!(
        (pred - 1_200.0).abs() < 1.0,
        "TEMP should answer 20 min, got {pred}"
    );
}
