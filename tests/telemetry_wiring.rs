//! Wiring tests for the observability layer: typed training events must
//! reach registered sinks with their structured fields, the legacy
//! `progress` callback must mirror the event stream, and serving must split
//! query latencies between the full and degraded-fallback histograms.

use odt::obs;
use odt::prelude::*;
use std::sync::{Arc, Mutex};

fn dataset() -> Dataset {
    let mut cfg = odt::traj::sim::CitySimConfig::chengdu_like();
    cfg.nx = 8;
    cfg.ny = 8;
    Dataset::simulated(cfg, 150, 8, 11)
}

fn tiny_config() -> DotConfig {
    let mut cfg = DotConfig::fast();
    cfg.lg = 8;
    cfg.n_steps = 8;
    cfg.base_channels = 4;
    cfg.cond_dim = 16;
    cfg.d_e = 16;
    cfg.stage1_iters = 12;
    cfg.stage1_batch = 4;
    cfg.stage2_iters = 40;
    cfg.stage2_batch = 4;
    cfg.early_stop_samples = 4;
    cfg.early_stop_every = 20;
    cfg
}

#[test]
fn nan_injection_emits_watchdog_events_with_fields() {
    let data = dataset();
    let mut cfg = tiny_config();
    cfg.robustness.watchdog_patience = 2;
    cfg.robustness.snapshot_every = 4;

    let events: Arc<Mutex<Vec<obs::Event>>> = Arc::new(Mutex::new(Vec::new()));
    let collected = events.clone();
    let sink_id = obs::add_sink(Arc::new(obs::FnSink::new(move |e: &obs::Event| {
        if e.name.starts_with("train.watchdog.") {
            collected.lock().unwrap().push(e.clone());
        }
    })));

    // Poison stage-1 losses 6..9: with patience 2 that is trip(skip) at 6,
    // trip(rollback) at 7, trip(skip) at 8.
    let hooks = odt::dot::TrainHooks {
        stage1_loss_tamper: Some(Box::new(
            |it, loss| {
                if (6..9).contains(&it) {
                    f32::NAN
                } else {
                    loss
                }
            },
        )),
        stage2_loss_tamper: None,
    };
    let progress_lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let lines = progress_lines.clone();
    let model = Dot::train_with_hooks(cfg, &data, |m| lines.lock().unwrap().push(m.into()), hooks);
    obs::remove_sink(sink_id).expect("sink was registered");
    assert_eq!(model.robustness().watchdog_trips, 3);

    let events = events.lock().unwrap();
    // The injected NaN batches: two skip-trips carrying the non-finite
    // loss, at the expected stage-1 iterations. (Filtering on the NaN loss
    // keeps the assertion immune to organic trips from the other test
    // training in this process.)
    let nan_trips: Vec<_> = events
        .iter()
        .filter(|e| {
            e.name == "train.watchdog.trip"
                && e.field("stage").and_then(|v| v.as_u64()) == Some(1)
                && e.field("loss")
                    .and_then(|v| v.as_f64())
                    .is_some_and(f64::is_nan)
        })
        .collect();
    let trip_iters: Vec<u64> = nan_trips
        .iter()
        .filter_map(|e| e.field("iter").and_then(|v| v.as_u64()))
        .collect();
    assert_eq!(trip_iters, vec![6, 8], "skip-trips at the injected iters");

    let rollback = events
        .iter()
        .find(|e| {
            e.name == "train.watchdog.rollback"
                && e.field("stage").and_then(|v| v.as_u64()) == Some(1)
                && e.field("iter").and_then(|v| v.as_u64()) == Some(7)
        })
        .expect("rollback event at iter 7 (patience 2)");

    // Backwards-compat shim: the legacy progress callback must have seen
    // exactly the message text of each typed event.
    let progress_lines = progress_lines.lock().unwrap();
    for ev in nan_trips.iter().copied().chain([rollback]) {
        assert!(
            progress_lines.iter().any(|l| *l == ev.message()),
            "progress callback missing event message {:?}",
            ev.message()
        );
    }
}

#[test]
fn degraded_query_records_into_fallback_histogram_only() {
    let data = dataset();
    let model = Dot::train(tiny_config(), &data, |_| {});

    // Training must have published the robustness gauges.
    let snap = obs::snapshot();
    for name in ["robustness.watchdog_trips", "robustness.fallbacks_taken"] {
        assert!(
            snap.gauges.iter().any(|&(k, _)| k == name),
            "{name} gauge must be registered after training"
        );
    }

    let full = obs::histogram("serve.query.full");
    let fallback = obs::histogram("serve.query.fallback");
    let queries = obs::counter("serve.queries");
    let (full0, fb0, q0) = (full.count(), fallback.count(), queries.get());

    let q = OdtInput::from_trajectory(&data.trips[0]);
    let lg = model.grid().lg;

    // An empty PiT is degenerate: the guarded estimator must serve the
    // fallback prior and record into the fallback histogram only.
    let empty = Pit::from_tensor(odt::tensor::Tensor::full(vec![3, lg, lg], -1.0));
    let est = model.estimate_from_pit_guarded(&q, empty);
    assert_eq!(est.seconds, odt::dot::fallback_estimate_seconds(&q));
    assert_eq!(fallback.count(), fb0 + 1, "fallback path must be recorded");
    assert_eq!(full.count(), full0, "full path must NOT be recorded");

    // The decision is also visible as a typed event in the ring buffer.
    assert!(
        obs::recent_events().iter().any(|e| {
            e.name == "serve.fallback"
                && e.field("reason").and_then(|v| v.as_str()) == Some("degenerate_pit")
        }),
        "serve.fallback event with reason=degenerate_pit expected"
    );

    // A healthy PiT goes through the learned estimator: full-path + 1.
    let healthy = Pit::from_trajectory(&data.trips[0], &data.grid);
    model.estimate_from_pit_guarded(&q, healthy);
    assert_eq!(full.count(), full0 + 1, "full path must be recorded");
    assert_eq!(fallback.count(), fb0 + 1, "fallback count unchanged");
    assert_eq!(queries.get(), q0 + 2, "both queries counted");
}
