//! Integration tests spanning the whole workspace: simulator → dataset →
//! two-stage DOT training → oracle queries → persistence.

use odt::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_dataset() -> Dataset {
    let mut cfg = odt::traj::sim::CitySimConfig::chengdu_like();
    cfg.nx = 8;
    cfg.ny = 8;
    Dataset::simulated(cfg, 180, 8, 13)
}

fn tiny_config() -> DotConfig {
    let mut cfg = DotConfig::fast();
    cfg.lg = 8;
    cfg.n_steps = 8;
    cfg.base_channels = 4;
    cfg.cond_dim = 16;
    cfg.d_e = 16;
    cfg.stage1_iters = 20;
    cfg.stage1_batch = 4;
    cfg.stage2_iters = 40;
    cfg.stage2_batch = 4;
    cfg.early_stop_samples = 4;
    cfg.early_stop_every = 20;
    cfg
}

#[test]
fn full_pipeline_produces_usable_oracle() {
    let data = tiny_dataset();
    let model = Dot::train(tiny_config(), &data, |_| {});
    let mut rng = StdRng::seed_from_u64(1);
    for trip in data.split(Split::Test).iter().take(3) {
        let est = model.estimate(&OdtInput::from_trajectory(trip), &mut rng);
        assert!(est.seconds.is_finite() && est.seconds >= 0.0);
        assert!(
            est.seconds < 4.0 * 3_600.0,
            "implausible estimate {}",
            est.seconds
        );
        assert_eq!(est.pit.lg(), 8);
        assert!(est.pit.tensor().is_finite());
    }
}

#[test]
fn oracle_is_deterministic_under_fixed_seed() {
    let data = tiny_dataset();
    let model = Dot::train(tiny_config(), &data, |_| {});
    let q = OdtInput::from_trajectory(&data.split(Split::Test)[0]);
    let a = model.estimate(&q, &mut StdRng::seed_from_u64(5)).seconds;
    let b = model.estimate(&q, &mut StdRng::seed_from_u64(5)).seconds;
    assert_eq!(a, b);
}

#[test]
fn training_is_reproducible() {
    let data = tiny_dataset();
    let m1 = Dot::train(tiny_config(), &data, |_| {});
    let m2 = Dot::train(tiny_config(), &data, |_| {});
    let pit = Pit::from_trajectory(&data.split(Split::Test)[0], &data.grid);
    assert_eq!(m1.estimate_from_pit(&pit), m2.estimate_from_pit(&pit));
}

#[test]
fn checkpoint_round_trip_through_disk() {
    let data = tiny_dataset();
    let model = Dot::train(tiny_config(), &data, |_| {});
    let path = std::env::temp_dir().join(format!("odt_e2e_{}.json", std::process::id()));
    model.save(&path).unwrap();
    let restored = Dot::load(&path).unwrap();
    let pit = Pit::from_trajectory(&data.split(Split::Test)[0], &data.grid);
    assert_eq!(
        model.estimate_from_pit(&pit),
        restored.estimate_from_pit(&pit)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn stage2_retraining_swaps_estimator() {
    let data = tiny_dataset();
    let mut model = Dot::train(tiny_config(), &data, |_| {});
    let (s1_before, _) = model.param_counts();
    model.retrain_stage2(|c| c.ablation.estimator = EstimatorKind::Cnn, &data, |_| {});
    let (s1_after, s2_after) = model.param_counts();
    assert_eq!(s1_before, s1_after, "stage 1 must be untouched");
    assert!(s2_after > 0);
    let pit = Pit::from_trajectory(&data.split(Split::Test)[0], &data.grid);
    assert!(model.estimate_from_pit(&pit).is_finite());
}
