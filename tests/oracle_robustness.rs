//! Robustness of the oracle and baselines to degenerate or out-of-range
//! queries: endpoints outside the area of interest, zero-distance OD pairs,
//! departures that cross midnight.

use odt::baselines::{LinearRegression, OdtOracle, OracleContext, Temp};
use odt::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> Dataset {
    let mut cfg = odt::traj::sim::CitySimConfig::chengdu_like();
    cfg.nx = 8;
    cfg.ny = 8;
    Dataset::simulated(cfg, 180, 8, 41)
}

fn tiny_model(data: &Dataset) -> Dot {
    let mut cfg = DotConfig::fast();
    cfg.lg = 8;
    cfg.n_steps = 8;
    cfg.base_channels = 4;
    cfg.cond_dim = 16;
    cfg.d_e = 16;
    cfg.stage1_iters = 15;
    cfg.stage2_iters = 30;
    cfg.early_stop_samples = 3;
    cfg.early_stop_every = 15;
    Dot::train(cfg, data, |_| {})
}

fn weird_queries(data: &Dataset) -> Vec<OdtInput> {
    let base = OdtInput::from_trajectory(&data.trips[0]);
    let span_lng = data.grid.max.lng - data.grid.min.lng;
    vec![
        // Far outside the grid on both ends.
        OdtInput {
            origin: odt::roadnet::LngLat {
                lng: data.grid.min.lng - 3.0 * span_lng,
                lat: base.origin.lat,
            },
            dest: odt::roadnet::LngLat {
                lng: data.grid.max.lng + 3.0 * span_lng,
                lat: base.dest.lat,
            },
            ..base
        },
        // Zero-distance query.
        OdtInput {
            dest: base.origin,
            ..base
        },
        // Departure just before midnight.
        OdtInput {
            t_dep: base.t_dep - base.second_of_day() + 86_395.0,
            ..base
        },
        // Departure decades in the future (different day arithmetic).
        OdtInput {
            t_dep: base.t_dep + 50.0 * 365.25 * 86_400.0,
            ..base
        },
    ]
}

#[test]
fn oracle_survives_degenerate_queries() {
    let data = dataset();
    let model = tiny_model(&data);
    let mut rng = StdRng::seed_from_u64(2);
    for (i, q) in weird_queries(&data).iter().enumerate() {
        let est = model.estimate(q, &mut rng);
        assert!(
            est.seconds.is_finite() && est.seconds >= 0.0,
            "query {i} produced {}",
            est.seconds
        );
        assert!(est.pit.tensor().is_finite(), "query {i} produced NaN PiT");
    }
}

#[test]
fn fast_ddim_path_survives_degenerate_queries() {
    let data = dataset();
    let model = tiny_model(&data);
    let mut rng = StdRng::seed_from_u64(6);
    for (i, q) in weird_queries(&data).iter().enumerate() {
        // The accelerated serving path: DDIM PiT inference + guardrails.
        let est = model.estimate_fast(q, 4, &mut rng);
        assert!(
            est.seconds.is_finite() && est.seconds >= 0.0,
            "fast query {i} produced {}",
            est.seconds
        );
        assert!(
            est.pit.tensor().is_finite(),
            "fast query {i} produced NaN PiT"
        );
        // And the raw batch API used by the eval harness.
        let pits = model.infer_pits_fast(std::slice::from_ref(q), 4, &mut rng);
        assert!(pits[0].tensor().is_finite());
    }
    // The far-outside-grid and zero-distance queries needed clamping.
    assert!(model.robustness().queries_clamped > 0);
}

#[test]
fn degenerate_pit_falls_back_to_distance_prior() {
    let data = dataset();
    let model = tiny_model(&data);
    let q = OdtInput::from_trajectory(&data.trips[0]);

    // Force degenerate PiTs through the guarded estimator: an empty one
    // and a saturated one (as if the reverse chain collapsed).
    let lg = model.grid().lg;
    let empty = Pit::from_tensor(odt::tensor::Tensor::full(vec![3, lg, lg], -1.0));
    let saturated = Pit::from_tensor(odt::tensor::Tensor::full(vec![3, lg, lg], 1.0));
    let expected = odt::dot::fallback_estimate_seconds(&q);
    for pit in [empty, saturated] {
        let est = model.estimate_from_pit_guarded(&q, pit);
        assert!(est.seconds.is_finite() && est.seconds >= 0.0);
        assert_eq!(est.seconds, expected, "fallback prior must answer");
    }
    let snap = model.robustness();
    assert_eq!(snap.degenerate_pits, 2, "{snap}");
    assert_eq!(snap.fallbacks_taken, 2, "{snap}");

    // A healthy PiT keeps using the learned estimator.
    let healthy = Pit::from_trajectory(&data.trips[0], &data.grid);
    let est = model.estimate_from_pit_guarded(&q, healthy.clone());
    assert_eq!(est.seconds, model.estimate_from_pit(&healthy));
    assert_eq!(model.robustness().fallbacks_taken, 2);
}

#[test]
fn baselines_survive_degenerate_queries() {
    let data = dataset();
    let ctx = OracleContext {
        grid: data.grid,
        proj: data.proj,
    };
    let train = data.split(Split::Train);
    let temp = Temp::fit(ctx, train);
    let lr = LinearRegression::fit(ctx, train);
    for q in weird_queries(&data) {
        for o in [&temp as &dyn OdtOracle, &lr] {
            let p = o.predict_seconds(&q);
            assert!(p.is_finite() && p >= 0.0, "{} produced {p}", o.name());
        }
    }
}

#[test]
fn pit_rasterization_handles_out_of_grid_points() {
    let data = dataset();
    // A trajectory with one fix far outside the grid must clamp, not panic.
    let mut points = data.trips[0].points.clone();
    points[0].loc.lng -= 10.0;
    let t = Trajectory::new(points);
    let pit = Pit::from_trajectory(&t, &data.grid);
    assert!(pit.tensor().is_finite());
    assert!(pit.num_visited() >= 1);
}

#[test]
fn empty_query_batches_return_empty_not_panic() {
    let data = dataset();
    let model = tiny_model(&data);
    let mut rng = StdRng::seed_from_u64(9);

    // Every batch entry point must treat an empty slice as a no-op: no
    // panics from zero-sized tensor shapes, no phantom estimates.
    assert!(model.estimate_batch(&[], &mut rng).is_empty());
    assert!(model.infer_pits(&[], &mut rng).is_empty());
    assert!(model.infer_pits_fast(&[], 4, &mut rng).is_empty());
    assert!(model.estimate_from_pits(&[]).is_empty());
}

#[test]
fn strict_sanitization_rejects_far_queries_with_typed_reason() {
    let data = dataset();
    let model = tiny_model(&data);
    let base = OdtInput::from_trajectory(&data.trips[0]);
    let span = data.grid.max.lng - data.grid.min.lng;
    let rejected_before = model.robustness().queries_rejected;

    // Beyond one grid-span outside the region: a typed rejection.
    let far = OdtInput {
        dest: odt::roadnet::LngLat {
            lng: data.grid.max.lng + 2.0 * span,
            lat: base.dest.lat,
        },
        ..base
    };
    match model.sanitize_strict(&far) {
        Err(reason) => {
            assert_eq!(reason.kind(), "far_destination");
            assert!(reason.spans() > odt::dot::FAR_QUERY_SPANS);
        }
        Ok(_) => panic!("far query passed strict sanitization"),
    }
    assert_eq!(model.robustness().queries_rejected, rejected_before + 1);

    // Within a grid-span (and NaN coords): still clamped, not rejected.
    let near = OdtInput {
        origin: odt::roadnet::LngLat {
            lng: data.grid.min.lng - 0.5 * span,
            lat: f64::NAN,
        },
        ..base
    };
    let clean = model
        .sanitize_strict(&near)
        .expect("near query must clamp, not reject");
    assert!(clean.origin.lng >= data.grid.min.lng);
    assert!(clean.origin.lat.is_finite());
    assert_eq!(model.robustness().queries_rejected, rejected_before + 1);

    // The lenient default path still clamps even far queries (legacy
    // behavior relied on by Dot::estimate).
    let est = model.estimate(&far, &mut StdRng::seed_from_u64(3));
    assert!(est.seconds.is_finite() && est.seconds >= 0.0);
}
