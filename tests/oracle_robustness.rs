//! Robustness of the oracle and baselines to degenerate or out-of-range
//! queries: endpoints outside the area of interest, zero-distance OD pairs,
//! departures that cross midnight.

use odt::baselines::{LinearRegression, OdtOracle, OracleContext, Temp};
use odt::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> Dataset {
    let mut cfg = odt::traj::sim::CitySimConfig::chengdu_like();
    cfg.nx = 8;
    cfg.ny = 8;
    Dataset::simulated(cfg, 180, 8, 41)
}

fn tiny_model(data: &Dataset) -> Dot {
    let mut cfg = DotConfig::fast();
    cfg.lg = 8;
    cfg.n_steps = 8;
    cfg.base_channels = 4;
    cfg.cond_dim = 16;
    cfg.d_e = 16;
    cfg.stage1_iters = 15;
    cfg.stage2_iters = 30;
    cfg.early_stop_samples = 3;
    cfg.early_stop_every = 15;
    Dot::train(cfg, data, |_| {})
}

fn weird_queries(data: &Dataset) -> Vec<OdtInput> {
    let base = OdtInput::from_trajectory(&data.trips[0]);
    let span_lng = data.grid.max.lng - data.grid.min.lng;
    vec![
        // Far outside the grid on both ends.
        OdtInput {
            origin: odt::roadnet::LngLat {
                lng: data.grid.min.lng - 3.0 * span_lng,
                lat: base.origin.lat,
            },
            dest: odt::roadnet::LngLat {
                lng: data.grid.max.lng + 3.0 * span_lng,
                lat: base.dest.lat,
            },
            ..base
        },
        // Zero-distance query.
        OdtInput {
            dest: base.origin,
            ..base
        },
        // Departure just before midnight.
        OdtInput {
            t_dep: base.t_dep - base.second_of_day() + 86_395.0,
            ..base
        },
        // Departure decades in the future (different day arithmetic).
        OdtInput {
            t_dep: base.t_dep + 50.0 * 365.25 * 86_400.0,
            ..base
        },
    ]
}

#[test]
fn oracle_survives_degenerate_queries() {
    let data = dataset();
    let model = tiny_model(&data);
    let mut rng = StdRng::seed_from_u64(2);
    for (i, q) in weird_queries(&data).iter().enumerate() {
        let est = model.estimate(q, &mut rng);
        assert!(
            est.seconds.is_finite() && est.seconds >= 0.0,
            "query {i} produced {}",
            est.seconds
        );
        assert!(est.pit.tensor().is_finite(), "query {i} produced NaN PiT");
    }
}

#[test]
fn fast_ddim_path_survives_degenerate_queries() {
    let data = dataset();
    let model = tiny_model(&data);
    let mut rng = StdRng::seed_from_u64(6);
    for (i, q) in weird_queries(&data).iter().enumerate() {
        // The accelerated serving path: DDIM PiT inference + guardrails.
        let est = model.estimate_fast(q, 4, &mut rng);
        assert!(
            est.seconds.is_finite() && est.seconds >= 0.0,
            "fast query {i} produced {}",
            est.seconds
        );
        assert!(
            est.pit.tensor().is_finite(),
            "fast query {i} produced NaN PiT"
        );
        // And the raw batch API used by the eval harness.
        let pits = model.infer_pits_fast(std::slice::from_ref(q), 4, &mut rng);
        assert!(pits[0].tensor().is_finite());
    }
    // The far-outside-grid and zero-distance queries needed clamping.
    assert!(model.robustness().queries_clamped > 0);
}

#[test]
fn degenerate_pit_falls_back_to_distance_prior() {
    let data = dataset();
    let model = tiny_model(&data);
    let q = OdtInput::from_trajectory(&data.trips[0]);

    // Force degenerate PiTs through the guarded estimator: an empty one
    // and a saturated one (as if the reverse chain collapsed).
    let lg = model.grid().lg;
    let empty = Pit::from_tensor(odt::tensor::Tensor::full(vec![3, lg, lg], -1.0));
    let saturated = Pit::from_tensor(odt::tensor::Tensor::full(vec![3, lg, lg], 1.0));
    let expected = odt::dot::fallback_estimate_seconds(&q);
    for pit in [empty, saturated] {
        let est = model.estimate_from_pit_guarded(&q, pit);
        assert!(est.seconds.is_finite() && est.seconds >= 0.0);
        assert_eq!(est.seconds, expected, "fallback prior must answer");
    }
    let snap = model.robustness();
    assert_eq!(snap.degenerate_pits, 2, "{snap}");
    assert_eq!(snap.fallbacks_taken, 2, "{snap}");

    // A healthy PiT keeps using the learned estimator.
    let healthy = Pit::from_trajectory(&data.trips[0], &data.grid);
    let est = model.estimate_from_pit_guarded(&q, healthy.clone());
    assert_eq!(est.seconds, model.estimate_from_pit(&healthy));
    assert_eq!(model.robustness().fallbacks_taken, 2);
}

#[test]
fn baselines_survive_degenerate_queries() {
    let data = dataset();
    let ctx = OracleContext {
        grid: data.grid,
        proj: data.proj,
    };
    let train = data.split(Split::Train);
    let temp = Temp::fit(ctx, train);
    let lr = LinearRegression::fit(ctx, train);
    for q in weird_queries(&data) {
        for o in [&temp as &dyn OdtOracle, &lr] {
            let p = o.predict_seconds(&q);
            assert!(p.is_finite() && p >= 0.0, "{} produced {p}", o.name());
        }
    }
}

#[test]
fn pit_rasterization_handles_out_of_grid_points() {
    let data = dataset();
    // A trajectory with one fix far outside the grid must clamp, not panic.
    let mut points = data.trips[0].points.clone();
    points[0].loc.lng -= 10.0;
    let t = Trajectory::new(points);
    let pit = Pit::from_trajectory(&t, &data.grid);
    assert!(pit.tensor().is_finite());
    assert!(pit.num_visited() >= 1);
}
