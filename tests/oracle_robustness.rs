//! Robustness of the oracle and baselines to degenerate or out-of-range
//! queries: endpoints outside the area of interest, zero-distance OD pairs,
//! departures that cross midnight.

use odt::baselines::{LinearRegression, OdtOracle, OracleContext, Temp};
use odt::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset() -> Dataset {
    let mut cfg = odt::traj::sim::CitySimConfig::chengdu_like();
    cfg.nx = 8;
    cfg.ny = 8;
    Dataset::simulated(cfg, 180, 8, 41)
}

fn tiny_model(data: &Dataset) -> Dot {
    let mut cfg = DotConfig::fast();
    cfg.lg = 8;
    cfg.n_steps = 8;
    cfg.base_channels = 4;
    cfg.cond_dim = 16;
    cfg.d_e = 16;
    cfg.stage1_iters = 15;
    cfg.stage2_iters = 30;
    cfg.early_stop_samples = 3;
    cfg.early_stop_every = 15;
    Dot::train(cfg, data, |_| {})
}

fn weird_queries(data: &Dataset) -> Vec<OdtInput> {
    let base = OdtInput::from_trajectory(&data.trips[0]);
    let span_lng = data.grid.max.lng - data.grid.min.lng;
    vec![
        // Far outside the grid on both ends.
        OdtInput {
            origin: odt::roadnet::LngLat {
                lng: data.grid.min.lng - 3.0 * span_lng,
                lat: base.origin.lat,
            },
            dest: odt::roadnet::LngLat {
                lng: data.grid.max.lng + 3.0 * span_lng,
                lat: base.dest.lat,
            },
            ..base
        },
        // Zero-distance query.
        OdtInput { dest: base.origin, ..base },
        // Departure just before midnight.
        OdtInput { t_dep: base.t_dep - base.second_of_day() + 86_395.0, ..base },
        // Departure decades in the future (different day arithmetic).
        OdtInput { t_dep: base.t_dep + 50.0 * 365.25 * 86_400.0, ..base },
    ]
}

#[test]
fn oracle_survives_degenerate_queries() {
    let data = dataset();
    let model = tiny_model(&data);
    let mut rng = StdRng::seed_from_u64(2);
    for (i, q) in weird_queries(&data).iter().enumerate() {
        let est = model.estimate(q, &mut rng);
        assert!(
            est.seconds.is_finite() && est.seconds >= 0.0,
            "query {i} produced {}",
            est.seconds
        );
        assert!(est.pit.tensor().is_finite(), "query {i} produced NaN PiT");
    }
}

#[test]
fn baselines_survive_degenerate_queries() {
    let data = dataset();
    let ctx = OracleContext { grid: data.grid, proj: data.proj };
    let train = data.split(Split::Train);
    let temp = Temp::fit(ctx, train);
    let lr = LinearRegression::fit(ctx, train);
    for q in weird_queries(&data) {
        for o in [&temp as &dyn OdtOracle, &lr] {
            let p = o.predict_seconds(&q);
            assert!(p.is_finite() && p >= 0.0, "{} produced {p}", o.name());
        }
    }
}

#[test]
fn pit_rasterization_handles_out_of_grid_points() {
    let data = dataset();
    // A trajectory with one fix far outside the grid must clamp, not panic.
    let mut points = data.trips[0].points.clone();
    points[0].loc.lng -= 10.0;
    let t = Trajectory::new(points);
    let pit = Pit::from_trajectory(&t, &data.grid);
    assert!(pit.tensor().is_finite());
    assert!(pit.num_visited() >= 1);
}
