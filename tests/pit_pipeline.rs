//! Integration tests of the PiT data path: trajectory → PiT → estimators /
//! denoiser, PiT → path → path-based models, and the property-based
//! invariants of the rasterization.

use odt::diffusion::{ConditionedDenoiser, DenoiserConfig, NoisePredictor};
use odt::estimator::{MVit, MVitConfig, PitEstimator};
use odt::prelude::*;
use odt::tensor::{Graph, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(lg: usize) -> Dataset {
    let mut cfg = odt::traj::sim::CitySimConfig::chengdu_like();
    cfg.nx = 8;
    cfg.ny = 8;
    Dataset::simulated(cfg, 150, lg, 29)
}

#[test]
fn ground_truth_pits_feed_both_stages() {
    let data = dataset(8);
    let mut rng = StdRng::seed_from_u64(0);
    let den_cfg = DenoiserConfig {
        channels: 3,
        lg: 8,
        base_channels: 4,
        depth: 2,
        cond_dim: 16,
        attn_max_tokens: 64,
    };
    let den = ConditionedDenoiser::new(&mut rng, den_cfg);
    let mvit = MVit::with_defaults(&mut rng, &MVitConfig::fast(), 8);
    for trip in data.split(Split::Train).iter().take(4) {
        let pit = Pit::from_trajectory(trip, &data.grid);
        // Stage 1 shape compatibility.
        let g = Graph::new();
        let x = g.input(pit.tensor().reshape(vec![1, 3, 8, 8]));
        let eps = den.predict(&g, x, &[3], &Tensor::zeros(vec![1, 5]));
        assert_eq!(g.shape(eps), vec![1, 3, 8, 8]);
        // Stage 2 compatibility.
        let y = mvit.predict(&g, &pit);
        assert!(g.value(y).is_finite());
    }
}

#[test]
fn pit_to_path_round_trip_is_ordered() {
    let data = dataset(8);
    let trip = &data.split(Split::Train)[0];
    let pit = Pit::from_trajectory(trip, &data.grid);
    let pts = odt::dot::pit_to_path_points(&pit, &data.grid, &data.proj);
    assert_eq!(pts.len(), pit.num_visited());
    // The first path point must correspond to the trip's origin cell.
    let origin_cell = data.grid.cell_of(trip.points[0].loc);
    let first_cell = data.grid.cell_of(data.proj.to_lnglat(pts[0]));
    assert_eq!(first_cell, origin_cell);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any trajectory rasterizes to a PiT whose values respect Definition 2.
    #[test]
    fn pit_values_respect_definition(seed in 0u64..500) {
        let mut cfg = odt::traj::sim::CitySimConfig::chengdu_like();
        cfg.nx = 8;
        cfg.ny = 8;
        let sim = odt::traj::sim::CitySim::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let trip = sim.generate_trip(&mut rng);
        let grid = GridSpec::covering(std::slice::from_ref(&trip), 10);
        let pit = Pit::from_trajectory(&trip, &grid);

        // Every value in [-1, 1]; unvisited cells all -1; visited mask = 1.
        for ch in 0..3 {
            for row in 0..10 {
                for col in 0..10 {
                    let v = pit.at(ch, row, col);
                    prop_assert!((-1.0..=1.0).contains(&v), "value {v} out of range");
                }
            }
        }
        for row in 0..10 {
            for col in 0..10 {
                if !pit.is_visited(row, col) {
                    for ch in 0..3 {
                        prop_assert_eq!(pit.at(ch, row, col), -1.0);
                    }
                }
            }
        }
        // At least origin and destination cells visited; offsets span -1..1.
        prop_assert!(pit.num_visited() >= 2);
        let offsets: Vec<f32> = pit
            .visited_indices()
            .iter()
            .map(|&i| {
                let (r, c) = grid.cell_of_index(i);
                pit.at(2, r, c)
            })
            .collect();
        let min = offsets.iter().copied().fold(f32::INFINITY, f32::min);
        let max = offsets.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // The origin cell's earliest point is the first fix -> offset -1.
        prop_assert!((min + 1.0).abs() < 1e-5, "first visit offset must be -1, got {min}");
        // The final fix may fall in an already-visited cell (earliest point
        // wins per Definition 2), so the max offset is <= 1, not == 1.
        prop_assert!(max <= 1.0 && max > min, "offsets must increase, got max {max}");
    }

    /// The visit times decoded from the ToD channel are consistent with the
    /// trip's departure and arrival.
    #[test]
    fn decoded_visit_times_within_trip_span(seed in 0u64..200) {
        let mut cfg = odt::traj::sim::CitySimConfig::chengdu_like();
        cfg.nx = 8;
        cfg.ny = 8;
        let sim = odt::traj::sim::CitySim::new(cfg);
        let mut rng = StdRng::seed_from_u64(seed);
        let trip = sim.generate_trip(&mut rng);
        let grid = GridSpec::covering(std::slice::from_ref(&trip), 8);
        let pit = Pit::from_trajectory(&trip, &grid);
        let dep = trip.departure_second_of_day();
        let arr = dep + trip.travel_time();
        for idx in pit.visited_indices() {
            let (r, c) = grid.cell_of_index(idx);
            let s = pit.visit_second_of_day(r, c).unwrap();
            // Allow f32 quantization of the ToD channel (~±6 s over a day).
            prop_assert!(s >= dep - 10.0 && s <= arr + 10.0,
                "visit at {s:.0}s outside [{dep:.0}, {arr:.0}]");
        }
    }
}
