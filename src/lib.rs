//! # odt — Origin-Destination Travel Time Oracle
//!
//! A from-scratch Rust reproduction of **"Origin-Destination Travel Time
//! Oracle for Map-based Services"** (SIGMOD 2023): the **DOT** framework —
//! a conditioned denoising-diffusion model that infers a Pixelated
//! Trajectory (PiT) for a query `(origin, destination, departure time)`,
//! and a Masked Vision Transformer that estimates the travel time from it.
//!
//! ```no_run
//! use odt::prelude::*;
//! use rand::SeedableRng;
//!
//! // Generate a synthetic city dataset (stand-in for the Didi data).
//! let data = Dataset::chengdu_like(1_000, 16, 7);
//!
//! // Train the two-stage DOT pipeline.
//! let mut cfg = DotConfig::fast();
//! cfg.lg = 16;
//! let model = Dot::train(cfg, &data, |msg| eprintln!("{msg}"));
//!
//! // Query the oracle: travel time + explainable PiT.
//! let odt_input = OdtInput::from_trajectory(&data.split(Split::Test)[0]);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let estimate = model.estimate(&odt_input, &mut rng);
//! println!("{:.1} minutes", estimate.seconds / 60.0);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`odt_compute`] | scoped thread pool + blocked GEMM (std-only, `ODT_THREADS`) |
//! | [`odt_tensor`] | tensors + reverse-mode autograd |
//! | [`odt_nn`] | layers, Adam, checkpointing |
//! | [`odt_roadnet`] | road networks, Dijkstra, map matching, Markov routing |
//! | [`odt_traj`] | trajectories, PiTs, preprocessing, the city simulator |
//! | [`odt_diffusion`] | DDPM + the conditioned OCConv UNet denoiser |
//! | [`odt_estimator`] | MViT / ViT / CNN travel-time estimators |
//! | [`odt_baselines`] | the paper's twelve comparison methods + DeepTEA |
//! | [`odt_core`] | the DOT framework and oracle API |
//! | [`odt_serve`] | deadline-aware serving frontend: admission queue, degradation ladder, circuit breakers, chaos harness |
//! | [`odt_net`] | hardened TCP serving layer: `odt-wire/v1` framing, backpressure, graceful drain, load generator |
//! | [`odt_eval`] | metrics and the table/figure harness |
//! | [`odt_obs`] | structured events, metrics, span timers (zero-dep) |

#![forbid(unsafe_code)]

pub use odt_baselines as baselines;
pub use odt_compute as compute;
pub use odt_core as dot;
pub use odt_diffusion as diffusion;
pub use odt_estimator as estimator;
pub use odt_eval as eval;
pub use odt_net as net;
pub use odt_nn as nn;
pub use odt_obs as obs;
pub use odt_roadnet as roadnet;
pub use odt_serve as serve;
pub use odt_tensor as tensor;
pub use odt_traj as traj;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use odt_core::{
        AblationOptions, Dot, DotConfig, Estimate, EstimatorKind, PersistError, RobustnessOptions,
        RobustnessSnapshot,
    };
    pub use odt_traj::{Dataset, GpsPoint, GridSpec, OdtInput, Pit, Split, Trajectory};
}
