#!/usr/bin/env bash
# Run the full experiment harness and append every table/figure output to
# EXPERIMENTS.md. Trained models are cached under target/odt_cache, so
# re-runs and later binaries reuse earlier training.
set -uo pipefail
cd "$(dirname "$0")/.."

PROFILE="${1:-fast}"
OUT="EXPERIMENTS.md"

# Keep the header, drop previous results.
sed -i '/<!-- RESULTS -->/q' "$OUT"
{
    echo
    echo "_Run started $(date -u '+%Y-%m-%d %H:%M UTC'), profile \`$PROFILE\`._"
} >> "$OUT"

run() {
    local bin="$1"
    shift
    echo "=== $bin ==="
    {
        echo
        echo '```'
        cargo run --release -q -p odt-eval --bin "$bin" -- --profile "$PROFILE" "$@" 2>/dev/null
        echo '```'
    } >> "$OUT"
}

cargo build --release -q -p odt-eval

# Ordered so that cheap/cached experiments land early: table3 trains the
# DOT models that tables 5/8/9 and figures 10-12 then reuse.
run table1_datasets
run table3_overall
run table8_pit_accuracy
run table9_route_accuracy
run table5_efficiency
run figure10_11_case_study
run figure12_tod_profile
run table6_outlier_removal
run table7_ablation
run figure8_grid_efficiency
run table4_scalability
run figure9_hyperparams
run ddim_ablation

echo "done: results appended to $OUT"
