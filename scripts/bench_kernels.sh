#!/usr/bin/env bash
# Kernel + serving benchmarks: builds the odt-bench binaries and writes
# BENCH_kernels.json and BENCH_serving.json at the repo root.
#
# Usage: scripts/bench_kernels.sh [--quick] [--batch N]
#   --quick    CI smoke mode: small shapes, few reps, tiny serving model.
#   --batch N  queries per serving run (default 64).
#
# ODT_THREADS controls the pool width (default: all available cores);
# ODT_THREADS=1 makes every kernel bit-identical to the sequential path.
set -uo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p odt-bench --bins

echo "--- bench_kernels ---"
./target/release/bench_kernels "$@"

echo "--- bench_serving ---"
./target/release/bench_serving "$@"

echo "benchmark reports: BENCH_kernels.json BENCH_serving.json"
