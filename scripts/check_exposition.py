#!/usr/bin/env python3
"""Validate a Prometheus text-format (0.0.4) exposition body.

Structural checks, independent of the Rust renderer's own tests:

* every line is empty, a `# HELP`/`# TYPE` comment, or a sample;
* every sample belongs to a family declared with `# TYPE` (histogram
  samples via their `_bucket`/`_sum`/`_count` suffixes);
* no family is declared twice;
* counter families end in `_total`;
* label strings are well-formed `name="escaped value"` pairs;
* sample values parse as Go-style floats (`NaN`, `+Inf`, `-Inf` legal);
* histogram buckets: `le` bounds parse, are strictly increasing, counts
  are cumulative (monotone non-decreasing), the series closes with a
  `+Inf` bucket equal to `_count`, and `_sum`/`_count` are present.

Usage: check_exposition.py FILE [--require METRIC]... [--cluster]

`--require NAME` additionally asserts a sample of that family exists
(histogram families match their triplet samples).

`--cluster` validates a federated `/metrics/cluster` body on top of the
structural checks:

* per-replica series carry `shard` and `replica` labels (at least one
  such sample exists);
* the `odt_cluster_replica_stale` marker family is present, every value
  is 0 or 1, and each series has both labels;
* every merged `odt_cluster_*` histogram reconciles exactly against its
  per-replica series: cluster `_count` == Σ over replicas of the
  corresponding `<family>_count{shard,replica}` samples (only the
  plainly-labeled ones — replica-side histograms that already carried
  their own labels are federated but not merged);
* at least one merged cluster histogram exists.
"""

import argparse
import math
import re
import sys
from collections import defaultdict

SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"')
TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def parse_value(s):
    if s == "NaN":
        return math.nan
    if s == "+Inf":
        return math.inf
    if s == "-Inf":
        return -math.inf
    return float(s)


def parse(path, errors):
    types = {}
    samples = []  # (lineno, name, labels, value)
    for ln, raw in enumerate(open(path, encoding="utf-8"), 1):
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith("# HELP "):
            if len(line.split(" ", 3)) < 4:
                errors.append(f"line {ln}: malformed HELP: {line!r}")
        elif line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in TYPES:
                errors.append(f"line {ln}: malformed TYPE: {line!r}")
                continue
            name = parts[2]
            if name in types:
                errors.append(f"line {ln}: duplicate TYPE for {name}")
            types[name] = parts[3]
        elif line.startswith("#"):
            # Arbitrary comments are legal; HELP/TYPE are checked above.
            continue
        else:
            m = SAMPLE_RE.match(line)
            if not m:
                errors.append(f"line {ln}: unparseable sample: {line!r}")
                continue
            name, labelstr, value = m.groups()
            labels = {}
            if labelstr:
                for lm in LABEL_RE.finditer(labelstr):
                    labels[lm.group(1)] = lm.group(2)
                leftover = LABEL_RE.sub("", labelstr).replace(",", "").strip()
                if leftover:
                    errors.append(f"line {ln}: bad label syntax: {{{labelstr}}}")
            try:
                v = parse_value(value)
            except ValueError:
                errors.append(f"line {ln}: bad sample value {value!r}")
                continue
            samples.append((ln, name, labels, v))
    return types, samples


def family_of(name, types):
    """Histogram samples resolve to their declared family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        base = name[: -len(suffix)] if name.endswith(suffix) else None
        if base and types.get(base) == "histogram":
            return base
    return name


def check(types, samples, errors):
    for fam, t in types.items():
        if t == "counter" and not fam.endswith("_total"):
            errors.append(f"counter {fam} does not end in _total")

    buckets = defaultdict(list)
    counts, sums = {}, {}
    for ln, name, labels, v in samples:
        fam = family_of(name, types)
        if fam not in types:
            errors.append(f"line {ln}: sample {name} has no TYPE declaration")
            continue
        if types[fam] != "histogram":
            continue
        key = (fam, tuple(sorted((k, lv) for k, lv in labels.items() if k != "le")))
        if name.endswith("_bucket"):
            if "le" not in labels:
                errors.append(f"line {ln}: {name} bucket without le label")
                continue
            try:
                buckets[key].append((parse_value(labels["le"]), v))
            except ValueError:
                errors.append(f"line {ln}: bad le bound {labels['le']!r}")
        elif name.endswith("_count"):
            counts[key] = v
        elif name.endswith("_sum"):
            sums[key] = v
        else:
            errors.append(f"line {ln}: bare sample {name} for histogram family")

    for key, series in buckets.items():
        fam = key[0]
        les = [le for le, _ in series]
        if les != sorted(les):
            errors.append(f"{fam}: le bounds out of order")
        if len(set(les)) != len(les):
            errors.append(f"{fam}: duplicate le bounds")
        if not les or not math.isinf(les[-1]):
            errors.append(f"{fam}: bucket series does not close with +Inf")
        vals = [v for _, v in series]
        if any(b < a for a, b in zip(vals, vals[1:])):
            errors.append(f"{fam}: cumulative bucket counts decrease")
        if key not in counts:
            errors.append(f"{fam}: missing _count")
        elif vals and math.isinf(les[-1]) and vals[-1] != counts[key]:
            errors.append(f"{fam}: +Inf bucket {vals[-1]} != _count {counts[key]}")
        if key not in sums:
            errors.append(f"{fam}: missing _sum")
    for key in list(counts) + list(sums):
        if key not in buckets:
            errors.append(f"{key[0]}: _sum/_count without any _bucket series")


def check_cluster(types, samples, errors):
    """Federation-specific checks for a `/metrics/cluster` body."""
    labeled = [s for s in samples if "shard" in s[2] and "replica" in s[2]]
    if not labeled:
        errors.append("cluster: no sample carries shard+replica labels")

    stale = [s for s in samples if s[1] == "odt_cluster_replica_stale"]
    if not stale:
        errors.append("cluster: odt_cluster_replica_stale markers missing")
    for ln, name, labels, v in stale:
        if "shard" not in labels or "replica" not in labels:
            errors.append(f"line {ln}: {name} without shard/replica labels")
        if v not in (0.0, 1.0):
            errors.append(f"line {ln}: {name} value {v} is not 0 or 1")

    merged = [
        fam
        for fam, t in types.items()
        if t == "histogram" and fam.startswith("odt_cluster_")
    ]
    if not merged:
        errors.append("cluster: no merged odt_cluster_* histogram family")
    for fam in merged:
        # The merge strips the replica families' `odt_` prefix, so the
        # source family is `odt_<rest>` (or bare `<rest>` if a replica
        # exported an unprefixed name).
        rest = fam[len("odt_cluster_") :]
        sources = ("odt_" + rest, rest)
        cluster_count = next(
            (v for _, n, lb, v in samples if n == fam + "_count" and not lb),
            None,
        )
        if cluster_count is None:
            errors.append(f"cluster: {fam}_count missing")
            continue
        # Only the plainly-labeled per-replica series take part in the
        # merge; histograms that already carried their own labels are
        # federated verbatim but never merged.
        replica_sum = sum(
            v
            for _, n, lb, v in samples
            if n in tuple(s + "_count" for s in sources)
            and set(lb) == {"shard", "replica"}
        )
        if replica_sum != cluster_count:
            errors.append(
                f"cluster: {fam}_count {cluster_count} != "
                f"sum of per-replica counts {replica_sum}"
            )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("path")
    ap.add_argument("--require", action="append", default=[], metavar="METRIC")
    ap.add_argument("--cluster", action="store_true")
    args = ap.parse_args()

    errors = []
    types, samples = parse(args.path, errors)
    check(types, samples, errors)
    if args.cluster:
        check_cluster(types, samples, errors)
    present = {family_of(name, types) for _, name, _, _ in samples}
    for req in args.require:
        if req not in present:
            errors.append(f"required metric {req} has no samples")

    if errors:
        for e in errors:
            print(f"check_exposition: {e}", file=sys.stderr)
        sys.exit(1)
    print(
        f"check_exposition: OK — {len(types)} families, {len(samples)} samples"
    )


if __name__ == "__main__":
    main()
