#!/usr/bin/env bash
# Run the experiments that reuse the DOT checkpoints cached by a prior
# table3 run (fast on a warm cache), appending to EXPERIMENTS.md.
set -uo pipefail
cd "$(dirname "$0")/.."
PROFILE="${1:-fast}"
OUT="EXPERIMENTS.md"

run() {
    local bin="$1"
    echo "=== $bin ==="
    {
        echo
        echo '```'
        cargo run --release -q -p odt-eval --bin "$bin" -- --profile "$PROFILE" 2>/dev/null
        echo '```'
    } >> "$OUT"
}

run table8_pit_accuracy
run figure10_11_case_study
run figure12_tod_profile
run table9_route_accuracy
run ddim_ablation
echo "quick cached set done"
