//! Run-level telemetry for the eval binaries: `--telemetry <path>` wires a
//! [`odt_obs::JsonlSink`] into the global event stream for the lifetime of
//! the run, and every run ends with the metrics summary of
//! [`crate::report::print_metrics_summary`].
//!
//! Usage in a binary:
//!
//! ```ignore
//! let profile = EvalProfile::from_args();
//! let _telemetry = odt_eval::telemetry::init(&profile);
//! // ... run the experiment; on scope exit the guard flushes the JSONL
//! // dump and prints the metrics summary.
//! ```

use crate::profile::EvalProfile;
use crate::report;
use odt_obs::{event, JsonlSink, Level, SinkId};
use std::sync::Arc;

/// RAII guard for one instrumented run. Dropping it emits `run.end`,
/// prints the end-of-run metrics summary, and (when `--telemetry` was
/// given) flushes and unregisters the JSONL sink — so the file on disk is
/// complete exactly when the binary exits.
pub struct Telemetry {
    sink: Option<(SinkId, std::path::PathBuf)>,
}

/// Start telemetry for a run: pre-register the per-path serving histograms
/// (so `serve.query.full` and `serve.query.fallback` both appear in every
/// summary, even at count 0), bring up the compute pool so its gauges
/// (`compute.threads`, `compute.tasks`, `compute.queue_wait_us`) are part
/// of every end-of-run summary, attach the JSONL sink when the profile
/// asks for one, and emit `run.start`.
pub fn init(profile: &EvalProfile) -> Telemetry {
    // Crash observability for every eval binary: a panic flushes the
    // event sinks and dumps the flight recorder before the process dies.
    // Tracing and the flight recorder stay off unless ODT_TRACE_SAMPLE /
    // ODT_FLIGHTREC_DIR are set in the environment.
    odt_obs::flightrec::install_panic_hook();
    odt_obs::trace::init_from_env();
    odt_obs::flightrec::init_from_env();
    odt_obs::histogram("serve.query.full");
    odt_obs::histogram("serve.query.fallback");
    odt_compute::ensure_initialized();
    let sink = profile.telemetry.as_ref().map(|path| {
        let id = odt_obs::add_sink(Arc::new(JsonlSink::new(path.clone())));
        (id, path.clone())
    });
    event(Level::Info, "run.start")
        .field("profile", profile.name.as_str())
        .field("seed", profile.seed)
        .field("raw_trips", profile.raw_trips)
        .emit();
    Telemetry { sink }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        event(Level::Info, "run.end").emit();
        report::print_metrics_summary();
        if let Some((id, path)) = self.sink.take() {
            if let Some(sink) = odt_obs::remove_sink(id) {
                sink.flush();
            }
            println!("telemetry written to {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_preregisters_both_serving_paths() {
        let profile = EvalProfile::fast();
        let _t = init(&profile);
        let snap = odt_obs::snapshot();
        for name in ["serve.query.full", "serve.query.fallback"] {
            assert!(
                snap.histograms.iter().any(|&(k, _)| k == name),
                "{name} must be registered"
            );
        }
    }

    #[test]
    fn init_registers_compute_pool_metrics() {
        let profile = EvalProfile::fast();
        let _t = init(&profile);
        let snap = odt_obs::snapshot();
        assert!(
            snap.gauges.iter().any(|&(k, _)| k == "compute.threads"),
            "pool-width gauge must be registered"
        );
        assert!(
            snap.counters.iter().any(|&(k, _)| k == "compute.tasks"),
            "task counter must be registered"
        );
        assert!(
            snap.histograms
                .iter()
                .any(|&(k, _)| k == "compute.queue_wait_us"),
            "queue-wait histogram must be registered"
        );
    }

    #[test]
    fn telemetry_guard_writes_jsonl_on_drop() {
        let path =
            std::env::temp_dir().join(format!("odt_eval_telemetry_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut profile = EvalProfile::fast();
        profile.telemetry = Some(path.clone());
        {
            let _t = init(&profile);
            event(Level::Info, "test.telemetry").field("k", 1u64).emit();
        }
        let content = std::fs::read_to_string(&path).expect("telemetry file written");
        assert!(content.lines().count() >= 2, "run.start + test event");
        for line in content.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(content.contains("\"name\":\"run.start\""));
        assert!(content.contains("\"name\":\"run.end\""));
        let _ = std::fs::remove_file(&path);
    }
}
