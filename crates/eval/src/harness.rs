//! The experiment harness: dataset preparation, method training and
//! evaluation shared by every table/figure binary.

use crate::metrics::{regression, Regression};
use crate::profile::EvalProfile;
use odt_baselines::{
    DeepOd, DeepStRouter, DijkstraRouter, Gbm, LinearRegression, Murat, OdtOracle, OracleContext,
    Rne, Router, StNn, Stdgcn, Temp, Wddra,
};
use odt_core::Dot;
use odt_roadnet::RoadNetwork;
use odt_traj::{Dataset, OdtInput, Pit, Split, Trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Which synthetic city to run on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum City {
    /// The Chengdu-like preset.
    Chengdu,
    /// The Harbin-like preset.
    Harbin,
}

impl City {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            City::Chengdu => "Chengdu",
            City::Harbin => "Harbin",
        }
    }
}

/// A prepared dataset with its evaluation queries.
pub struct CityRun {
    /// The dataset (preprocessed, split, gridded).
    pub data: Dataset,
    /// Feature-extraction context shared by all oracles.
    pub ctx: OracleContext,
    /// The road network the routing baselines are given.
    pub net: Arc<RoadNetwork>,
    /// Test queries (possibly truncated by the profile).
    pub test_odts: Vec<OdtInput>,
    /// Ground-truth travel times of the test queries, seconds.
    pub test_tts: Vec<f64>,
}

impl CityRun {
    /// The test trajectories corresponding to the evaluation queries.
    pub fn test_trips(&self) -> &[Trajectory] {
        &self.data.split(Split::Test)[..self.test_odts.len()]
    }

    /// Ground-truth PiTs of the evaluation queries.
    pub fn test_pits(&self) -> Vec<Pit> {
        self.test_trips()
            .iter()
            .map(|t| Pit::from_trajectory(t, &self.data.grid))
            .collect()
    }
}

/// Generate, preprocess and split a city's dataset, and fix the test
/// queries.
pub fn prepare_city(city: City, profile: &EvalProfile) -> CityRun {
    let _span = odt_obs::span("eval.prepare_city");
    let data = match city {
        City::Chengdu => Dataset::chengdu_like(profile.raw_trips, profile.lg, profile.seed),
        City::Harbin => Dataset::harbin_like(profile.raw_trips, profile.lg, profile.seed),
    };
    let ctx = OracleContext {
        grid: data.grid,
        proj: data.proj,
    };
    let net = data
        .network
        .clone()
        .expect("simulated dataset carries its network");
    let test = data.split(Split::Test);
    let n = profile.max_test_queries.min(test.len());
    let test_odts: Vec<OdtInput> = test[..n].iter().map(OdtInput::from_trajectory).collect();
    let test_tts: Vec<f64> = test[..n].iter().map(Trajectory::travel_time).collect();
    CityRun {
        data,
        ctx,
        net,
        test_odts,
        test_tts,
    }
}

/// One trained-and-evaluated method.
#[derive(Clone, Debug)]
pub struct MethodResult {
    /// Method name as in the paper's tables.
    pub name: String,
    /// Accuracy on the test queries.
    pub accuracy: Regression,
    /// Per-query predictions, seconds (kept for downstream analyses).
    pub predictions: Vec<f64>,
    /// Model size in bytes (Table 5).
    pub model_size_bytes: usize,
    /// Training wall-clock, seconds (0 for training-free methods).
    pub train_seconds: f64,
    /// Estimation throughput: seconds per 1 000 queries (Table 5).
    pub sec_per_k_queries: f64,
}

fn evaluate(
    name: &str,
    run: &CityRun,
    model_size: usize,
    train_seconds: f64,
    mut predict: impl FnMut(&OdtInput) -> f64,
) -> MethodResult {
    let t0 = Instant::now();
    let predictions: Vec<f64> = run.test_odts.iter().map(&mut predict).collect();
    let elapsed = t0.elapsed().as_secs_f64();
    let pairs: Vec<(f64, f64)> = predictions
        .iter()
        .zip(&run.test_tts)
        .map(|(&p, &a)| (p, a))
        .collect();
    MethodResult {
        name: name.to_string(),
        accuracy: regression(&pairs),
        predictions,
        model_size_bytes: model_size,
        train_seconds,
        sec_per_k_queries: elapsed / run.test_odts.len() as f64 * 1_000.0,
    }
}

/// Train and evaluate every baseline of §6.2 on (optionally overridden)
/// training data. Order matches Table 3. The returned `DeepStRouter` is the
/// path provider reused by downstream experiments.
pub fn run_baselines(
    run: &CityRun,
    profile: &EvalProfile,
    train_override: Option<&[Trajectory]>,
    progress: &mut dyn FnMut(&str),
) -> (Vec<MethodResult>, Arc<DeepStRouter>) {
    let _span = odt_obs::span("eval.run_baselines");
    let train: &[Trajectory] = train_override.unwrap_or_else(|| run.data.split(Split::Train));
    let ctx = run.ctx;
    let mut results = Vec::new();

    // Routing methods.
    progress("fitting Dijkstra router");
    let t = Instant::now();
    let dij = DijkstraRouter::fit(ctx, run.net.clone(), train);
    let dij_train = t.elapsed().as_secs_f64();
    results.push(evaluate(
        "Dijkstra",
        run,
        dij.model_size_bytes(),
        dij_train,
        |o| dij.predict_seconds(o),
    ));

    progress("fitting DeepST router");
    let t = Instant::now();
    let deepst = Arc::new(DeepStRouter::fit(ctx, run.net.clone(), train));
    let deepst_train = t.elapsed().as_secs_f64();
    {
        let d = deepst.clone();
        results.push(evaluate(
            "DeepST",
            run,
            d.model_size_bytes(),
            deepst_train,
            |o| d.predict_seconds(o),
        ));
    }

    // Path-based methods, fed by DeepST paths as in the paper.
    progress("fitting WDDRA");
    let t = Instant::now();
    let wddra = Wddra::fit(ctx, train, &profile.neural);
    let wddra_train = t.elapsed().as_secs_f64();
    results.push(evaluate(
        "WDDRA",
        run,
        wddra.model_size_bytes(),
        wddra_train,
        |o| wddra.predict_with_path(o, &deepst.route_points(o)),
    ));

    progress("fitting STDGCN");
    let t = Instant::now();
    let stdgcn = Stdgcn::fit(ctx, train, &profile.neural);
    let stdgcn_train = t.elapsed().as_secs_f64();
    results.push(evaluate(
        "STDGCN",
        run,
        stdgcn.model_size_bytes(),
        stdgcn_train,
        |o| stdgcn.predict_with_path(o, &deepst.route_points(o)),
    ));

    // Traditional ODT-Oracle methods.
    progress("fitting TEMP");
    let temp = Temp::fit(ctx, train);
    results.push(evaluate("TEMP", run, temp.model_size_bytes(), 0.0, |o| {
        temp.predict_seconds(o)
    }));

    progress("fitting LR");
    let t = Instant::now();
    let lr = LinearRegression::fit(ctx, train);
    let lr_train = t.elapsed().as_secs_f64();
    results.push(evaluate("LR", run, lr.model_size_bytes(), lr_train, |o| {
        lr.predict_seconds(o)
    }));

    progress("fitting GBM");
    let t = Instant::now();
    let gbm = Gbm::fit(ctx, train);
    let gbm_train = t.elapsed().as_secs_f64();
    results.push(evaluate(
        "GBM",
        run,
        gbm.model_size_bytes(),
        gbm_train,
        |o| gbm.predict_seconds(o),
    ));

    progress("fitting RNE");
    let t = Instant::now();
    let rne = Rne::fit(ctx, train, &profile.neural);
    let rne_train = t.elapsed().as_secs_f64();
    results.push(evaluate(
        "RNE",
        run,
        rne.model_size_bytes(),
        rne_train,
        |o| rne.predict_seconds(o),
    ));

    progress("fitting ST-NN");
    let t = Instant::now();
    let stnn = StNn::fit(ctx, train, &profile.neural);
    let stnn_train = t.elapsed().as_secs_f64();
    results.push(evaluate(
        "ST-NN",
        run,
        stnn.model_size_bytes(),
        stnn_train,
        |o| stnn.predict_seconds(o),
    ));

    progress("fitting MURAT");
    let t = Instant::now();
    let murat = Murat::fit(ctx, train, &profile.neural);
    let murat_train = t.elapsed().as_secs_f64();
    results.push(evaluate(
        "MURAT",
        run,
        murat.model_size_bytes(),
        murat_train,
        |o| murat.predict_seconds(o),
    ));

    progress("fitting DeepOD");
    let t = Instant::now();
    let deepod = DeepOd::fit(ctx, train, &profile.neural);
    let deepod_train = t.elapsed().as_secs_f64();
    results.push(evaluate(
        "DeepOD",
        run,
        deepod.model_size_bytes(),
        deepod_train,
        |o| deepod.predict_seconds(o),
    ));

    (results, deepst)
}

/// Cache directory for trained DOT checkpoints and inferred PiTs, shared
/// across experiment binaries.
pub fn cache_dir() -> PathBuf {
    let dir = PathBuf::from("target/odt_cache");
    std::fs::create_dir_all(&dir).expect("create cache dir");
    dir
}

/// Train DOT on a prepared city (or load the cached checkpoint trained
/// under identical settings), evaluate it, and return the model plus the
/// inferred test PiTs (cached too, keyed by the same settings).
pub fn run_dot(
    run: &CityRun,
    profile: &EvalProfile,
    city: City,
    progress: &mut dyn FnMut(&str),
) -> (MethodResult, Dot, Vec<Pit>) {
    let _span = odt_obs::span("eval.run_dot");
    let key = format!(
        "{}_{}_s{}_n{}_q{}",
        city.name(),
        profile.name,
        profile.seed,
        profile.raw_trips,
        profile.max_test_queries
    );
    let ckpt = cache_dir().join(format!("dot_{key}.json"));
    let mut dot_cfg = profile.dot.clone();
    dot_cfg.lg = profile.lg;

    let cached = if ckpt.exists() {
        progress(&format!("loading cached DOT checkpoint {}", ckpt.display()));
        // A corrupt/stale cache entry must not kill the run: report the
        // typed error, drop the entry and retrain.
        match Dot::load(&ckpt) {
            Ok(m) => {
                let t = m.report().stage1_seconds + m.report().stage2_seconds;
                Some((m, t))
            }
            Err(e) => {
                progress(&format!("cached checkpoint unusable ({e}); retraining"));
                std::fs::remove_file(&ckpt).ok();
                None
            }
        }
    } else {
        None
    };
    let (model, train_seconds) = match cached {
        Some(mt) => mt,
        None => {
            let t = Instant::now();
            let m = Dot::train(dot_cfg, &run.data, |s| progress(s));
            let train_seconds = t.elapsed().as_secs_f64();
            m.save(&ckpt).expect("save checkpoint");
            (m, train_seconds)
        }
    };

    // Inferred test PiTs, cached alongside the checkpoint.
    let pit_path = cache_dir().join(format!("pits_{key}.json"));
    let pits: Vec<Pit> = if pit_path.exists() {
        progress("loading cached inferred test PiTs");
        serde_json::from_str(&std::fs::read_to_string(&pit_path).expect("read pit cache"))
            .expect("pit cache must parse")
    } else {
        progress(&format!("inferring {} test PiTs", run.test_odts.len()));
        let mut rng = StdRng::seed_from_u64(profile.seed ^ 0x9e37);
        let t0 = Instant::now();
        let pits = model.infer_pits(&run.test_odts, &mut rng);
        progress(&format!(
            "inference took {:.1}s",
            t0.elapsed().as_secs_f64()
        ));
        std::fs::write(
            &pit_path,
            serde_json::to_string(&pits).expect("serialize pits"),
        )
        .expect("write pit cache");
        pits
    };

    // Evaluate: time the full per-query path (inference + estimation) on a
    // small sample to report throughput, but score accuracy from the cached
    // batch for determinism. Throughput is read back from the
    // `serve.query.full` latency histogram the oracle records into, so the
    // Table 5 number and the metrics-summary distribution are one
    // measurement; the Instant pair only covers the degenerate case where
    // every timed query fell back.
    let full_hist = odt_obs::histogram("serve.query.full");
    let (count_before, sum_before) = (full_hist.count(), full_hist.sum_micros());
    let t0 = Instant::now();
    let timing_n = run.test_odts.len().min(8);
    {
        let mut rng = StdRng::seed_from_u64(profile.seed);
        for odt in run.test_odts.iter().take(timing_n) {
            let _ = model.estimate(odt, &mut rng);
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let (count_after, sum_after) = (full_hist.count(), full_hist.sum_micros());
    let sec_per_k = if count_after > count_before {
        (sum_after - sum_before) as f64 / 1e6 / (count_after - count_before) as f64 * 1_000.0
    } else {
        wall / timing_n as f64 * 1_000.0
    };

    let predictions: Vec<f64> = pits.iter().map(|p| model.estimate_from_pit(p)).collect();
    let pairs: Vec<(f64, f64)> = predictions
        .iter()
        .zip(&run.test_tts)
        .map(|(&p, &a)| (p, a))
        .collect();
    let result = MethodResult {
        name: "DOT".into(),
        accuracy: regression(&pairs),
        predictions,
        model_size_bytes: model.model_size_bytes(),
        train_seconds,
        sec_per_k_queries: sec_per_k,
    };
    let robustness = model.robustness();
    if robustness != Default::default() {
        progress(&format!("DOT robustness counters: {robustness}"));
    }
    (result, model, pits)
}

/// Rasterize a routed path into a PiT for the Table 7 `Routing+Est.`
/// ablations: the mask marks route cells; the temporal channels are
/// populated from the router's total time estimate distributed along the
/// route ("these features are instead populated based on historical average
/// travel times between cells", §6.5.4).
pub fn route_to_pit(
    points: &[odt_roadnet::Point],
    total_seconds: f64,
    t_dep: f64,
    grid: &odt_traj::GridSpec,
    proj: &odt_roadnet::Projection,
) -> Pit {
    use odt_tensor::Tensor;
    let lg = grid.lg;
    let mut tensor = Tensor::full(vec![3, lg, lg], -1.0);
    if points.len() >= 2 {
        let mut cum = vec![0.0f64];
        for w in points.windows(2) {
            cum.push(cum.last().unwrap() + w[0].distance(&w[1]));
        }
        let total_len = (*cum.last().unwrap()).max(1e-9);
        for (p, d) in points.iter().zip(&cum) {
            let frac = d / total_len;
            let ll = proj.to_lnglat(*p);
            let (row, col) = grid.cell_of(ll);
            if tensor.at(&[0, row, col]) >= 0.0 {
                continue; // earliest visit wins, as in Definition 2
            }
            let visit_t = t_dep + frac * total_seconds;
            let tod = 2.0 * visit_t.rem_euclid(86_400.0) / 86_400.0 - 1.0;
            tensor.set(&[0, row, col], 1.0);
            tensor.set(&[1, row, col], tod as f32);
            tensor.set(&[2, row, col], (2.0 * frac - 1.0) as f32);
        }
    }
    Pit::from_tensor(tensor)
}

/// Evaluate an already-available set of per-query predictions.
pub fn score_predictions(name: &str, run: &CityRun, predictions: Vec<f64>) -> MethodResult {
    let pairs: Vec<(f64, f64)> = predictions
        .iter()
        .zip(&run.test_tts)
        .map(|(&p, &a)| (p, a))
        .collect();
    MethodResult {
        name: name.to_string(),
        accuracy: regression(&pairs),
        predictions,
        model_size_bytes: 0,
        train_seconds: 0.0,
        sec_per_k_queries: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> EvalProfile {
        let mut p = EvalProfile::fast();
        p.raw_trips = 250;
        p.lg = 8;
        p.dot.lg = 8;
        p.dot.n_steps = 6;
        p.dot.base_channels = 4;
        p.dot.cond_dim = 16;
        p.dot.d_e = 16;
        p.dot.stage1_iters = 6;
        p.dot.stage2_iters = 15;
        p.dot.early_stop_samples = 3;
        p.dot.early_stop_every = 10;
        p.neural.iters = 15;
        p.max_test_queries = 6;
        p
    }

    #[test]
    fn route_to_pit_marks_route_cells_in_order() {
        use odt_roadnet::{LngLat, Point, Projection};
        let proj = Projection::new(LngLat {
            lng: 104.0,
            lat: 30.0,
        });
        let grid = odt_traj::GridSpec::new(
            proj.to_lnglat(Point::new(-100.0, -100.0)),
            proj.to_lnglat(Point::new(2_100.0, 2_100.0)),
            8,
        );
        // A straight 2 km eastward route over 600 s departing 09:00.
        let points: Vec<Point> = (0..=20)
            .map(|i| Point::new(i as f64 * 100.0, 0.0))
            .collect();
        let pit = route_to_pit(&points, 600.0, 9.0 * 3_600.0, &grid, &proj);
        assert!(
            pit.num_visited() >= 6,
            "straight route must cross many cells"
        );
        // Offsets increase west → east along the route.
        let (row0, col0) = grid.cell_of(proj.to_lnglat(points[0]));
        let (row1, col1) = grid.cell_of(proj.to_lnglat(*points.last().unwrap()));
        assert!(pit.at(2, row0, col0) < pit.at(2, row1, col1));
        // ToD decodes within the trip's time window.
        let s = pit.visit_second_of_day(row1, col1).unwrap();
        assert!(
            s >= 9.0 * 3_600.0 - 10.0 && s <= 9.0 * 3_600.0 + 610.0,
            "{s}"
        );
    }

    #[test]
    fn route_to_pit_empty_route_is_empty_pit() {
        use odt_roadnet::{LngLat, Projection};
        let proj = Projection::new(LngLat { lng: 0.0, lat: 0.0 });
        let grid = odt_traj::GridSpec::new(
            LngLat {
                lng: -0.1,
                lat: -0.1,
            },
            LngLat { lng: 0.1, lat: 0.1 },
            4,
        );
        let pit = route_to_pit(&[], 100.0, 0.0, &grid, &proj);
        assert_eq!(pit.num_visited(), 0);
    }

    #[test]
    fn prepare_city_builds_consistent_run() {
        let run = prepare_city(City::Chengdu, &tiny_profile());
        assert_eq!(run.test_odts.len(), run.test_tts.len());
        assert!(run.test_odts.len() <= 6);
        assert_eq!(run.test_pits().len(), run.test_odts.len());
    }

    #[test]
    fn baselines_produce_finite_metrics() {
        let profile = tiny_profile();
        let run = prepare_city(City::Chengdu, &profile);
        let (results, _) = run_baselines(&run, &profile, None, &mut |_| {});
        assert_eq!(results.len(), 11);
        for r in &results {
            assert!(r.accuracy.mae_min.is_finite(), "{} MAE not finite", r.name);
            assert!(r.accuracy.mape_pct >= 0.0);
            assert_eq!(r.predictions.len(), run.test_odts.len());
        }
    }

    #[test]
    fn dot_runs_and_caches() {
        let mut profile = tiny_profile();
        profile.name = format!("test{}", std::process::id());
        let run = prepare_city(City::Chengdu, &profile);
        let (r1, _m, pits) = run_dot(&run, &profile, City::Chengdu, &mut |_| {});
        assert_eq!(pits.len(), run.test_odts.len());
        // Second call loads from cache and reproduces the same accuracy.
        let (r2, _m2, _p2) = run_dot(&run, &profile, City::Chengdu, &mut |_| {});
        assert_eq!(r1.accuracy, r2.accuracy);
    }
}
