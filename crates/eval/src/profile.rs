//! Experiment profiles: how large each experiment runs.

use odt_baselines::NeuralConfig as BaselineNeuralConfig;
use odt_core::DotConfig;

pub use odt_baselines::NeuralConfig;

/// Scale settings for an experiment run.
#[derive(Clone, Debug)]
pub struct EvalProfile {
    /// Profile name, recorded in every report header.
    pub name: String,
    /// Raw simulated trips per city (before the §6.1 filters).
    pub raw_trips: usize,
    /// Grid side length `L_G`.
    pub lg: usize,
    /// DOT configuration.
    pub dot: DotConfig,
    /// Shared hyper-parameters of the neural baselines.
    pub neural: BaselineNeuralConfig,
    /// Maximum number of test queries evaluated per method.
    pub max_test_queries: usize,
    /// Seed for dataset generation and all training.
    pub seed: u64,
    /// Where to dump the structured event log as JSONL at the end of the
    /// run (`--telemetry <path>`); `None` disables the dump.
    pub telemetry: Option<std::path::PathBuf>,
}

impl EvalProfile {
    /// The CPU-scale default: every algorithm identical to the paper, with
    /// reduced dataset size, diffusion steps and training iterations so the
    /// full table suite completes on one core. EXPERIMENTS.md records that
    /// the published numbers were produced with this profile.
    pub fn fast() -> Self {
        let mut dot = DotConfig::fast();
        dot.lg = 16;
        dot.n_steps = 30;
        dot.stage1_iters = 1_600;
        dot.stage1_batch = 8;
        dot.stage2_iters = 1_200;
        dot.stage2_batch = 8;
        dot.lr = 2e-3;
        dot.early_stop_samples = 24;
        dot.early_stop_every = 400;
        EvalProfile {
            name: "fast".into(),
            raw_trips: 1_000,
            lg: 16,
            dot,
            neural: BaselineNeuralConfig {
                hidden: 64,
                iters: 400,
                batch: 96,
                lr: 2e-3,
                seed: 7,
            },
            max_test_queries: 60,
            seed: 7,
            telemetry: None,
        }
    }

    /// The paper's own scale (Table 2 optima, full iteration counts).
    /// Provided for completeness; expect GPU-scale runtimes on a CPU.
    pub fn paper() -> Self {
        EvalProfile {
            name: "paper".into(),
            raw_trips: 1_400_000,
            lg: 20,
            dot: DotConfig::paper(),
            neural: BaselineNeuralConfig {
                hidden: 128,
                iters: 20_000,
                batch: 256,
                lr: 1e-3,
                seed: 7,
            },
            max_test_queries: usize::MAX,
            seed: 7,
            telemetry: None,
        }
    }

    /// Parse a profile from CLI arguments (`--profile`, `--seed`,
    /// `--trips`, `--queries`, `--telemetry`), starting from `fast`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let get = |flag: &str| -> Option<String> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1).cloned())
        };
        let mut profile = match get("--profile").as_deref() {
            Some("paper") => Self::paper(),
            Some("fast") | None => Self::fast(),
            Some(other) => panic!("unknown profile '{other}' (use fast|paper)"),
        };
        if let Some(seed) = get("--seed") {
            let seed: u64 = seed.parse().expect("--seed must be an integer");
            profile.seed = seed;
            profile.dot.seed = seed;
            profile.neural.seed = seed;
        }
        if let Some(trips) = get("--trips") {
            profile.raw_trips = trips.parse().expect("--trips must be an integer");
        }
        if let Some(q) = get("--queries") {
            profile.max_test_queries = q.parse().expect("--queries must be an integer");
        }
        if let Some(path) = get("--telemetry") {
            profile.telemetry = Some(std::path::PathBuf::from(path));
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_profile_is_consistent() {
        let p = EvalProfile::fast();
        assert_eq!(p.lg, p.dot.lg, "grid sizes must agree");
        assert!(p.dot.stage1_iters >= 100);
    }

    #[test]
    fn paper_profile_matches_table2() {
        let p = EvalProfile::paper();
        assert_eq!(p.dot.lg, 20);
        assert_eq!(p.dot.n_steps, 1000);
    }
}
