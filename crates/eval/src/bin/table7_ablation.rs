//! Table 7: ablation study — routing+estimator combinations, conditioning
//! masks, embedding switches and estimator swaps.

use odt_baselines::{DeepStRouter, DijkstraRouter, OdtOracle, Router, Stdgcn, Wddra};
use odt_core::{pit_to_path_points, AblationOptions, Dot, EstimatorKind};
use odt_eval::harness::{cache_dir, prepare_city, route_to_pit, run_dot, score_predictions, City};
use odt_eval::profile::EvalProfile;
use odt_eval::report::{print_accuracy_table, print_ordering_check, AccuracyRow};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Paper Table 7 (Chengdu, Harbin).
const PAPER: &[(&str, [f64; 3], [f64; 3])] = &[
    (
        "Dijkstra+Est.",
        [9.182, 6.871, 41.462],
        [11.869, 8.246, 50.488],
    ),
    (
        "DeepST+Est.",
        [4.587, 3.170, 23.437],
        [8.879, 5.689, 33.769],
    ),
    (
        "Infer.+WDDRA",
        [3.773, 1.801, 18.937],
        [7.958, 4.171, 31.514],
    ),
    (
        "Infer.+STDGCN",
        [3.476, 1.664, 17.653],
        [7.611, 3.818, 29.756],
    ),
    ("No-t", [4.325, 1.926, 16.820], [8.798, 4.345, 35.973]),
    ("No-od", [7.355, 4.564, 38.879], [10.947, 6.333, 51.699]),
    ("No-odt", [8.466, 5.880, 49.830], [11.172, 6.562, 53.331]),
    ("No-CE", [3.778, 1.591, 14.034], [8.584, 4.144, 34.441]),
    ("No-ST", [7.784, 5.036, 42.850], [11.023, 6.427, 52.442]),
    ("Est-CNN", [6.297, 3.500, 30.004], [10.389, 5.765, 47.166]),
    ("Est-ViT", [3.229, 1.293, 11.547], [7.390, 3.187, 26.484]),
    ("DOT", [3.177, 1.272, 11.343], [7.462, 3.213, 26.698]),
];

fn paper_for(method: &str, city: City) -> Option<(f64, f64, f64)> {
    PAPER.iter().find(|(m, ..)| *m == method).map(|(_, c, h)| {
        let v = if city == City::Chengdu { c } else { h };
        (v[0], v[1], v[2])
    })
}

fn main() {
    let profile = EvalProfile::from_args();
    let _telemetry = odt_eval::telemetry::init(&profile);
    let cities = if std::env::args().any(|a| a == "--both-cities") {
        vec![City::Chengdu, City::Harbin]
    } else {
        vec![City::Chengdu]
    };
    println!(
        "Table 7 — ablations (profile: {}, seed {}; pass --both-cities for Harbin too)",
        profile.name, profile.seed
    );

    for city in cities {
        let run = prepare_city(city, &profile);
        let mut rows: Vec<AccuracyRow> = Vec::new();

        // The full DOT model, its inferred test PiTs, and the routers.
        let (dot_result, mut model, inferred_pits) =
            run_dot(&run, &profile, city, &mut |m| eprintln!("  {m}"));
        let train = run.data.split(odt_traj::Split::Train);
        let deepst = DeepStRouter::fit(run.ctx, run.net.clone(), train);
        let dijkstra = DijkstraRouter::fit(run.ctx, run.net.clone(), train);

        // --- Routing + Est.: router paths rasterized to PiTs, estimated by
        //     DOT's stage-2 estimator.
        type RouteFn<'a> = Box<dyn Fn(&odt_traj::OdtInput) -> (Vec<odt_roadnet::Point>, f64) + 'a>;
        let routers: [(&str, RouteFn); 2] = [
            (
                "Dijkstra+Est.",
                Box::new(|o: &odt_traj::OdtInput| {
                    (dijkstra.route_points(o), dijkstra.predict_seconds(o))
                }),
            ),
            (
                "DeepST+Est.",
                Box::new(|o: &odt_traj::OdtInput| {
                    (deepst.route_points(o), deepst.predict_seconds(o))
                }),
            ),
        ];
        for (label, route) in routers {
            let preds: Vec<f64> = run
                .test_odts
                .iter()
                .map(|o| {
                    let (pts, secs) = route(o);
                    let pit = route_to_pit(&pts, secs, o.t_dep, &run.data.grid, &run.data.proj);
                    model.estimate_from_pit(&pit)
                })
                .collect();
            let r = score_predictions(label, &run, preds);
            rows.push(AccuracyRow {
                method: label.into(),
                measured: Some(r.accuracy),
                paper: paper_for(label, city),
            });
        }

        // --- Infer. + path-based: inferred PiTs converted to paths, fed to
        //     WDDRA / STDGCN.
        let wddra = Wddra::fit(
            run.ctx,
            run.data.split(odt_traj::Split::Train),
            &profile.neural,
        );
        let stdgcn = Stdgcn::fit(
            run.ctx,
            run.data.split(odt_traj::Split::Train),
            &profile.neural,
        );
        for (label, pb) in [("Infer.+WDDRA", &wddra), ("Infer.+STDGCN", &stdgcn)] {
            let preds: Vec<f64> = run
                .test_odts
                .iter()
                .zip(&inferred_pits)
                .map(|(o, pit)| {
                    let pts = pit_to_path_points(pit, &run.data.grid, &run.data.proj);
                    pb.predict_with_path(o, &pts)
                })
                .collect();
            let r = score_predictions(label, &run, preds);
            rows.push(AccuracyRow {
                method: label.into(),
                measured: Some(r.accuracy),
                paper: paper_for(label, city),
            });
        }

        // --- Conditioning ablations: retrain the full pipeline with masked
        //     ODT features (stage 1 changes, so no sharing).
        for (label, od, t) in [
            ("No-t", true, false),
            ("No-od", false, true),
            ("No-odt", false, false),
        ] {
            eprintln!("  training conditioning ablation {label}");
            let key = format!(
                "{}_{}_{}_s{}_n{}",
                city.name(),
                profile.name,
                label,
                profile.seed,
                profile.raw_trips
            );
            let ckpt = cache_dir().join(format!("dot_{key}.json"));
            let abl = if ckpt.exists() {
                Dot::load(&ckpt).expect("load ablation checkpoint")
            } else {
                let mut cfg = profile.dot.clone();
                cfg.lg = profile.lg;
                // Conditioning ablations retrain stage 1; trim iterations.
                cfg.stage1_iters = cfg.stage1_iters * 2 / 3;
                cfg.ablation.condition_on_od = od;
                cfg.ablation.condition_on_t = t;
                let m = Dot::train(cfg, &run.data, |s| eprintln!("    {s}"));
                m.save(&ckpt).expect("save ablation checkpoint");
                m
            };
            let mut rng = StdRng::seed_from_u64(profile.seed ^ 0x9e37);
            let pits = abl.infer_pits(&run.test_odts, &mut rng);
            let preds: Vec<f64> = pits.iter().map(|p| abl.estimate_from_pit(p)).collect();
            let r = score_predictions(label, &run, preds);
            rows.push(AccuracyRow {
                method: label.into(),
                measured: Some(r.accuracy),
                paper: paper_for(label, city),
            });
        }

        // --- Estimator-side ablations: share the trained stage 1, retrain
        //     only stage 2, and score on the same inferred PiTs.
        for (label, ablation) in [
            (
                "No-CE",
                AblationOptions {
                    cell_embedding: false,
                    ..Default::default()
                },
            ),
            (
                "No-ST",
                AblationOptions {
                    latent_cast: false,
                    ..Default::default()
                },
            ),
            (
                "Est-CNN",
                AblationOptions {
                    estimator: EstimatorKind::Cnn,
                    ..Default::default()
                },
            ),
            (
                "Est-ViT",
                AblationOptions {
                    estimator: EstimatorKind::VanillaVit,
                    ..Default::default()
                },
            ),
        ] {
            eprintln!("  retraining stage 2 for {label}");
            model.retrain_stage2(
                |c| c.ablation = ablation,
                &run.data,
                |s| eprintln!("    {s}"),
            );
            let preds: Vec<f64> = inferred_pits
                .iter()
                .map(|p| model.estimate_from_pit(p))
                .collect();
            let r = score_predictions(label, &run, preds);
            rows.push(AccuracyRow {
                method: label.into(),
                measured: Some(r.accuracy),
                paper: paper_for(label, city),
            });
        }

        rows.push(AccuracyRow {
            method: "DOT".into(),
            measured: Some(dot_result.accuracy),
            paper: paper_for("DOT", city),
        });

        print_accuracy_table(
            &format!("Table 7 ({})", city.name()),
            "Ablations of DOT's features and modules.",
            &rows,
        );

        let mae = |label: &str| {
            rows.iter()
                .find(|r| r.method == label)
                .and_then(|r| r.measured)
                .map(|m| m.mae_min)
                .unwrap_or(f64::NAN)
        };
        print_ordering_check(
            "removing OD hurts more than removing t",
            mae("No-od") > mae("No-t"),
        );
        print_ordering_check("No-odt is the worst conditioning ablation", {
            mae("No-odt") >= mae("No-od") && mae("No-odt") >= mae("No-t")
        });
        print_ordering_check("MViT beats CNN estimator", mae("DOT") < mae("Est-CNN"));
        print_ordering_check(
            "MViT is close to vanilla ViT (within 25%)",
            (mae("DOT") - mae("Est-ViT")).abs() <= 0.25 * mae("Est-ViT"),
        );
    }
}
