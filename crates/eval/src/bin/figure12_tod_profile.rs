//! Figure 12: average travel time between the top-3 most traveled cell
//! pairs over 2-hour bins of the day — ground truth vs inferred PiTs.

use odt_eval::casestudy::{tod_profile_from_pits, tod_profile_from_trips, top_cell_pairs};
use odt_eval::harness::{prepare_city, run_dot, City};
use odt_eval::profile::EvalProfile;
use odt_eval::report::print_table;
use odt_traj::Split;

fn main() {
    let profile = EvalProfile::from_args();
    let _telemetry = odt_eval::telemetry::init(&profile);
    println!(
        "Figure 12 — time-of-day travel-time profiles (profile: {}, seed {})",
        profile.name, profile.seed
    );
    let run = prepare_city(City::Chengdu, &profile);
    let (_res, _model, inferred) =
        run_dot(&run, &profile, City::Chengdu, &mut |m| eprintln!("{m}"));
    let grid = run.data.grid;

    // Top-3 pairs by frequency over the whole dataset (the paper uses the
    // most frequently traveled cell pairs).
    let all_trips = &run.data.trips;
    let pairs = top_cell_pairs(all_trips, &grid, 3);

    for (pi, pair) in pairs.iter().enumerate() {
        let truth = tod_profile_from_trips(run.data.split(Split::Train), &grid, pair);
        let from_pits = tod_profile_from_pits(&inferred, &grid, pair);
        let mut rows = Vec::new();
        for bin in 0..12 {
            let label = format!("{:02}-{:02}h", bin * 2, bin * 2 + 2);
            let fmt = |v: Option<f64>| {
                v.map(|s| format!("{:.1}", s / 60.0))
                    .unwrap_or_else(|| "-".into())
            };
            rows.push(vec![label, fmt(truth[bin]), fmt(from_pits[bin])]);
        }
        print_table(
            &format!(
                "Figure 12, pair {} (cells {:?} -> {:?})",
                pi + 1,
                grid.cell_of_index(pair.from),
                grid.cell_of_index(pair.to)
            ),
            "Minutes between cell visits; '-' = no observation in that bin. Paper \
             shape: the inferred profile tracks the ground-truth profile, with \
             rush-hour bins slower.",
            &["bin", "ground truth (min)", "inferred PiTs (min)"],
            &rows,
        );

        // Quantify agreement where both sides have data.
        let diffs: Vec<f64> = (0..12)
            .filter_map(|b| match (truth[b], from_pits[b]) {
                (Some(t), Some(p)) => Some((t - p).abs() / 60.0),
                _ => None,
            })
            .collect();
        if !diffs.is_empty() {
            println!(
                "  mean |truth - inferred| over {} shared bins: {:.1} min",
                diffs.len(),
                diffs.iter().sum::<f64>() / diffs.len() as f64
            );
        }
    }
}
