//! Table 1: dataset statistics of the two (synthetic) cities after the
//! paper's preprocessing.

use odt_eval::profile::EvalProfile;
use odt_eval::report::print_table;
use odt_traj::Dataset;

fn main() {
    let profile = EvalProfile::from_args();
    let _telemetry = odt_eval::telemetry::init(&profile);
    println!("Table 1 — dataset statistics (profile: {})", profile.name);

    // Paper values: (n, mean tt min, mean dist m, mean interval s, area).
    let paper = [
        (
            "Chengdu",
            1_389_138usize,
            13.73,
            3_283.0,
            29.06,
            "15.32*15.19",
        ),
        ("Harbin", 614_830, 15.69, 3_376.0, 44.42, "18.66*18.24"),
    ];

    let mut rows = Vec::new();
    for (i, data) in [
        Dataset::chengdu_like(profile.raw_trips, profile.lg, profile.seed),
        Dataset::harbin_like(profile.raw_trips, profile.lg, profile.seed),
    ]
    .iter()
    .enumerate()
    {
        let s = data.stats();
        let (pname, pn, ptt, pd, pi, parea) = paper[i];
        rows.push(vec![
            data.name.clone(),
            format!("{}", s.num_trajectories),
            format!("{}", pn),
            format!("{:.2}", s.mean_travel_time_min),
            format!("{:.2}", ptt),
            format!("{:.0}", s.mean_travel_distance_m),
            format!("{:.0}", pd),
            format!("{:.2}", s.mean_sample_interval_s),
            format!("{:.2}", pi),
            format!("{:.2}*{:.2}", s.area_width_km, s.area_height_km),
            parea.to_string(),
        ]);
        assert_eq!(data.name, pname);
    }
    print_table(
        "Table 1: dataset statistics (measured vs paper)",
        "The simulator is calibrated to the paper's per-trip statistics; the \
         trajectory count is scaled down by the profile (see DESIGN.md).",
        &[
            "dataset", "n", "p.n", "tt(min)", "p.tt", "dist(m)", "p.dist", "intv(s)", "p.intv",
            "area(km)", "p.area",
        ],
        &rows,
    );
}
