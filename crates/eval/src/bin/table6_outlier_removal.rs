//! Table 6: baselines re-trained after DeepTEA outlier removal, vs DOT.

use odt_baselines::DeepTea;
use odt_eval::harness::{prepare_city, run_baselines, run_dot, City};
use odt_eval::profile::EvalProfile;
use odt_eval::report::{print_accuracy_table, print_ordering_check, AccuracyRow};
use odt_traj::Split;

/// Paper Table 6 (Chengdu, Harbin).
const PAPER: &[(&str, [f64; 3], [f64; 3])] = &[
    (
        "Dijkstra+DeepTEA",
        [9.641, 7.582, 48.337],
        [11.862, 8.396, 53.949],
    ),
    (
        "DeepST+DeepTEA",
        [4.692, 3.416, 26.959],
        [8.901, 5.821, 37.063],
    ),
    (
        "WDDRA+DeepTEA",
        [4.497, 3.140, 23.537],
        [8.584, 5.545, 34.723],
    ),
    (
        "STDGCN+DeepTEA",
        [4.393, 3.056, 22.812],
        [8.569, 5.501, 33.688],
    ),
    (
        "RNE+DeepTEA",
        [4.627, 3.447, 28.239],
        [8.403, 6.061, 45.345],
    ),
    (
        "ST-NN+DeepTEA",
        [3.912, 2.740, 20.818],
        [8.427, 5.994, 43.664],
    ),
    (
        "MURAT+DeepTEA",
        [3.644, 2.367, 17.986],
        [7.899, 5.181, 37.728],
    ),
    (
        "DeepOD+DeepTEA",
        [3.763, 1.783, 14.835],
        [7.817, 4.345, 33.127],
    ),
    ("DOT", [3.177, 1.272, 11.343], [7.462, 3.213, 26.698]),
];

const SELECTED: &[&str] = &[
    "Dijkstra", "DeepST", "WDDRA", "STDGCN", "RNE", "ST-NN", "MURAT", "DeepOD",
];

fn main() {
    let profile = EvalProfile::from_args();
    let _telemetry = odt_eval::telemetry::init(&profile);
    println!(
        "Table 6 — baselines with DeepTEA outlier removal (profile: {}, seed {})",
        profile.name, profile.seed
    );

    for city in [City::Chengdu, City::Harbin] {
        let run = prepare_city(city, &profile);
        // Fit DeepTEA on the training split and drop the most anomalous 8%
        // (matching the simulator's outlier rate to first order).
        let train = run.data.split(Split::Train);
        let tea = DeepTea::fit(run.ctx, train);
        let filtered = tea.filter(train, 0.08);
        eprintln!(
            "[{}] DeepTEA kept {}/{} training trips",
            city.name(),
            filtered.len(),
            train.len()
        );
        let (results, _) =
            run_baselines(&run, &profile, Some(&filtered), &mut |m| eprintln!("  {m}"));
        let (dot_result, _m, _p) = run_dot(&run, &profile, city, &mut |m| eprintln!("  {m}"));

        let mut rows = Vec::new();
        for r in &results {
            if !SELECTED.contains(&r.name.as_str()) {
                continue;
            }
            let label = format!("{}+DeepTEA", r.name);
            let paper = PAPER.iter().find(|(m, ..)| *m == label).map(|(_, c, h)| {
                let v = if city == City::Chengdu { c } else { h };
                (v[0], v[1], v[2])
            });
            rows.push(AccuracyRow {
                method: label,
                measured: Some(r.accuracy),
                paper,
            });
        }
        rows.push(AccuracyRow {
            method: "DOT".into(),
            measured: Some(dot_result.accuracy),
            paper: PAPER.last().map(|(_, c, h)| {
                let v = if city == City::Chengdu { c } else { h };
                (v[0], v[1], v[2])
            }),
        });
        print_accuracy_table(
            &format!("Table 6 ({})", city.name()),
            "Baselines retrained on DeepTEA-filtered training data.",
            &rows,
        );

        let dot_mae = dot_result.accuracy.mae_min;
        print_ordering_check(
            "DOT still beats all filtered baselines (MAE)",
            results
                .iter()
                .filter(|r| SELECTED.contains(&r.name.as_str()))
                .all(|r| r.accuracy.mae_min >= dot_mae),
        );
    }
}
