//! Figure 8: efficiency impact of the grid length `L_G` — denoiser model
//! size, stage-1 training throughput, stage-2 training throughput (MViT vs
//! vanilla ViT) and estimation speed (MViT vs ViT).
//!
//! The paper reports absolute training times on its GPU testbed; on CPU we
//! report time per fixed work unit (iterations / queries), which preserves
//! the figure's shapes: model size and stage-1 time grow with `L_G`, and
//! MViT's advantage over ViT widens as the grid gets sparser.

use odt_diffusion::{ConditionedDenoiser, Ddpm, DenoiserConfig, NoiseSchedule};
use odt_estimator::{EmbedderConfig, MVit, MVitConfig, PitEstimator, VanillaVit};
use odt_eval::profile::EvalProfile;
use odt_eval::report::{print_ordering_check, print_table};
use odt_nn::{Adam, HasParams};
use odt_tensor::{Graph, Tensor};
use odt_traj::{Dataset, Pit, Split};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const GRID_LENGTHS: [usize; 5] = [10, 15, 20, 25, 30];
const STAGE1_TIMING_ITERS: usize = 5;
const STAGE2_TIMING_ITERS: usize = 30;
const EST_TIMING_QUERIES: usize = 30;

fn main() {
    let profile = EvalProfile::from_args();
    let _telemetry = odt_eval::telemetry::init(&profile);
    println!(
        "Figure 8 — efficiency vs grid length L_G (profile: {}, seed {})",
        profile.name, profile.seed
    );
    let mut rows = Vec::new();
    let mut mvit_vs_vit_widens = Vec::new();

    for lg in GRID_LENGTHS {
        eprintln!("--- L_G = {lg} ---");
        let data = Dataset::chengdu_like(profile.raw_trips.min(400), lg, profile.seed);
        let train = data.split(Split::Train);
        let mut rng = StdRng::seed_from_u64(profile.seed);

        // (a) model size of the denoiser at this grid size.
        let dcfg = DenoiserConfig {
            channels: 3,
            lg,
            base_channels: profile.dot.base_channels,
            depth: profile.dot.l_d,
            cond_dim: profile.dot.cond_dim,
            attn_max_tokens: profile.dot.attn_max_tokens,
        };
        let denoiser = ConditionedDenoiser::new(&mut rng, dcfg);
        let model_bytes = denoiser.num_params() * 4;

        // (b) stage-1 training time per iteration.
        let ddpm = Ddpm::new(NoiseSchedule::linear_scaled(profile.dot.n_steps));
        let pits: Vec<Tensor> = train
            .iter()
            .take(32)
            .map(|t| Pit::from_trajectory(t, &data.grid).into_tensor())
            .collect();
        let mut opt = Adam::new(denoiser.params(), 1e-3);
        let t0 = Instant::now();
        for it in 0..STAGE1_TIMING_ITERS {
            opt.zero_grad();
            let mut batch = Vec::new();
            for k in 0..profile.dot.stage1_batch.min(8) {
                batch.extend_from_slice(pits[(it + k) % pits.len()].data());
            }
            let b = batch.len() / (3 * lg * lg);
            let x0 = Tensor::from_vec(batch, vec![b, 3, lg, lg]);
            let cond = Tensor::zeros(vec![b, 5]);
            let g = Graph::new();
            let loss = ddpm.training_loss(&g, &denoiser, &x0, &cond, &mut rng);
            g.backward(loss);
            opt.step();
        }
        let stage1_s_per_iter = t0.elapsed().as_secs_f64() / STAGE1_TIMING_ITERS as f64;

        // (c) stage-2 training time per iteration: MViT vs vanilla ViT.
        let mvit_cfg = MVitConfig {
            d_e: profile.dot.d_e,
            l_e: profile.dot.l_e,
            heads: 2,
            ffn_hidden: profile.dot.d_e * 2,
        };
        let mvit = MVit::new(
            &mut rng,
            &mvit_cfg,
            EmbedderConfig::new(lg, profile.dot.d_e),
        );
        let vit = VanillaVit::new(&mut rng, &mvit_cfg, lg);
        let sample_pits: Vec<Pit> = train
            .iter()
            .take(STAGE2_TIMING_ITERS)
            .map(|t| Pit::from_trajectory(t, &data.grid))
            .collect();
        let time_estimator = |est: &dyn PitEstimator, train_mode: bool| -> f64 {
            let mut opt = Adam::new(est.estimator_params(), 1e-3);
            let t = Instant::now();
            let iters = if train_mode {
                STAGE2_TIMING_ITERS
            } else {
                EST_TIMING_QUERIES
            };
            for i in 0..iters {
                let pit = &sample_pits[i % sample_pits.len()];
                let g = Graph::new();
                let pred = est.predict(&g, pit);
                if train_mode {
                    opt.zero_grad();
                    let y = g.input(Tensor::scalar(1.0));
                    g.backward(g.mse(pred, y));
                    opt.step();
                } else {
                    let _ = g.value(pred);
                }
            }
            t.elapsed().as_secs_f64() / iters as f64
        };
        let mvit_train = time_estimator(&mvit, true);
        let vit_train = time_estimator(&vit, true);
        let mvit_est = time_estimator(&mvit, false);
        let vit_est = time_estimator(&vit, false);
        mvit_vs_vit_widens.push(vit_train / mvit_train);

        // Trajectories occupy few cells: report the occupancy, the driver of
        // MViT's advantage.
        let occupancy: f64 = sample_pits
            .iter()
            .map(|p| p.num_visited() as f64 / (lg * lg) as f64)
            .sum::<f64>()
            / sample_pits.len() as f64;

        rows.push(vec![
            format!("{lg}"),
            format!("{:.2}M", model_bytes as f64 / 1e6),
            format!("{:.2}", stage1_s_per_iter),
            format!("{:.3}", mvit_train * 1e3),
            format!("{:.3}", vit_train * 1e3),
            format!("{:.3}", mvit_est * 1e3),
            format!("{:.3}", vit_est * 1e3),
            format!("{:.1}%", occupancy * 100.0),
        ]);
    }

    print_table(
        "Figure 8: efficiency vs L_G (time per work unit)",
        "Paper shapes: (a) size grows with L_G; (b) stage-1 time grows with L_G; \
         (c,d) MViT beats ViT increasingly as occupancy falls.",
        &[
            "L_G",
            "size",
            "s1 s/iter",
            "MViT ms/it",
            "ViT ms/it",
            "MViT ms/q",
            "ViT ms/q",
            "occupancy",
        ],
        &rows,
    );

    print_ordering_check(
        "denoiser size grows with L_G",
        rows.windows(2).all(|w| w[0][1] <= w[1][1]),
    );
    print_ordering_check(
        "MViT/ViT speedup grows with L_G (sparser grids)",
        mvit_vs_vit_widens.first().unwrap_or(&1.0) < mvit_vs_vit_widens.last().unwrap_or(&1.0),
    );
    print_ordering_check(
        "MViT faster than ViT at the largest grid",
        *mvit_vs_vit_widens.last().unwrap_or(&0.0) > 1.0,
    );
}
