//! Trace analysis: aggregate a span-stream JSONL file (written by
//! `odt_obs::trace::write_spans_jsonl`, e.g. `BENCH_serving_spans.jsonl`)
//! into a per-stage critical-path breakdown — where does a request's
//! wall-clock actually go: queue wait, denoise steps, the estimator head,
//! or the compute kernels under them?
//!
//! ```text
//! trace_report <spans.jsonl> [--root <name>] [--out <path>]
//! ```
//!
//! * `<spans.jsonl>` — the span stream to analyze.
//! * `--root`        — only analyze traces with this root span name
//!                     (default: every trace in the file).
//! * `--out`         — also write the aggregate as one JSON object,
//!                     schema `odt-trace-report/v1`.
//!
//! Per span name the report shows call count, total duration, and *self*
//! time (duration minus the duration of direct children, clamped at zero
//! — children running concurrently on pool workers can overlap their
//! parent, and overlap is attributed to the child). Self time is what a
//! stage actually costs on the critical path; total time is what a naive
//! flame graph would show. The stage rollup maps span names onto the
//! serving pipeline's coarse stages (queue / rung / denoise / estimator /
//! kernel) so the table answers the paper-level question directly.

use serde_json::{json, Value};
use std::collections::BTreeMap;

struct Span {
    span_id: u64,
    parent_id: u64,
    name: String,
    dur_us: u64,
}

struct Trace {
    root_name: String,
    dur_us: u64,
    retain_reasons: Vec<String>,
    spans: Vec<Span>,
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The serving-pipeline stage a span name belongs to.
fn stage_of(name: &str) -> &'static str {
    if name.starts_with("serve.queue") {
        "queue"
    } else if name.starts_with("serve.rung") || name == "serve.request" {
        "serving"
    } else if name.starts_with("stage1.denoise") || name.starts_with("stage1.ddim") {
        "denoise"
    } else if name.starts_with("oracle.estimator") || name.starts_with("stage2") {
        "estimator"
    } else if name.starts_with("compute.") || name.starts_with("kernel") {
        "kernel"
    } else {
        "other"
    }
}

fn parse_traces(content: &str, root_filter: Option<&str>) -> Vec<Trace> {
    let mut traces: Vec<Trace> = Vec::new();
    let mut keep_current = false;
    for (lineno, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {}: invalid JSON: {e}", lineno + 1));
        match v["kind"].as_str() {
            Some("trace") => {
                let root = v["root"].as_str().unwrap_or("?").to_string();
                keep_current = root_filter.is_none_or(|f| f == root);
                if keep_current {
                    traces.push(Trace {
                        root_name: root,
                        dur_us: v["dur_us"].as_u64().unwrap_or(0),
                        retain_reasons: v["retain_reasons"]
                            .as_array()
                            .map(|a| {
                                a.iter()
                                    .filter_map(|r| r.as_str().map(str::to_string))
                                    .collect()
                            })
                            .unwrap_or_default(),
                        spans: Vec::new(),
                    });
                }
            }
            Some("span") if keep_current => {
                let t = traces.last_mut().expect("span line before trace header");
                t.spans.push(Span {
                    span_id: v["span_id"].as_u64().unwrap_or(0),
                    parent_id: v["parent_id"].as_u64().unwrap_or(0),
                    name: v["name"].as_str().unwrap_or("?").to_string(),
                    dur_us: v["dur_us"].as_u64().unwrap_or(0),
                });
            }
            _ => {}
        }
    }
    traces
}

#[derive(Default, Clone)]
struct Agg {
    count: u64,
    total_us: u64,
    self_us: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| {
            eprintln!("usage: trace_report <spans.jsonl> [--root <name>] [--out <path>]");
            std::process::exit(2);
        });
    let root_filter = arg_value("--root");
    let content = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let traces = parse_traces(&content, root_filter.as_deref());
    if traces.is_empty() {
        eprintln!("no traces in {path} (after --root filter)");
        std::process::exit(1);
    }

    // Per-name aggregate with self time = dur − Σ direct-children dur.
    let mut by_name: BTreeMap<String, Agg> = BTreeMap::new();
    let mut by_stage: BTreeMap<&'static str, Agg> = BTreeMap::new();
    let mut root_total_us = 0u64;
    let mut retained_by_reason: BTreeMap<String, u64> = BTreeMap::new();
    for t in &traces {
        root_total_us += t.dur_us;
        for r in &t.retain_reasons {
            *retained_by_reason.entry(r.clone()).or_default() += 1;
        }
        let mut child_sum: BTreeMap<u64, u64> = BTreeMap::new();
        for s in &t.spans {
            *child_sum.entry(s.parent_id).or_default() += s.dur_us;
        }
        for s in &t.spans {
            let own = s
                .dur_us
                .saturating_sub(child_sum.get(&s.span_id).copied().unwrap_or(0));
            let a = by_name.entry(s.name.clone()).or_default();
            a.count += 1;
            a.total_us += s.dur_us;
            a.self_us += own;
            let st = by_stage.entry(stage_of(&s.name)).or_default();
            st.count += 1;
            st.total_us += s.dur_us;
            st.self_us += own;
        }
    }

    let n = traces.len() as f64;
    let ms = |us: u64| us as f64 / 1_000.0;
    println!(
        "{} trace(s) from {path}, root {} — mean root latency {:.3} ms",
        traces.len(),
        traces.first().map(|t| t.root_name.as_str()).unwrap_or("?"),
        ms(root_total_us) / n
    );
    if !retained_by_reason.is_empty() {
        let reasons: Vec<String> = retained_by_reason
            .iter()
            .map(|(r, c)| format!("{r}={c}"))
            .collect();
        println!("retain reasons: {}", reasons.join(", "));
    }

    println!("\nstage rollup (self time = critical-path share):");
    println!(
        "  {:<12} {:>8} {:>12} {:>12} {:>7}",
        "stage", "spans", "total ms", "self ms", "self %"
    );
    let denom = root_total_us.max(1) as f64;
    for (stage, a) in &by_stage {
        println!(
            "  {:<12} {:>8} {:>12.3} {:>12.3} {:>6.1}%",
            stage,
            a.count,
            ms(a.total_us),
            ms(a.self_us),
            a.self_us as f64 / denom * 100.0
        );
    }

    println!("\nper-span breakdown:");
    println!(
        "  {:<28} {:>8} {:>12} {:>12} {:>12}",
        "span", "count", "total ms", "self ms", "mean µs"
    );
    let mut names: Vec<(&String, &Agg)> = by_name.iter().collect();
    names.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us));
    for (name, a) in &names {
        println!(
            "  {:<28} {:>8} {:>12.3} {:>12.3} {:>12.1}",
            name,
            a.count,
            ms(a.total_us),
            ms(a.self_us),
            a.total_us as f64 / a.count.max(1) as f64
        );
    }

    if let Some(out) = arg_value("--out") {
        let agg_json = |m: &BTreeMap<String, Agg>| -> Value {
            Value::Object(
                m.iter()
                    .map(|(k, a)| {
                        (
                            k.clone(),
                            json!({
                                "count": a.count,
                                "total_us": a.total_us,
                                "self_us": a.self_us,
                            }),
                        )
                    })
                    .collect(),
            )
        };
        let stages: BTreeMap<String, Agg> = by_stage
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        let report = json!({
            "schema": "odt-trace-report/v1",
            "source": path,
            "traces": traces.len(),
            "mean_root_us": root_total_us as f64 / n,
            "retain_reasons": retained_by_reason,
            "stages": agg_json(&stages),
            "spans": agg_json(&by_name),
        });
        std::fs::write(&out, format!("{report:#}\n"))
            .unwrap_or_else(|e| panic!("writing {out}: {e}"));
        println!("\nwrote {out}");
    }
}
