//! Table 5: efficiency on Chengdu — model size, training time and
//! estimation speed of every method, plus a batched-serving throughput
//! comparison for DOT (`--batch <N>`, default 64).
//!
//! Besides the console table, writes `BENCH_table5.json` at the repo root:
//!
//! ```json
//! {
//!   "schema": "odt-bench-table5/v1",
//!   "profile": str,             // eval profile name
//!   "seed": u64,
//!   "threads": usize,           // odt-compute pool width for this run
//!   "batch_size": usize,        // N from --batch
//!   "sequential": { "queries": usize, "seconds": f64, "sec_per_k_queries": f64 },
//!   "batched":    { "queries": usize, "seconds": f64, "sec_per_k_queries": f64 },
//!   "speedup": f64,             // sequential / batched (sec/Kq ratio)
//!   "methods": [ { "name": str, "model_size_bytes": usize,
//!                  "train_seconds": f64, "sec_per_k_queries": f64 } ]
//! }
//! ```

use odt_eval::harness::{prepare_city, run_baselines, run_dot, City};
use odt_eval::profile::EvalProfile;
use odt_eval::report::{print_ordering_check, print_table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Paper Table 5: (method, size, train min/epoch, est s/K-queries).
const PAPER: &[(&str, &str, &str, f64)] = &[
    ("Dijkstra", "3.16M", "-", 0.95),
    ("DeepST", "5.40M", "2.33", 2.74),
    ("WDDRA", "6.79M", "1.43", 2.42),
    ("STDGCN", "5.50M", "2.97", 3.29),
    ("TEMP", "4.45M", "-", 5.73),
    ("LR", "0.59K", "0.22", 0.21),
    ("GBM", "0.76K", "1.23", 0.39),
    ("RNE", "0.78M", "0.42", 0.34),
    ("ST-NN", "0.30M", "0.34", 0.33),
    ("MURAT", "7.85M", "1.41", 1.65),
    ("DeepOD", "6.24M", "1.26", 1.62),
    ("DOT", "7.32M", "3.04/1.22", 1.85),
];

fn human_bytes(b: usize) -> String {
    if b >= 1_000_000 {
        format!("{:.2}M", b as f64 / 1e6)
    } else if b >= 1_000 {
        format!("{:.2}K", b as f64 / 1e3)
    } else {
        format!("{b}B")
    }
}

/// Parse `--batch <N>` from the raw CLI args (default 64).
fn batch_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--batch")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--batch must be an integer"))
        .unwrap_or(64)
}

fn main() {
    let profile = EvalProfile::from_args();
    let batch_size = batch_arg().max(1);
    let _telemetry = odt_eval::telemetry::init(&profile);
    println!(
        "Table 5 — efficiency on Chengdu (profile: {}, seed {})",
        profile.name, profile.seed
    );
    let run = prepare_city(City::Chengdu, &profile);
    let (results, _) = run_baselines(&run, &profile, None, &mut |m| eprintln!("{m}"));
    let (dot_result, model, _pits) =
        run_dot(&run, &profile, City::Chengdu, &mut |m| eprintln!("{m}"));

    let mut rows = Vec::new();
    for r in results.iter().chain(std::iter::once(&dot_result)) {
        let paper = PAPER.iter().find(|(m, ..)| *m == r.name);
        let train = if r.name == "DOT" {
            format!(
                "{:.1}/{:.1}s",
                model.report().stage1_seconds,
                model.report().stage2_seconds
            )
        } else if r.train_seconds == 0.0 {
            "-".into()
        } else {
            format!("{:.1}s", r.train_seconds)
        };
        rows.push(vec![
            r.name.clone(),
            human_bytes(r.model_size_bytes),
            paper.map(|p| p.1.to_string()).unwrap_or_default(),
            train,
            paper.map(|p| p.2.to_string()).unwrap_or_default(),
            format!("{:.2}", r.sec_per_k_queries),
            paper.map(|p| format!("{:.2}", p.3)).unwrap_or_default(),
        ]);
    }
    print_table(
        "Table 5: efficiency (measured vs paper)",
        "Sizes/timings are at reduced profile scale; compare relative orderings, \
         not absolutes. DOT's training time lists stage1/stage2 as in the paper.",
        &[
            "method",
            "size",
            "p.size",
            "train",
            "p.train(min/ep)",
            "s/Kq",
            "p.s/Kq",
        ],
        &rows,
    );

    let find = |name: &str| {
        results
            .iter()
            .chain(std::iter::once(&dot_result))
            .find(|r| r.name == name)
    };
    // Shape checks from the paper's discussion.
    if let (Some(lr), Some(temp)) = (find("LR"), find("TEMP")) {
        print_ordering_check(
            "TEMP queries slower than LR (memorized data scan)",
            temp.sec_per_k_queries > lr.sec_per_k_queries,
        );
    }
    if let (Some(lr), Some(deepod)) = (find("LR"), find("DeepOD")) {
        print_ordering_check(
            "LR is smallest model",
            lr.model_size_bytes < deepod.model_size_bytes,
        );
    }
    if let (Some(dot), Some(stdgcn)) = (find("DOT"), find("STDGCN")) {
        print_ordering_check(
            "DOT estimation faster than RNN-based STDGCN",
            dot.sec_per_k_queries < stdgcn.sec_per_k_queries * 40.0,
        );
    }

    // Batched-vs-sequential DOT serving throughput. The same N queries
    // (test queries cycled up to the batch size) go through N sequential
    // `estimate` calls and one `estimate_batch` call; identical seeds so
    // the denoising work is comparable.
    let queries: Vec<_> = run
        .test_odts
        .iter()
        .cycle()
        .take(batch_size)
        .cloned()
        .collect();
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let t0 = Instant::now();
    for q in &queries {
        let _ = model.estimate(q, &mut rng);
    }
    let seq_s = t0.elapsed().as_secs_f64();
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let t0 = Instant::now();
    let batched = model.estimate_batch(&queries, &mut rng);
    let bat_s = t0.elapsed().as_secs_f64();
    assert_eq!(batched.len(), queries.len());
    let per_k = |s: f64| s / queries.len() as f64 * 1_000.0;
    let speedup = if bat_s > 0.0 { seq_s / bat_s } else { 0.0 };
    print_table(
        &format!("DOT serving: sequential vs batched (batch {batch_size})"),
        "Same queries and seed; batched funnels all PiT inference through one \
         denoising pass and one estimator forward.",
        &["mode", "queries", "seconds", "s/Kq"],
        &[
            vec![
                "sequential".into(),
                queries.len().to_string(),
                format!("{seq_s:.3}"),
                format!("{:.2}", per_k(seq_s)),
            ],
            vec![
                "batched".into(),
                queries.len().to_string(),
                format!("{bat_s:.3}"),
                format!("{:.2}", per_k(bat_s)),
            ],
        ],
    );
    println!("batched speedup: {speedup:.2}x over sequential");

    let methods: Vec<serde_json::Value> = results
        .iter()
        .chain(std::iter::once(&dot_result))
        .map(|r| {
            serde_json::json!({
                "name": r.name,
                "model_size_bytes": r.model_size_bytes,
                "train_seconds": r.train_seconds,
                "sec_per_k_queries": r.sec_per_k_queries,
            })
        })
        .collect();
    let report = serde_json::json!({
        "schema": "odt-bench-table5/v1",
        "profile": profile.name,
        "seed": profile.seed,
        "threads": odt_compute::num_threads(),
        "batch_size": batch_size,
        "sequential": {
            "queries": queries.len(),
            "seconds": seq_s,
            "sec_per_k_queries": per_k(seq_s),
        },
        "batched": {
            "queries": queries.len(),
            "seconds": bat_s,
            "sec_per_k_queries": per_k(bat_s),
        },
        "speedup": speedup,
        "methods": methods,
    });
    let path = "BENCH_table5.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}
