//! Table 5: efficiency on Chengdu — model size, training time and
//! estimation speed of every method.

use odt_eval::harness::{prepare_city, run_baselines, run_dot, City};
use odt_eval::profile::EvalProfile;
use odt_eval::report::{print_ordering_check, print_table};

/// Paper Table 5: (method, size, train min/epoch, est s/K-queries).
const PAPER: &[(&str, &str, &str, f64)] = &[
    ("Dijkstra", "3.16M", "-", 0.95),
    ("DeepST", "5.40M", "2.33", 2.74),
    ("WDDRA", "6.79M", "1.43", 2.42),
    ("STDGCN", "5.50M", "2.97", 3.29),
    ("TEMP", "4.45M", "-", 5.73),
    ("LR", "0.59K", "0.22", 0.21),
    ("GBM", "0.76K", "1.23", 0.39),
    ("RNE", "0.78M", "0.42", 0.34),
    ("ST-NN", "0.30M", "0.34", 0.33),
    ("MURAT", "7.85M", "1.41", 1.65),
    ("DeepOD", "6.24M", "1.26", 1.62),
    ("DOT", "7.32M", "3.04/1.22", 1.85),
];

fn human_bytes(b: usize) -> String {
    if b >= 1_000_000 {
        format!("{:.2}M", b as f64 / 1e6)
    } else if b >= 1_000 {
        format!("{:.2}K", b as f64 / 1e3)
    } else {
        format!("{b}B")
    }
}

fn main() {
    let profile = EvalProfile::from_args();
    let _telemetry = odt_eval::telemetry::init(&profile);
    println!(
        "Table 5 — efficiency on Chengdu (profile: {}, seed {})",
        profile.name, profile.seed
    );
    let run = prepare_city(City::Chengdu, &profile);
    let (results, _) = run_baselines(&run, &profile, None, &mut |m| eprintln!("{m}"));
    let (dot_result, model, _pits) =
        run_dot(&run, &profile, City::Chengdu, &mut |m| eprintln!("{m}"));

    let mut rows = Vec::new();
    for r in results.iter().chain(std::iter::once(&dot_result)) {
        let paper = PAPER.iter().find(|(m, ..)| *m == r.name);
        let train = if r.name == "DOT" {
            format!(
                "{:.1}/{:.1}s",
                model.report().stage1_seconds,
                model.report().stage2_seconds
            )
        } else if r.train_seconds == 0.0 {
            "-".into()
        } else {
            format!("{:.1}s", r.train_seconds)
        };
        rows.push(vec![
            r.name.clone(),
            human_bytes(r.model_size_bytes),
            paper.map(|p| p.1.to_string()).unwrap_or_default(),
            train,
            paper.map(|p| p.2.to_string()).unwrap_or_default(),
            format!("{:.2}", r.sec_per_k_queries),
            paper.map(|p| format!("{:.2}", p.3)).unwrap_or_default(),
        ]);
    }
    print_table(
        "Table 5: efficiency (measured vs paper)",
        "Sizes/timings are at reduced profile scale; compare relative orderings, \
         not absolutes. DOT's training time lists stage1/stage2 as in the paper.",
        &[
            "method",
            "size",
            "p.size",
            "train",
            "p.train(min/ep)",
            "s/Kq",
            "p.s/Kq",
        ],
        &rows,
    );

    let find = |name: &str| {
        results
            .iter()
            .chain(std::iter::once(&dot_result))
            .find(|r| r.name == name)
    };
    // Shape checks from the paper's discussion.
    if let (Some(lr), Some(temp)) = (find("LR"), find("TEMP")) {
        print_ordering_check(
            "TEMP queries slower than LR (memorized data scan)",
            temp.sec_per_k_queries > lr.sec_per_k_queries,
        );
    }
    if let (Some(lr), Some(deepod)) = (find("LR"), find("DeepOD")) {
        print_ordering_check(
            "LR is smallest model",
            lr.model_size_bytes < deepod.model_size_bytes,
        );
    }
    if let (Some(dot), Some(stdgcn)) = (find("DOT"), find("STDGCN")) {
        print_ordering_check(
            "DOT estimation faster than RNN-based STDGCN",
            dot.sec_per_k_queries < stdgcn.sec_per_k_queries * 40.0,
        );
    }
}
