//! Extension experiment (beyond the paper): DDIM accelerated inference.
//!
//! A DOT model trained with `N` diffusion steps can sample PiTs with
//! `K ≤ N` deterministic DDIM steps. This binary sweeps `K` and reports the
//! latency / accuracy trade-off: travel-time MAPE, PiT mask F1 and
//! inference seconds per query — quantifying how cheap DOT inference can
//! get before the PiT degrades.

use odt_eval::harness::{prepare_city, run_dot, City};
use odt_eval::metrics::{mask_accuracy, regression};
use odt_eval::profile::EvalProfile;
use odt_eval::report::{print_ordering_check, print_table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let profile = EvalProfile::from_args();
    let _telemetry = odt_eval::telemetry::init(&profile);
    println!(
        "DDIM ablation — inference steps vs quality (profile: {}, seed {})",
        profile.name, profile.seed
    );
    let run = prepare_city(City::Chengdu, &profile);
    let (ddpm_result, model, _pits) =
        run_dot(&run, &profile, City::Chengdu, &mut |m| eprintln!("{m}"));
    let truth_masks: Vec<Vec<bool>> = run.test_pits().iter().map(|p| p.mask_bool()).collect();

    let mut rows = Vec::new();
    let mut mapes = Vec::new();
    let n_train = profile.dot.n_steps;
    for k in [3usize, 6, 12, n_train] {
        let k = k.min(n_train);
        let mut rng = StdRng::seed_from_u64(profile.seed ^ 0xdd);
        let t0 = Instant::now();
        let pits = model.infer_pits_fast(&run.test_odts, k, &mut rng);
        let per_query = t0.elapsed().as_secs_f64() / run.test_odts.len() as f64;
        let pairs: Vec<(f64, f64)> = pits
            .iter()
            .zip(&run.test_tts)
            .map(|(p, &a)| (model.estimate_from_pit(p), a))
            .collect();
        let acc = regression(&pairs);
        let mask_pairs: Vec<(Vec<bool>, Vec<bool>)> = pits
            .iter()
            .map(|p| p.mask_bool())
            .zip(truth_masks.iter().cloned())
            .collect();
        let masks = mask_accuracy(&mask_pairs);
        mapes.push(acc.mape_pct);
        rows.push(vec![
            format!("DDIM-{k}"),
            format!("{:.3}", acc.mae_min),
            format!("{:.2}", acc.mape_pct),
            format!("{:.1}", masks.f1_pct),
            format!("{:.0}", per_query * 1_000.0),
        ]);
    }
    rows.push(vec![
        format!("DDPM-{n_train} (paper)"),
        format!("{:.3}", ddpm_result.accuracy.mae_min),
        format!("{:.2}", ddpm_result.accuracy.mape_pct),
        "-".into(),
        format!("{:.0}", ddpm_result.sec_per_k_queries),
    ]);
    print_table(
        "DDIM inference-steps ablation (extension)",
        "Fewer steps = proportionally faster inference; quality should be \
         near-flat down to a knee, then degrade.",
        &["sampler", "MAE(min)", "MAPE(%)", "mask F1(%)", "ms/query"],
        &rows,
    );
    print_ordering_check(
        "full-step DDIM at least as accurate as 3-step (MAPE)",
        mapes.last().unwrap_or(&0.0) <= mapes.first().unwrap_or(&f64::INFINITY),
    );
}
