//! Figure 9 (and Table 2): effect of the five key hyper-parameters on test
//! accuracy. `L_G`, `N` and `L_D` retrain the full pipeline; `d_E` and
//! `L_E` retrain only stage 2 on a shared stage 1.

use odt_core::Dot;
use odt_eval::harness::{cache_dir, prepare_city, score_predictions, City};
use odt_eval::profile::EvalProfile;
use odt_eval::report::{print_ordering_check, print_table};
use odt_traj::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut profile = EvalProfile::from_args();
    let _telemetry = odt_eval::telemetry::init(&profile);
    // The sweep trains many models; shrink each run.
    profile.raw_trips = profile.raw_trips.min(700);
    profile.dot.stage1_iters = profile.dot.stage1_iters.min(600);
    profile.dot.stage2_iters = profile.dot.stage2_iters.min(700);
    profile.max_test_queries = profile.max_test_queries.min(40);
    println!(
        "Figure 9 — hyper-parameter effects (profile: {}, seed {})",
        profile.name, profile.seed
    );
    println!(
        "Table 2 ranges: L_G {{10,15,20,25,30}} opt 20 | N {{500,1000,1500,2000}} opt 1000 | \
         L_D {{1..4}} opt 3 | d_E {{32..256}} opt 128 | L_E {{1..4}} opt 2"
    );

    let run = prepare_city(City::Chengdu, &profile);
    let mut rows = Vec::new();
    let mut record = |param: &str, value: String, mae: f64, mape: f64| {
        rows.push(vec![
            param.to_string(),
            value,
            format!("{mae:.3}"),
            format!("{mape:.2}"),
        ]);
    };

    // Helper: train (or load) a full DOT at a mutated config, on a dataset
    // rebuilt when L_G differs, and return (MAE min, MAPE %).
    let full_run = |tag: &str, lg: usize, mutate: &dyn Fn(&mut odt_core::DotConfig)| {
        let data: Dataset;
        let (grid, test_odts, test_tts, dref): (_, _, _, &Dataset) = if lg == profile.lg {
            (
                run.data.grid,
                run.test_odts.clone(),
                run.test_tts.clone(),
                &run.data,
            )
        } else {
            data = Dataset::chengdu_like(profile.raw_trips, lg, profile.seed);
            let test = data.split(odt_traj::Split::Test);
            let n = profile.max_test_queries.min(test.len());
            let odts = test[..n]
                .iter()
                .map(odt_traj::OdtInput::from_trajectory)
                .collect();
            let tts = test[..n]
                .iter()
                .map(odt_traj::Trajectory::travel_time)
                .collect();
            (data.grid, odts, tts, &data)
        };
        let _ = grid;
        let key = format!("fig9_{tag}_s{}_n{}", profile.seed, profile.raw_trips);
        let ckpt = cache_dir().join(format!("dot_{key}.json"));
        let model = if ckpt.exists() {
            Dot::load(&ckpt).expect("load sweep checkpoint")
        } else {
            let mut cfg = profile.dot.clone();
            cfg.lg = lg;
            mutate(&mut cfg);
            let m = Dot::train(cfg, dref, |s| {
                if s.contains("stage") && !s.contains("iter") {
                    eprintln!("  [{tag}] {s}");
                }
            });
            m.save(&ckpt).expect("save sweep checkpoint");
            m
        };
        let mut rng = StdRng::seed_from_u64(profile.seed ^ 0x9e37);
        let pits = model.infer_pits(&test_odts, &mut rng);
        let preds: Vec<f64> = pits.iter().map(|p| model.estimate_from_pit(p)).collect();
        let fake_run = odt_eval::harness::CityRun {
            data: Dataset::chengdu_like(60, lg, profile.seed), // placeholder, unused
            ctx: run.ctx,
            net: run.net.clone(),
            test_odts,
            test_tts,
        };
        let r = score_predictions(tag, &fake_run, preds);
        (r.accuracy.mae_min, r.accuracy.mape_pct)
    };

    // (a) grid length L_G — full retrain per value.
    for lg in [10, 16] {
        eprintln!("--- L_G = {lg} ---");
        let (mae, mape) = full_run(&format!("lg{lg}"), lg, &|_| {});
        record("L_G", lg.to_string(), mae, mape);
    }

    // (b) diffusion steps N — full retrain per value.
    for n in [10, 30] {
        eprintln!("--- N = {n} ---");
        let (mae, mape) = full_run(&format!("n{n}"), profile.lg, &|c| c.n_steps = n);
        record("N", n.to_string(), mae, mape);
    }

    // (c) UNet depth L_D — full retrain per value.
    for ld in [1, 2] {
        eprintln!("--- L_D = {ld} ---");
        let (mae, mape) = full_run(&format!("ld{ld}"), profile.lg, &|c| c.l_d = ld);
        record("L_D", ld.to_string(), mae, mape);
    }

    // (d, e) estimator width/depth — share one stage 1.
    eprintln!("--- d_E / L_E sweeps (shared stage 1) ---");
    let key = format!("fig9_base_s{}_n{}", profile.seed, profile.raw_trips);
    let ckpt = cache_dir().join(format!("dot_{key}.json"));
    let mut base = if ckpt.exists() {
        Dot::load(&ckpt).expect("load base")
    } else {
        let mut cfg = profile.dot.clone();
        cfg.lg = profile.lg;
        let m = Dot::train(cfg, &run.data, |_| {});
        m.save(&ckpt).expect("save base");
        m
    };
    let mut rng = StdRng::seed_from_u64(profile.seed ^ 0x9e37);
    let pits = base.infer_pits(&run.test_odts, &mut rng);
    for de in [16, 32, 64] {
        base.retrain_stage2(|c| c.d_e = de, &run.data, |_| {});
        let preds: Vec<f64> = pits.iter().map(|p| base.estimate_from_pit(p)).collect();
        let r = score_predictions("d_E", &run, preds);
        record(
            "d_E",
            de.to_string(),
            r.accuracy.mae_min,
            r.accuracy.mape_pct,
        );
    }
    for le in [1, 2, 3] {
        base.retrain_stage2(
            |c| {
                c.d_e = profile.dot.d_e;
                c.l_e = le
            },
            &run.data,
            |_| {},
        );
        let preds: Vec<f64> = pits.iter().map(|p| base.estimate_from_pit(p)).collect();
        let r = score_predictions("L_E", &run, preds);
        record(
            "L_E",
            le.to_string(),
            r.accuracy.mae_min,
            r.accuracy.mape_pct,
        );
    }

    print_table(
        "Figure 9: hyper-parameter effects on Chengdu test accuracy",
        "Paper shape: each parameter has an interior optimum; too-small models \
         underfit, too-large ones overfit or over-fragment the PiT.",
        &["param", "value", "MAE(min)", "MAPE(%)"],
        &rows,
    );

    // Shape check: more diffusion steps should not hurt much (Figure 9(b):
    // gains flatten beyond the optimum).
    let mae_of = |param: &str, value: &str| {
        rows.iter()
            .find(|r| r[0] == param && r[1] == value)
            .map(|r| r[2].parse::<f64>().unwrap())
            .unwrap_or(f64::NAN)
    };
    print_ordering_check(
        "more diffusion steps help (N=30 vs N=10)",
        mae_of("N", "30") <= mae_of("N", "10"),
    );
}
