//! Figures 10 & 11 — case studies on Chengdu's test split:
//!
//! * Figure 10: two trips between the same OD departing at the same time of
//!   day; the inferred PiT should match the shared route and drop the
//!   outlier cells.
//! * Figure 11: same OD pair departing at different times of day; the
//!   inferred PiTs should differ, showing time-conditioned route choice.

use odt_eval::casestudy::{mask_jaccard, render_offset_channel};
use odt_eval::harness::{prepare_city, run_dot, City};
use odt_eval::profile::EvalProfile;
use odt_traj::{OdtInput, Pit};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let profile = EvalProfile::from_args();
    let _telemetry = odt_eval::telemetry::init(&profile);
    println!(
        "Figures 10–11 — case study (profile: {}, seed {})",
        profile.name, profile.seed
    );
    let run = prepare_city(City::Chengdu, &profile);
    let (_res, model, inferred) = run_dot(&run, &profile, City::Chengdu, &mut |m| eprintln!("{m}"));
    let truth = run.test_pits();
    let grid = run.data.grid;

    // Group test trips by (origin cell, destination cell).
    let cell_pair = |odt: &OdtInput| {
        let (r0, c0) = grid.cell_of(odt.origin);
        let (r1, c1) = grid.cell_of(odt.dest);
        (grid.flat_index(r0, c0), grid.flat_index(r1, c1))
    };
    let mut groups: std::collections::HashMap<(usize, usize), Vec<usize>> = Default::default();
    for (i, odt) in run.test_odts.iter().enumerate() {
        groups.entry(cell_pair(odt)).or_default().push(i);
    }

    // Figure 10: the pair with the most same-OD trips.
    let same_od = groups
        .iter()
        .filter(|(_, v)| v.len() >= 2)
        .max_by_key(|(_, v)| v.len());
    match same_od {
        Some((pair, idxs)) => {
            println!(
                "\n--- Figure 10: same OD pair (cells {pair:?}), {} trips ---",
                idxs.len()
            );
            for &i in idxs.iter().take(2) {
                let hour = run.test_odts[i].second_of_day() / 3_600.0;
                println!(
                    "\nground-truth PiT of trip {i} (departs {hour:.1}h, tt {:.1} min):",
                    run.test_tts[i] / 60.0
                );
                println!("{}", render_offset_channel(&truth[i]));
            }
            let i0 = idxs[0];
            println!("inferred PiT for trip {i0}'s ODT-Input:");
            println!("{}", render_offset_channel(&inferred[i0]));
            let j = mask_jaccard(&inferred[i0], &truth[i0]);
            println!("mask Jaccard(inferred, ground truth) = {j:.2}");
            println!(
                "estimated travel time {:.1} min vs actual {:.1} min",
                model.estimate_from_pit(&inferred[i0]) / 60.0,
                run.test_tts[i0] / 60.0
            );
        }
        None => println!(
            "\n(Figure 10: no repeated OD pair in this test sample — rerun with more --queries)"
        ),
    }

    // Figure 11: synthesize the same OD pair at two departure times and
    // compare the inferred PiTs (rush hour vs free flow).
    println!("\n--- Figure 11: same OD, different departure times ---");
    let odt = run.test_odts[0];
    let day0 = odt.t_dep - odt.second_of_day();
    let mut rng = StdRng::seed_from_u64(profile.seed ^ 0x51);
    let mut pits: Vec<Pit> = Vec::new();
    for hour in [8.5, 14.0] {
        let q = OdtInput {
            t_dep: day0 + hour * 3_600.0,
            ..odt
        };
        let est = {
            let pit = model.infer_pit(&q, &mut rng);
            let secs = model.estimate_from_pit(&pit);
            (pit, secs)
        };
        println!(
            "\ninferred PiT departing {hour:.1}h (estimate {:.1} min):",
            est.1 / 60.0
        );
        println!("{}", render_offset_channel(&est.0));
        pits.push(est.0);
    }
    let j = mask_jaccard(&pits[0], &pits[1]);
    println!("mask Jaccard(8:30, 14:00) = {j:.2} (different routes/time encodings expected)");
}
