//! Table 3: overall travel-time estimation accuracy of all twelve baselines
//! and DOT on both cities.

use odt_eval::harness::{prepare_city, run_baselines, run_dot, City};
use odt_eval::profile::EvalProfile;
use odt_eval::report::{print_accuracy_table, print_ordering_check, AccuracyRow};

/// Paper Table 3: method → (Chengdu rmse/mae/mape, Harbin rmse/mae/mape).
const PAPER: &[(&str, [f64; 3], [f64; 3])] = &[
    ("Dijkstra", [9.677, 7.618, 48.618], [11.865, 8.447, 55.261]),
    ("DeepST", [4.717, 3.452, 27.503], [8.926, 5.849, 37.772]),
    ("WDDRA", [4.581, 3.210, 24.553], [8.836, 5.705, 35.617]),
    ("STDGCN", [4.469, 3.104, 23.187], [8.679, 5.564, 33.771]),
    ("TEMP", [5.578, 4.267, 36.611], [10.150, 7.891, 66.781]),
    ("LR", [6.475, 5.036, 44.514], [10.290, 8.006, 67.669]),
    ("GBM", [4.999, 3.655, 29.636], [9.069, 6.748, 54.413]),
    ("RNE", [4.624, 3.416, 27.660], [8.571, 6.245, 47.956]),
    ("ST-NN", [3.961, 2.803, 21.532], [8.492, 6.114, 45.891]),
    ("MURAT", [3.646, 2.384, 18.345], [7.937, 5.360, 41.128]),
    ("DeepOD", [3.764, 1.789, 14.997], [7.859, 4.533, 36.974]),
    ("DOT", [3.177, 1.272, 11.343], [7.462, 3.213, 26.698]),
];

fn paper_for(method: &str, city: City) -> Option<(f64, f64, f64)> {
    PAPER
        .iter()
        .find(|(m, _, _)| *m == method)
        .map(|(_, c, h)| {
            let v = if city == City::Chengdu { c } else { h };
            (v[0], v[1], v[2])
        })
}

fn main() {
    let profile = EvalProfile::from_args();
    let _telemetry = odt_eval::telemetry::init(&profile);
    println!(
        "Table 3 — overall accuracy (profile: {}, raw trips {}, seed {})",
        profile.name, profile.raw_trips, profile.seed
    );

    for city in [City::Chengdu, City::Harbin] {
        eprintln!("[{}] preparing dataset…", city.name());
        let run = prepare_city(city, &profile);
        eprintln!(
            "[{}] {} trips, {} test queries",
            city.name(),
            run.data.trips.len(),
            run.test_odts.len()
        );
        let (mut results, _router) = run_baselines(&run, &profile, None, &mut |m| {
            eprintln!("[{}] {m}", city.name())
        });
        let (dot_result, _model, _pits) = run_dot(&run, &profile, city, &mut |m| {
            eprintln!("[{}] {m}", city.name())
        });
        results.push(dot_result);

        let rows: Vec<AccuracyRow> = results
            .iter()
            .map(|r| AccuracyRow {
                method: r.name.clone(),
                measured: Some(r.accuracy),
                paper: paper_for(&r.name, city),
            })
            .collect();
        print_accuracy_table(
            &format!("Table 3 ({})", city.name()),
            "Measured on the synthetic dataset; paper columns are the published values.",
            &rows,
        );

        // The paper's headline shape claims.
        let get = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.accuracy.mae_min)
                .unwrap_or(f64::INFINITY)
        };
        print_ordering_check("DOT beats DeepOD (MAE)", get("DOT") < get("DeepOD"));
        print_ordering_check("DOT beats all baselines (MAE)", {
            let dot = get("DOT");
            results
                .iter()
                .all(|r| r.name == "DOT" || get(&r.name) >= dot)
        });
        print_ordering_check("neural ODT methods beat LR (MAE)", get("MURAT") < get("LR"));
        print_ordering_check(
            "DeepST beats Dijkstra (MAE)",
            get("DeepST") < get("Dijkstra"),
        );
    }
}
