//! Chaos drill: run the standing fault-injection scenarios against the
//! deadline-aware serving frontend over a real (tiny) trained DOT oracle,
//! and check each scenario's resilience expectations.
//!
//! ```text
//! chaos_drill [--scenario <name>|all] [--seed <u64>] [--quick]
//!             [--report <path>] [--flightrec-dir <dir>]
//! ```
//!
//! * `--scenario` — one scenario by name, or `all` (default).
//! * `--seed`     — perturbs every scenario's fault stream (default 7);
//!                  the same seed replays the same faults.
//! * `--quick`    — smaller waves, CI smoke mode.
//! * `--report`   — JSONL report path (default `CHAOS_drill.jsonl`).
//! * `--flightrec-dir` — flight-recorder dump directory (default
//!                  `CHAOS_flightrec`; `ODT_FLIGHTREC_DIR` overrides).
//!
//! Besides the serving and network catalogs, the standing
//! `quality_drift` drill shadow-scores the drill oracle against its
//! holdout, synthetically degrades the predictions once the drift
//! reference has frozen, and asserts the drift alert, the accuracy-SLO
//! burn alert and the `quality_drift` flight-recorder dump all fire.
//! The `cache_drift_invalidation` drill extends the chain into the
//! estimate cache: a cached frontend is warmed until repeats serve
//! from the cache, the same synthetic drift fires, and the drill
//! asserts the [`DriftInvalidator`] flushes the cache so zero
//! pre-drift-generation estimates are ever served again.
//!
//! Four cluster drills cover the sharded deployment:
//! `cluster_replica_kill` and `cluster_router_partition` boot a real
//! loopback cluster (router + probed replicas) and assert failover and
//! degrade-to-prior behave exactly (see `odt_net::cluster_drill`),
//! `cluster_trace_loss` kills a replica mid-wave and asserts the
//! stitched traces keep the failover's retry hop and the metrics
//! federation marks the dead replica stale without dropping its
//! history, and `cluster_corrupt_swap` drives the hot-swap state
//! machine over a real
//! trained oracle: a corrupt-CRC candidate, a wrong-grid-shape
//! candidate and a drift-failing candidate must each be refused with
//! their typed code, a good candidate must promote, and serving waves
//! interleaved with every controller tick must never lose a request.
//!
//! Every drill runs fully traced (head sampling forced to 1-in-1 unless
//! `ODT_TRACE_SAMPLE` overrides it): each scenario carries a root trace
//! whose id is in its report line, and incident paths — breaker trips,
//! deadline breaches — force-retain the offending request's trace and
//! dump the flight recorder, so a failed drill ships its own evidence.
//!
//! The report is one JSON object per line, schema `odt-chaos-drill/v2`:
//! a `kind: "scenario"` line per drill (counters, rung/breaker activity,
//! `trace_id`, flight-recorder dump delta, expectation violations, pass
//! flag) and a final `kind: "summary"` line. Exit status is non-zero if
//! any scenario fails its expectations — the CI `chaos-smoke` job gates
//! on this.

use odt_core::{Dot, DotConfig, ModelRegistry};
use odt_net::{
    cluster_drill_names, run_cluster_replica_kill, run_cluster_router_partition,
    run_cluster_trace_loss, ClusterDrillOutcome, FrontendBridge, NetScenarioSpec, Region,
    WireQuery,
};
use odt_roadnet::LngLat;
use odt_serve::{
    dot_frontend, dot_frontend_cached, CacheConfig, ChaosConfig, ChaosExecutor, DotExecutor,
    DotFrontendConfig, DotSwapHost, DotSwapHostConfig, DriftInvalidator, EstimateCache,
    FrontendConfig, HotTracker, ModelSlot, Response, Rung, ScenarioSpec, ServeFrontend, SwapConfig,
    SwapController, SwapError, SwapOutcome, NUM_RUNGS,
};
use odt_serve::{ShadowConfig, ShadowScorer};
use odt_traj::{Dataset, GridSpec, OdtInput, Split};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Render a per-rung counter array as a name-keyed JSON object (the
/// report's stable interface: names, not ladder indices).
fn rung_json(counts: &[u64; NUM_RUNGS]) -> serde_json::Value {
    let mut m = serde_json::Map::new();
    for (i, &v) in counts.iter().enumerate() {
        m.insert(Rung::from_index(i).name().to_string(), json!(v));
    }
    serde_json::Value::Object(m)
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn drill_dataset() -> Dataset {
    let mut cfg = odt_traj::sim::CitySimConfig::chengdu_like();
    cfg.nx = 8;
    cfg.ny = 8;
    Dataset::simulated(cfg, 180, 8, 41)
}

fn drill_model(data: &Dataset) -> Dot {
    let mut cfg = DotConfig::fast();
    cfg.lg = 8;
    cfg.n_steps = 8;
    cfg.base_channels = 4;
    cfg.cond_dim = 16;
    cfg.d_e = 16;
    cfg.stage1_iters = 15;
    cfg.stage2_iters = 30;
    cfg.early_stop_samples = 3;
    cfg.early_stop_every = 15;
    Dot::train(cfg, data, |_| {})
}

/// Run one scenario against `model`; returns the scenario's report line.
fn run_scenario(
    spec: &ScenarioSpec,
    model: &Dot,
    queries: &[OdtInput],
    quick: bool,
) -> serde_json::Value {
    // The scenario's own trace: request roots nest above it on the context
    // stack, and force-retaining it keeps the scenario id resolvable in
    // the retained set even when every request sails through cleanly.
    let root = odt_obs::trace::root_span("chaos.scenario");
    odt_obs::trace::force_retain_current("chaos_scenario");
    let trace_id = root.trace_id().map(|t| t.to_hex());
    let dumps_before = odt_obs::flightrec::dump_count();
    let wave_size = if quick {
        (spec.wave_size / 2).max(8)
    } else {
        spec.wave_size
    };
    let mut frontend_cfg = FrontendConfig {
        queue_capacity: spec.queue_capacity,
        shed_policy: spec.shed_policy,
        ..FrontendConfig::default()
    };
    if let Some(b) = spec.breaker {
        frontend_cfg.breaker = b;
    }
    let cool_us = frontend_cfg.breaker.max_backoff_us + 5_000;
    let mut fe = dot_frontend(
        model,
        DotFrontendConfig::default(),
        frontend_cfg,
        ChaosConfig::quiet(spec.chaos.seed),
    );

    // Seed the latency ladder from fault-free reality before the storm.
    fe.warmup(&queries[..2.min(queries.len())]);
    fe.executor_mut().set_config(spec.chaos);

    let t0 = Instant::now();
    for wave in 0..spec.waves {
        let reqs = queries
            .iter()
            .cycle()
            .skip(wave * wave_size)
            .take(wave_size)
            .map(|q| (*q, spec.deadline_us));
        let _ = fe.process_wave(reqs);
        if spec.clear_chaos_after_wave == Some(wave) {
            fe.executor_mut()
                .set_config(ChaosConfig::quiet(spec.chaos.seed));
            // Let every breaker's cool-down elapse so recovery is possible.
            std::thread::sleep(std::time::Duration::from_micros(cool_us));
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let s = fe.snapshot();
    drop(root);
    let dumps = odt_obs::flightrec::dump_count() - dumps_before;
    let last_dump = odt_obs::flightrec::last_dump()
        .filter(|_| dumps > 0)
        .map(|p| p.display().to_string());
    let violations = spec.expect.check(&s);
    let answer_rate = if s.submitted == 0 {
        1.0
    } else {
        s.served as f64 / s.submitted as f64
    };
    println!(
        "  {:<18} {:>3}/{:<3} served  rungs {:?}  trips {:?}  {}",
        spec.name,
        s.served,
        s.submitted,
        s.rung_hits,
        s.breaker_trips,
        if violations.is_empty() {
            "PASS".to_string()
        } else {
            format!("FAIL: {}", violations.join("; "))
        }
    );
    json!({
        "schema": "odt-chaos-drill/v2",
        "kind": "scenario",
        "name": spec.name,
        "description": spec.description,
        "trace_id": trace_id,
        "flightrec": { "dumps": dumps, "last_dump": last_dump },
        "seed": spec.chaos.seed,
        "quick": quick,
        "waves": spec.waves,
        "wave_size": wave_size,
        "shed_policy": spec.shed_policy.name(),
        "wall_seconds": wall_s,
        "submitted": s.submitted,
        "admitted": s.admitted,
        "served": s.served,
        "answer_rate": answer_rate,
        "shed": {
            "queue_full": s.shed_queue_full,
            "deadline_expired": s.shed_deadline,
            "invalid_query": s.shed_invalid,
            "internal": s.shed_internal,
        },
        "rung_hits": rung_json(&s.rung_hits),
        "rung_failures": rung_json(&s.rung_failures),
        "breaker": {
            "trips": s.breaker_trips,
            "states": s.breaker_states,
        },
        "deadline": { "met": s.deadline_met, "missed": s.deadline_missed },
        "violations": violations,
        "pass": violations.is_empty(),
    })
}

/// The model-quality drill: shadow-score the drill oracle against its
/// holdout until the drift reference freezes, then synthetically degrade
/// the predictions (collapse to 40% of the estimate — a systematic
/// underprediction no healthy reference window contains) and assert the
/// full alarm chain fires: the quantile-shift drift alert, the accuracy
/// SLO burn alert, and a `quality_drift` flight-recorder dump.
fn run_quality_drill(model: &Dot, data: &Dataset, seed: u64, quick: bool) -> serde_json::Value {
    let root = odt_obs::trace::root_span("chaos.scenario");
    odt_obs::trace::force_retain_current("chaos_scenario");
    let trace_id = root.trace_id().map(|t| t.to_hex());
    let dumps_before = odt_obs::flightrec::dump_count();

    let holdout: Vec<(OdtInput, f64)> = data
        .split(Split::Test)
        .iter()
        .map(|t| (OdtInput::from_trajectory(t), t.travel_time()))
        .collect();
    let mut scorer = ShadowScorer::new(holdout, ShadowConfig::for_drill());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD01F);

    let t0 = Instant::now();
    // Phase 1: the healthy model is its own reference. Score until the
    // tracker freezes the reference window.
    let mut now = odt_obs::trace::now_us();
    let mut steps = 0usize;
    while !scorer.quality(now).reference_frozen && steps < 200 {
        scorer.step(now, |qs: &[OdtInput]| {
            model
                .estimate_batch(qs, &mut rng)
                .into_iter()
                .map(|e| e.seconds)
                .collect()
        });
        steps += 1;
        now = odt_obs::trace::now_us();
    }
    let frozen = scorer.quality(now).reference_frozen;

    // Phase 2: synthetic model degradation. Keep scoring until the whole
    // alarm chain has fired (or the step budget rules it never will).
    let mut q = scorer.quality(now);
    let chain_done = |q: &odt_obs::QualitySnapshot, dumps: u64| {
        q.drift_alerts >= 1
            && q.slo.as_ref().map(|s| s.alerts >= 1).unwrap_or(false)
            && dumps > dumps_before
    };
    while !chain_done(&q, odt_obs::flightrec::dump_count()) && steps < 600 {
        scorer.step(now, |qs: &[OdtInput]| {
            model
                .estimate_batch(qs, &mut rng)
                .into_iter()
                .map(|e| e.seconds * 0.4)
                .collect()
        });
        steps += 1;
        now = odt_obs::trace::now_us();
        q = scorer.quality(now);
    }
    let wall_s = t0.elapsed().as_secs_f64();
    drop(root);
    let dumps = odt_obs::flightrec::dump_count() - dumps_before;
    let last_dump = odt_obs::flightrec::last_dump()
        .filter(|_| dumps > 0)
        .map(|p| p.display().to_string());

    let mut violations: Vec<String> = Vec::new();
    if !frozen {
        violations.push("drift reference never froze".to_string());
    }
    if q.drift_alerts < 1 {
        violations.push(format!(
            "no drift alert (score {:.3} after {steps} steps)",
            q.drift_score
        ));
    }
    let slo_alerts = q.slo.as_ref().map(|s| s.alerts).unwrap_or(0);
    if slo_alerts < 1 {
        violations.push("accuracy SLO burn alert never fired".to_string());
    }
    if dumps == 0 {
        violations.push("drift alert produced no flight-recorder dump".to_string());
    }
    println!(
        "  {:<18} {:>3} scored  drift {:.2} ({} alert(s))  slo alerts {}  {}",
        "quality_drift",
        scorer.scored(),
        q.drift_score,
        q.drift_alerts,
        slo_alerts,
        if violations.is_empty() {
            "PASS".to_string()
        } else {
            format!("FAIL: {}", violations.join("; "))
        }
    );
    json!({
        "schema": "odt-chaos-drill/v2",
        "kind": "scenario",
        "name": "quality_drift",
        "description": "shadow-scored holdout drifts; drift + accuracy-SLO alerts and a flightrec dump must fire",
        "trace_id": trace_id,
        "flightrec": { "dumps": dumps, "last_dump": last_dump },
        "seed": seed,
        "quick": quick,
        "wall_seconds": wall_s,
        "submitted": scorer.scored(),
        "admitted": scorer.scored(),
        "served": scorer.scored(),
        "answer_rate": 1.0,
        "shed": { "queue_full": 0, "deadline_expired": 0, "invalid_query": 0, "internal": 0 },
        "rung_hits": {
            "cached": 0, "full_ddpm": scorer.scored(), "ddim": 0,
            "ddim_reduced": 0, "cached_stale": 0, "fallback": 0,
        },
        "rung_failures": {
            "cached": 0, "full_ddpm": 0, "ddim": 0,
            "ddim_reduced": 0, "cached_stale": 0, "fallback": 0,
        },
        "breaker": {
            "trips": [0, 0, 0, 0, 0],
            "states": ["closed", "closed", "closed", "closed", "closed"],
        },
        "deadline": { "met": scorer.scored(), "missed": 0 },
        "quality": {
            "samples": q.samples,
            "window_len": q.window_len,
            "mae_s": q.mae_s,
            "mape": q.mape,
            "bias_s": q.bias_s,
            "drift_score": q.drift_score,
            "drift_alerts": q.drift_alerts,
            "slo_alerts": slo_alerts,
            "reference_frozen": frozen,
        },
        "violations": violations,
        "pass": violations.is_empty(),
    })
}

/// The cache-drift drill: serve repeat traffic through a *cached*
/// frontend until the estimate cache answers at generation 0, then
/// degrade the shadow-scored predictions until the drift alert fires,
/// feed the alert to the [`DriftInvalidator`], and assert the flush is
/// total — the cache generation advances and the first post-flush wave
/// contains zero cache-rung serves (no pre-drift estimate survives the
/// alert).
fn run_cache_drift_drill(model: &Dot, data: &Dataset, seed: u64, quick: bool) -> serde_json::Value {
    let root = odt_obs::trace::root_span("chaos.scenario");
    odt_obs::trace::force_retain_current("chaos_scenario");
    let trace_id = root.trace_id().map(|t| t.to_hex());
    let dumps_before = odt_obs::flightrec::dump_count();

    let cache = Arc::new(EstimateCache::new(CacheConfig {
        capacity: 512,
        ..CacheConfig::default()
    }));
    let hot = Arc::new(Mutex::new(HotTracker::new(64)));
    let mut fe = dot_frontend_cached(
        model,
        DotFrontendConfig::default(),
        FrontendConfig::default(),
        ChaosConfig::quiet(seed),
        Arc::clone(&cache),
        Arc::clone(&hot),
    );
    let queries: Vec<OdtInput> = data
        .split(Split::Test)
        .iter()
        .take(if quick { 4 } else { 8 })
        .map(OdtInput::from_trajectory)
        .collect();
    fe.warmup(&queries[..2.min(queries.len())]);
    let deadline_us = Some(250_000u64);

    let t0 = Instant::now();
    // Phase 1: fill on the first wave (write-through), hit on the second.
    let _ = fe.process_wave(queries.iter().map(|q| (*q, deadline_us)));
    let _ = fe.process_wave(queries.iter().map(|q| (*q, deadline_us)));
    let gen0 = cache.generation();
    let warm = fe.snapshot();
    let warm_cache_serves =
        warm.rung_hits[Rung::Cached.index()] + warm.rung_hits[Rung::CachedStale.index()];

    // Phase 2: shadow-score until the drift reference freezes, then
    // degrade (same synthetic collapse as the quality drill) until the
    // invalidator sees the alert and flushes the cache.
    let holdout: Vec<(OdtInput, f64)> = data
        .split(Split::Test)
        .iter()
        .map(|t| (OdtInput::from_trajectory(t), t.travel_time()))
        .collect();
    let mut scorer = ShadowScorer::new(holdout, ShadowConfig::for_drill());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCACE);
    let mut invalidator = DriftInvalidator::new();
    let mut now = odt_obs::trace::now_us();
    let mut steps = 0usize;
    while !scorer.quality(now).reference_frozen && steps < 200 {
        scorer.step(now, |qs: &[OdtInput]| {
            model
                .estimate_batch(qs, &mut rng)
                .into_iter()
                .map(|e| e.seconds)
                .collect()
        });
        steps += 1;
        now = odt_obs::trace::now_us();
    }
    let frozen = scorer.quality(now).reference_frozen;
    let mut flushed = false;
    let mut q = scorer.quality(now);
    while !flushed && steps < 600 {
        scorer.step(now, |qs: &[OdtInput]| {
            model
                .estimate_batch(qs, &mut rng)
                .into_iter()
                .map(|e| e.seconds * 0.4)
                .collect()
        });
        steps += 1;
        now = odt_obs::trace::now_us();
        q = scorer.quality(now);
        flushed = invalidator.observe(&q, &cache);
    }

    // Phase 3: the same queries again. Every pre-drift entry is now a
    // dead generation, so not one may be served from the cache.
    let before = fe.snapshot();
    let _ = fe.process_wave(queries.iter().map(|q| (*q, deadline_us)));
    let s = fe.snapshot();
    let post_flush_cache_serves = (s.rung_hits[Rung::Cached.index()]
        - before.rung_hits[Rung::Cached.index()])
        + (s.rung_hits[Rung::CachedStale.index()] - before.rung_hits[Rung::CachedStale.index()]);
    let wall_s = t0.elapsed().as_secs_f64();
    drop(root);
    let dumps = odt_obs::flightrec::dump_count() - dumps_before;
    let last_dump = odt_obs::flightrec::last_dump()
        .filter(|_| dumps > 0)
        .map(|p| p.display().to_string());

    let cs = cache.stats();
    let mut violations: Vec<String> = Vec::new();
    if warm_cache_serves == 0 {
        violations.push("repeat queries never hit the cache pre-drift".to_string());
    }
    if !frozen {
        violations.push("drift reference never froze".to_string());
    }
    if q.drift_alerts < 1 {
        violations.push(format!(
            "no drift alert (score {:.3} after {steps} steps)",
            q.drift_score
        ));
    }
    if !flushed {
        violations.push("drift alert never reached the invalidator".to_string());
    }
    if cache.generation() == gen0 {
        violations.push("cache generation did not advance on drift".to_string());
    }
    if cs.invalidations < 1 {
        violations.push("cache recorded no invalidation".to_string());
    }
    if post_flush_cache_serves > 0 {
        violations.push(format!(
            "{post_flush_cache_serves} pre-drift cache serve(s) after invalidation"
        ));
    }
    println!(
        "  {:<18} {:>3} warm cache serve(s)  gen {}->{}  post-flush cache serves {}  {}",
        "cache_drift_inval",
        warm_cache_serves,
        gen0,
        cache.generation(),
        post_flush_cache_serves,
        if violations.is_empty() {
            "PASS".to_string()
        } else {
            format!("FAIL: {}", violations.join("; "))
        }
    );
    json!({
        "schema": "odt-chaos-drill/v2",
        "kind": "scenario",
        "name": "cache_drift_invalidation",
        "description": "drift alert flushes the estimate cache; zero pre-drift-generation serves afterwards",
        "trace_id": trace_id,
        "flightrec": { "dumps": dumps, "last_dump": last_dump },
        "seed": seed,
        "quick": quick,
        "wall_seconds": wall_s,
        "submitted": s.submitted,
        "admitted": s.admitted,
        "served": s.served,
        "answer_rate": if s.submitted == 0 { 1.0 } else { s.served as f64 / s.submitted as f64 },
        "shed": {
            "queue_full": s.shed_queue_full,
            "deadline_expired": s.shed_deadline,
            "invalid_query": s.shed_invalid,
            "internal": s.shed_internal,
        },
        "rung_hits": rung_json(&s.rung_hits),
        "rung_failures": rung_json(&s.rung_failures),
        "breaker": {
            "trips": s.breaker_trips,
            "states": s.breaker_states,
        },
        "deadline": { "met": s.deadline_met, "missed": s.deadline_missed },
        "cache": {
            "generation_before": gen0,
            "generation_after": cache.generation(),
            "warm_cache_serves": warm_cache_serves,
            "post_flush_cache_serves": post_flush_cache_serves,
            "hits": cs.hits,
            "stale_hits": cs.stale_hits,
            "misses": cs.misses,
            "hit_rate": cs.hit_rate(),
            "evictions": cs.evictions,
            "admission_rejects": cs.admission_rejects,
            "invalidations": cs.invalidations,
            "invalidated_entries": cs.invalidated_entries,
            "len": cs.len,
            "capacity": cs.capacity,
        },
        "quality": {
            "drift_score": q.drift_score,
            "drift_alerts": q.drift_alerts,
            "reference_frozen": frozen,
        },
        "violations": violations,
        "pass": violations.is_empty(),
    })
}

/// The box strict admission accepts, shrunk 5% inside the drill grid so
/// network-drill queries never land on the reject margin.
fn net_region(grid: &GridSpec) -> Region {
    let mx = (grid.max.lng - grid.min.lng) * 0.05;
    let my = (grid.max.lat - grid.min.lat) * 0.05;
    Region {
        lng0: grid.min.lng + mx,
        lat0: grid.min.lat + my,
        lng1: grid.max.lng - mx,
        lat1: grid.max.lat - my,
    }
}

/// Run one network drill: a real TCP server over a freshly trained drill
/// oracle, the scenario's client-side abuse pattern, a graceful drain,
/// and the zero-leak check; returns the scenario's report line.
///
/// The oracle is trained *inside* the server's backend factory — its
/// parameters are `Rc`-based and cannot cross onto the dispatcher
/// thread — so each drill trains its own copy (the drill catalog keeps
/// it tiny). The drill harness's readiness probe absorbs the training
/// window before any abuse traffic starts.
fn run_net_drill(
    spec: &NetScenarioSpec,
    region: Region,
    seed: u64,
    quick: bool,
) -> serde_json::Value {
    let root = odt_obs::trace::root_span("chaos.scenario");
    odt_obs::trace::force_retain_current("chaos_scenario");
    let trace_id = root.trace_id().map(|t| t.to_hex());
    let dumps_before = odt_obs::flightrec::dump_count();

    let mut spec = spec.clone();
    spec.region = region;
    let (stats_tx, stats_rx) = std::sync::mpsc::channel();
    let outcome = odt_net::run_net_scenario_with(&spec, move || {
        // `Dataset::simulated` is deterministic: this grid is the same
        // one `region` was derived from in `main`.
        let data = drill_dataset();
        let model: &'static Dot = Box::leak(Box::new(drill_model(&data)));
        let mut fe = dot_frontend(
            model,
            DotFrontendConfig::default(),
            FrontendConfig::default(),
            ChaosConfig::quiet(seed),
        );
        let warmup: Vec<OdtInput> = data
            .split(Split::Test)
            .iter()
            .take(2)
            .map(OdtInput::from_trajectory)
            .collect();
        fe.warmup(&warmup);
        let mut bridge = FrontendBridge::new(fe, |q: &WireQuery| OdtInput {
            origin: LngLat {
                lng: q.o_lng,
                lat: q.o_lat,
            },
            dest: LngLat {
                lng: q.d_lng,
                lat: q.d_lat,
            },
            t_dep: q.t_dep,
        });
        let _ = stats_tx.send(bridge.shared_stats());
        bridge
    });
    let (s, adopted) = stats_rx.recv().map(|h| h.get()).unwrap_or_default();
    drop(root);
    let dumps = odt_obs::flightrec::dump_count() - dumps_before;
    let last_dump = odt_obs::flightrec::last_dump()
        .filter(|_| dumps > 0)
        .map(|p| p.display().to_string());
    println!(
        "  {:<18} {:>3} ok over TCP  rungs {:?}  conns {}/{}  drain {}  {}",
        outcome.name,
        outcome.ok_replies,
        s.rung_hits,
        outcome.stats.opened,
        outcome.stats.active,
        if outcome.drain_clean {
            "clean"
        } else {
            "forced"
        },
        if outcome.pass {
            "PASS".to_string()
        } else {
            format!("FAIL: {}", outcome.violations.join("; "))
        }
    );
    let err_replies: serde_json::Map<String, serde_json::Value> = outcome
        .err_replies
        .iter()
        .map(|(k, v)| (k.clone(), json!(v)))
        .collect();
    let c = &outcome.stats;
    json!({
        "schema": "odt-chaos-drill/v2",
        "kind": "scenario",
        "name": outcome.name,
        "description": spec.description,
        "trace_id": trace_id,
        "flightrec": { "dumps": dumps, "last_dump": last_dump },
        "seed": seed,
        "quick": quick,
        "wall_seconds": outcome.wall_s,
        "submitted": s.submitted,
        "admitted": s.admitted,
        "served": s.served,
        "answer_rate": if s.submitted == 0 { 1.0 } else { s.served as f64 / s.submitted as f64 },
        "shed": {
            "queue_full": s.shed_queue_full,
            "deadline_expired": s.shed_deadline,
            "invalid_query": s.shed_invalid,
            "internal": s.shed_internal,
        },
        "rung_hits": rung_json(&s.rung_hits),
        "rung_failures": rung_json(&s.rung_failures),
        "breaker": {
            "trips": s.breaker_trips,
            "states": s.breaker_states,
        },
        "deadline": { "met": s.deadline_met, "missed": s.deadline_missed },
        "net": {
            "ok_replies": outcome.ok_replies,
            "err_replies": err_replies,
            "conns": {
                "opened": c.opened,
                "closed": c.closed,
                "active": c.active,
                "rejected_capacity": c.rejected_capacity,
                "rejected_draining": c.rejected_draining,
                "timeouts_frame": c.timeouts_frame,
                "timeouts_idle": c.timeouts_idle,
                "backpressure_stalls": c.backpressure_stalls,
                "forced_closes": c.forced_closes,
            },
            "drain_clean": outcome.drain_clean,
            "forced_conns": outcome.forced_conns,
            "adopted_traces": adopted,
        },
        "violations": outcome.violations,
        "pass": outcome.pass,
    })
}

/// Render one echo-backed cluster drill (`odt_net::cluster_drill`) as a
/// report line. The drill itself boots, faults, and tears down a real
/// loopback cluster; this wrapper only adds the trace root and shapes
/// the outcome into the drill schema.
fn run_cluster_drill(name: &str, seed: u64, quick: bool) -> serde_json::Value {
    let root = odt_obs::trace::root_span("chaos.scenario");
    odt_obs::trace::force_retain_current("chaos_scenario");
    let trace_id = root.trace_id().map(|t| t.to_hex());
    let dumps_before = odt_obs::flightrec::dump_count();

    let o: ClusterDrillOutcome = match name {
        "cluster_replica_kill" => run_cluster_replica_kill(),
        "cluster_trace_loss" => run_cluster_trace_loss(),
        _ => run_cluster_router_partition(),
    };
    drop(root);
    let dumps = odt_obs::flightrec::dump_count() - dumps_before;
    let last_dump = odt_obs::flightrec::last_dump()
        .filter(|_| dumps > 0)
        .map(|p| p.display().to_string());

    let answered = o.replica_replies + o.prior_replies;
    let errs: u64 = o.err_replies.iter().map(|(_, n)| n).sum();
    let submitted = answered + errs + o.lost;
    let err_replies: serde_json::Map<String, serde_json::Value> = o
        .err_replies
        .iter()
        .map(|(k, v)| (k.clone(), json!(v)))
        .collect();
    println!(
        "  {:<18} {:>3} replica + {} prior replies ({} lost)  failovers {}  quorum_end {}  {}",
        o.name,
        o.replica_replies,
        o.prior_replies,
        o.lost,
        o.failovers,
        o.quorum_ready_end,
        if o.pass {
            "PASS".to_string()
        } else {
            format!("FAIL: {}", o.violations.join("; "))
        }
    );
    json!({
        "schema": "odt-chaos-drill/v2",
        "kind": "scenario",
        "name": o.name,
        "description": o.description,
        "trace_id": trace_id,
        "flightrec": { "dumps": dumps, "last_dump": last_dump },
        "seed": seed,
        "quick": quick,
        "wall_seconds": o.wall_s,
        "submitted": submitted,
        "admitted": submitted,
        "served": answered,
        "answer_rate": if submitted == 0 { 1.0 } else { answered as f64 / submitted as f64 },
        "cluster": {
            "replica_replies": o.replica_replies,
            "prior_replies": o.prior_replies,
            "err_replies": err_replies,
            "lost": o.lost,
            "failovers": o.failovers,
            "prior_serves": o.prior_serves,
            "quorum_ready_end": o.quorum_ready_end,
            "router_conns": {
                "opened": o.router_stats.opened,
                "closed": o.router_stats.closed,
                "active": o.router_stats.active,
                "forced_closes": o.router_stats.forced_closes,
            },
            "drain_clean": o.drain_clean,
        },
        "violations": o.violations,
        "pass": o.pass,
    })
}

/// A misshapen candidate: same simulator, coarser grid — parses fine,
/// must be refused by the swap shape gate.
fn misshapen_model(data: &Dataset) -> Dot {
    let mut cfg = DotConfig::fast();
    cfg.lg = 6;
    cfg.n_steps = 8;
    cfg.base_channels = 4;
    cfg.cond_dim = 16;
    cfg.d_e = 16;
    cfg.stage1_iters = 2;
    cfg.stage2_iters = 4;
    cfg.early_stop_samples = 2;
    cfg.early_stop_every = 2;
    Dot::train(cfg, data, |_| {})
}

type SlotFrontend = ServeFrontend<ChaosExecutor<DotExecutor<'static>>>;

/// Tick the controller to a conclusion, serving a wave between every
/// tick; any request not answered `Served` counts as an interruption.
fn drive_swap(
    ctrl: &mut SwapController<DotSwapHost>,
    fe: &mut SlotFrontend,
    wave: &[OdtInput],
    interruptions: &mut u64,
) -> Option<SwapOutcome> {
    for _ in 0..300 {
        if let Some(outcome) = ctrl.tick() {
            return Some(outcome);
        }
        let out = fe.process_wave(wave.iter().map(|q| (*q, None)));
        *interruptions += out
            .iter()
            .filter(|r| !matches!(r, Response::Served { .. }))
            .count() as u64;
    }
    None
}

/// The corrupt-swap drill: a registry-backed hot-swap plane over the
/// real drill oracle. A corrupt-CRC candidate, a wrong-grid candidate
/// and a drift-failing candidate must each be refused with their typed
/// code while waves keep serving; a good candidate must then promote —
/// all with zero interrupted requests.
fn run_corrupt_swap_drill(
    model: &Dot,
    data: &Dataset,
    seed: u64,
    quick: bool,
) -> serde_json::Value {
    let root = odt_obs::trace::root_span("chaos.scenario");
    odt_obs::trace::force_retain_current("chaos_scenario");
    let trace_id = root.trace_id().map(|t| t.to_hex());
    let dumps_before = odt_obs::flightrec::dump_count();

    let dir = std::env::temp_dir().join(format!("odt_swap_drill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("swap drill temp dir");
    let registry = ModelRegistry::open(dir.join("registry")).expect("swap drill registry");
    let v1 = registry
        .publish(model)
        .expect("publishing the drill oracle");
    let good = dir.join("cand_good.dotckpt");
    std::fs::copy(registry.version_path(v1), &good).expect("staging the good candidate");
    // Serve a *loaded* copy so the drill also exercises the load path.
    let (v, serving) = registry.load_current().expect("reloading the drill oracle");
    let slot = ModelSlot::from_model(serving, v);

    let mut fe: SlotFrontend = dot_frontend(
        slot.clone(),
        DotFrontendConfig::default(),
        FrontendConfig::default(),
        ChaosConfig::quiet(seed),
    );
    let wave: Vec<OdtInput> = data
        .split(Split::Test)
        .iter()
        .take(if quick { 3 } else { 6 })
        .map(OdtInput::from_trajectory)
        .collect();
    fe.warmup(&wave[..2.min(wave.len())]);

    let holdout: Vec<(OdtInput, f64)> = data
        .split(Split::Test)
        .iter()
        .map(|t| (OdtInput::from_trajectory(t), t.travel_time()))
        .collect();
    let host_cfg = DotSwapHostConfig {
        batch: 4,
        ddim_steps: 3,
        rng_seed: seed ^ 0x51A9,
    };
    let make_ctrl = |gate: SwapConfig| {
        SwapController::new(
            DotSwapHost::new(
                registry.clone(),
                slot.clone(),
                holdout.clone(),
                None,
                host_cfg,
            ),
            gate,
        )
    };
    let gate = SwapConfig {
        shadow_samples: 12,
        ..SwapConfig::default()
    };

    let t0 = Instant::now();
    let mut interruptions = 0u64;
    let mut violations: Vec<String> = Vec::new();
    let outcome_code = |out: Option<SwapOutcome>| -> String {
        match out {
            Some(SwapOutcome::Rejected(e)) => e.code().to_string(),
            Some(SwapOutcome::Promoted { version, .. }) => format!("promoted v{version}"),
            None => "no_conclusion".to_string(),
        }
    };

    // 1. Corrupt candidate: one flipped payload bit, the CRC gate refuses.
    let corrupt = dir.join("cand_corrupt.dotckpt");
    let mut bytes = std::fs::read(&good).expect("reading the good candidate");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x08;
    std::fs::write(&corrupt, &bytes).expect("writing the corrupt candidate");
    let mut ctrl = make_ctrl(gate);
    ctrl.request(corrupt.to_str().expect("utf8 path"), None)
        .expect("corrupt request accepted");
    let corrupt_code = outcome_code(drive_swap(&mut ctrl, &mut fe, &wave, &mut interruptions));
    if corrupt_code != "corrupt" {
        violations.push(format!(
            "corrupt candidate concluded {corrupt_code:?}, want \"corrupt\""
        ));
    }

    // 2. Wrong grid shape: trains fine on a coarser grid, shape gate refuses.
    let shape_path = dir.join("cand_shape.dotckpt");
    misshapen_model(data)
        .save(&shape_path)
        .expect("saving the misshapen candidate");
    ctrl.request(shape_path.to_str().expect("utf8 path"), None)
        .expect("shape request accepted");
    let shape_code = outcome_code(drive_swap(&mut ctrl, &mut fe, &wave, &mut interruptions));
    if shape_code != "shape_mismatch" {
        violations.push(format!(
            "misshapen candidate concluded {shape_code:?}, want \"shape_mismatch\""
        ));
    }

    // 3. Drift gate: an impossible gate (candidate must halve the serving
    // MAE) rejects even an identical model.
    let mut strict = make_ctrl(SwapConfig {
        shadow_samples: 12,
        max_mae_ratio: 0.5,
        mae_slack_s: 0.0,
    });
    strict
        .request(good.to_str().expect("utf8 path"), None)
        .expect("drift request accepted");
    let drift_code = outcome_code(drive_swap(&mut strict, &mut fe, &wave, &mut interruptions));
    if drift_code != "drift_failed" {
        violations.push(format!(
            "drift-gated candidate concluded {drift_code:?}, want \"drift_failed\""
        ));
    }
    if slot.version() != v1 || slot.swaps() != 0 {
        violations.push(format!(
            "rejections touched serving: slot at v{} after {} swap(s)",
            slot.version(),
            slot.swaps()
        ));
    }

    // 4. The good candidate, normal gate: a concurrent request must be
    // refused busy, then the swap promotes.
    ctrl.request(good.to_str().expect("utf8 path"), None)
        .expect("good request accepted");
    let busy_refused = matches!(
        ctrl.request(good.to_str().expect("utf8 path"), None),
        Err(SwapError::Busy)
    );
    if !busy_refused {
        violations.push("concurrent swap request was not refused busy".to_string());
    }
    let promote_code = outcome_code(drive_swap(&mut ctrl, &mut fe, &wave, &mut interruptions));
    let promoted_version = v1 + 1;
    if promote_code != format!("promoted v{promoted_version}") {
        violations.push(format!(
            "good candidate concluded {promote_code:?}, want promotion to v{promoted_version}"
        ));
    }
    if slot.version() != promoted_version || slot.swaps() != 1 {
        violations.push(format!(
            "promotion not installed: slot at v{} after {} swap(s)",
            slot.version(),
            slot.swaps()
        ));
    }
    if registry.current_version().ok().flatten() != Some(promoted_version) {
        violations.push("registry CURRENT does not point at the promoted version".to_string());
    }
    if interruptions > 0 {
        violations.push(format!(
            "{interruptions} request(s) interrupted while swaps were in flight"
        ));
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = ctrl.stats();
    let s = fe.snapshot();
    drop(root);
    let dumps = odt_obs::flightrec::dump_count() - dumps_before;
    let last_dump = odt_obs::flightrec::last_dump()
        .filter(|_| dumps > 0)
        .map(|p| p.display().to_string());
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "  {:<18} corrupt={corrupt_code} shape={shape_code} drift={drift_code} then {promote_code}  interruptions {interruptions}  {}",
        "cluster_corrupt_swap",
        if violations.is_empty() {
            "PASS".to_string()
        } else {
            format!("FAIL: {}", violations.join("; "))
        }
    );
    json!({
        "schema": "odt-chaos-drill/v2",
        "kind": "scenario",
        "name": "cluster_corrupt_swap",
        "description": "corrupt, misshapen and drift-failing swap candidates are refused with typed codes; a good one promotes; serving never interrupted",
        "trace_id": trace_id,
        "flightrec": { "dumps": dumps, "last_dump": last_dump },
        "seed": seed,
        "quick": quick,
        "wall_seconds": wall_s,
        "submitted": s.submitted,
        "admitted": s.admitted,
        "served": s.served,
        "answer_rate": if s.submitted == 0 { 1.0 } else { s.served as f64 / s.submitted as f64 },
        "swap": {
            "corrupt_code": corrupt_code,
            "shape_code": shape_code,
            "drift_code": drift_code,
            "promote_code": promote_code,
            "busy_refused": busy_refused,
            "requested": stats.requested,
            "promoted": stats.promoted,
            "rejected": stats.rejected,
            "serving_version": slot.version(),
            "serving_swaps": slot.swaps(),
            "interruptions": interruptions,
        },
        "violations": violations,
        "pass": violations.is_empty(),
    })
}

fn main() {
    let quick = arg_flag("--quick");
    let seed: u64 = arg_value("--seed")
        .map(|v| v.parse().expect("--seed must be an integer"))
        .unwrap_or(7);
    let which = arg_value("--scenario").unwrap_or_else(|| "all".to_string());
    let report_path = arg_value("--report").unwrap_or_else(|| "CHAOS_drill.jsonl".to_string());
    odt_compute::ensure_initialized();

    // Drills trace every request unless the operator asked otherwise: the
    // whole point of a drill is that anomalies keep their evidence.
    if std::env::var("ODT_TRACE_SAMPLE").is_ok() {
        odt_obs::trace::init_from_env();
    } else {
        odt_obs::trace::set_sample_every(1);
    }
    // Flight recorder: breaker trips and panics freeze the black box here.
    match std::env::var("ODT_FLIGHTREC_DIR") {
        Ok(_) => odt_obs::flightrec::init_from_env(),
        Err(_) => odt_obs::flightrec::enable(
            arg_value("--flightrec-dir").unwrap_or_else(|| "CHAOS_flightrec".to_string()),
        ),
    }

    // Injected panics are expected and caught at the request boundary;
    // silence the default hook so drill output stays readable. Installed
    // *before* the flight-recorder hook, which chains to it: suppressed
    // (injected) panics skip the dump, real ones dump first then silence.
    std::panic::set_hook(Box::new(|_| {}));
    odt_obs::flightrec::install_panic_hook();

    let catalog = odt_serve::scenarios(seed);
    let net_catalog = odt_net::net_scenarios();
    let run_quality = which == "all" || which == "quality_drift";
    let run_cache = which == "all" || which == "cache_drift_invalidation";
    let run_swap = which == "all" || which == "cluster_corrupt_swap";
    let cluster_selected: Vec<&'static str> = cluster_drill_names()
        .into_iter()
        .filter(|n| which == "all" || which == *n)
        .collect();
    let (selected, net_selected): (Vec<&ScenarioSpec>, Vec<&NetScenarioSpec>) = if which == "all" {
        (catalog.iter().collect(), net_catalog.iter().collect())
    } else {
        let serve: Vec<&ScenarioSpec> = catalog.iter().filter(|s| s.name == which).collect();
        let net: Vec<&NetScenarioSpec> = net_catalog.iter().filter(|s| s.name == which).collect();
        if serve.is_empty()
            && net.is_empty()
            && !run_quality
            && !run_cache
            && !run_swap
            && cluster_selected.is_empty()
        {
            let names: Vec<&str> = catalog
                .iter()
                .map(|s| s.name)
                .chain(net_catalog.iter().map(|s| s.name))
                .chain(cluster_drill_names())
                .chain([
                    "quality_drift",
                    "cache_drift_invalidation",
                    "cluster_corrupt_swap",
                ])
                .collect();
            eprintln!("unknown scenario {which:?}; available: {names:?} or \"all\"");
            std::process::exit(2);
        }
        (serve, net)
    };
    let total = selected.len()
        + net_selected.len()
        + cluster_selected.len()
        + usize::from(run_quality)
        + usize::from(run_cache)
        + usize::from(run_swap);

    println!("chaos drill: {total} scenario(s), seed {seed}, quick={quick}");
    let data = drill_dataset();
    let region = net_region(&data.grid);

    let mut lines = Vec::new();
    let mut failed = 0usize;
    if !selected.is_empty() || run_quality || run_cache || run_swap {
        let t0 = Instant::now();
        let model = drill_model(&data);
        println!("trained drill oracle in {:.1}s", t0.elapsed().as_secs_f64());
        let queries: Vec<OdtInput> = data
            .split(Split::Test)
            .iter()
            .map(OdtInput::from_trajectory)
            .collect();
        for spec in &selected {
            let line = run_scenario(spec, &model, &queries, quick);
            if line["pass"] != json!(true) {
                failed += 1;
            }
            lines.push(line);
        }
        if run_quality {
            let line = run_quality_drill(&model, &data, seed, quick);
            if line["pass"] != json!(true) {
                failed += 1;
            }
            lines.push(line);
        }
        if run_cache {
            let line = run_cache_drift_drill(&model, &data, seed, quick);
            if line["pass"] != json!(true) {
                failed += 1;
            }
            lines.push(line);
        }
        if run_swap {
            let line = run_corrupt_swap_drill(&model, &data, seed, quick);
            if line["pass"] != json!(true) {
                failed += 1;
            }
            lines.push(line);
        }
    }
    for spec in &net_selected {
        let line = run_net_drill(spec, region, seed, quick);
        if line["pass"] != json!(true) {
            failed += 1;
        }
        lines.push(line);
    }
    for name in &cluster_selected {
        let line = run_cluster_drill(name, seed, quick);
        if line["pass"] != json!(true) {
            failed += 1;
        }
        lines.push(line);
    }
    let (finished, _, _) = odt_obs::trace::trace_stats();
    lines.push(json!({
        "schema": "odt-chaos-drill/v2",
        "kind": "summary",
        "seed": seed,
        "quick": quick,
        "scenarios": total,
        "passed": total - failed,
        "failed": failed,
        "traces_finished": finished,
        "traces_retained": odt_obs::trace::retained_count(),
        "flightrec_dumps": odt_obs::flightrec::dump_count(),
        "pass": failed == 0,
    }));

    let mut out = String::new();
    for line in &lines {
        out.push_str(&line.to_string());
        out.push('\n');
    }
    let mut f = std::fs::File::create(&report_path)
        .unwrap_or_else(|e| panic!("creating {report_path}: {e}"));
    f.write_all(out.as_bytes())
        .unwrap_or_else(|e| panic!("writing {report_path}: {e}"));
    println!("wrote {report_path}");

    if failed > 0 {
        eprintln!("{failed} scenario(s) failed their resilience expectations");
        std::process::exit(1);
    }
}
