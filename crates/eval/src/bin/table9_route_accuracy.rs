//! Table 9: route inference accuracy — precision/recall/F1 of the mask
//! channel for Dijkstra, DeepST and DOT against ground-truth PiT masks.

use odt_baselines::{DeepStRouter, DijkstraRouter, Router};
use odt_eval::harness::{prepare_city, route_to_pit, run_dot, City};
use odt_eval::metrics::mask_accuracy;
use odt_eval::profile::EvalProfile;
use odt_eval::report::{print_ordering_check, print_table};
use odt_traj::Split;

/// Paper Table 9: (method, Chengdu P/R/F1, Harbin P/R/F1).
const PAPER: &[(&str, [f64; 3], [f64; 3])] = &[
    (
        "Dijkstra",
        [68.918, 31.310, 42.065],
        [45.459, 42.525, 39.993],
    ),
    ("DeepST", [59.755, 55.776, 56.911], [74.519, 62.907, 66.029]),
    ("DOT", [87.890, 88.684, 88.280], [88.190, 88.982, 88.584]),
];

fn main() {
    let profile = EvalProfile::from_args();
    let _telemetry = odt_eval::telemetry::init(&profile);
    println!(
        "Table 9 — route inference accuracy (profile: {}, seed {})",
        profile.name, profile.seed
    );

    for city in [City::Chengdu, City::Harbin] {
        let run = prepare_city(city, &profile);
        let truth_masks: Vec<Vec<bool>> = run.test_pits().iter().map(|p| p.mask_bool()).collect();

        let train = run.data.split(Split::Train);
        let deepst = DeepStRouter::fit(run.ctx, run.net.clone(), train);
        let dijkstra = DijkstraRouter::fit(run.ctx, run.net.clone(), train);
        let (_result, _model, inferred) =
            run_dot(&run, &profile, city, &mut |m| eprintln!("  {m}"));

        let mut rows = Vec::new();
        let mut f1s = std::collections::HashMap::new();
        for (label, masks) in [
            (
                "Dijkstra",
                run.test_odts
                    .iter()
                    .map(|o| {
                        route_to_pit(
                            &dijkstra.route_points(o),
                            1.0,
                            o.t_dep,
                            &run.data.grid,
                            &run.data.proj,
                        )
                        .mask_bool()
                    })
                    .collect::<Vec<_>>(),
            ),
            (
                "DeepST",
                run.test_odts
                    .iter()
                    .map(|o| {
                        route_to_pit(
                            &deepst.route_points(o),
                            1.0,
                            o.t_dep,
                            &run.data.grid,
                            &run.data.proj,
                        )
                        .mask_bool()
                    })
                    .collect(),
            ),
            ("DOT", inferred.iter().map(|p| p.mask_bool()).collect()),
        ] {
            let pairs: Vec<(Vec<bool>, Vec<bool>)> =
                masks.into_iter().zip(truth_masks.iter().cloned()).collect();
            let acc = mask_accuracy(&pairs);
            f1s.insert(label, acc.f1_pct);
            let paper = PAPER.iter().find(|(m, ..)| *m == label).map(|(_, c, h)| {
                if city == City::Chengdu {
                    c
                } else {
                    h
                }
            });
            rows.push(vec![
                label.to_string(),
                format!("{:.2}", acc.precision_pct),
                paper.map(|p| format!("{:.2}", p[0])).unwrap_or_default(),
                format!("{:.2}", acc.recall_pct),
                paper.map(|p| format!("{:.2}", p[1])).unwrap_or_default(),
                format!("{:.2}", acc.f1_pct),
                paper.map(|p| format!("{:.2}", p[2])).unwrap_or_default(),
            ]);
        }
        print_table(
            &format!("Table 9 ({}): mask-channel accuracy", city.name()),
            "Routes rasterized to the PiT grid and compared with ground-truth masks.",
            &[
                "method", "Pre(%)", "p.Pre", "Rec(%)", "p.Rec", "F1(%)", "p.F1",
            ],
            &rows,
        );
        print_ordering_check(
            "DOT has the best route F1",
            f1s["DOT"] >= f1s["Dijkstra"] && f1s["DOT"] >= f1s["DeepST"],
        );
        print_ordering_check(
            "DeepST routes beat Dijkstra routes (F1)",
            f1s["DeepST"] >= f1s["Dijkstra"],
        );
    }
}
