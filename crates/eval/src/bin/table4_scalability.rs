//! Table 4: scalability — MAPE on Chengdu when training on 20–100% of the
//! training split.

use odt_eval::harness::{prepare_city, run_baselines, run_dot, City, CityRun};
use odt_eval::profile::EvalProfile;
use odt_eval::report::{print_ordering_check, print_table};

const SCALES: [usize; 5] = [20, 40, 60, 80, 100];

/// Paper Table 4 MAPE(%) rows at 20/40/60/80/100%.
const PAPER: &[(&str, [f64; 5])] = &[
    ("Dijkstra", [57.231, 54.802, 53.261, 52.218, 48.618]),
    ("DeepST", [32.635, 29.700, 28.864, 27.848, 27.503]),
    ("WDDRA", [31.081, 29.475, 27.005, 25.756, 24.553]),
    ("STDGCN", [30.305, 28.269, 26.987, 25.409, 23.187]),
    ("TEMP", [56.451, 49.361, 46.392, 41.461, 36.611]),
    ("LR", [90.412, 77.206, 61.451, 48.652, 44.514]),
    ("GBM", [43.592, 38.635, 34.322, 32.405, 29.636]),
    ("RNE", [38.386, 31.129, 29.700, 28.838, 27.660]),
    ("ST-NN", [27.916, 24.854, 23.548, 22.889, 21.532]),
    ("MURAT", [24.975, 22.251, 20.519, 19.431, 18.345]),
    ("DeepOD", [18.003, 17.253, 16.128, 15.380, 14.997]),
    ("DOT", [14.951, 14.034, 13.014, 12.486, 11.343]),
];

fn main() {
    let mut profile = EvalProfile::from_args();
    let _telemetry = odt_eval::telemetry::init(&profile);
    println!(
        "Table 4 — scalability on Chengdu (profile: {}, seed {})",
        profile.name, profile.seed
    );
    let base_run = prepare_city(City::Chengdu, &profile);

    // method -> MAPE per scale.
    let mut measured: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for (si, &scale) in SCALES.iter().enumerate() {
        eprintln!("--- scale {scale}% ---");
        let data = base_run.data.with_train_percent(scale);
        let run = CityRun {
            ctx: base_run.ctx,
            net: base_run.net.clone(),
            test_odts: base_run.test_odts.clone(),
            test_tts: base_run.test_tts.clone(),
            data,
        };
        let (results, _) = run_baselines(&run, &profile, None, &mut |m| eprintln!("  {m}"));
        // DOT: the 100% model is exactly the Table 3 model (cache shared);
        // smaller scales retrain with a reduced stage-1 budget.
        let saved_name = profile.name.clone();
        let saved_iters = profile.dot.stage1_iters;
        if scale != 100 {
            profile.name = format!("{saved_name}-scale{scale}");
            profile.dot.stage1_iters = (saved_iters / 2).max(400);
        }
        let (dot_result, _m, _p) =
            run_dot(&run, &profile, City::Chengdu, &mut |m| eprintln!("  {m}"));
        profile.name = saved_name;
        profile.dot.stage1_iters = saved_iters;

        for r in results.iter().chain(std::iter::once(&dot_result)) {
            measured
                .entry(r.name.clone())
                .or_insert_with(|| vec![f64::NAN; SCALES.len()])[si] = r.accuracy.mape_pct;
        }
    }

    let mut rows = Vec::new();
    for (method, paper) in PAPER {
        let m = measured.get(*method);
        let mut row = vec![method.to_string()];
        for si in 0..SCALES.len() {
            row.push(
                m.map(|v| format!("{:.2}", v[si]))
                    .unwrap_or_else(|| "-".into()),
            );
            row.push(format!("{:.2}", paper[si]));
        }
        rows.push(row);
    }
    print_table(
        "Table 4: MAPE(%) vs training-set scale (measured | paper)",
        "Columns alternate measured and paper values per scale.",
        &[
            "method", "20%", "p20", "40%", "p40", "60%", "p60", "80%", "p80", "100%", "p100",
        ],
        &rows,
    );

    // Shape checks: DOT stays best at every scale; methods improve with data.
    if let Some(dot) = measured.get("DOT") {
        let dot_best_everywhere = SCALES.iter().enumerate().all(|(si, _)| {
            measured
                .iter()
                .all(|(name, v)| name == "DOT" || v[si] >= dot[si] || v[si].is_nan())
        });
        print_ordering_check("DOT best at every scale (MAPE)", dot_best_everywhere);
        print_ordering_check(
            "DOT at 20% competitive with DeepOD at 100%",
            measured
                .get("DeepOD")
                .map(|d| dot[0] <= d[4] * 1.25)
                .unwrap_or(false),
        );
    }
}
