//! Table 8: PiT inference accuracy — per-channel RMSE/MAE between inferred
//! and ground-truth PiTs on the test split.

use odt_eval::harness::{prepare_city, run_dot, City};
use odt_eval::metrics::pit_accuracy;
use odt_eval::profile::EvalProfile;
use odt_eval::report::print_table;

/// Paper Table 8: (row, Chengdu rmse/mae, Harbin rmse/mae).
const PAPER: &[(&str, [f64; 2], [f64; 2])] = &[
    ("Overall", [0.196, 0.027], [0.181, 0.023]),
    ("Channel 1 (Mask)", [0.271, 0.039], [0.224, 0.028]),
    ("Channel 2 (ToD)", [0.128, 0.016], [0.183, 0.024]),
    ("Channel 3 (Offset)", [0.159, 0.025], [0.123, 0.016]),
];

fn main() {
    let profile = EvalProfile::from_args();
    let _telemetry = odt_eval::telemetry::init(&profile);
    println!(
        "Table 8 — PiT inference accuracy (profile: {}, seed {})",
        profile.name, profile.seed
    );

    for city in [City::Chengdu, City::Harbin] {
        let run = prepare_city(city, &profile);
        let (_result, _model, inferred) =
            run_dot(&run, &profile, city, &mut |m| eprintln!("  {m}"));
        let truth = run.test_pits();
        let pairs: Vec<(&odt_traj::Pit, &odt_traj::Pit)> =
            inferred.iter().zip(truth.iter()).collect();
        let acc = pit_accuracy(&pairs);

        let mut rows = Vec::new();
        for (i, (label, pc, ph)) in PAPER.iter().enumerate() {
            let p = if city == City::Chengdu { pc } else { ph };
            rows.push(vec![
                label.to_string(),
                format!("{:.3}", acc.rmse[i]),
                format!("{:.3}", p[0]),
                format!("{:.3}", acc.mae[i]),
                format!("{:.3}", p[1]),
            ]);
        }
        print_table(
            &format!("Table 8 ({}): inferred vs ground-truth PiTs", city.name()),
            "Values are over all pixels (PiT channels live in [-1, 1]).",
            &["channel", "RMSE", "p.RMSE", "MAE", "p.MAE"],
            &rows,
        );
    }
}
