//! `cluster_report`: the single pane for cross-process traces — pull
//! `/tracez` from the router and every replica, stitch fragments of the
//! same trace id back into one tree, and break the critical path down by
//! pipeline stage (router queue → wire hop → shard queue → denoise →
//! estimator → kernels).
//!
//! ```text
//! cluster_report --source <admin_addr | tracez.json> [--source ...]
//!                [--out <path>] [--perfetto <path>] [--timeout-ms <ms>]
//! ```
//!
//! * `--source`   — one `/tracez` payload per flag: an admin address
//!                  (`host:port`, fetched live over HTTP) or a path to a
//!                  saved payload. Give the router AND every replica —
//!                  stitching needs both sides of each wire hop.
//! * `--out`      — write the aggregate as `odt-cluster-report/v1` JSON.
//! * `--perfetto` — also export a Chrome-trace/Perfetto JSON where each
//!                  process is its own track (`pid` = source, `tid`
//!                  preserved), one stitched trace after another.
//!
//! Stitching: every process tags its `/tracez` fragments with the
//! process-local span ordinals plus `parent_span` — the *caller's* span
//! ordinal carried over `odt-wire/v1` (`0` = rooted here). Fragments
//! sharing a trace id are joined by remapping each fragment's ordinals
//! into a disjoint global id range and re-parenting each remote
//! fragment's root under the caller span of that ordinal (for a routed
//! request: the router's `router.downstream` hop — a failover retry shows
//! up as two hops under one router root, only the second having a shard
//! fragment attached). Clocks are per-process, so a remote fragment's
//! timeline is rebased to start at its caller span's start; the skew
//! (wire + framing time) is exactly the hop span's self time.

use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::time::Duration;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn arg_values(name: &str) -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .enumerate()
        .filter(|(_, a)| a.as_str() == name)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

/// One span as a process reported it (ordinals are process-local).
#[derive(Clone)]
struct Span {
    span_id: u64,
    parent_id: u64,
    name: String,
    start_us: u64,
    dur_us: u64,
    tid: u64,
}

/// One process's view of one trace.
struct Fragment {
    source: usize,
    trace_id: String,
    root: String,
    parent_span: u64,
    request_id: Option<u64>,
    start_us: u64,
    dur_us: u64,
    spans: Vec<Span>,
}

/// A span after stitching: globally unique ids, a source track, and a
/// timeline rebased so every fragment hangs off its caller's clock.
struct GSpan {
    id: u64,
    parent: u64,
    name: String,
    source: usize,
    ts_us: u64,
    dur_us: u64,
    tid: u64,
}

struct Stitched {
    trace_id: String,
    root_name: String,
    request_id: Option<u64>,
    dur_us: u64,
    sources: Vec<usize>,
    spans: Vec<GSpan>,
    orphan_fragments: usize,
}

/// The coarse pipeline stage of a span name, in critical-path order.
fn stage_of(name: &str) -> &'static str {
    if name == "router.request" {
        "router"
    } else if name.starts_with("router.queue") {
        "router_queue"
    } else if name.starts_with("router.downstream") {
        "wire"
    } else if name.starts_with("serve.queue") {
        "shard_queue"
    } else if name.starts_with("serve.rung") || name == "serve.request" {
        "serving"
    } else if name.starts_with("stage1.denoise") || name.starts_with("stage1.ddim") {
        "denoise"
    } else if name.starts_with("oracle.estimator") || name.starts_with("stage2") {
        "estimator"
    } else if name.starts_with("compute.") || name.starts_with("kernel") {
        "kernel"
    } else {
        "other"
    }
}

/// Pipeline display order — the order a routed request traverses stages.
const STAGE_ORDER: [&str; 9] = [
    "router",
    "router_queue",
    "wire",
    "shard_queue",
    "serving",
    "denoise",
    "estimator",
    "kernel",
    "other",
];

/// Fetch one source: a file path if one exists there, else an HTTP GET
/// of `/tracez` against an admin address.
fn fetch_source(spec: &str, timeout: Duration) -> String {
    if std::path::Path::new(spec).is_file() {
        return std::fs::read_to_string(spec).unwrap_or_else(|e| panic!("reading {spec}: {e}"));
    }
    match odt_net::http_get(spec, "/tracez", timeout) {
        Some((200, body)) => body,
        Some((status, _)) => panic!("{spec}/tracez answered HTTP {status}"),
        None => panic!("{spec}/tracez unreachable (not a file, not a live admin)"),
    }
}

/// Parse one `/tracez` payload into its instance name and fragments.
fn parse_payload(source: usize, body: &str) -> (String, Vec<Fragment>) {
    let v: Value =
        serde_json::from_str(body).unwrap_or_else(|e| panic!("source {source}: bad JSON: {e}"));
    assert_eq!(
        v["schema"].as_str(),
        Some("odt-tracez/v1"),
        "source {source}: not an odt-tracez/v1 payload"
    );
    let instance = v["instance"].as_str().unwrap_or("?").to_string();
    let mut frags = Vec::new();
    for t in v["traces"].as_array().map(Vec::as_slice).unwrap_or(&[]) {
        frags.push(Fragment {
            source,
            trace_id: t["trace_id"].as_str().unwrap_or("0").to_string(),
            root: t["root"].as_str().unwrap_or("?").to_string(),
            parent_span: t["parent_span"].as_u64().unwrap_or(0),
            request_id: t["request_id"].as_u64(),
            start_us: t["start_us"].as_u64().unwrap_or(0),
            dur_us: t["dur_us"].as_u64().unwrap_or(0),
            spans: t["spans"]
                .as_array()
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .map(|s| Span {
                    span_id: s["span_id"].as_u64().unwrap_or(0),
                    parent_id: s["parent_id"].as_u64().unwrap_or(0),
                    name: s["name"].as_str().unwrap_or("?").to_string(),
                    start_us: s["start_us"].as_u64().unwrap_or(0),
                    dur_us: s["dur_us"].as_u64().unwrap_or(0),
                    tid: s["tid"].as_u64().unwrap_or(0),
                })
                .collect(),
        });
    }
    (instance, frags)
}

/// Stitch one trace id's fragments into a single globally-id'd tree.
fn stitch(trace_id: &str, mut frags: Vec<Fragment>) -> Stitched {
    // The root fragment owns ordinal space first; prefer an explicit
    // local root (parent_span == 0), routers over shards when both claim
    // it (a shard hit directly by a traced client also roots locally).
    let root_idx = frags
        .iter()
        .position(|f| f.parent_span == 0 && f.root.starts_with("router."))
        .or_else(|| frags.iter().position(|f| f.parent_span == 0))
        .unwrap_or(0);
    frags.swap(0, root_idx);

    // Disjoint global id ranges: fragment i's ordinal k maps to
    // offset[i] + k. Ordinals are small and dense, so offsets stay small.
    let mut offsets = Vec::with_capacity(frags.len());
    let mut next = 0u64;
    for f in &frags {
        offsets.push(next);
        next += f.spans.iter().map(|s| s.span_id).max().unwrap_or(0) + 1;
    }

    // Attach each non-root fragment under the caller span of its
    // `parent_span` ordinal: any *other* fragment that has that ordinal,
    // the root fragment preferred (the common shape is star-around-router).
    // The attach also fixes the clock: the remote fragment is rebased so
    // its root starts when the caller span started.
    let mut attach: Vec<Option<(usize, u64)>> = vec![None; frags.len()]; // (frag, ordinal)
    let mut orphan_fragments = 0usize;
    for i in 1..frags.len() {
        let want = frags[i].parent_span;
        if want == 0 {
            orphan_fragments += 1; // two local roots under one trace id
            continue;
        }
        let found = std::iter::once(0)
            .chain(1..frags.len())
            .filter(|&j| j != i)
            .find(|&j| frags[j].spans.iter().any(|s| s.span_id == want));
        match found {
            Some(j) => attach[i] = Some((j, want)),
            None => orphan_fragments += 1,
        }
    }

    // Each fragment's rebase: global ts of its local-clock zero. Resolve
    // root-first; a fragment attached to an unresolved fragment (chained
    // hops) picks its base up on a later pass.
    let mut base: Vec<Option<u64>> = vec![None; frags.len()];
    base[0] = Some(0);
    let caller_span_start = |j: usize, ordinal: u64| -> u64 {
        frags[j]
            .spans
            .iter()
            .find(|s| s.span_id == ordinal)
            .map(|s| s.start_us.saturating_sub(frags[j].start_us))
            .unwrap_or(0)
    };
    for _ in 0..frags.len() {
        for i in 1..frags.len() {
            if base[i].is_some() {
                continue;
            }
            match attach[i] {
                Some((j, ord)) => {
                    if let Some(b) = base[j] {
                        base[i] = Some(b + caller_span_start(j, ord));
                    }
                }
                None => base[i] = Some(0), // orphan: leave it on the root's track origin
            }
        }
    }

    let mut spans = Vec::new();
    let mut sources = Vec::new();
    for (i, f) in frags.iter().enumerate() {
        if !sources.contains(&f.source) {
            sources.push(f.source);
        }
        let b = base[i].unwrap_or(0);
        for s in &f.spans {
            // A remote fragment's root re-parents onto its caller span.
            let parent = if s.parent_id == 0 {
                match attach[i] {
                    Some((j, ord)) => offsets[j] + ord,
                    None => 0,
                }
            } else {
                offsets[i] + s.parent_id
            };
            spans.push(GSpan {
                id: offsets[i] + s.span_id,
                parent,
                name: s.name.clone(),
                source: f.source,
                ts_us: b + s.start_us.saturating_sub(f.start_us),
                dur_us: s.dur_us,
                tid: s.tid,
            });
        }
    }
    Stitched {
        trace_id: trace_id.to_string(),
        root_name: frags[0].root.clone(),
        request_id: frags[0].request_id,
        dur_us: frags[0].dur_us,
        sources,
        spans,
        orphan_fragments,
    }
}

#[derive(Default, Clone)]
struct Agg {
    count: u64,
    total_us: u64,
    self_us: u64,
}

fn main() {
    let sources = arg_values("--source");
    if sources.is_empty() {
        eprintln!(
            "usage: cluster_report --source <admin_addr|tracez.json> [--source ...] \
             [--out <path>] [--perfetto <path>] [--timeout-ms <ms>]"
        );
        std::process::exit(2);
    }
    let timeout = Duration::from_millis(
        arg_value("--timeout-ms")
            .map(|v| v.parse().expect("--timeout-ms must be an integer"))
            .unwrap_or(2_000),
    );

    // Pull every payload, then bucket fragments by trace id.
    let mut instances: Vec<String> = Vec::new();
    let mut by_trace: BTreeMap<String, Vec<Fragment>> = BTreeMap::new();
    let mut fragments_total = 0usize;
    for (i, spec) in sources.iter().enumerate() {
        let body = fetch_source(spec, timeout);
        let (instance, frags) = parse_payload(i, &body);
        println!(
            "source {instance} ({spec}): {} trace fragment(s)",
            frags.len()
        );
        instances.push(instance);
        fragments_total += frags.len();
        for f in frags {
            by_trace.entry(f.trace_id.clone()).or_default().push(f);
        }
    }

    let stitched: Vec<Stitched> = by_trace
        .into_iter()
        .map(|(id, frags)| stitch(&id, frags))
        .collect();
    let cross: Vec<&Stitched> = stitched.iter().filter(|t| t.sources.len() >= 2).collect();
    let orphans: usize = stitched.iter().map(|t| t.orphan_fragments).sum();
    println!(
        "{} fragment(s) → {} stitched trace(s), {} cross-process, {} orphan fragment(s)",
        fragments_total,
        stitched.len(),
        cross.len(),
        orphans
    );

    // Stage rollup over the *stitched* trees: self time recomputed with
    // cross-process children subtracted, so the `wire` stage's self time
    // is the hop minus the shard's whole fragment — network + framing.
    let mut by_stage: BTreeMap<&'static str, Agg> = BTreeMap::new();
    let mut by_name: BTreeMap<String, Agg> = BTreeMap::new();
    let mut root_total_us = 0u64;
    for t in &stitched {
        root_total_us += t.dur_us;
        let mut child_sum: BTreeMap<u64, u64> = BTreeMap::new();
        for s in &t.spans {
            *child_sum.entry(s.parent).or_default() += s.dur_us;
        }
        for s in &t.spans {
            let own = s
                .dur_us
                .saturating_sub(child_sum.get(&s.id).copied().unwrap_or(0));
            for a in [
                by_stage.entry(stage_of(&s.name)).or_default(),
                by_name.entry(s.name.clone()).or_default(),
            ] {
                a.count += 1;
                a.total_us += s.dur_us;
                a.self_us += own;
            }
        }
    }

    let ms = |us: u64| us as f64 / 1_000.0;
    let denom = root_total_us.max(1) as f64;
    println!("\ncritical path by stage (self time, pipeline order):");
    println!(
        "  {:<14} {:>8} {:>12} {:>12} {:>7}",
        "stage", "spans", "total ms", "self ms", "self %"
    );
    for stage in STAGE_ORDER {
        if let Some(a) = by_stage.get(stage) {
            println!(
                "  {:<14} {:>8} {:>12.3} {:>12.3} {:>6.1}%",
                stage,
                a.count,
                ms(a.total_us),
                ms(a.self_us),
                a.self_us as f64 / denom * 100.0
            );
        }
    }

    let agg_json = |m: &BTreeMap<String, Agg>| -> Value {
        Value::Object(
            m.iter()
                .map(|(k, a)| {
                    (
                        k.clone(),
                        json!({"count": a.count, "total_us": a.total_us, "self_us": a.self_us}),
                    )
                })
                .collect(),
        )
    };
    let trace_rows: Vec<Value> = stitched
        .iter()
        .map(|t| {
            let mut stages: BTreeMap<&'static str, u64> = BTreeMap::new();
            for s in &t.spans {
                *stages.entry(stage_of(&s.name)).or_default() += s.dur_us;
            }
            json!({
                "trace_id": t.trace_id,
                "root": t.root_name,
                "request_id": t.request_id,
                "dur_us": t.dur_us,
                "processes": t.sources.iter().map(|&s| instances[s].clone()).collect::<Vec<_>>(),
                "spans": t.spans.len(),
                "downstream_hops": t.spans.iter().filter(|s| s.name == "router.downstream").count(),
                "stages": stages,
                "orphan_fragments": t.orphan_fragments,
            })
        })
        .collect();

    if let Some(out) = arg_value("--out") {
        let stages: BTreeMap<String, Agg> = by_stage
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        let report = json!({
            "schema": "odt-cluster-report/v1",
            "sources": instances,
            "fragments": fragments_total,
            "stitched": stitched.len(),
            "cross_process": cross.len(),
            "orphan_fragments": orphans,
            "mean_root_us": root_total_us as f64 / stitched.len().max(1) as f64,
            "stages": agg_json(&stages),
            "spans": agg_json(&by_name),
            "traces": trace_rows,
        });
        std::fs::write(&out, format!("{report:#}\n"))
            .unwrap_or_else(|e| panic!("writing {out}: {e}"));
        println!("\nwrote {out}");
    }

    if let Some(path) = arg_value("--perfetto") {
        // Chrome-trace JSON: one pid per source process (named tracks),
        // stitched traces laid out one after another with a visual gap.
        let mut events: Vec<Value> = instances
            .iter()
            .enumerate()
            .map(|(pid, name)| {
                json!({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                       "args": {"name": name}})
            })
            .collect();
        let mut cursor = 0u64;
        for t in &stitched {
            for s in &t.spans {
                events.push(json!({
                    "name": s.name, "cat": stage_of(&s.name), "ph": "X",
                    "ts": cursor + s.ts_us, "dur": s.dur_us.max(1),
                    "pid": s.source, "tid": s.tid,
                    "args": {"trace_id": t.trace_id, "span_id": s.id, "parent": s.parent},
                }));
            }
            let end = t
                .spans
                .iter()
                .map(|s| s.ts_us + s.dur_us)
                .max()
                .unwrap_or(0);
            cursor += end + 1_000;
        }
        let doc = json!({"traceEvents": events, "displayTimeUnit": "ms"});
        std::fs::write(&path, format!("{doc}\n")).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path} ({} events)", events.len());
    }

    if stitched.is_empty() {
        eprintln!("no traces in any source — is trace retention on (ODT_TRACE=1)?");
        std::process::exit(1);
    }
}
