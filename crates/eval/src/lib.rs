//! # odt-eval
//!
//! Metrics and the experiment harness that regenerates every table and
//! figure of the paper's evaluation (§6). Each table/figure has a binary in
//! `src/bin/`; DESIGN.md §3 maps experiment ids to binaries.
//!
//! All binaries accept:
//!
//! * `--profile fast|paper` — experiment scale (default `fast`, the
//!   CPU-sized profile recorded in EXPERIMENTS.md; `paper` restores the
//!   paper's hyper-parameters and full iteration counts).
//! * `--seed <u64>` — RNG seed (default 7).
//! * `--trips <n>` — raw simulated trips per city before preprocessing.
//! * `--queries <n>` — maximum test queries evaluated.
//! * `--telemetry <path>` — dump the structured event log as JSONL to
//!   `<path>` at the end of the run (see [`telemetry`] and DESIGN.md §7).
//!
//! Binaries print the paper's reported numbers next to the measured ones so
//! the *shape* of each result (orderings, rough factors, crossovers) can be
//! compared directly. Every run ends with a metrics summary: counters,
//! gauges and latency histograms (p50/p95/p99/max) collected through
//! [`odt_obs`], including the `serve.query.full` / `serve.query.fallback`
//! split between full-pipeline answers and degraded-mode fallbacks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod casestudy;
pub mod harness;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod telemetry;
