//! Evaluation metrics: the paper's RMSE / MAE / MAPE (Tables 3–7), the
//! per-channel PiT errors (Table 8) and the mask precision/recall/F1
//! (Table 9).

use odt_traj::Pit;

/// Regression metrics over (prediction, truth) pairs in seconds.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Regression {
    /// Root mean squared error, minutes (the paper's unit).
    pub rmse_min: f64,
    /// Mean absolute error, minutes.
    pub mae_min: f64,
    /// Mean absolute percentage error, percent.
    pub mape_pct: f64,
}

/// Compute RMSE/MAE/MAPE from per-query (predicted, actual) seconds.
pub fn regression(pairs: &[(f64, f64)]) -> Regression {
    assert!(!pairs.is_empty(), "no evaluation pairs");
    let n = pairs.len() as f64;
    let mut se = 0.0;
    let mut ae = 0.0;
    let mut ape = 0.0;
    for &(pred, actual) in pairs {
        let err = pred - actual;
        se += err * err;
        ae += err.abs();
        if actual.abs() > 1e-9 {
            ape += (err / actual).abs();
        }
    }
    Regression {
        rmse_min: (se / n).sqrt() / 60.0,
        mae_min: ae / n / 60.0,
        mape_pct: ape / n * 100.0,
    }
}

/// Per-channel PiT reconstruction errors (Table 8): RMSE and MAE over all
/// pixels of all (inferred, ground-truth) pairs, overall and per channel.
#[derive(Clone, Debug)]
pub struct PitAccuracy {
    /// `[overall, mask, tod, offset]` RMSE.
    pub rmse: [f64; 4],
    /// `[overall, mask, tod, offset]` MAE.
    pub mae: [f64; 4],
}

/// Compute Table 8 metrics. PiT values live in `[-1, 1]`, matching the
/// paper's error scale.
pub fn pit_accuracy(pairs: &[(&Pit, &Pit)]) -> PitAccuracy {
    assert!(!pairs.is_empty(), "no PiT pairs");
    let mut se = [0.0f64; 4];
    let mut ae = [0.0f64; 4];
    let mut count = [0.0f64; 4];
    for (pred, truth) in pairs {
        assert_eq!(pred.lg(), truth.lg(), "grid mismatch");
        for ch in 0..3 {
            for row in 0..pred.lg() {
                for col in 0..pred.lg() {
                    let e = (pred.at(ch, row, col) - truth.at(ch, row, col)) as f64;
                    se[0] += e * e;
                    ae[0] += e.abs();
                    count[0] += 1.0;
                    se[ch + 1] += e * e;
                    ae[ch + 1] += e.abs();
                    count[ch + 1] += 1.0;
                }
            }
        }
    }
    let mut rmse = [0.0; 4];
    let mut mae = [0.0; 4];
    for i in 0..4 {
        rmse[i] = (se[i] / count[i]).sqrt();
        mae[i] = ae[i] / count[i];
    }
    PitAccuracy { rmse, mae }
}

/// Binary-mask accuracy (Table 9).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MaskAccuracy {
    /// Precision, percent.
    pub precision_pct: f64,
    /// Recall, percent.
    pub recall_pct: f64,
    /// F1 score, percent.
    pub f1_pct: f64,
}

/// Precision/recall/F1 of predicted visit masks against ground truth.
pub fn mask_accuracy(pairs: &[(Vec<bool>, Vec<bool>)]) -> MaskAccuracy {
    let (mut tp, mut fp, mut fn_) = (0.0f64, 0.0f64, 0.0f64);
    for (pred, truth) in pairs {
        assert_eq!(pred.len(), truth.len(), "mask length mismatch");
        for (&p, &t) in pred.iter().zip(truth) {
            match (p, t) {
                (true, true) => tp += 1.0,
                (true, false) => fp += 1.0,
                (false, true) => fn_ += 1.0,
                (false, false) => {}
            }
        }
    }
    let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
    let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    MaskAccuracy {
        precision_pct: precision * 100.0,
        recall_pct: recall * 100.0,
        f1_pct: f1 * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_tensor::Tensor;

    #[test]
    fn regression_known_values() {
        // Errors of +60 s and -120 s on truths of 600 s and 600 s.
        let r = regression(&[(660.0, 600.0), (480.0, 600.0)]);
        assert!((r.mae_min - 1.5).abs() < 1e-9); // (1 + 2) / 2 minutes
        assert!((r.rmse_min - ((3600.0f64 + 14400.0) / 2.0).sqrt() / 60.0).abs() < 1e-9);
        assert!((r.mape_pct - 15.0).abs() < 1e-9); // (10% + 20%) / 2
    }

    #[test]
    fn perfect_predictions_zero_error() {
        let r = regression(&[(600.0, 600.0), (1_200.0, 1_200.0)]);
        assert_eq!(r.rmse_min, 0.0);
        assert_eq!(r.mae_min, 0.0);
        assert_eq!(r.mape_pct, 0.0);
    }

    #[test]
    fn pit_accuracy_identical_is_zero() {
        let t = Tensor::full(vec![3, 2, 2], 0.5);
        let a = Pit::from_tensor(t.clone());
        let b = Pit::from_tensor(t);
        let acc = pit_accuracy(&[(&a, &b)]);
        assert_eq!(acc.rmse, [0.0; 4]);
    }

    #[test]
    fn pit_accuracy_channels_separate() {
        let mut ta = Tensor::full(vec![3, 1, 1], 0.0);
        let tb = Tensor::full(vec![3, 1, 1], 0.0);
        ta.set(&[1, 0, 0], 1.0); // ToD channel off by 1
        let a = Pit::from_tensor(ta);
        let b = Pit::from_tensor(tb);
        let acc = pit_accuracy(&[(&a, &b)]);
        assert_eq!(acc.mae[1], 0.0); // mask ok
        assert_eq!(acc.mae[2], 1.0); // tod off
        assert_eq!(acc.mae[3], 0.0); // offset ok
        assert!((acc.mae[0] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn mask_accuracy_known() {
        // pred: TTFF, truth: TFTF -> tp 1, fp 1, fn 1.
        let pairs = vec![(
            vec![true, true, false, false],
            vec![true, false, true, false],
        )];
        let m = mask_accuracy(&pairs);
        assert!((m.precision_pct - 50.0).abs() < 1e-9);
        assert!((m.recall_pct - 50.0).abs() < 1e-9);
        assert!((m.f1_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn mask_accuracy_empty_predictions() {
        let pairs = vec![(vec![false; 4], vec![true, false, false, false])];
        let m = mask_accuracy(&pairs);
        assert_eq!(m.precision_pct, 0.0);
        assert_eq!(m.recall_pct, 0.0);
        assert_eq!(m.f1_pct, 0.0);
    }
}
