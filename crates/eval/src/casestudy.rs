//! Case-study analyses for Figures 10–12: PiT visualizations and the
//! time-of-day travel-time profiles between frequently traveled cell pairs.

use odt_traj::{GridSpec, Pit, Trajectory};
use std::collections::HashMap;

/// ASCII rendering of a PiT's time-offset channel: '·' for unvisited,
/// '0'-'9' for the visit order (early → late). This is the textual analogue
/// of the paper's Figure 10/11 heat maps.
pub fn render_offset_channel(pit: &Pit) -> String {
    let mut out = String::new();
    for row in (0..pit.lg()).rev() {
        for col in 0..pit.lg() {
            if pit.is_visited(row, col) {
                let offset = pit.at(2, row, col); // [-1, 1]
                let digit = (((offset + 1.0) / 2.0 * 9.0).round() as u8).min(9);
                out.push(char::from(b'0' + digit));
            } else {
                out.push('·');
            }
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

/// Jaccard overlap between two PiT masks — used by the case study to
/// quantify "the inferred PiT matches the ground truth well".
pub fn mask_jaccard(a: &Pit, b: &Pit) -> f64 {
    let (ma, mb) = (a.mask_bool(), b.mask_bool());
    let mut inter = 0.0;
    let mut union = 0.0;
    for (&x, &y) in ma.iter().zip(&mb) {
        if x && y {
            inter += 1.0;
        }
        if x || y {
            union += 1.0;
        }
    }
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

/// A frequently traveled ordered pair of cells.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CellPair {
    /// Flat row-major index of the earlier cell.
    pub from: usize,
    /// Flat row-major index of the later cell.
    pub to: usize,
}

/// The `top_k` most frequent (origin-cell, destination-cell) pairs among
/// trajectories (by their first/last fixes).
pub fn top_cell_pairs(trips: &[Trajectory], grid: &GridSpec, top_k: usize) -> Vec<CellPair> {
    let mut counts: HashMap<CellPair, usize> = HashMap::new();
    for t in trips {
        let (r0, c0) = grid.cell_of(t.points[0].loc);
        let (r1, c1) = grid.cell_of(t.points[t.points.len() - 1].loc);
        let pair = CellPair {
            from: grid.flat_index(r0, c0),
            to: grid.flat_index(r1, c1),
        };
        if pair.from != pair.to {
            *counts.entry(pair).or_insert(0) += 1;
        }
    }
    let mut ranked: Vec<(CellPair, usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then_with(|| (a.0.from, a.0.to).cmp(&(b.0.from, b.0.to)))
    });
    ranked.into_iter().take(top_k).map(|(p, _)| p).collect()
}

/// Average travel time (seconds) between two cells per 2-hour bin of the
/// day, measured from **ground-truth trajectories**: for every trajectory
/// visiting both cells, the timestamp difference between the visits.
pub fn tod_profile_from_trips(
    trips: &[Trajectory],
    grid: &GridSpec,
    pair: &CellPair,
) -> [Option<f64>; 12] {
    let mut sums = [0.0f64; 12];
    let mut counts = [0usize; 12];
    for t in trips {
        let mut t_from = None;
        let mut t_to = None;
        for p in &t.points {
            let (r, c) = grid.cell_of(p.loc);
            let idx = grid.flat_index(r, c);
            if idx == pair.from && t_from.is_none() {
                t_from = Some(p.t);
            }
            if idx == pair.to && t_to.is_none() {
                t_to = Some(p.t);
            }
        }
        if let (Some(a), Some(b)) = (t_from, t_to) {
            if b > a {
                let bin = ((a.rem_euclid(86_400.0)) / 7_200.0) as usize % 12;
                sums[bin] += b - a;
                counts[bin] += 1;
            }
        }
    }
    std::array::from_fn(|i| (counts[i] > 0).then(|| sums[i] / counts[i] as f64))
}

/// The same profile measured from **inferred PiTs**, decoding each visit's
/// second-of-day from the ToD channel (the paper's Figure 12 comparison).
pub fn tod_profile_from_pits(pits: &[Pit], grid: &GridSpec, pair: &CellPair) -> [Option<f64>; 12] {
    let mut sums = [0.0f64; 12];
    let mut counts = [0usize; 12];
    let (fr, fc) = grid.cell_of_index(pair.from);
    let (tr, tc) = grid.cell_of_index(pair.to);
    for pit in pits {
        let (Some(a), Some(b)) = (
            pit.visit_second_of_day(fr, fc),
            pit.visit_second_of_day(tr, tc),
        ) else {
            continue;
        };
        if b > a {
            let bin = (a / 7_200.0) as usize % 12;
            sums[bin] += b - a;
            counts[bin] += 1;
        }
    }
    std::array::from_fn(|i| (counts[i] > 0).then(|| sums[i] / counts[i] as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_roadnet::LngLat;
    use odt_traj::GpsPoint;

    fn grid() -> GridSpec {
        GridSpec::new(
            LngLat { lng: 0.0, lat: 0.0 },
            LngLat { lng: 1.0, lat: 1.0 },
            4,
        )
    }

    fn diag_trip(t0: f64, dt: f64) -> Trajectory {
        Trajectory::new(vec![
            GpsPoint {
                loc: LngLat { lng: 0.1, lat: 0.1 },
                t: t0,
            },
            GpsPoint {
                loc: LngLat { lng: 0.9, lat: 0.9 },
                t: t0 + dt,
            },
        ])
    }

    #[test]
    fn render_marks_visits() {
        let pit = Pit::from_trajectory(&diag_trip(0.0, 600.0), &grid());
        let art = render_offset_channel(&pit);
        assert!(art.contains('0'));
        assert!(art.contains('9'));
        assert!(art.contains('·'));
    }

    #[test]
    fn jaccard_bounds() {
        let g = grid();
        let a = Pit::from_trajectory(&diag_trip(0.0, 600.0), &g);
        assert_eq!(mask_jaccard(&a, &a), 1.0);
        let b = Pit::from_trajectory(
            &Trajectory::new(vec![
                GpsPoint {
                    loc: LngLat { lng: 0.9, lat: 0.1 },
                    t: 0.0,
                },
                GpsPoint {
                    loc: LngLat {
                        lng: 0.95,
                        lat: 0.15,
                    },
                    t: 60.0,
                },
            ]),
            &g,
        );
        assert_eq!(mask_jaccard(&a, &b), 0.0);
    }

    #[test]
    fn top_pairs_ranked_by_frequency() {
        let g = grid();
        let mut trips = vec![diag_trip(0.0, 600.0); 5];
        trips.push(Trajectory::new(vec![
            GpsPoint {
                loc: LngLat { lng: 0.9, lat: 0.1 },
                t: 0.0,
            },
            GpsPoint {
                loc: LngLat { lng: 0.1, lat: 0.9 },
                t: 600.0,
            },
        ]));
        let pairs = top_cell_pairs(&trips, &g, 2);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].from, g.flat_index(0, 0));
        assert_eq!(pairs[0].to, g.flat_index(3, 3));
    }

    #[test]
    fn trip_profile_measures_visit_gap() {
        let g = grid();
        // Departure 08:00, 600 s to cross.
        let trips = vec![diag_trip(8.0 * 3_600.0, 600.0)];
        let pair = CellPair {
            from: g.flat_index(0, 0),
            to: g.flat_index(3, 3),
        };
        let profile = tod_profile_from_trips(&trips, &g, &pair);
        let bin = (8.0f64 * 3_600.0 / 7_200.0) as usize;
        assert_eq!(profile[bin], Some(600.0));
        assert!(profile[0].is_none());
    }

    #[test]
    fn pit_profile_matches_trip_profile() {
        let g = grid();
        // 09:00 = 32 400 s; its ToD encoding (-0.25) is exactly
        // representable in f32, keeping the visit away from a bin edge.
        let trip = diag_trip(9.0 * 3_600.0, 600.0);
        let pit = Pit::from_trajectory(&trip, &g);
        let pair = CellPair {
            from: g.flat_index(0, 0),
            to: g.flat_index(3, 3),
        };
        let from_pits = tod_profile_from_pits(&[pit], &g, &pair);
        let bin = (9.0f64 * 3_600.0 / 7_200.0) as usize;
        let v = from_pits[bin].expect("bin populated");
        assert!((v - 600.0).abs() < 30.0, "got {v}"); // f32 ToD quantization
    }
}
