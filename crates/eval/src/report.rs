//! Report rendering: aligned tables with the paper's reported values next
//! to the measured ones.

use crate::metrics::Regression;

/// One method's accuracy row plus the paper's reported values.
#[derive(Clone, Debug)]
pub struct AccuracyRow {
    /// Method name.
    pub method: String,
    /// Measured metrics; `None` when the method was skipped in this run.
    pub measured: Option<Regression>,
    /// The paper's `(rmse_min, mae_min, mape_pct)` for this row, if any.
    pub paper: Option<(f64, f64, f64)>,
}

/// Print a Table 3/4/6/7-style accuracy table.
pub fn print_accuracy_table(title: &str, context: &str, rows: &[AccuracyRow]) {
    println!("\n=== {title} ===");
    println!("{context}");
    println!(
        "{:<16} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
        "method", "RMSE(min)", "MAE(min)", "MAPE(%)", "p.RMSE", "p.MAE", "p.MAPE"
    );
    println!("{}", "-".repeat(16 + 3 + 32 + 3 + 32 + 4));
    for row in rows {
        let (rm, ma, mp) = row
            .measured
            .map(|m| {
                (
                    format!("{:.3}", m.rmse_min),
                    format!("{:.3}", m.mae_min),
                    format!("{:.3}", m.mape_pct),
                )
            })
            .unwrap_or_else(|| ("-".into(), "-".into(), "-".into()));
        let (pr, pa, pp) = row
            .paper
            .map(|(a, b, c)| (format!("{a:.3}"), format!("{b:.3}"), format!("{c:.3}")))
            .unwrap_or_else(|| ("-".into(), "-".into(), "-".into()));
        println!(
            "{:<16} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
            row.method, rm, ma, mp, pr, pa, pp
        );
    }
}

/// Print a generic aligned table: header + rows of equal arity.
pub fn print_table(title: &str, context: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    if !context.is_empty() {
        println!("{context}");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), header.len(), "row arity mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Print the end-of-run observability summary: every registered counter,
/// gauge and latency histogram (p50/p95/p99/max) from the global
/// [`odt_obs`] metrics registry. Appended to every harness report so Table
/// 5-style efficiency numbers always come with their latency distribution —
/// notably `serve.query.full` vs `serve.query.fallback`, the split between
/// full-DDPM answers and degraded-mode fallbacks.
pub fn print_metrics_summary() {
    let snap = odt_obs::snapshot();
    println!("\n=== Metrics summary ===");
    if !snap.counters.is_empty() {
        println!("counters:");
        for (name, v) in &snap.counters {
            println!("  {name:<28} {v}");
        }
    }
    if !snap.gauges.is_empty() {
        println!("gauges:");
        for (name, v) in &snap.gauges {
            println!("  {name:<28} {v:.3}");
        }
    }
    if !snap.histograms.is_empty() {
        println!(
            "{:<28} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11}",
            "histogram (µs)", "count", "mean", "p50", "p95", "p99", "max"
        );
        for (name, s) in &snap.histograms {
            println!(
                "{:<28} {:>9} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>11.1}",
                name, s.count, s.mean_us, s.p50_us, s.p95_us, s.p99_us, s.max_us
            );
        }
    }
}

/// The ordering check the paper's claims rest on: report whether
/// `a_metric < b_metric` (lower-is-better) matched the paper.
pub fn print_ordering_check(label: &str, ours_holds: bool) {
    println!(
        "  [shape] {label}: {}",
        if ours_holds {
            "HOLDS (matches paper)"
        } else {
            "DOES NOT HOLD"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_table_renders_without_panic() {
        let rows = vec![
            AccuracyRow {
                method: "DOT".into(),
                measured: Some(Regression {
                    rmse_min: 3.1,
                    mae_min: 1.2,
                    mape_pct: 11.3,
                }),
                paper: Some((3.177, 1.272, 11.343)),
            },
            AccuracyRow {
                method: "skipped".into(),
                measured: None,
                paper: None,
            },
        ];
        print_accuracy_table("Table X", "ctx", &rows);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn generic_table_checks_arity() {
        print_table("t", "", &["a", "b"], &[vec!["1".into()]]);
    }
}
