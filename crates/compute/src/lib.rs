//! # odt-compute
//!
//! The workspace's parallel compute backend: a zero-dependency (std-only)
//! scoped thread pool with chunked work distribution, plus cache-blocked
//! GEMM kernels built on it. `odt-tensor`'s hot kernels (matmul, batched
//! matmul, conv2d and the row-wise normalizations) dispatch through this
//! crate; everything above them — the DDPM sampler, the MViT estimator,
//! the oracle's batched serving path — inherits the parallelism.
//!
//! ## Model
//!
//! * One global pool, sized by `ODT_THREADS` (default: available cores).
//!   Workers are spawned once, on first use, and live for the process.
//! * One job at a time. A job is a chunk count plus a `Fn(usize)` body;
//!   all lanes (workers + the submitting thread) grab chunk indices from
//!   one atomic counter until none remain. The submitting call returns
//!   only when every chunk has finished.
//! * Nested `parallel_*` calls run inline on the calling thread, so
//!   kernels compose without deadlocking the single-job pool.
//!
//! ## Determinism
//!
//! Kernels parallelized over *disjoint outputs* ([`parallel_rows`],
//! [`parallel_chunks_mut`]) preserve each output element's accumulation
//! order and are bit-identical across pool sizes. Reductions use
//! [`parallel_reduce_deterministic`], whose chunk split is fixed by the
//! item count — not the thread count — so they too are bit-identical for
//! any `ODT_THREADS`, including the [`run_sequential`] baseline.
//!
//! ## Safety
//!
//! This crate is the workspace's one home for `unsafe`: the borrow-erased
//! job pointer and the disjoint-range slice splitting are encapsulated
//! here behind safe APIs, letting every tensor/NN crate keep
//! `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

pub mod gemm;
mod pool;

pub use pool::{
    ensure_initialized, is_inline, num_threads, parallel_chunks_mut, parallel_for_chunks,
    parallel_reduce_deterministic, parallel_rows, parallel_rows2, run_sequential, ThreadPool,
};
