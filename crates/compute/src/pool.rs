//! The scoped worker pool and its chunked work-distribution helpers.
//!
//! One global pool (sized by `ODT_THREADS`, default = available cores) runs
//! one job at a time. A job is a `Fn(usize)` chunk body plus a chunk count;
//! workers and the submitting thread race to grab chunk indices from a
//! shared atomic counter, so load balances automatically across uneven
//! chunks. The submitting call blocks until every chunk has completed,
//! which is what makes the borrow-erasing pointer hand-off below sound —
//! the closure (and everything it borrows) strictly outlives all uses.
//!
//! Nested parallelism is flattened: pool workers and any thread inside
//! [`run_sequential`] execute `parallel_*` calls inline on the calling
//! thread, so kernels can be freely composed without deadlocking the
//! single-job pool.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

thread_local! {
    /// Depth of "run inline" scopes on this thread: >0 on pool workers, on
    /// threads inside [`run_sequential`], and on a submitter while it
    /// participates in its own job.
    static INLINE: Cell<usize> = const { Cell::new(0) };
}

/// A borrow-erased pointer to the chunk body of the active job.
///
/// Safety contract: the submitting thread keeps the pointee alive (it is a
/// stack-borrowed closure) until the job's `remaining` counter reaches
/// zero, and no worker dereferences the pointer after decrementing
/// `remaining` for its final chunk.
struct RawTask(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (it is shared by reference across the
// workers of one job) and only dereferenced while the submitter provably
// keeps it alive — see `ThreadPool::run`.
unsafe impl Send for RawTask {}
unsafe impl Sync for RawTask {}

/// One in-flight job: chunk body, grab counter and completion counter.
struct Job {
    task: RawTask,
    n_chunks: usize,
    next: AtomicUsize,
    remaining: AtomicUsize,
    panicked: AtomicBool,
    published: Instant,
    /// Trace context of the submitting thread, captured at publish time and
    /// re-installed inside each worker for the duration of the job — so
    /// `compute.queue_wait_us` and kernel spans executed on workers are
    /// attributed to the originating request's trace.
    ctx: Option<odt_obs::TraceContext>,
}

struct PoolState {
    /// Bumped once per published job so sleeping workers can tell a new job
    /// from a spurious wakeup.
    epoch: u64,
    job: Option<Arc<Job>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for the next job.
    work_cv: Condvar,
    /// The submitter waits here for its job's last chunk.
    done_cv: Condvar,
}

/// The worker pool. Use the free functions ([`parallel_for_chunks`] and
/// friends) rather than holding one directly; they share one global pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    /// Serializes job submission; a contended submitter runs inline.
    submit: Mutex<()>,
    threads: usize,
    tasks: &'static odt_obs::Counter,
}

impl ThreadPool {
    fn from_env() -> Self {
        let threads = threads_from_env();
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        // The submitter participates in every job, so spawn one fewer
        // worker than the requested parallelism.
        for w in 0..threads.saturating_sub(1) {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("odt-compute-{w}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn odt-compute worker");
        }
        odt_obs::gauge("compute.threads").set(threads as f64);
        ThreadPool {
            shared,
            submit: Mutex::new(()),
            threads,
            tasks: odt_obs::counter("compute.tasks"),
        }
    }

    /// Run `f(0..n_chunks)` across the pool, returning when all chunks are
    /// done. Caller must have checked `n_chunks > 1` and inline mode off.
    fn run<'a>(&self, n_chunks: usize, f: &'a (dyn Fn(usize) + Sync + 'a)) {
        // One job at a time: if another thread's job is active, run inline
        // rather than queueing (keeps latency flat under contention).
        let Ok(_submit) = self.submit.try_lock() else {
            for i in 0..n_chunks {
                f(i);
            }
            return;
        };
        // SAFETY: lifetime erasure only. This function does not return
        // until `remaining == 0` (the wait below), so `f` outlives every
        // dereference of the stored pointer.
        let erased: &'static (dyn Fn(usize) + Sync + 'static) = unsafe {
            std::mem::transmute::<
                &'a (dyn Fn(usize) + Sync + 'a),
                &'static (dyn Fn(usize) + Sync + 'static),
            >(f)
        };
        let task = RawTask(erased as *const _);
        let job = Arc::new(Job {
            task,
            n_chunks,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n_chunks),
            panicked: AtomicBool::new(false),
            published: Instant::now(),
            ctx: odt_obs::trace::current_context(),
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            st.epoch = st.epoch.wrapping_add(1);
            st.job = Some(job.clone());
            self.shared.work_cv.notify_all();
        }
        self.tasks.inc();
        // Participate: the submitter is one of the pool's `threads` lanes.
        // Inline mode is raised so nested parallel calls inside `f` run on
        // this thread instead of re-entering the single-job pool.
        INLINE.with(|c| c.set(c.get() + 1));
        run_chunks(&self.shared, &job);
        INLINE.with(|c| c.set(c.get() - 1));
        let mut st = self.shared.state.lock().unwrap();
        while job.remaining.load(Ordering::Acquire) != 0 {
            st = self.shared.done_cv.wait(st).unwrap();
        }
        st.job = None;
        drop(st);
        if job.panicked.load(Ordering::Relaxed) {
            panic!("odt-compute: a parallel chunk panicked");
        }
    }
}

fn worker_loop(shared: &Shared) {
    // Workers always execute nested parallel calls inline.
    INLINE.with(|c| c.set(1));
    let queue_wait = odt_obs::histogram("compute.queue_wait_us");
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if let Some(job) = st.job.clone() {
                        break job;
                    }
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        // Adopt the submitter's trace context (if any) for this job, so
        // the queue-wait sample and every span opened by the chunk bodies
        // land in the originating request's trace.
        let _ctx = job.ctx.map(odt_obs::trace::install_context);
        queue_wait.record(job.published.elapsed());
        run_chunks(shared, &job);
    }
}

/// Grab and execute chunks of `job` until none remain.
fn run_chunks(shared: &Shared, job: &Job) {
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n_chunks {
            return;
        }
        // SAFETY: `remaining` for this chunk is only decremented after the
        // call below returns, and the submitter blocks until `remaining`
        // reaches zero — so the pointee is alive here.
        let f = unsafe { &*job.task.0 };
        if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
            job.panicked.store(true, Ordering::Relaxed);
        }
        if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last chunk overall: wake the submitter. Taking the lock
            // before notifying closes the check-then-wait race.
            let _st = shared.state.lock().unwrap();
            shared.done_cv.notify_all();
        }
    }
}

fn threads_from_env() -> usize {
    let default = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match std::env::var("ODT_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(default),
        Err(_) => default(),
    }
}

fn pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(ThreadPool::from_env)
}

/// Number of parallel lanes (workers + the submitting thread). Reads
/// `ODT_THREADS` on first use; defaults to the available cores.
pub fn num_threads() -> usize {
    pool().threads
}

/// Force pool creation and metric registration (`compute.threads`,
/// `compute.tasks`, `compute.queue_wait_us`). Useful at program start so
/// the gauges exist in every metrics snapshot even before the first
/// parallel kernel runs.
pub fn ensure_initialized() {
    let _ = num_threads();
    let _ = odt_obs::counter("compute.tasks").get();
    let _ = odt_obs::histogram("compute.queue_wait_us").count();
}

/// Run `f` with all `parallel_*` calls on this thread executing inline
/// (single-threaded), regardless of pool size. The sequential baseline for
/// benchmarks and the equivalence tests; chunk *splits* are unchanged, so
/// deterministic fixed-split reductions produce bit-identical results to
/// the parallel path.
pub fn run_sequential<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            INLINE.with(|c| c.set(c.get() - 1));
        }
    }
    INLINE.with(|c| c.set(c.get() + 1));
    let _g = Guard;
    f()
}

/// `true` when `parallel_*` calls on this thread currently run inline
/// (worker thread, nested call, or [`run_sequential`] scope).
pub fn is_inline() -> bool {
    INLINE.with(|c| c.get()) > 0
}

/// Execute `f(chunk_index)` for every chunk in `0..n_chunks`, distributing
/// chunks over the pool. Blocks until all chunks are done. Runs inline when
/// nested, when the pool has one lane, or for a single chunk.
pub fn parallel_for_chunks<F>(n_chunks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if n_chunks == 0 {
        return;
    }
    // Child span only when the calling thread is inside a traced request
    // (a single relaxed atomic load otherwise — the tracing-off hot path
    // stays unchanged).
    let _sp = odt_obs::span_if_traced("compute.parallel");
    if n_chunks == 1 || is_inline() {
        for i in 0..n_chunks {
            f(i);
        }
        return;
    }
    let p = pool();
    if p.threads <= 1 {
        for i in 0..n_chunks {
            f(i);
        }
        return;
    }
    p.run(n_chunks, &f);
}

/// Chunk row count targeting ~4 chunks per lane (for load balance on
/// uneven work), but at least `grain` rows per chunk so tiny rows are not
/// dispatched individually.
fn rows_per_chunk(rows: usize, grain: usize) -> usize {
    let lanes = if is_inline() { 1 } else { num_threads() };
    rows.div_ceil(lanes * 4).max(grain.max(1))
}

/// Split `data` (a row-major `[rows, row_len]` buffer) into disjoint row
/// ranges and run `f(first_row, rows_slice)` on each in parallel. Each
/// slice holds whole rows; `first_row` is the index of its first row.
pub fn parallel_rows<F>(data: &mut [f32], row_len: usize, grain_rows: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(row_len > 0, "parallel_rows needs row_len > 0");
    assert_eq!(
        data.len() % row_len,
        0,
        "buffer length {} not a multiple of row length {row_len}",
        data.len()
    );
    let rows = data.len() / row_len;
    if rows == 0 {
        return;
    }
    let per = rows_per_chunk(rows, grain_rows);
    let n_chunks = rows.div_ceil(per);
    let base = data.as_mut_ptr() as usize;
    parallel_for_chunks(n_chunks, |c| {
        let r0 = c * per;
        let r1 = (r0 + per).min(rows);
        // SAFETY: chunks cover disjoint row ranges of `data`, and the
        // enclosing call does not return (nor otherwise touch `data`)
        // until every chunk has completed.
        let slice = unsafe {
            std::slice::from_raw_parts_mut(
                (base as *mut f32).add(r0 * row_len),
                (r1 - r0) * row_len,
            )
        };
        f(r0, slice);
    });
}

/// Like [`parallel_rows`], but splits two buffers that share a row count
/// (`a` is `[rows, la]`, `b` is `[rows, lb]`) by the same row ranges, so a
/// kernel can fill a per-row output and a per-row statistic in one pass.
pub fn parallel_rows2<F>(
    a: &mut [f32],
    b: &mut [f32],
    la: usize,
    lb: usize,
    grain_rows: usize,
    f: F,
) where
    F: Fn(usize, &mut [f32], &mut [f32]) + Sync,
{
    assert!(
        la > 0 && lb > 0,
        "parallel_rows2 needs positive row lengths"
    );
    assert_eq!(a.len() % la, 0, "buffer a not a multiple of its row length");
    assert_eq!(b.len() % lb, 0, "buffer b not a multiple of its row length");
    let rows = a.len() / la;
    assert_eq!(rows, b.len() / lb, "buffers disagree on row count");
    if rows == 0 {
        return;
    }
    let per = rows_per_chunk(rows, grain_rows);
    let n_chunks = rows.div_ceil(per);
    let base_a = a.as_mut_ptr() as usize;
    let base_b = b.as_mut_ptr() as usize;
    parallel_for_chunks(n_chunks, |c| {
        let r0 = c * per;
        let r1 = (r0 + per).min(rows);
        // SAFETY: as in `parallel_rows` — disjoint row ranges per chunk of
        // two buffers that are both exclusively borrowed by this call.
        let (sa, sb) = unsafe {
            (
                std::slice::from_raw_parts_mut((base_a as *mut f32).add(r0 * la), (r1 - r0) * la),
                std::slice::from_raw_parts_mut((base_b as *mut f32).add(r0 * lb), (r1 - r0) * lb),
            )
        };
        f(r0, sa, sb);
    });
}

/// Split a flat buffer into disjoint element ranges of at least
/// `grain` elements and run `f(first_index, chunk)` on each in parallel.
pub fn parallel_chunks_mut<F>(data: &mut [f32], grain: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    parallel_rows(data, 1, grain, f);
}

/// Deterministic fixed-split parallel reduction.
///
/// Items `0..n_items` are split into chunks of exactly `items_per_chunk`
/// (the last may be short) **independently of the thread count**. Each
/// chunk folds its items, in ascending order, into a fresh accumulator
/// from `make()`; the per-chunk partials are returned in chunk order for
/// the caller to merge. Because neither the split nor either fold order
/// depends on scheduling, the result is bit-identical across any pool
/// size, including [`run_sequential`].
pub fn parallel_reduce_deterministic<T, M, F>(
    n_items: usize,
    items_per_chunk: usize,
    make: M,
    fold: F,
) -> Vec<T>
where
    T: Send,
    M: Fn() -> T + Sync,
    F: Fn(&mut T, usize) + Sync,
{
    let per = items_per_chunk.max(1);
    let n_chunks = n_items.div_ceil(per);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n_chunks);
    slots.resize_with(n_chunks, || None);
    let base = slots.as_mut_ptr() as usize;
    parallel_for_chunks(n_chunks, |c| {
        let mut acc = make();
        for i in c * per..((c + 1) * per).min(n_items) {
            fold(&mut acc, i);
        }
        // SAFETY: each chunk writes exactly its own pre-allocated slot,
        // and the enclosing call owns `slots` and blocks until all chunks
        // complete. Overwriting the `None` drops nothing.
        unsafe { *(base as *mut Option<T>).add(c) = Some(acc) };
    });
    slots
        .into_iter()
        .map(|s| s.expect("every chunk fills its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_chunk_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        parallel_for_chunks(97, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_rows_partitions_whole_buffer() {
        let mut data = vec![0.0f32; 13 * 7];
        parallel_rows(&mut data, 7, 1, |r0, rows| {
            for (off, row) in rows.chunks_mut(7).enumerate() {
                for v in row.iter_mut() {
                    *v = (r0 + off) as f32;
                }
            }
        });
        for r in 0..13 {
            assert!(data[r * 7..(r + 1) * 7].iter().all(|&v| v == r as f32));
        }
    }

    #[test]
    fn parallel_rows2_shares_row_ranges() {
        let mut a = vec![0.0f32; 9 * 4];
        let mut b = vec![0.0f32; 9];
        parallel_rows2(&mut a, &mut b, 4, 1, 1, |r0, sa, sb| {
            for (off, row) in sa.chunks_mut(4).enumerate() {
                let r = (r0 + off) as f32;
                row.fill(r);
                sb[off] = r * 10.0;
            }
        });
        for r in 0..9 {
            assert!(a[r * 4..(r + 1) * 4].iter().all(|&v| v == r as f32));
            assert_eq!(b[r], r as f32 * 10.0);
        }
    }

    #[test]
    fn reduce_is_fixed_split_and_ordered() {
        // Partial sums must reflect the fixed split, not the thread count.
        let parts = parallel_reduce_deterministic(10, 4, || 0u64, |acc, i| *acc += i as u64);
        // Chunks are [0..4), [4..8), [8..10) regardless of pool size.
        assert_eq!(parts, vec![6, 22, 17]);
        let seq = run_sequential(|| {
            parallel_reduce_deterministic(10, 4, || 0u64, |acc, i| *acc += i as u64)
        });
        assert_eq!(parts, seq);
    }

    #[test]
    fn run_sequential_forces_inline() {
        run_sequential(|| {
            assert!(is_inline());
            let tid = std::thread::current().id();
            parallel_for_chunks(64, |_| {
                assert_eq!(std::thread::current().id(), tid);
            });
        });
        assert!(!is_inline());
    }

    #[test]
    fn nested_parallel_calls_run_inline_not_deadlock() {
        let count = AtomicU64::new(0);
        parallel_for_chunks(8, |_| {
            parallel_for_chunks(8, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let total = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let total = total.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    parallel_for_chunks(16, |_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 16);
    }

    #[test]
    fn chunk_panic_propagates_to_submitter() {
        let r = catch_unwind(|| {
            parallel_for_chunks(8, |i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn worker_spans_attribute_to_submitting_trace() {
        odt_obs::trace::set_sample_every(1);
        let tid;
        {
            let root = odt_obs::trace::root_span("test.pool.trace_root");
            tid = root.trace_id().expect("sampled");
            parallel_for_chunks(8, |_| {
                let _s = odt_obs::span("test.pool.chunk_span");
            });
        }
        odt_obs::trace::set_sample_every(0);
        let traces = odt_obs::trace::retained_traces();
        let t = traces
            .iter()
            .find(|t| t.trace_id == tid)
            .expect("trace retained");
        // Every chunk span — wherever it physically ran — belongs to the
        // submitting request's trace, alongside the pool dispatch span.
        let chunks = t
            .spans
            .iter()
            .filter(|s| s.name == "test.pool.chunk_span")
            .count();
        assert_eq!(chunks, 8, "all chunk spans attributed: {:?}", t.spans);
        assert!(t.spans.iter().any(|s| s.name == "compute.parallel"));
    }

    #[test]
    fn zero_and_one_chunks_are_noops_or_inline() {
        parallel_for_chunks(0, |_| panic!("must not run"));
        let ran = AtomicUsize::new(0);
        parallel_for_chunks(1, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }
}
