//! Cache-blocked, row-parallel GEMM kernels on raw `f32` slices.
//!
//! All three variants accumulate (`C += …`) and preserve, for every output
//! element, the exact ascending-`p` accumulation order of the naive `ikj`
//! loops they replace — including the skip-zero fast path — so their
//! results are **bit-identical** to the single-threaded reference kernels
//! for any pool size. Parallelism is over disjoint row ranges of `C`;
//! blocking over the inner dimension keeps the active panel of `B` hot in
//! cache while a row chunk streams over it.

use crate::pool::{num_threads, parallel_rows};

/// Inner-dimension block size (`f32` panel of `KB × n` stays cache-hot
/// while a row chunk streams over it).
pub const KB: usize = 64;

/// Below this many multiply-adds the parallel dispatch overhead dominates
/// and the kernels run inline on the calling thread.
const MIN_PAR_MADDS: usize = 32 * 1024;

/// Rows per chunk so each chunk has a meaningful amount of work.
fn grain_rows(per_row_madds: usize) -> usize {
    (4096 / per_row_madds.max(1)).max(1)
}

/// `C[m,n] += A[m,k] @ B[k,n]`, row-parallel and k-blocked.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm: A is not [m, k]");
    assert_eq!(b.len(), k * n, "gemm: B is not [k, n]");
    assert_eq!(c.len(), m * n, "gemm: C is not [m, n]");
    if m * k * n < MIN_PAR_MADDS || num_threads() == 1 {
        gemm_rows(a, b, c, m, k, n);
        return;
    }
    parallel_rows(c, n, grain_rows(k * n), |r0, c_rows| {
        let mc = c_rows.len() / n;
        gemm_rows(&a[r0 * k..(r0 + mc) * k], b, c_rows, mc, k, n);
    });
}

/// The serial body of [`gemm`] for `mc` rows: k-blocked `ikj` with the
/// skip-zero fast path. Public so batched callers that already parallelize
/// over an outer dimension can reuse the blocked kernel inline.
pub fn gemm_rows(a: &[f32], b: &[f32], c: &mut [f32], mc: usize, k: usize, n: usize) {
    for p0 in (0..k).step_by(KB) {
        let p1 = (p0 + KB).min(k);
        for i in 0..mc {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate().take(p1).skip(p0) {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// `C[m,n] += Aᵀ @ B` with `A` stored `[k, m]`, row-parallel over `C`.
pub fn gemm_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "gemm_at_b: A is not [k, m]");
    assert_eq!(b.len(), k * n, "gemm_at_b: B is not [k, n]");
    assert_eq!(c.len(), m * n, "gemm_at_b: C is not [m, n]");
    if m * k * n < MIN_PAR_MADDS || num_threads() == 1 {
        gemm_at_b_rows(a, b, c, 0, m, m, k, n);
        return;
    }
    parallel_rows(c, n, grain_rows(k * n), |r0, c_rows| {
        let mc = c_rows.len() / n;
        gemm_at_b_rows(a, b, c_rows, r0, mc, m, k, n);
    });
}

/// Serial body of [`gemm_at_b`] for output rows `i0..i0 + mc`: `p`-outer
/// so each `B` row is loaded once per chunk pass, ascending `p` per output
/// element (bit-identical to the naive kernel).
#[allow(clippy::too_many_arguments)]
pub fn gemm_at_b_rows(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    i0: usize,
    mc: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    for p in 0..k {
        let arow = &a[p * m + i0..p * m + i0 + mc];
        let brow = &b[p * n..(p + 1) * n];
        for (ii, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut c[ii * n..(ii + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// `C[m,n] += A @ Bᵀ` with `B` stored `[n, k]`, row-parallel over `C`.
pub fn gemm_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm_a_bt: A is not [m, k]");
    assert_eq!(b.len(), n * k, "gemm_a_bt: B is not [n, k]");
    assert_eq!(c.len(), m * n, "gemm_a_bt: C is not [m, n]");
    if m * k * n < MIN_PAR_MADDS || num_threads() == 1 {
        gemm_a_bt_rows(a, b, c, m, k, n);
        return;
    }
    parallel_rows(c, n, grain_rows(k * n), |r0, c_rows| {
        let mc = c_rows.len() / n;
        gemm_a_bt_rows(&a[r0 * k..(r0 + mc) * k], b, c_rows, mc, k, n);
    });
}

/// Serial body of [`gemm_a_bt`] for `mc` rows: one ascending-`p` dot
/// product per output element.
pub fn gemm_a_bt_rows(a: &[f32], b: &[f32], c: &mut [f32], mc: usize, k: usize, n: usize) {
    for i in 0..mc {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            c[i * n + j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::run_sequential;

    /// Naive reference `C += A @ B` (the pre-refactor kernel).
    fn naive_gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    c[i * n + j] += av * b[p * n + j];
                }
            }
        }
    }

    fn pseudo(n: usize, seed: u32) -> Vec<f32> {
        // Deterministic xorshift values in [-1, 1]; no rand dependency.
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 17;
                s ^= s << 5;
                (s as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn gemm_bit_identical_to_naive_and_sequential() {
        for &(m, k, n) in &[(1, 1, 1), (7, 13, 5), (33, 65, 17), (64, 128, 96)] {
            let a = pseudo(m * k, 3);
            let b = pseudo(k * n, 5);
            let mut want = vec![0.0f32; m * n];
            naive_gemm(&a, &b, &mut want, m, k, n);
            let mut got = vec![0.0f32; m * n];
            gemm(&a, &b, &mut got, m, k, n);
            assert_eq!(got, want, "parallel gemm differs at {m}x{k}x{n}");
            let mut seq = vec![0.0f32; m * n];
            run_sequential(|| gemm(&a, &b, &mut seq, m, k, n));
            assert_eq!(seq, want, "sequential gemm differs at {m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_at_b_matches_explicit_transpose() {
        let (m, k, n) = (19, 37, 11);
        let a = pseudo(k * m, 7); // stored [k, m]
        let b = pseudo(k * n, 9);
        // Reference: materialize Aᵀ then naive gemm.
        let mut at = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                at[i * k + p] = a[p * m + i];
            }
        }
        let mut want = vec![0.0f32; m * n];
        naive_gemm(&at, &b, &mut want, m, k, n);
        let mut got = vec![0.0f32; m * n];
        gemm_at_b(&a, &b, &mut got, m, k, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    fn gemm_a_bt_matches_explicit_transpose() {
        let (m, k, n) = (23, 31, 13);
        let a = pseudo(m * k, 11);
        let b = pseudo(n * k, 13); // stored [n, k]
        let mut bt = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let mut want = vec![0.0f32; m * n];
        naive_gemm(&a, &bt, &mut want, m, k, n);
        let mut got = vec![0.0f32; m * n];
        gemm_a_bt(&a, &b, &mut got, m, k, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    fn accumulates_into_nonzero_c() {
        let (m, k, n) = (3, 4, 2);
        let a = pseudo(m * k, 17);
        let b = pseudo(k * n, 19);
        let mut c = vec![1.0f32; m * n];
        let mut want = vec![1.0f32; m * n];
        naive_gemm(&a, &b, &mut want, m, k, n);
        gemm(&a, &b, &mut c, m, k, n);
        assert_eq!(c, want);
    }
}
