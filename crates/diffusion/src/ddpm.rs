//! The two Markov processes of the diffusion framework (paper §4.1) —
//! forward noising, the training objective of Algorithm 2, and the
//! conditioned sampling loop of Algorithm 1.

use crate::schedule::NoiseSchedule;
use odt_tensor::{Graph, Tensor, Var};
use rand::Rng;

/// A conditioned noise predictor `ε_θ(X_n, n, odt)`.
///
/// Implementations receive the noisy batch `[B, C, L, L]`, the per-sample
/// step indices (1-based) and the conditioning features `[B, F]`, and must
/// return a tensor shaped like the input.
pub trait NoisePredictor {
    /// Predict the noise added at step `n` for each sample.
    fn predict(&self, g: &Graph, x_noisy: Var, steps: &[usize], cond: &Tensor) -> Var;
}

/// The diffusion process: schedule plus the algorithms built on it.
#[derive(Clone, Debug)]
pub struct Ddpm {
    schedule: NoiseSchedule,
}

impl Ddpm {
    /// Build from a schedule.
    pub fn new(schedule: NoiseSchedule) -> Self {
        Ddpm { schedule }
    }

    /// The schedule in use.
    pub fn schedule(&self) -> &NoiseSchedule {
        &self.schedule
    }

    /// A standard-normal tensor.
    pub fn sample_noise(shape: Vec<usize>, rng: &mut impl Rng) -> Tensor {
        odt_tensor::init::normal(rng, shape, 1.0)
    }

    /// Closed-form forward diffusion (Eq. 4):
    /// `X_n = sqrt(ᾱ_n) X_0 + sqrt(1 - ᾱ_n) ε`, with a per-sample step.
    ///
    /// `x0`: `[B, C, L, L]`, `steps[i] ∈ 1..=N`, `eps` shaped like `x0`.
    pub fn q_sample(&self, x0: &Tensor, steps: &[usize], eps: &Tensor) -> Tensor {
        assert_eq!(x0.shape(), eps.shape(), "noise must match x0 shape");
        assert_eq!(x0.shape()[0], steps.len(), "one step per batch sample");
        let b = steps.len();
        let per = x0.numel() / b;
        let mut out = x0.clone();
        for (i, &n) in steps.iter().enumerate() {
            let ab = self.schedule.alpha_bar(n);
            let (ca, cb) = (ab.sqrt(), (1.0 - ab).sqrt());
            let xs = &mut out.data_mut()[i * per..(i + 1) * per];
            let es = &eps.data()[i * per..(i + 1) * per];
            for (x, &e) in xs.iter_mut().zip(es) {
                *x = ca * *x + cb * e;
            }
        }
        out
    }

    /// One training loss (Algorithm 2, Eq. 11): sample per-sample steps and
    /// noise, form `X_n`, and return the MSE between true and predicted
    /// noise as a graph node ready for `backward`.
    pub fn training_loss(
        &self,
        g: &Graph,
        predictor: &dyn NoisePredictor,
        x0: &Tensor,
        cond: &Tensor,
        rng: &mut impl Rng,
    ) -> Var {
        self.training_loss_biased(g, predictor, x0, cond, 1.0, rng)
    }

    /// [`Ddpm::training_loss`] with a step-sampling exponent: steps are
    /// drawn as `n = 1 + ⌊uᵞ (N-1)⌋` with `u ~ U(0,1)`. `gamma = 1`
    /// reproduces Algorithm 2's uniform sampling; `gamma > 1` concentrates
    /// training on the low-noise, structure-forming steps — at reduced step
    /// counts those steps carry almost all of the reconstruction difficulty
    /// (the high-noise steps reduce to copying the input) yet get the same
    /// share of gradient under uniform sampling.
    pub fn training_loss_biased(
        &self,
        g: &Graph,
        predictor: &dyn NoisePredictor,
        x0: &Tensor,
        cond: &Tensor,
        gamma: f64,
        rng: &mut impl Rng,
    ) -> Var {
        let b = x0.shape()[0];
        let n_steps = self.schedule.n_steps();
        let steps: Vec<usize> = (0..b)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                1 + (u.powf(gamma) * (n_steps - 1) as f64).floor() as usize
            })
            .collect();
        let eps = Self::sample_noise(x0.shape().to_vec(), rng);
        let xn = self.q_sample(x0, &steps, &eps);
        let xn_v = g.input(xn);
        let pred = predictor.predict(g, xn_v, &steps, cond);
        let target = g.input(eps);
        g.mse(pred, target)
    }

    /// Algorithm 1: infer clean samples conditioned on `cond` (`[B, F]`),
    /// starting from pure Gaussian noise and denoising step by step
    /// (Eq. 10). Returns `[B, C, L, L]`.
    pub fn sample(
        &self,
        predictor: &dyn NoisePredictor,
        cond: &Tensor,
        channels: usize,
        lg: usize,
        rng: &mut impl Rng,
    ) -> Tensor {
        self.sample_clamped(predictor, cond, channels, lg, None, rng)
    }

    /// Algorithm 1 with optional clamping of the implied clean image.
    ///
    /// Each reverse step is computed through the predicted clean sample
    /// `x̂_0 = (X_n − √(1−ᾱ_n) ε_θ) / √ᾱ_n` and the true posterior mean
    ///
    /// `μ = √ᾱ_{n-1} β_n/(1−ᾱ_n) · x̂_0 + √α_n (1−ᾱ_{n-1})/(1−ᾱ_n) · X_n`,
    ///
    /// which is algebraically identical to Eq. 10 when `clamp` is `None`.
    /// With `clamp: Some((lo, hi))`, `x̂_0` is clipped to the data range
    /// first — the standard stabilization for few-step sampling: a learned
    /// ε_θ drifts off the forward marginal and the 1/√α amplification
    /// compounds the error; clamping projects the chain back onto the data
    /// manifold. PiT channels live in `[-1, 1]`, so DOT samples with
    /// `Some((-1.0, 1.0))`.
    pub fn sample_clamped(
        &self,
        predictor: &dyn NoisePredictor,
        cond: &Tensor,
        channels: usize,
        lg: usize,
        clamp: Option<(f32, f32)>,
        rng: &mut impl Rng,
    ) -> Tensor {
        let b = cond.shape()[0];
        let mut x = Self::sample_noise(vec![b, channels, lg, lg], rng);
        // Noise scratch reused across steps; `normal_into` draws the same
        // RNG sequence as the allocating path, so samples are unchanged.
        let mut z = Tensor::zeros(x.shape().to_vec());
        for n in (1..=self.schedule.n_steps()).rev() {
            // Span guard: records the step into the `stage1.denoise_step`
            // histogram and, when a request trace is active, emits a child
            // span so per-step cost shows up on the request's critical path.
            let _step = odt_obs::span("stage1.denoise_step");
            let g = Graph::new();
            let xv = g.input(x.clone());
            let steps = vec![n; b];
            let eps_pred = g.value(predictor.predict(&g, xv, &steps, cond));
            let beta = self.schedule.beta(n);
            let alpha = self.schedule.alpha(n);
            let ab = self.schedule.alpha_bar(n);
            let ab_prev = if n > 1 {
                self.schedule.alpha_bar(n - 1)
            } else {
                1.0
            };
            // Posterior variance β̃_n = (1-ᾱ_{n-1})/(1-ᾱ_n) β_n. The paper's
            // Σ = √β_n I choice is indistinguishable at N = 1000 where β is
            // tiny, but at reduced step counts β gets large and σ = √β
            // injects far more noise per step than the posterior allows.
            let sigma = ((1.0 - ab_prev) / (1.0 - ab) * beta).sqrt();
            let coef_x0 = ab_prev.sqrt() * beta / (1.0 - ab);
            let coef_xn = alpha.sqrt() * (1.0 - ab_prev) / (1.0 - ab);
            let inv_sqrt_ab = 1.0 / ab.sqrt();
            let noise_scale = (1.0 - ab).sqrt();

            if n > 1 {
                odt_tensor::init::normal_into(rng, z.data_mut(), 1.0);
            } else {
                z.data_mut().fill(0.0);
            }
            // In-place elementwise update (each lane reads its own x before
            // writing it): the whole batch advances one denoise step at a
            // time, parallel over disjoint element ranges.
            let ep = eps_pred.data();
            let zd = z.data();
            odt_compute::parallel_chunks_mut(x.data_mut(), 8192, |i0, xs| {
                for (off, xe) in xs.iter_mut().enumerate() {
                    let i = i0 + off;
                    let xn = *xe;
                    let mut x0_hat = inv_sqrt_ab * (xn - noise_scale * ep[i]);
                    if let Some((lo, hi)) = clamp {
                        x0_hat = x0_hat.clamp(lo, hi);
                    }
                    *xe = coef_x0 * x0_hat + coef_xn * xn + sigma * zd[i];
                }
            });
        }
        x
    }
}

impl Ddpm {
    /// [`Ddpm::sample_clamped`] with a **step-count override**: stochastic
    /// DDPM sampling over an evenly strided subsequence of `sample_steps ≤ N`
    /// schedule steps (the serving ladder's knob for trading PiT fidelity
    /// against latency without switching to deterministic DDIM).
    ///
    /// Between consecutive selected steps `n > m` the update collapses the
    /// skipped forward steps into one: `ᾱ` ratios give the effective
    /// `α' = ᾱ_n/ᾱ_m` and `β' = 1 − α'`, and the posterior mean/variance are
    /// computed exactly as in [`Ddpm::sample_clamped`] with those effective
    /// coefficients — so `sample_steps == N` delegates to the full chain and
    /// is bit-identical to it.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_clamped_strided(
        &self,
        predictor: &dyn NoisePredictor,
        cond: &Tensor,
        channels: usize,
        lg: usize,
        clamp: Option<(f32, f32)>,
        sample_steps: usize,
        rng: &mut impl Rng,
    ) -> Tensor {
        let n_train = self.schedule.n_steps();
        assert!(
            (1..=n_train).contains(&sample_steps),
            "sample_steps must be in 1..=N"
        );
        if sample_steps == n_train {
            return self.sample_clamped(predictor, cond, channels, lg, clamp, rng);
        }
        // Evenly strided descending subsequence, always including N and 1
        // (the same striding as DDIM).
        let mut steps: Vec<usize> = (0..sample_steps)
            .map(|i| 1 + i * (n_train - 1) / (sample_steps - 1).max(1))
            .collect();
        steps.dedup();
        steps.reverse();

        let b = cond.shape()[0];
        let mut x = Self::sample_noise(vec![b, channels, lg, lg], rng);
        let mut z = Tensor::zeros(x.shape().to_vec());
        for (i, &n) in steps.iter().enumerate() {
            let _step = odt_obs::span("stage1.denoise_step");
            let g = Graph::new();
            let xv = g.input(x.clone());
            let step_vec = vec![n; b];
            let eps_pred = g.value(predictor.predict(&g, xv, &step_vec, cond));
            let ab = self.schedule.alpha_bar(n);
            let ab_prev = steps
                .get(i + 1)
                .map(|&m| self.schedule.alpha_bar(m))
                .unwrap_or(1.0);
            // Effective one-shot coefficients over the skipped range.
            let alpha_eff = ab / ab_prev;
            let beta_eff = 1.0 - alpha_eff;
            let sigma = ((1.0 - ab_prev) / (1.0 - ab) * beta_eff).sqrt();
            let coef_x0 = ab_prev.sqrt() * beta_eff / (1.0 - ab);
            let coef_xn = alpha_eff.sqrt() * (1.0 - ab_prev) / (1.0 - ab);
            let inv_sqrt_ab = 1.0 / ab.sqrt();
            let noise_scale = (1.0 - ab).sqrt();

            if i + 1 < steps.len() {
                odt_tensor::init::normal_into(rng, z.data_mut(), 1.0);
            } else {
                z.data_mut().fill(0.0);
            }
            let ep = eps_pred.data();
            let zd = z.data();
            odt_compute::parallel_chunks_mut(x.data_mut(), 8192, |i0, xs| {
                for (off, xe) in xs.iter_mut().enumerate() {
                    let i = i0 + off;
                    let xn = *xe;
                    let mut x0_hat = inv_sqrt_ab * (xn - noise_scale * ep[i]);
                    if let Some((lo, hi)) = clamp {
                        x0_hat = x0_hat.clamp(lo, hi);
                    }
                    *xe = coef_x0 * x0_hat + coef_xn * xn + sigma * zd[i];
                }
            });
        }
        x
    }
}

impl Ddpm {
    /// DDIM sampling (Song et al., 2021) — an extension beyond the paper:
    /// deterministic (η = 0) sampling over a strided subsequence of the
    /// trained schedule, so a model trained with `N` steps can sample in
    /// `sample_steps ≪ N` denoiser evaluations:
    ///
    /// `X_{n'} = √ᾱ_{n'} x̂_0 + √(1-ᾱ_{n'}) ε_θ`, with `x̂_0` the clamped
    /// implied clean image. Used by the efficiency benchmarks to trade
    /// inference latency against PiT fidelity.
    pub fn sample_ddim(
        &self,
        predictor: &dyn NoisePredictor,
        cond: &Tensor,
        channels: usize,
        lg: usize,
        sample_steps: usize,
        clamp: Option<(f32, f32)>,
        rng: &mut impl Rng,
    ) -> Tensor {
        let n_train = self.schedule.n_steps();
        assert!(
            (1..=n_train).contains(&sample_steps),
            "sample_steps must be in 1..=N"
        );
        // Evenly strided step subsequence, descending, always including N
        // and 1.
        let mut steps: Vec<usize> = (0..sample_steps)
            .map(|i| 1 + i * (n_train - 1) / (sample_steps - 1).max(1))
            .collect();
        steps.dedup();
        steps.reverse();

        let b = cond.shape()[0];
        let mut x = Self::sample_noise(vec![b, channels, lg, lg], rng);
        for (i, &n) in steps.iter().enumerate() {
            let _step = odt_obs::span("stage1.ddim_step");
            let g = Graph::new();
            let xv = g.input(x.clone());
            let step_vec = vec![n; b];
            let eps = g.value(predictor.predict(&g, xv, &step_vec, cond));
            let ab = self.schedule.alpha_bar(n);
            let ab_next = steps
                .get(i + 1)
                .map(|&m| self.schedule.alpha_bar(m))
                .unwrap_or(1.0);
            let inv_sqrt_ab = 1.0 / ab.sqrt();
            let noise_scale = (1.0 - ab).sqrt();
            let next_noise = (1.0 - ab_next).sqrt();
            let sqrt_ab_next = ab_next.sqrt();
            let ep = eps.data();
            odt_compute::parallel_chunks_mut(x.data_mut(), 8192, |j0, xs| {
                for (off, xe) in xs.iter_mut().enumerate() {
                    let e = ep[j0 + off];
                    let mut x0_hat = inv_sqrt_ab * (*xe - noise_scale * e);
                    if let Some((lo, hi)) = clamp {
                        x0_hat = x0_hat.clamp(lo, hi);
                    }
                    *xe = sqrt_ab_next * x0_hat + next_noise * e;
                }
            });
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A predictor that always returns zeros (useful to test plumbing).
    struct ZeroPredictor;
    impl NoisePredictor for ZeroPredictor {
        fn predict(&self, g: &Graph, x_noisy: Var, _steps: &[usize], _cond: &Tensor) -> Var {
            g.scale(x_noisy, 0.0)
        }
    }

    /// An "oracle" predictor for a dataset where X_0 = 0: then
    /// X_n = sqrt(1-ᾱ_n) ε, so ε = X_n / sqrt(1-ᾱ_n).
    struct OraclePredictor {
        schedule: NoiseSchedule,
    }
    impl NoisePredictor for OraclePredictor {
        fn predict(&self, g: &Graph, x_noisy: Var, steps: &[usize], _cond: &Tensor) -> Var {
            let n = steps[0];
            assert!(steps.iter().all(|&s| s == n), "oracle assumes uniform step");
            let c = 1.0 / (1.0 - self.schedule.alpha_bar(n)).sqrt();
            g.scale(x_noisy, c)
        }
    }

    #[test]
    fn q_sample_at_final_step_is_nearly_noise() {
        let ddpm = Ddpm::new(NoiseSchedule::linear(1000));
        let mut rng = StdRng::seed_from_u64(0);
        let x0 = Tensor::full(vec![1, 1, 8, 8], 5.0);
        let eps = Ddpm::sample_noise(vec![1, 1, 8, 8], &mut rng);
        let xn = ddpm.q_sample(&x0, &[1000], &eps);
        // ᾱ_1000 ≈ 0, so X_N ≈ ε.
        for (a, b) in xn.data().iter().zip(eps.data()) {
            assert!((a - b).abs() < 0.5, "{a} vs {b}");
        }
    }

    #[test]
    fn q_sample_at_first_step_is_nearly_clean() {
        let ddpm = Ddpm::new(NoiseSchedule::linear(1000));
        let mut rng = StdRng::seed_from_u64(1);
        let x0 = Tensor::full(vec![1, 1, 4, 4], 2.0);
        let eps = Ddpm::sample_noise(vec![1, 1, 4, 4], &mut rng);
        let x1 = ddpm.q_sample(&x0, &[1], &eps);
        for v in x1.data() {
            assert!((v - 2.0).abs() < 0.1, "{v}");
        }
    }

    #[test]
    fn q_sample_per_sample_steps() {
        let ddpm = Ddpm::new(NoiseSchedule::linear(100));
        let mut rng = StdRng::seed_from_u64(2);
        let x0 = Tensor::ones(vec![2, 1, 2, 2]);
        let eps = Ddpm::sample_noise(vec![2, 1, 2, 2], &mut rng);
        let xn = ddpm.q_sample(&x0, &[1, 100], &eps);
        // Sample 0 nearly clean, sample 1 heavily noised.
        let d0: f32 = xn.data()[..4].iter().map(|v| (v - 1.0).abs()).sum();
        let d1: f32 = xn.data()[4..].iter().map(|v| (v - 1.0).abs()).sum();
        assert!(d0 < d1, "step-1 sample should be cleaner ({d0} vs {d1})");
    }

    #[test]
    fn training_loss_is_finite_scalar() {
        let ddpm = Ddpm::new(NoiseSchedule::linear(10));
        let mut rng = StdRng::seed_from_u64(3);
        let g = Graph::new();
        let x0 = Ddpm::sample_noise(vec![2, 3, 4, 4], &mut rng);
        let cond = Tensor::zeros(vec![2, 5]);
        let loss = ddpm.training_loss(&g, &ZeroPredictor, &x0, &cond, &mut rng);
        let v = g.value(loss);
        assert_eq!(v.numel(), 1);
        assert!(v.data()[0].is_finite() && v.data()[0] > 0.0);
    }

    #[test]
    fn sampling_with_oracle_recovers_zero_image() {
        // If the predictor perfectly predicts the noise of an all-zero
        // dataset, Algorithm 1 must converge to (near) zero images.
        let schedule = NoiseSchedule::linear(50);
        let ddpm = Ddpm::new(schedule.clone());
        let mut rng = StdRng::seed_from_u64(4);
        let cond = Tensor::zeros(vec![1, 5]);
        let out = ddpm.sample(&OraclePredictor { schedule }, &cond, 1, 4, &mut rng);
        assert_eq!(out.shape(), &[1, 1, 4, 4]);
        let max = out.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max < 0.35, "samples should approach 0, max |x| = {max}");
    }

    /// Analytic optimal predictor for scalar Gaussian data
    /// `x0 ~ N(mu, s²)`: `E[ε | X_n] = √(1-ᾱ)(X_n - √ᾱ·μ) / (ᾱs² + 1-ᾱ)`.
    struct GaussOracle {
        schedule: NoiseSchedule,
        mu: f32,
        s2: f32,
    }
    impl NoisePredictor for GaussOracle {
        fn predict(&self, g: &Graph, x_noisy: Var, steps: &[usize], _cond: &Tensor) -> Var {
            let n = steps[0];
            assert!(steps.iter().all(|&s| s == n));
            let ab = self.schedule.alpha_bar(n);
            let scale = (1.0 - ab).sqrt() / (ab * self.s2 + (1.0 - ab));
            g.scale(g.add_scalar(x_noisy, -(ab.sqrt() * self.mu)), scale)
        }
    }

    #[test]
    fn sampler_recovers_gaussian_data_distribution() {
        // With the analytically optimal predictor, the reverse process must
        // reproduce the data distribution — validating every coefficient in
        // the sampling update, including the posterior variance, even at
        // coarse schedules.
        for n_steps in [30usize, 200] {
            let schedule = NoiseSchedule::linear_scaled(n_steps);
            let ddpm = Ddpm::new(schedule.clone());
            let oracle = GaussOracle {
                schedule,
                mu: 3.0,
                s2: 0.25,
            };
            let mut rng = StdRng::seed_from_u64(1);
            let cond = Tensor::zeros(vec![512, 5]);
            let out = ddpm.sample(&oracle, &cond, 1, 1, &mut rng);
            let mean = out.data().iter().sum::<f32>() / 512.0;
            let var = out
                .data()
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 512.0;
            assert!((mean - 3.0).abs() < 0.15, "N={n_steps}: mean {mean}");
            assert!((var - 0.25).abs() < 0.12, "N={n_steps}: var {var}");
        }
    }

    #[test]
    fn clamping_projects_onto_data_range() {
        let schedule = NoiseSchedule::linear_scaled(20);
        let ddpm = Ddpm::new(schedule.clone());
        // Zero predictor: the chain wanders, but clamping must keep the
        // final sample's implied x0 near the range.
        let cond = Tensor::zeros(vec![8, 5]);
        let mut rng = StdRng::seed_from_u64(2);
        let out = ddpm.sample_clamped(&ZeroPredictor, &cond, 1, 4, Some((-1.0, 1.0)), &mut rng);
        assert!(out.is_finite());
        // The last step with clamped x0 and sigma_1 = 0 lands inside [-1,1].
        assert!(out.data().iter().all(|v| v.abs() <= 1.0 + 1e-4), "{out:?}");
    }

    #[test]
    fn strided_ddpm_at_full_steps_matches_full_chain() {
        let ddpm = Ddpm::new(NoiseSchedule::linear_scaled(20));
        let cond = Tensor::zeros(vec![2, 5]);
        let full = ddpm.sample_clamped(
            &ZeroPredictor,
            &cond,
            1,
            4,
            Some((-1.0, 1.0)),
            &mut StdRng::seed_from_u64(9),
        );
        let strided = ddpm.sample_clamped_strided(
            &ZeroPredictor,
            &cond,
            1,
            4,
            Some((-1.0, 1.0)),
            20,
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(full.data(), strided.data());
    }

    #[test]
    fn strided_ddpm_recovers_gaussian_data_with_few_steps() {
        // The collapsed-step posterior coefficients must still reproduce the
        // data distribution with the analytically optimal predictor.
        let schedule = NoiseSchedule::linear_scaled(200);
        let ddpm = Ddpm::new(schedule.clone());
        let oracle = GaussOracle {
            schedule,
            mu: 3.0,
            s2: 0.25,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let cond = Tensor::zeros(vec![512, 5]);
        let out = ddpm.sample_clamped_strided(&oracle, &cond, 1, 1, None, 12, &mut rng);
        let mean = out.data().iter().sum::<f32>() / 512.0;
        let var = out
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 512.0;
        assert!((mean - 3.0).abs() < 0.2, "mean {mean}");
        assert!((var - 0.25).abs() < 0.15, "var {var}");
    }

    #[test]
    fn strided_ddpm_shapes_and_determinism() {
        let ddpm = Ddpm::new(NoiseSchedule::linear_scaled(50));
        let cond = Tensor::zeros(vec![3, 5]);
        let a = ddpm.sample_clamped_strided(
            &ZeroPredictor,
            &cond,
            2,
            6,
            Some((-1.0, 1.0)),
            5,
            &mut StdRng::seed_from_u64(13),
        );
        let b = ddpm.sample_clamped_strided(
            &ZeroPredictor,
            &cond,
            2,
            6,
            Some((-1.0, 1.0)),
            5,
            &mut StdRng::seed_from_u64(13),
        );
        assert_eq!(a.shape(), &[3, 2, 6, 6]);
        assert!(a.is_finite());
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn ddim_recovers_gaussian_mean_with_few_steps() {
        // Deterministic DDIM with the analytic oracle must land on the data
        // mean even with very few evaluation steps.
        let schedule = NoiseSchedule::linear_scaled(100);
        let ddpm = Ddpm::new(schedule.clone());
        let oracle = GaussOracle {
            schedule,
            mu: 3.0,
            s2: 0.25,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let cond = Tensor::zeros(vec![256, 5]);
        let out = ddpm.sample_ddim(&oracle, &cond, 1, 1, 8, None, &mut rng);
        let mean = out.data().iter().sum::<f32>() / 256.0;
        assert!((mean - 3.0).abs() < 0.2, "mean {mean}");
        // Deterministic: DDIM variance comes only from the seed noise, so
        // the sample spread must be nonzero but bounded by the data spread.
        let var = out
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 256.0;
        assert!(var < 1.0, "var {var}");
    }

    #[test]
    fn ddim_fewer_steps_than_training() {
        let ddpm = Ddpm::new(NoiseSchedule::linear_scaled(50));
        let cond = Tensor::zeros(vec![2, 5]);
        let mut rng = StdRng::seed_from_u64(5);
        let out = ddpm.sample_ddim(&ZeroPredictor, &cond, 3, 4, 5, Some((-1.0, 1.0)), &mut rng);
        assert_eq!(out.shape(), &[2, 3, 4, 4]);
        assert!(out.is_finite());
    }

    #[test]
    fn sampling_shapes_and_determinism() {
        let ddpm = Ddpm::new(NoiseSchedule::linear(5));
        let cond = Tensor::zeros(vec![3, 5]);
        let a = ddpm.sample(&ZeroPredictor, &cond, 2, 6, &mut StdRng::seed_from_u64(7));
        let b = ddpm.sample(&ZeroPredictor, &cond, 2, 6, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.shape(), &[3, 2, 6, 6]);
        assert_eq!(a.data(), b.data());
    }
}
