//! The DDPM noise schedule (paper Eqs. 2–5).

use serde::{Deserialize, Serialize};

/// Precomputed β, α and ᾱ sequences for an `N`-step diffusion.
///
/// Steps are 1-indexed as in the paper (`n ∈ {1, …, N}`); accessors take the
/// paper's `n`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NoiseSchedule {
    betas: Vec<f32>,
    alphas: Vec<f32>,
    alpha_bars: Vec<f32>,
}

impl NoiseSchedule {
    /// The paper's linear schedule: β scales linearly from `1e-4` to `0.02`
    /// over `n_steps` steps ("we follow the linear schedule used in DDPM").
    pub fn linear(n_steps: usize) -> Self {
        Self::linear_range(n_steps, 1e-4, 0.02)
    }

    /// A linear schedule whose total injected noise matches the paper's
    /// 1000-step schedule regardless of `n_steps`: β endpoints scale by
    /// `1000 / n_steps` (capped below 1) so that `ᾱ_N ≈ 0` and Eq. 5 —
    /// `X_N ~ N(0, I)` — actually holds. With `n_steps = 1000` this is
    /// exactly [`NoiseSchedule::linear`]. Use this when running reduced
    /// step counts on CPU; sampling from pure noise is only valid when the
    /// forward process reaches pure noise.
    pub fn linear_scaled(n_steps: usize) -> Self {
        let scale = (1000.0 / n_steps as f32).max(1.0);
        let beta_end = (0.02 * scale).min(0.75);
        let beta_start = (1e-4 * scale).min(beta_end);
        Self::linear_range(n_steps, beta_start, beta_end)
    }

    /// A linear schedule with explicit endpoints.
    pub fn linear_range(n_steps: usize, beta_start: f32, beta_end: f32) -> Self {
        assert!(n_steps >= 1, "schedule needs at least one step");
        assert!(0.0 < beta_start && beta_start <= beta_end && beta_end < 1.0);
        let betas: Vec<f32> = if n_steps == 1 {
            vec![beta_start]
        } else {
            (0..n_steps)
                .map(|i| beta_start + (beta_end - beta_start) * i as f32 / (n_steps - 1) as f32)
                .collect()
        };
        let alphas: Vec<f32> = betas.iter().map(|b| 1.0 - b).collect();
        let mut alpha_bars = Vec::with_capacity(n_steps);
        let mut acc = 1.0f32;
        for &a in &alphas {
            acc *= a;
            alpha_bars.push(acc);
        }
        NoiseSchedule {
            betas,
            alphas,
            alpha_bars,
        }
    }

    /// Total number of diffusion steps `N`.
    pub fn n_steps(&self) -> usize {
        self.betas.len()
    }

    /// `β_n` for `n ∈ 1..=N`.
    pub fn beta(&self, n: usize) -> f32 {
        self.betas[n - 1]
    }

    /// `α_n = 1 - β_n`.
    pub fn alpha(&self, n: usize) -> f32 {
        self.alphas[n - 1]
    }

    /// `ᾱ_n = Π_{m=1}^{n} α_m`.
    pub fn alpha_bar(&self, n: usize) -> f32 {
        self.alpha_bars[n - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_endpoints() {
        let s = NoiseSchedule::linear(1000);
        assert_eq!(s.n_steps(), 1000);
        assert!((s.beta(1) - 1e-4).abs() < 1e-9);
        assert!((s.beta(1000) - 0.02).abs() < 1e-7);
    }

    #[test]
    fn betas_monotone_increasing() {
        let s = NoiseSchedule::linear(100);
        for n in 2..=100 {
            assert!(s.beta(n) > s.beta(n - 1));
        }
    }

    #[test]
    fn alpha_bar_is_cumulative_product() {
        let s = NoiseSchedule::linear(10);
        let mut acc = 1.0f32;
        for n in 1..=10 {
            acc *= s.alpha(n);
            assert!((s.alpha_bar(n) - acc).abs() < 1e-7);
        }
    }

    #[test]
    fn alpha_bar_decays_toward_zero() {
        let s = NoiseSchedule::linear(1000);
        assert!(s.alpha_bar(1) > 0.99);
        assert!(s.alpha_bar(1000) < 0.01, "X_N must be nearly pure noise");
        for n in 2..=1000 {
            assert!(s.alpha_bar(n) < s.alpha_bar(n - 1));
        }
    }

    #[test]
    fn scaled_schedule_reaches_pure_noise_at_any_length() {
        for n in [20, 30, 50, 100, 500, 1000] {
            let s = NoiseSchedule::linear_scaled(n);
            assert!(
                s.alpha_bar(n) < 0.01,
                "n = {n}: alpha_bar = {} — X_N is not pure noise",
                s.alpha_bar(n)
            );
        }
        // At 1000 steps it coincides with the paper's schedule.
        let a = NoiseSchedule::linear_scaled(1000);
        let b = NoiseSchedule::linear(1000);
        assert!((a.beta(1) - b.beta(1)).abs() < 1e-9);
        assert!((a.beta(1000) - b.beta(1000)).abs() < 1e-9);
    }

    #[test]
    fn single_step_schedule() {
        let s = NoiseSchedule::linear(1);
        assert_eq!(s.n_steps(), 1);
        assert!((s.alpha_bar(1) - (1.0 - 1e-4)).abs() < 1e-9);
    }
}
