//! # odt-diffusion
//!
//! Stage 1 of the DOT framework (paper §4): conditioned denoising diffusion
//! for PiT inference.
//!
//! * [`NoiseSchedule`] — the linear β schedule of DDPM (β from 1e-4 to 0.02,
//!   Eq. 2) with precomputed ᾱ products (Eq. 4).
//! * [`Ddpm`] — the two Markov processes: the closed-form forward noising
//!   `q(X_n | X_0)` and the learned reverse process of Eq. 10, plus the
//!   training objective of Eq. 11 (Algorithm 2) and the sampling loop of
//!   Algorithm 1.
//! * [`ConditionedDenoiser`] — the OCConv UNet of §4.2: positional step
//!   encoding (Eq. 12), `FC_OD` (Eq. 13), condition fusion inside every
//!   OCConv module (Eq. 15), down/middle/up blocks with spatial attention
//!   and residual shortcuts (Eq. 16).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ddpm;
mod denoiser;
mod schedule;

pub use ddpm::{Ddpm, NoisePredictor};
pub use denoiser::{ConditionedDenoiser, DenoiserConfig};
pub use schedule::NoiseSchedule;
