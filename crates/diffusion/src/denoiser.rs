//! The conditioned PiT denoiser `ε_θ(X_n, n, odt)` of paper §4.2:
//! a UNet of OCConv (ODT-Input Conditioned Convolutional) modules with
//! spatial attention, fed by the positional step encoding (Eq. 12) and the
//! `FC_OD` projection of the ODT-Input (Eq. 13).

use crate::ddpm::NoisePredictor;
use odt_nn::{
    positional_encoding, Conv2d, GroupNorm, HasParams, LayerNorm, Linear, MultiHeadAttention,
};
use odt_tensor::{Graph, Param, Tensor, Var};
use rand::Rng;

/// Architecture hyper-parameters of the denoiser.
#[derive(Clone, Debug)]
pub struct DenoiserConfig {
    /// Image channels (3 for PiTs).
    pub channels: usize,
    /// Grid side length `L_G`.
    pub lg: usize,
    /// Channel width at full resolution; doubles per down level.
    pub base_channels: usize,
    /// Number of down/up levels (`L_D` in Table 2).
    pub depth: usize,
    /// Conditioning embedding width (`d` in Eqs. 12–13).
    pub cond_dim: usize,
    /// Apply spatial attention only when `H*W` is at most this (cost guard;
    /// the paper applies attention in every block, which this defaults to).
    pub attn_max_tokens: usize,
}

impl DenoiserConfig {
    /// The paper-shaped configuration for a given grid size (`L_D = 3`).
    pub fn paper(lg: usize) -> Self {
        DenoiserConfig {
            channels: 3,
            lg,
            base_channels: 32,
            depth: 3,
            cond_dim: 128,
            attn_max_tokens: 1 << 16,
        }
    }

    /// A reduced configuration for CPU-scale experiments.
    pub fn fast(lg: usize) -> Self {
        DenoiserConfig {
            channels: 3,
            lg,
            base_channels: 8,
            depth: 2,
            cond_dim: 32,
            attn_max_tokens: 256,
        }
    }
}

fn heads_for(c: usize) -> usize {
    if c >= 16 && c % 4 == 0 {
        4
    } else if c % 2 == 0 {
        2
    } else {
        1
    }
}

fn groups_for(c: usize) -> usize {
    // Prefer few groups with at least two channels per group; normalizing
    // every channel independently (groups == channels) starves the network
    // of per-channel magnitude information.
    for g in [4, 2, 1] {
        if c % g == 0 && c / g >= 2 {
            return g;
        }
    }
    1
}

/// One OCConv module (Figure 6(b), Eqs. 14–16): convolution, additive fusion
/// of the conditioning vector into every pixel, two further convolutions
/// with GELU, and a 1×1 residual shortcut. A group normalization at entry
/// plays the role of ConvNeXt's normalization layer.
struct OcConv {
    norm: GroupNorm,
    conv1: Conv2d,
    fc_cond: Linear,
    conv2: Conv2d,
    conv3: Conv2d,
    res: Conv2d,
    c_in: usize,
}

impl OcConv {
    fn new(rng: &mut impl Rng, c_in: usize, c_out: usize, cond_dim: usize, name: &str) -> Self {
        OcConv {
            norm: GroupNorm::new(groups_for(c_in), c_in, &format!("{name}.norm")),
            conv1: Conv2d::same3(rng, c_in, c_in, &format!("{name}.conv1")),
            fc_cond: Linear::new(rng, cond_dim, c_in, &format!("{name}.fc_cond")),
            conv2: Conv2d::same3(rng, c_in, c_out, &format!("{name}.conv2")),
            conv3: Conv2d::same3(rng, c_out, c_out, &format!("{name}.conv3")),
            res: Conv2d::proj1(rng, c_in, c_out, &format!("{name}.res")),
            c_in,
        }
    }

    /// `x: [b, c_in, h, w]`, `cond: [b, cond_dim]` → `[b, c_out, h, w]`.
    fn forward(&self, g: &Graph, x: Var, cond: Var) -> Var {
        let shape = g.shape(x);
        let b = shape[0];
        let normed = self.norm.forward(g, x);
        let hid = self.conv1.forward(g, normed); // Eq. 14
                                                 // Eq. 15: add FC_Cond(cond) to every pixel, per channel.
        let cvec = self.fc_cond.forward(g, cond); // [b, c_in]
        let cmap = g.reshape(cvec, vec![b, self.c_in, 1, 1]);
        let fused = g.add(hid, cmap);
        // Eq. 16: two convs with GELU, plus residual shortcut.
        let out = self.conv3.forward(g, g.gelu(self.conv2.forward(g, fused)));
        g.add(out, self.res.forward(g, x))
    }
}

impl HasParams for OcConv {
    fn params(&self) -> Vec<Param> {
        let mut p = self.norm.params();
        p.extend(self.conv1.params());
        p.extend(self.fc_cond.params());
        p.extend(self.conv2.params());
        p.extend(self.conv3.params());
        p.extend(self.res.params());
        p
    }
}

/// Spatial self-attention over the flattened feature map, with residual.
/// Tokens are layer-normalized before attention — unbounded convolutional
/// activations otherwise saturate the softmax and stall learning.
struct SpatialAttention {
    norm: LayerNorm,
    mha: MultiHeadAttention,
    channels: usize,
}

impl SpatialAttention {
    fn new(rng: &mut impl Rng, channels: usize, name: &str) -> Self {
        SpatialAttention {
            norm: LayerNorm::new(channels, &format!("{name}.norm")),
            mha: MultiHeadAttention::new(rng, channels, heads_for(channels), name),
            channels,
        }
    }

    fn forward(&self, g: &Graph, x: Var) -> Var {
        let shape = g.shape(x);
        let (b, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        debug_assert_eq!(c, self.channels);
        // [b, c, h, w] -> [b, hw, c]
        let tokens = g.permute(g.reshape(x, vec![b, c, h * w]), &[0, 2, 1]);
        let att = self.mha.forward(g, self.norm.forward(g, tokens), None);
        let back = g.reshape(g.permute(att, &[0, 2, 1]), vec![b, c, h, w]);
        g.add(x, back)
    }
}

impl HasParams for SpatialAttention {
    fn params(&self) -> Vec<Param> {
        let mut p = self.norm.params();
        p.extend(self.mha.params());
        p
    }
}

struct DownBlock {
    oc1: OcConv,
    oc2: OcConv,
    attn: Option<SpatialAttention>,
    down: Conv2d,
}

struct UpBlock {
    up_conv: Conv2d,
    oc1: OcConv,
    oc2: OcConv,
    attn: Option<SpatialAttention>,
}

struct MidBlock {
    oc1: OcConv,
    attn: Option<SpatialAttention>,
    oc2: OcConv,
}

/// Constant coordinate maps in `[-1, 1]`: channel 0 = normalized row
/// (latitude index), channel 1 = normalized column (longitude index),
/// matching the normalization of the ODT-Input features.
fn coordinate_channels(batch: usize, lg: usize) -> Tensor {
    let mut t = Tensor::zeros(vec![batch, 2, lg, lg]);
    for b in 0..batch {
        for row in 0..lg {
            for col in 0..lg {
                let rv = 2.0 * (row as f32 + 0.5) / lg as f32 - 1.0;
                let cv = 2.0 * (col as f32 + 0.5) / lg as f32 - 1.0;
                t.set(&[b, 0, row, col], rv);
                t.set(&[b, 1, row, col], cv);
            }
        }
    }
    t
}

/// The full conditioned UNet denoiser (Figure 6(a)).
pub struct ConditionedDenoiser {
    cfg: DenoiserConfig,
    padded: usize,
    fc_od: Linear,
    in_conv: Conv2d,
    downs: Vec<DownBlock>,
    mid: MidBlock,
    ups: Vec<UpBlock>,
    out_norm: GroupNorm,
    out_conv: Conv2d,
}

impl ConditionedDenoiser {
    /// Build with random initialization.
    pub fn new(rng: &mut impl Rng, cfg: DenoiserConfig) -> Self {
        assert!(cfg.depth >= 1, "denoiser needs at least one level");
        let stride = 1usize << cfg.depth;
        let padded = cfg.lg.div_ceil(stride) * stride;
        let d = cfg.cond_dim;
        let c = |i: usize| cfg.base_channels << i;

        let fc_od = Linear::new(rng, 5, d, "denoiser.fc_od");
        // +2 input channels: constant normalized x/y coordinate maps
        // (CoordConv). The ODT condition names *locations*, but plain
        // convolutions are translation-equivariant and cannot place the
        // route endpoints without absolute position information; see
        // DESIGN.md §5.
        let in_conv = Conv2d::same3(rng, cfg.channels + 2, c(0), "denoiser.in");

        let mut downs = Vec::with_capacity(cfg.depth);
        for i in 0..cfg.depth {
            let res = padded >> i;
            let attn = (res * res <= cfg.attn_max_tokens)
                .then(|| SpatialAttention::new(rng, c(i + 1), &format!("denoiser.down{i}.attn")));
            downs.push(DownBlock {
                oc1: OcConv::new(rng, c(i), c(i + 1), d, &format!("denoiser.down{i}.oc1")),
                oc2: OcConv::new(rng, c(i + 1), c(i + 1), d, &format!("denoiser.down{i}.oc2")),
                attn,
                down: Conv2d::new(
                    rng,
                    c(i + 1),
                    c(i + 1),
                    4,
                    2,
                    1,
                    &format!("denoiser.down{i}.down"),
                ),
            });
        }

        let cl = c(cfg.depth);
        let mid_res = padded >> cfg.depth;
        let mid = MidBlock {
            oc1: OcConv::new(rng, cl, cl, d, "denoiser.mid.oc1"),
            attn: (mid_res * mid_res <= cfg.attn_max_tokens)
                .then(|| SpatialAttention::new(rng, cl, "denoiser.mid.attn")),
            oc2: OcConv::new(rng, cl, cl, d, "denoiser.mid.oc2"),
        };

        let mut ups = Vec::with_capacity(cfg.depth);
        for i in (0..cfg.depth).rev() {
            let res = padded >> i;
            let attn = (res * res <= cfg.attn_max_tokens)
                .then(|| SpatialAttention::new(rng, c(i), &format!("denoiser.up{i}.attn")));
            ups.push(UpBlock {
                up_conv: Conv2d::same3(rng, c(i + 1), c(i + 1), &format!("denoiser.up{i}.upconv")),
                oc1: OcConv::new(rng, 2 * c(i + 1), c(i), d, &format!("denoiser.up{i}.oc1")),
                oc2: OcConv::new(rng, c(i), c(i), d, &format!("denoiser.up{i}.oc2")),
                attn,
            });
        }

        ConditionedDenoiser {
            padded,
            fc_od,
            in_conv,
            downs,
            mid,
            ups,
            out_norm: GroupNorm::new(
                groups_for(cfg.base_channels),
                cfg.base_channels,
                "denoiser.out_norm",
            ),
            out_conv: Conv2d::same3(rng, cfg.base_channels, cfg.channels, "denoiser.out"),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DenoiserConfig {
        &self.cfg
    }

    /// Zero-pad the spatial dims from `lg` to the internal padded size.
    fn pad(&self, g: &Graph, x: Var) -> Var {
        let shape = g.shape(x);
        let (b, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        if h == self.padded && w == self.padded {
            return x;
        }
        let mut out = x;
        if self.padded > h {
            let zeros = g.input(Tensor::zeros(vec![b, c, self.padded - h, w]));
            out = g.concat(&[out, zeros], 2);
        }
        if self.padded > w {
            let zeros = g.input(Tensor::zeros(vec![b, c, self.padded, self.padded - w]));
            out = g.concat(&[out, zeros], 3);
        }
        out
    }

    /// Crop the padded output back to `lg × lg`.
    fn crop(&self, g: &Graph, x: Var) -> Var {
        if self.padded == self.cfg.lg {
            return x;
        }
        let cut = g.slice(x, 2, 0, self.cfg.lg);
        g.slice(cut, 3, 0, self.cfg.lg)
    }

    /// The conditioning vector `PE(n) + FC_OD(odt)` per sample (Eq. 15's
    /// inner sum).
    fn condition(&self, g: &Graph, steps: &[usize], cond: &Tensor) -> Var {
        let d = self.cfg.cond_dim;
        let max_step = steps.iter().copied().max().unwrap_or(0);
        let table = positional_encoding(max_step + 1, d);
        let pe_rows = table.index_select0(steps);
        let pe = g.input(pe_rows);
        let od = self.fc_od.forward(g, g.input(cond.clone()));
        g.add(pe, od)
    }
}

impl NoisePredictor for ConditionedDenoiser {
    fn predict(&self, g: &Graph, x_noisy: Var, steps: &[usize], cond: &Tensor) -> Var {
        let shape = g.shape(x_noisy);
        assert_eq!(shape.len(), 4, "denoiser input must be [b, c, l, l]");
        assert_eq!(shape[1], self.cfg.channels, "channel mismatch");
        assert_eq!(shape[2], self.cfg.lg, "grid size mismatch");
        assert_eq!(steps.len(), shape[0], "one step per sample");
        assert_eq!(cond.shape(), &[shape[0], 5], "cond must be [b, 5]");

        let cvec = self.condition(g, steps, cond);
        let coords = g.input(coordinate_channels(shape[0], self.cfg.lg));
        let with_coords = g.concat(&[x_noisy, coords], 1);
        let mut x = self.in_conv.forward(g, self.pad(g, with_coords));
        let mut skips = Vec::with_capacity(self.downs.len());
        for block in &self.downs {
            x = block.oc1.forward(g, x, cvec);
            x = block.oc2.forward(g, x, cvec);
            if let Some(attn) = &block.attn {
                x = attn.forward(g, x);
            }
            skips.push(x);
            x = block.down.forward(g, x);
        }
        x = self.mid.oc1.forward(g, x, cvec);
        if let Some(attn) = &self.mid.attn {
            x = attn.forward(g, x);
        }
        x = self.mid.oc2.forward(g, x, cvec);
        for block in &self.ups {
            let skip = skips.pop().expect("skip per up block");
            x = g.upsample_nearest2(x);
            x = block.up_conv.forward(g, x);
            x = g.concat(&[x, skip], 1);
            x = block.oc1.forward(g, x, cvec);
            x = block.oc2.forward(g, x, cvec);
            if let Some(attn) = &block.attn {
                x = attn.forward(g, x);
            }
        }
        let out = self
            .out_conv
            .forward(g, g.silu(self.out_norm.forward(g, x)));
        self.crop(g, out)
    }
}

impl HasParams for ConditionedDenoiser {
    fn params(&self) -> Vec<Param> {
        let mut p = self.fc_od.params();
        p.extend(self.in_conv.params());
        for b in &self.downs {
            p.extend(b.oc1.params());
            p.extend(b.oc2.params());
            if let Some(a) = &b.attn {
                p.extend(a.params());
            }
            p.extend(b.down.params());
        }
        p.extend(self.mid.oc1.params());
        if let Some(a) = &self.mid.attn {
            p.extend(a.params());
        }
        p.extend(self.mid.oc2.params());
        for b in &self.ups {
            p.extend(b.up_conv.params());
            p.extend(b.oc1.params());
            p.extend(b.oc2.params());
            if let Some(a) = &b.attn {
                p.extend(a.params());
            }
        }
        p.extend(self.out_norm.params());
        p.extend(self.out_conv.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ddpm, NoiseSchedule};
    use odt_nn::Adam;
    use odt_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny(lg: usize) -> (ConditionedDenoiser, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = DenoiserConfig {
            channels: 3,
            lg,
            base_channels: 4,
            depth: 2,
            cond_dim: 16,
            attn_max_tokens: 64,
        };
        let d = ConditionedDenoiser::new(&mut rng, cfg);
        (d, rng)
    }

    #[test]
    fn output_matches_input_shape() {
        let (d, mut rng) = tiny(8);
        let g = Graph::new();
        let x = g.input(init::normal(&mut rng, vec![2, 3, 8, 8], 1.0));
        let y = d.predict(&g, x, &[3, 7], &Tensor::zeros(vec![2, 5]));
        assert_eq!(g.shape(y), vec![2, 3, 8, 8]);
    }

    #[test]
    fn handles_non_power_of_two_grid() {
        // lg = 10 with depth 2 requires padding to 12.
        let (d, mut rng) = tiny(10);
        assert_eq!(d.padded, 12);
        let g = Graph::new();
        let x = g.input(init::normal(&mut rng, vec![1, 3, 10, 10], 1.0));
        let y = d.predict(&g, x, &[1], &Tensor::zeros(vec![1, 5]));
        assert_eq!(g.shape(y), vec![1, 3, 10, 10]);
        assert!(g.value(y).is_finite());
    }

    #[test]
    fn conditioning_changes_output() {
        let (d, mut rng) = tiny(8);
        let input = init::normal(&mut rng, vec![1, 3, 8, 8], 1.0);
        let run = |cond: Tensor, step: usize| {
            let g = Graph::new();
            let x = g.input(input.clone());
            g.value(d.predict(&g, x, &[step], &cond))
        };
        let base = run(Tensor::zeros(vec![1, 5]), 3);
        let other_cond = run(Tensor::full(vec![1, 5], 0.9), 3);
        let other_step = run(Tensor::zeros(vec![1, 5]), 9);
        let diff = |a: &Tensor, b: &Tensor| -> f32 {
            a.data()
                .iter()
                .zip(b.data())
                .map(|(x, y)| (x - y).abs())
                .sum()
        };
        assert!(diff(&base, &other_cond) > 1e-3, "ODT condition ignored");
        assert!(diff(&base, &other_step) > 1e-3, "step indicator ignored");
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let (d, mut rng) = tiny(8);
        let g = Graph::new();
        let x = g.input(init::normal(&mut rng, vec![1, 3, 8, 8], 1.0));
        let y = d.predict(&g, x, &[2], &Tensor::full(vec![1, 5], 0.1));
        g.backward(g.sum_all(g.square(y)));
        let silent: Vec<String> = d
            .params()
            .iter()
            .filter(|p| p.grad().data().iter().all(|&v| v == 0.0))
            .map(|p| p.name())
            .collect();
        // Bias-like params can legitimately be zero-grad only if their layer
        // output is dead; with random inputs nothing should be fully silent.
        assert!(silent.is_empty(), "silent params: {silent:?}");
    }

    #[test]
    fn denoiser_can_fit_identity_map() {
        // Regression guard for the attention pre-norm fix: without token
        // normalization before spatial attention, the softmax saturates and
        // the UNet cannot even reproduce its input (loss stalls at ~1.0).
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = DenoiserConfig {
            channels: 3,
            lg: 8,
            base_channels: 8,
            depth: 1,
            cond_dim: 16,
            attn_max_tokens: 64, // attention active at every level
        };
        let den = ConditionedDenoiser::new(&mut rng, cfg);
        let mut opt = Adam::new(den.params(), 5e-3);
        let steps = vec![5usize; 4];
        let cond = Tensor::zeros(vec![4, 5]);
        let mut last = f32::INFINITY;
        for _ in 0..150 {
            opt.zero_grad();
            let x = init::normal(&mut rng, vec![4, 3, 8, 8], 1.0);
            let g = Graph::new();
            let pred = den.predict(&g, g.input(x.clone()), &steps, &cond);
            let loss = g.mse(pred, g.input(x));
            last = g.value(loss).data()[0];
            g.backward(loss);
            opt.step();
        }
        assert!(last < 0.35, "identity-fit loss stalled at {last}");
    }

    #[test]
    fn short_training_reduces_loss() {
        // Overfit noise prediction on a single fixed image: loss must drop.
        let (d, mut rng) = tiny(8);
        let ddpm = Ddpm::new(NoiseSchedule::linear(8));
        let x0 = init::uniform(&mut rng, vec![4, 3, 8, 8], -1.0, 1.0);
        let cond = Tensor::zeros(vec![4, 5]);
        let mut opt = Adam::new(d.params(), 3e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            opt.zero_grad();
            let g = Graph::new();
            let loss = ddpm.training_loss(&g, &d, &x0, &cond, &mut rng);
            last = g.value(loss).data()[0];
            first.get_or_insert(last);
            g.backward(loss);
            opt.step();
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.9,
            "loss did not decrease: {first} -> {last}"
        );
    }
}
