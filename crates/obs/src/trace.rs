//! Causal request tracing: trace/span identity, context propagation, head
//! sampling with force-retention, and trace export.
//!
//! A **trace** is one causally-linked unit of work (for the serving stack:
//! one admitted request; for drills: one scenario). It is minted by
//! [`root_span`], which installs a [`TraceContext`] on the current thread.
//! While a context is installed, every [`crate::span`] becomes a **child
//! span** of the innermost open span, [`crate::Histogram::record_micros`]
//! attaches the current trace id as a per-bucket *exemplar*, and every
//! emitted [`crate::Event`] is tagged with `trace_id`/`span_id` fields.
//! Contexts hop threads explicitly: `odt-compute` captures the submitting
//! context and re-installs it inside pool workers via [`install_context`],
//! so kernel work is attributable to the originating request.
//!
//! **Identity is per-process but replayable.** Trace ids are SplitMix64
//! outputs of a process seed plus a process-global `AtomicU64` counter.
//! The seed defaults to per-process entropy (pid + wall clock, mixed
//! through SplitMix64) so two shards of one cluster cannot mint colliding
//! ids, and can be pinned with [`set_trace_seed`] or `ODT_TRACE_SEED`
//! (see [`init_from_env`]) for replayable runs — the CI `trace-smoke`
//! job double-runs `bench_serving` under one explicit seed and diffs the
//! id sets. Span ids are small per-trace ordinals; a span's position in a
//! *cross-process* trace additionally records the remote parent span
//! ordinal carried by `odt-wire/v1` (see [`root_span_adopted`]).
//!
//! **Sampling.** `ODT_TRACE_SAMPLE=N` (see [`init_from_env`]) head-samples
//! 1-in-N traces (`0` = tracing off, `1` = everything). The keep/drop
//! decision is *deferred* to root close: an unsampled trace still buffers
//! its spans, and [`force_retain_current`] (called on deadline breaches,
//! fallback-rung answers, and breaker trips) promotes it to retained —
//! tail-latency outliers are never lost to head sampling. Retained traces
//! land in a bounded in-memory store exported by [`write_chrome_trace`]
//! (Perfetto/chrome-tracing JSON) and [`write_spans_jsonl`] (the input of
//! the `trace_report` analysis bin).

use crate::json;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Base constant mixed into the per-process trace-id seed (and the seed
/// CI pins via `ODT_TRACE_SEED` for replayable id sequences).
pub const TRACE_ID_SEED: u64 = 0x0D07_0DC1_E0F5_11AA;

/// Spans buffered per trace before truncation (keeps a pathological trace
/// from holding the store lock and memory hostage).
const MAX_SPANS_PER_TRACE: usize = 1024;

/// Completed retained traces kept in memory (oldest evicted first).
const MAX_RETAINED_TRACES: usize = 4096;

use crate::rng::splitmix64;

/// Identity of one trace. Rendered as 16 lower-case hex digits in every
/// JSON surface (a raw `u64` can exceed 2^53 and lose precision in
/// JSON-number consumers like `jq` and Python).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The raw 64-bit id (0 is never minted).
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// 16-digit lower-case hex rendering, the canonical JSON form.
    pub fn to_hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the canonical 16-hex-digit rendering (the wire form used by
    /// `odt-wire/v1` trace propagation). Rejects empty, oversized, non-hex
    /// and zero ids — `0` is never a valid trace identity.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        let raw = u64::from_str_radix(s, 16).ok()?;
        if raw == 0 {
            None
        } else {
            Some(TraceId(raw))
        }
    }

    /// A trace id from a raw non-zero u64 (`None` for 0).
    pub fn from_raw(raw: u64) -> Option<TraceId> {
        if raw == 0 {
            None
        } else {
            Some(TraceId(raw))
        }
    }
}

/// Identity of one span within its trace: a small per-trace ordinal
/// (the root span is always 1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw ordinal.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// The ambient trace position of the current thread: which trace, and
/// which span new children should parent under.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceContext {
    trace: TraceId,
    span: SpanId,
}

impl TraceContext {
    /// The trace this context belongs to.
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// The innermost open span (parent of new children).
    pub fn span_id(&self) -> SpanId {
        self.span
    }
}

/// One completed span of a retained trace.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Per-trace ordinal (root = 1).
    pub span_id: u64,
    /// Parent ordinal (0 for the root).
    pub parent_id: u64,
    /// Span name (the histogram it also recorded into).
    pub name: &'static str,
    /// Start, µs on the process trace clock ([`now_us`]).
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Small per-thread ordinal (Perfetto `tid`).
    pub tid: u64,
}

/// One completed, retained trace.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Trace identity.
    pub trace_id: TraceId,
    /// Root span name.
    pub root_name: &'static str,
    /// Remote parent span ordinal this trace's root attaches under (the
    /// `parent_span` carried by the `odt-wire/v1` request that adopted
    /// this trace id); 0 for a locally-rooted trace.
    pub parent_span: u64,
    /// Request id attached via [`RootSpan::set_request_id`], if any.
    pub request_id: Option<u64>,
    /// Root start, µs on the process trace clock.
    pub start_us: u64,
    /// Root duration, µs.
    pub dur_us: u64,
    /// Whether head sampling selected this trace.
    pub sampled: bool,
    /// Force-retention reasons (`deadline_breach`, `fallback_rung`,
    /// `breaker_open`, …); empty for purely head-sampled traces.
    pub retain_reasons: Vec<&'static str>,
    /// Completed spans, in completion order. Includes the root.
    pub spans: Vec<SpanRecord>,
    /// Spans dropped beyond the per-trace buffer cap.
    pub truncated: u64,
}

/// A span that is currently open (for flight-recorder dumps).
#[derive(Clone, Debug)]
pub struct OpenSpanRecord {
    /// Owning trace.
    pub trace_id: TraceId,
    /// Span ordinal.
    pub span_id: u64,
    /// Span name.
    pub name: &'static str,
    /// Start, µs on the process trace clock.
    pub start_us: u64,
    /// Thread ordinal it was opened on.
    pub tid: u64,
}

struct ActiveTrace {
    root_name: &'static str,
    parent_span: u64,
    request_id: Option<u64>,
    start_us: u64,
    sampled: bool,
    retained: bool,
    retain_reasons: Vec<&'static str>,
    next_span: u64,
    spans: Vec<SpanRecord>,
    truncated: u64,
}

#[derive(Default)]
struct TraceStore {
    active: HashMap<u64, ActiveTrace>,
    open: HashMap<(u64, u64), OpenSpanRecord>,
    retained: VecDeque<TraceRecord>,
    finished: u64,
    dropped_unsampled: u64,
    evicted_retained: u64,
}

static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(0);
static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Process trace-id seed; 0 means "not yet initialized" (lazily filled
/// from per-process entropy on first mint).
static TRACE_SEED: AtomicU64 = AtomicU64::new(0);

/// Mint the `k`-th trace id of the generator seeded with `seed`: a pure
/// SplitMix64 draw, never 0. This is the whole id scheme — exposed so
/// tests (and offline tools) can reproduce a process's id sequence from
/// its seed.
pub fn mint_trace_id(seed: u64, k: u64) -> u64 {
    splitmix64(seed.wrapping_add(k)).max(1)
}

/// A per-process entropy seed: pid and wall-clock nanos mixed through
/// SplitMix64 with [`TRACE_ID_SEED`]. Never 0.
fn entropy_seed() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let pid = u64::from(std::process::id());
    splitmix64(TRACE_ID_SEED ^ splitmix64(nanos) ^ splitmix64(pid.rotate_left(32))).max(1)
}

/// The process trace-id seed. Initialized on first use from per-process
/// entropy (so concurrently-booted shards mint disjoint id sets) unless
/// previously pinned by [`set_trace_seed`] / `ODT_TRACE_SEED`.
pub fn trace_seed() -> u64 {
    let s = TRACE_SEED.load(Ordering::Relaxed);
    if s != 0 {
        return s;
    }
    let fresh = entropy_seed();
    match TRACE_SEED.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(racing) => racing,
    }
}

/// Pin the trace-id seed (0 is reserved and mapped to 1). Replayable
/// drills and the CI double-run determinism check set an explicit seed;
/// production processes leave it to entropy initialization.
pub fn set_trace_seed(seed: u64) {
    TRACE_SEED.store(seed.max(1), Ordering::Relaxed);
}

fn store() -> &'static Mutex<TraceStore> {
    static STORE: OnceLock<Mutex<TraceStore>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(TraceStore::default()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch (first use). All span
/// timestamps are on this clock.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

thread_local! {
    static CTX_STACK: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// Small dense ordinal for the current thread (Perfetto `tid`).
pub fn thread_ordinal() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Whether tracing is on (`sample_every() > 0`). One relaxed atomic load —
/// cheap enough for hot paths to check first.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The head-sampling rate: keep 1-in-N traces (0 = tracing off, 1 = all).
pub fn sample_every() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// Set the head-sampling rate (see [`sample_every`]).
pub fn set_sample_every(n: u64) {
    SAMPLE_EVERY.store(n, Ordering::Relaxed);
    ENABLED.store(n > 0, Ordering::Relaxed);
}

/// Read `ODT_TRACE_SAMPLE` (unset, empty, unparsable, or `0` all mean
/// "tracing off") and apply it via [`set_sample_every`]; read
/// `ODT_TRACE_SEED` (decimal, or hex with an `0x` prefix) and pin the
/// trace-id seed via [`set_trace_seed`] — unset or unparsable leaves the
/// default per-process entropy seeding in place.
pub fn init_from_env() {
    let n = std::env::var("ODT_TRACE_SAMPLE")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0);
    set_sample_every(n);
    let seed = std::env::var("ODT_TRACE_SEED").ok().and_then(|v| {
        let v = v.trim();
        match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => v.parse::<u64>().ok(),
        }
    });
    if let Some(seed) = seed {
        set_trace_seed(seed);
    }
}

/// The innermost installed context on this thread, if any.
pub fn current_context() -> Option<TraceContext> {
    if !enabled() {
        return None;
    }
    CTX_STACK.with(|s| s.borrow().last().copied())
}

fn push_ctx(ctx: TraceContext) {
    CTX_STACK.with(|s| s.borrow_mut().push(ctx));
}

fn pop_ctx(ctx: TraceContext) {
    CTX_STACK.with(|s| {
        let mut s = s.borrow_mut();
        // Guards drop in stack order on one thread, so the top matches;
        // fall back to a scan so a misuse cannot corrupt the stack.
        if s.last() == Some(&ctx) {
            s.pop();
        } else if let Some(pos) = s.iter().rposition(|c| *c == ctx) {
            s.remove(pos);
        }
    });
}

/// RAII guard of [`install_context`].
#[must_use = "dropping the guard uninstalls the context"]
pub struct ContextGuard {
    ctx: TraceContext,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        pop_ctx(self.ctx);
    }
}

/// Install a foreign context on this thread (how pool workers pick up the
/// submitting request's identity). Spans opened while the guard lives
/// parent under `ctx`'s span.
pub fn install_context(ctx: TraceContext) -> ContextGuard {
    push_ctx(ctx);
    ContextGuard { ctx }
}

/// Force-retain the current thread's trace (no-op without a context):
/// it survives root close even if head sampling would drop it. `reason`
/// is recorded once per trace (deduplicated).
pub fn force_retain_current(reason: &'static str) {
    let Some(ctx) = current_context() else {
        return;
    };
    let mut st = store().lock().expect("trace store poisoned");
    if let Some(t) = st.active.get_mut(&ctx.trace.raw()) {
        t.retained = true;
        if !t.retain_reasons.contains(&reason) {
            t.retain_reasons.push(reason);
        }
    }
}

/// Whether the current thread's trace is marked retained.
pub fn current_is_retained() -> bool {
    let Some(ctx) = current_context() else {
        return false;
    };
    let st = store().lock().expect("trace store poisoned");
    st.active
        .get(&ctx.trace.raw())
        .map(|t| t.retained)
        .unwrap_or(false)
}

/// Live child-span bookkeeping carried by [`crate::SpanTimer`].
pub(crate) struct SpanHandle {
    ctx: TraceContext,
    parent: u64,
    start_us: u64,
    tid: u64,
}

/// Open a child span under the current context, if one is installed.
pub(crate) fn begin_span(name: &'static str) -> Option<SpanHandle> {
    if !enabled() {
        return None;
    }
    let parent = CTX_STACK.with(|s| s.borrow().last().copied())?;
    let start_us = now_us();
    let tid = thread_ordinal();
    let span_id = {
        let mut st = store().lock().expect("trace store poisoned");
        let t = st.active.get_mut(&parent.trace.raw())?;
        let id = t.next_span;
        t.next_span += 1;
        st.open.insert(
            (parent.trace.raw(), id),
            OpenSpanRecord {
                trace_id: parent.trace,
                span_id: id,
                name,
                start_us,
                tid,
            },
        );
        id
    };
    let ctx = TraceContext {
        trace: parent.trace,
        span: SpanId(span_id),
    };
    push_ctx(ctx);
    Some(SpanHandle {
        ctx,
        parent: parent.span.raw(),
        start_us,
        tid,
    })
}

/// Close a span opened by [`begin_span`], recording it into its trace's
/// buffer.
pub(crate) fn end_span(h: SpanHandle, name: &'static str, dur_us: u64) {
    pop_ctx(h.ctx);
    let mut st = store().lock().expect("trace store poisoned");
    st.open.remove(&(h.ctx.trace.raw(), h.ctx.span.raw()));
    if let Some(t) = st.active.get_mut(&h.ctx.trace.raw()) {
        if t.spans.len() < MAX_SPANS_PER_TRACE {
            t.spans.push(SpanRecord {
                span_id: h.ctx.span.raw(),
                parent_id: h.parent,
                name,
                start_us: h.start_us,
                dur_us,
                tid: h.tid,
            });
        } else {
            t.truncated += 1;
        }
    }
}

/// Record a span for an interval that was *measured elsewhere* and has
/// already elapsed (e.g. queue wait, timed by the admission queue before
/// the request's root span existed): a child of the current span,
/// back-dated to start `dur_us` ago. No-op without a context.
pub fn record_backdated_span(name: &'static str, dur_us: u64) {
    let Some(parent) = current_context() else {
        return;
    };
    let end = now_us();
    let tid = thread_ordinal();
    let mut st = store().lock().expect("trace store poisoned");
    if let Some(t) = st.active.get_mut(&parent.trace.raw()) {
        let id = t.next_span;
        t.next_span += 1;
        if t.spans.len() < MAX_SPANS_PER_TRACE {
            t.spans.push(SpanRecord {
                span_id: id,
                parent_id: parent.span.raw(),
                name,
                start_us: end.saturating_sub(dur_us),
                dur_us,
                tid,
            });
        } else {
            t.truncated += 1;
        }
    }
}

/// The root-span guard minted by [`root_span`]. While alive, the current
/// thread carries the new trace's context; dropping it closes the root,
/// records its duration into the histogram named after the root, and
/// finalizes the trace (retain or drop per sampling + force-retention).
#[must_use = "dropping the guard closes the trace"]
pub struct RootSpan {
    inner: Option<RootInner>,
}

struct RootInner {
    ctx: TraceContext,
    start_us: u64,
    start: Instant,
    name: &'static str,
    tid: u64,
}

/// Mint a new trace with a root span named `name`. Inert (no context, no
/// buffering, `trace_id() == None`) when tracing is off.
pub fn root_span(name: &'static str) -> RootSpan {
    let every = sample_every();
    if every == 0 {
        return RootSpan { inner: None };
    }
    let k = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
    let sampled = every == 1 || k % every == 0;
    let trace = TraceId(mint_trace_id(trace_seed(), k));
    open_root(name, trace, sampled, 0)
}

/// Open a root span *adopting* a caller-supplied trace id — how the
/// networked serving layer continues a trace begun by a remote client
/// (the id travels in the `odt-wire/v1` request frame). `parent_span` is
/// the remote caller's span ordinal within that trace (0 when the caller
/// did not say, i.e. the trace roots here): cross-process stitchers use
/// it to attach this process's span tree under the caller's span.
/// Adopted traces are always treated as head-sampled: the client
/// explicitly asked for this trace, so it is never dropped by local
/// 1-in-N sampling. If the id is already active in this process (two
/// clients reusing an id), a locally-minted id is used instead so the
/// traces stay separable.
pub fn root_span_adopted(name: &'static str, trace: TraceId, parent_span: u64) -> RootSpan {
    if sample_every() == 0 {
        return RootSpan { inner: None };
    }
    let collision = {
        let st = store().lock().expect("trace store poisoned");
        st.active.contains_key(&trace.raw())
    };
    let (trace, parent_span) = if collision {
        let k = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
        // A re-minted id no longer belongs to the remote trace, so the
        // remote parent ordinal would mislead stitchers: drop it.
        (TraceId(mint_trace_id(trace_seed(), k)), 0)
    } else {
        (trace, parent_span)
    };
    open_root(name, trace, true, parent_span)
}

fn open_root(name: &'static str, trace: TraceId, sampled: bool, parent_span: u64) -> RootSpan {
    let start_us = now_us();
    let tid = thread_ordinal();
    {
        let mut st = store().lock().expect("trace store poisoned");
        st.active.insert(
            trace.raw(),
            ActiveTrace {
                root_name: name,
                parent_span,
                request_id: None,
                start_us,
                sampled,
                retained: false,
                retain_reasons: Vec::new(),
                next_span: 2, // root is span 1
                spans: Vec::new(),
                truncated: 0,
            },
        );
        st.open.insert(
            (trace.raw(), 1),
            OpenSpanRecord {
                trace_id: trace,
                span_id: 1,
                name,
                start_us,
                tid,
            },
        );
    }
    let ctx = TraceContext {
        trace,
        span: SpanId(1),
    };
    push_ctx(ctx);
    RootSpan {
        inner: Some(RootInner {
            ctx,
            start_us,
            start: Instant::now(),
            name,
            tid,
        }),
    }
}

impl RootSpan {
    /// This trace's id (`None` when tracing is off).
    pub fn trace_id(&self) -> Option<TraceId> {
        self.inner.as_ref().map(|i| i.ctx.trace)
    }

    /// Attach the serving-layer request id to the trace record.
    pub fn set_request_id(&self, id: u64) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut st = store().lock().expect("trace store poisoned");
        if let Some(t) = st.active.get_mut(&inner.ctx.trace.raw()) {
            t.request_id = Some(id);
        }
    }
}

impl Drop for RootSpan {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_us = inner.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        // Record the root's wall-clock into the histogram of its name
        // while its context is still current, so the exemplar slot of the
        // containing latency bucket points at this very trace.
        crate::metrics::histogram(inner.name).record_micros(dur_us);
        pop_ctx(inner.ctx);
        let mut st = store().lock().expect("trace store poisoned");
        st.open.remove(&(inner.ctx.trace.raw(), 1));
        let Some(mut t) = st.active.remove(&inner.ctx.trace.raw()) else {
            return;
        };
        st.finished += 1;
        if !(t.sampled || t.retained) {
            st.dropped_unsampled += 1;
            return;
        }
        t.spans.push(SpanRecord {
            span_id: 1,
            parent_id: 0,
            name: inner.name,
            start_us: inner.start_us,
            dur_us,
            tid: inner.tid,
        });
        if st.retained.len() >= MAX_RETAINED_TRACES {
            st.retained.pop_front();
            st.evicted_retained += 1;
        }
        st.retained.push_back(TraceRecord {
            trace_id: inner.ctx.trace,
            root_name: t.root_name,
            parent_span: t.parent_span,
            request_id: t.request_id,
            start_us: t.start_us,
            dur_us,
            sampled: t.sampled,
            retain_reasons: std::mem::take(&mut t.retain_reasons),
            spans: std::mem::take(&mut t.spans),
            truncated: t.truncated,
        });
    }
}

/// A copy of every retained trace, oldest first.
pub fn retained_traces() -> Vec<TraceRecord> {
    store()
        .lock()
        .expect("trace store poisoned")
        .retained
        .iter()
        .cloned()
        .collect()
}

/// Number of retained traces currently buffered.
pub fn retained_count() -> usize {
    store().lock().expect("trace store poisoned").retained.len()
}

/// Remove and return every retained trace (e.g. between benchmark phases).
pub fn take_retained() -> Vec<TraceRecord> {
    store()
        .lock()
        .expect("trace store poisoned")
        .retained
        .drain(..)
        .collect()
}

/// A copy of every currently open span, across all threads and traces.
pub fn open_spans() -> Vec<OpenSpanRecord> {
    let st = store().lock().expect("trace store poisoned");
    let mut v: Vec<OpenSpanRecord> = st.open.values().cloned().collect();
    v.sort_by_key(|s| (s.trace_id.raw(), s.span_id));
    v
}

/// `(finished, dropped_unsampled, evicted_retained)` lifetime counters.
pub fn trace_stats() -> (u64, u64, u64) {
    let st = store().lock().expect("trace store poisoned");
    (st.finished, st.dropped_unsampled, st.evicted_retained)
}

fn push_span_json(out: &mut String, trace_hex: &str, s: &SpanRecord) {
    out.push_str("{\"kind\":\"span\",\"trace_id\":");
    json::push_str_escaped(out, trace_hex);
    let _ = write!(
        out,
        ",\"span_id\":{},\"parent_id\":{},\"name\":",
        s.span_id, s.parent_id
    );
    json::push_str_escaped(out, s.name);
    let _ = write!(
        out,
        ",\"start_us\":{},\"dur_us\":{},\"tid\":{}}}",
        s.start_us, s.dur_us, s.tid
    );
}

/// Serialize one retained trace as JSONL: a `kind:"trace"` header line
/// followed by one `kind:"span"` line per span (no trailing newline).
pub fn trace_to_jsonl(t: &TraceRecord) -> String {
    let hex = t.trace_id.to_hex();
    let mut out = String::with_capacity(128 * (t.spans.len() + 1));
    out.push_str("{\"kind\":\"trace\",\"trace_id\":");
    json::push_str_escaped(&mut out, &hex);
    out.push_str(",\"root\":");
    json::push_str_escaped(&mut out, t.root_name);
    let _ = write!(out, ",\"parent_span\":{}", t.parent_span);
    match t.request_id {
        Some(id) => {
            let _ = write!(out, ",\"request_id\":{id}");
        }
        None => out.push_str(",\"request_id\":null"),
    }
    let _ = write!(
        out,
        ",\"start_us\":{},\"dur_us\":{},\"sampled\":{},\"retain_reasons\":[",
        t.start_us, t.dur_us, t.sampled
    );
    for (i, r) in t.retain_reasons.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_str_escaped(&mut out, r);
    }
    let _ = write!(
        out,
        "],\"spans\":{},\"truncated\":{}}}",
        t.spans.len(),
        t.truncated
    );
    for s in &t.spans {
        out.push('\n');
        push_span_json(&mut out, &hex, s);
    }
    out
}

fn atomic_write(path: &Path, content: &str) -> std::io::Result<()> {
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(content.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Write every retained trace as JSONL (see [`trace_to_jsonl`]) to `path`
/// atomically. Returns the number of traces written.
pub fn write_spans_jsonl(path: impl AsRef<Path>) -> std::io::Result<usize> {
    let traces = retained_traces();
    let mut out = String::new();
    for t in &traces {
        out.push_str(&trace_to_jsonl(t));
        out.push('\n');
    }
    atomic_write(path.as_ref(), &out)?;
    Ok(traces.len())
}

/// Write every retained trace as a chrome-tracing / Perfetto-loadable JSON
/// object (`{"traceEvents":[...]}`, complete `ph:"X"` events) to `path`
/// atomically. Returns the number of trace events written.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> std::io::Result<usize> {
    let traces = retained_traces();
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut n = 0usize;
    for t in &traces {
        let hex = t.trace_id.to_hex();
        for s in &t.spans {
            if n > 0 {
                out.push(',');
            }
            out.push_str("\n{\"ph\":\"X\",\"pid\":1,\"cat\":\"odt\",\"name\":");
            json::push_str_escaped(&mut out, s.name);
            let _ = write!(
                out,
                ",\"ts\":{},\"dur\":{},\"tid\":{},\"args\":{{\"trace_id\":",
                s.start_us, s.dur_us, s.tid
            );
            json::push_str_escaped(&mut out, &hex);
            let _ = write!(
                out,
                ",\"span_id\":{},\"parent_id\":{},\"sampled\":{},\"retained\":",
                s.span_id, s.parent_id, t.sampled
            );
            let mut reasons = String::new();
            for (i, r) in t.retain_reasons.iter().enumerate() {
                if i > 0 {
                    reasons.push(',');
                }
                reasons.push_str(r);
            }
            json::push_str_escaped(&mut out, &reasons);
            out.push_str("}}");
            n += 1;
        }
    }
    out.push_str("\n]}\n");
    atomic_write(path.as_ref(), &out)?;
    Ok(n)
}

/// Serialize tests that toggle the process-global sampling state (shared
/// with other in-crate test modules that enable tracing).
#[cfg(test)]
pub(crate) fn test_gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize trace-store-global tests (sampling counters and the
    /// retained deque are process-wide).
    fn lock_tests() -> std::sync::MutexGuard<'static, ()> {
        test_gate()
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _g = lock_tests();
        set_sample_every(0);
        assert!(!enabled());
        let root = root_span("test.trace.off");
        assert_eq!(root.trace_id(), None);
        assert_eq!(current_context(), None);
        force_retain_current("nope"); // must not panic
        drop(root);
    }

    #[test]
    fn root_and_children_form_one_retained_trace() {
        let _g = lock_tests();
        set_sample_every(1);
        let before = retained_count();
        let tid;
        {
            let root = root_span("test.trace.root");
            tid = root.trace_id().expect("sampled trace");
            root.set_request_id(42);
            assert_eq!(current_context().unwrap().trace_id(), tid);
            {
                let _child = crate::span("test.trace.child");
                assert_eq!(current_context().unwrap().span_id().raw(), 2);
                let _grand = crate::span("test.trace.grandchild");
                assert_eq!(current_context().unwrap().span_id().raw(), 3);
            }
            record_backdated_span("test.trace.backdated", 1_000);
        }
        assert_eq!(current_context(), None);
        set_sample_every(0);
        let traces = retained_traces();
        assert_eq!(traces.len(), before + 1);
        let t = traces.iter().find(|t| t.trace_id == tid).expect("retained");
        assert_eq!(t.root_name, "test.trace.root");
        assert_eq!(t.request_id, Some(42));
        assert!(t.sampled);
        let names: Vec<&str> = t.spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"test.trace.child"), "{names:?}");
        assert!(names.contains(&"test.trace.grandchild"), "{names:?}");
        assert!(names.contains(&"test.trace.backdated"), "{names:?}");
        assert!(names.contains(&"test.trace.root"), "{names:?}");
        let child = t
            .spans
            .iter()
            .find(|s| s.name == "test.trace.child")
            .unwrap();
        assert_eq!(child.parent_id, 1, "child parents under the root");
        let grand = t
            .spans
            .iter()
            .find(|s| s.name == "test.trace.grandchild")
            .unwrap();
        assert_eq!(grand.parent_id, child.span_id);
        let back = t
            .spans
            .iter()
            .find(|s| s.name == "test.trace.backdated")
            .unwrap();
        assert_eq!(back.dur_us, 1_000);
    }

    #[test]
    fn unsampled_traces_drop_unless_force_retained() {
        let _g = lock_tests();
        set_sample_every(u64::MAX); // k % N == 0 only for k = 0, long past
        let before = retained_count();
        {
            let _root = root_span("test.trace.dropme");
        }
        assert_eq!(retained_count(), before, "unsampled trace dropped");
        let tid;
        {
            let root = root_span("test.trace.keepme");
            tid = root.trace_id().unwrap();
            force_retain_current("deadline_breach");
            assert!(current_is_retained());
        }
        set_sample_every(0);
        let traces = retained_traces();
        let t = traces.iter().find(|t| t.trace_id == tid).expect("retained");
        assert!(!t.sampled);
        assert_eq!(t.retain_reasons, vec!["deadline_breach"]);
    }

    #[test]
    fn trace_ids_are_deterministic_in_mint_order() {
        // Under a pinned seed, two ids minted k apart must reproduce the
        // SplitMix64 stream of that seed: the property the CI double-run
        // check (ODT_TRACE_SEED exported for both runs) rests on.
        let _g = lock_tests();
        set_trace_seed(TRACE_ID_SEED);
        set_sample_every(1);
        let a = root_span("test.trace.det.a");
        let ka = a.trace_id().unwrap();
        drop(a);
        let b = root_span("test.trace.det.b");
        let kb = b.trace_id().unwrap();
        drop(b);
        set_sample_every(0);
        let k = (0..u64::MAX)
            .take(1 << 20)
            .find(|&k| mint_trace_id(TRACE_ID_SEED, k) == ka.raw())
            .expect("id derives from the pinned seed + counter");
        assert_eq!(mint_trace_id(TRACE_ID_SEED, k + 1), kb.raw());
    }

    #[test]
    fn differently_seeded_generators_mint_disjoint_ids() {
        // Two processes with different seeds (the entropy-seeding default)
        // must not mint colliding ids over any realistic window — the
        // cluster relies on this to stitch cross-process traces by id.
        let a: std::collections::BTreeSet<u64> =
            (0..4096).map(|k| mint_trace_id(0xDEAD_BEEF, k)).collect();
        let b: std::collections::BTreeSet<u64> =
            (0..4096).map(|k| mint_trace_id(0x5EED_0002, k)).collect();
        assert_eq!(a.len(), 4096, "no self-collisions");
        assert_eq!(b.len(), 4096, "no self-collisions");
        assert!(a.is_disjoint(&b), "different seeds share an id");
        assert!(!a.contains(&0) && !b.contains(&0), "0 is never minted");
    }

    #[test]
    fn env_seed_pins_the_generator_deterministically() {
        let _g = lock_tests();
        std::env::set_var("ODT_TRACE_SEED", "0x1234abcd");
        std::env::set_var("ODT_TRACE_SAMPLE", "0");
        init_from_env();
        std::env::remove_var("ODT_TRACE_SEED");
        std::env::remove_var("ODT_TRACE_SAMPLE");
        assert_eq!(trace_seed(), 0x1234_abcd);
        // Unset env leaves the pin in place (no unparsable override).
        init_from_env();
        assert_eq!(trace_seed(), 0x1234_abcd);
        set_trace_seed(TRACE_ID_SEED); // restore the suite's pinned seed
    }

    #[test]
    fn default_seed_is_lazily_initialized_entropy() {
        // trace_seed() never returns the 0 sentinel, whatever init order
        // the test suite ran in.
        assert_ne!(trace_seed(), 0);
    }

    #[test]
    fn adopted_root_spans_carry_the_wire_trace_id() {
        let _g = lock_tests();
        set_sample_every(u64::MAX); // local head sampling would drop all
        let wire = TraceId::from_hex("00000000deadbeef").expect("valid hex id");
        {
            let root = root_span_adopted("test.trace.adopted", wire, 7);
            assert_eq!(root.trace_id(), Some(wire));
            let _c = crate::span("test.trace.adopted_child");
        }
        // A collision (same id while the first is still open) re-mints
        // and drops the now-meaningless remote parent ordinal.
        let outer = root_span_adopted("test.trace.adopted", wire, 7);
        let inner = root_span_adopted("test.trace.adopted", wire, 7);
        let inner_id = inner.trace_id().unwrap();
        assert_ne!(inner_id, wire, "colliding adoption must re-mint");
        drop(inner);
        drop(outer);
        set_sample_every(0);
        let traces = retained_traces();
        let t = traces
            .iter()
            .find(|t| t.trace_id == wire && t.root_name == "test.trace.adopted")
            .expect("adopted trace retained despite 1-in-N sampling");
        assert!(t.sampled, "adoption implies sampling");
        assert_eq!(t.parent_span, 7, "remote parent ordinal retained");
        assert!(t.spans.iter().any(|s| s.name == "test.trace.adopted_child"));
        let jsonl = trace_to_jsonl(t);
        assert!(
            jsonl.lines().next().unwrap().contains("\"parent_span\":7"),
            "{jsonl}"
        );
        let reminted = traces
            .iter()
            .find(|t| t.trace_id == inner_id)
            .expect("re-minted trace retained");
        assert_eq!(reminted.parent_span, 0, "re-mint drops the remote parent");
    }

    #[test]
    fn from_hex_round_trips_and_rejects_junk() {
        let id = TraceId::from_raw(0xabc0_0000_0000_0001).unwrap();
        assert_eq!(TraceId::from_hex(&id.to_hex()), Some(id));
        for bad in ["", "0", "zz", "00000000000000000", "0x12"] {
            assert_eq!(TraceId::from_hex(bad), None, "{bad:?}");
        }
        assert_eq!(TraceId::from_raw(0), None);
        // Short forms parse (leading zeros optional on the wire).
        assert_eq!(TraceId::from_hex("ff").map(|t| t.raw()), Some(0xff));
    }

    #[test]
    fn installed_context_parents_cross_thread_spans() {
        let _g = lock_tests();
        set_sample_every(1);
        let tid;
        {
            let root = root_span("test.trace.xthread");
            tid = root.trace_id().unwrap();
            let ctx = current_context().unwrap();
            std::thread::spawn(move || {
                let _guard = install_context(ctx);
                let _s = crate::span("test.trace.worker_span");
            })
            .join()
            .unwrap();
        }
        set_sample_every(0);
        let traces = retained_traces();
        let t = traces.iter().find(|t| t.trace_id == tid).expect("retained");
        let w = t
            .spans
            .iter()
            .find(|s| s.name == "test.trace.worker_span")
            .expect("worker span attributed to the submitting trace");
        assert_eq!(w.parent_id, 1);
        let root_tid = t
            .spans
            .iter()
            .find(|s| s.name == "test.trace.xthread")
            .unwrap()
            .tid;
        assert_ne!(w.tid, root_tid, "worker span carries its own thread");
    }

    #[test]
    fn exports_are_loadable_shapes() {
        let _g = lock_tests();
        set_sample_every(1);
        {
            let _root = root_span("test.trace.export");
            let _c = crate::span("test.trace.export_child");
        }
        set_sample_every(0);
        let dir = std::env::temp_dir();
        let chrome = dir.join(format!("odt_trace_chrome_{}.json", std::process::id()));
        let jsonl = dir.join(format!("odt_trace_spans_{}.jsonl", std::process::id()));
        let n = write_chrome_trace(&chrome).unwrap();
        assert!(n >= 2);
        let content = fs::read_to_string(&chrome).unwrap();
        assert!(content.starts_with("{\"displayTimeUnit\""), "{content}");
        assert!(content.contains("\"ph\":\"X\""));
        assert!(content.contains("\"tid\":"));
        assert!(content.trim_end().ends_with("]}"));
        let t = write_spans_jsonl(&jsonl).unwrap();
        assert!(t >= 1);
        let content = fs::read_to_string(&jsonl).unwrap();
        assert!(content.lines().any(|l| l.contains("\"kind\":\"trace\"")));
        assert!(content.lines().any(|l| l.contains("\"kind\":\"span\"")));
        for line in content.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let _ = fs::remove_file(&chrome);
        let _ = fs::remove_file(&jsonl);
    }

    #[test]
    fn open_spans_are_visible_until_closed() {
        let _g = lock_tests();
        set_sample_every(1);
        let root = root_span("test.trace.openvis");
        let tid = root.trace_id().unwrap();
        let child = crate::span("test.trace.open_child");
        let open = open_spans();
        assert!(open
            .iter()
            .any(|s| s.trace_id == tid && s.name == "test.trace.openvis"));
        assert!(open
            .iter()
            .any(|s| s.trace_id == tid && s.name == "test.trace.open_child"));
        drop(child);
        drop(root);
        set_sample_every(0);
        assert!(!open_spans().iter().any(|s| s.trace_id == tid));
    }
}
