//! # odt-obs — observability for the DOT stack
//!
//! Hand-rolled (the build environment has no crate-registry access, so no
//! `tracing`/`metrics`) and zero-dependency: everything here is `std` only.
//! Three coupled facilities share one global backend:
//!
//! * **Structured events** — [`event`] builds a leveled, named event with
//!   typed fields and an optional human-readable message. Emitted events
//!   land in a bounded in-memory ring buffer ([`recent_events`]) and are
//!   fanned out to pluggable [`Sink`]s: [`StderrSink`] pretty-prints,
//!   [`JsonlSink`] accumulates JSONL and flushes atomically
//!   (write-to-temp-then-rename, so the file on disk is always complete,
//!   valid JSONL), [`FnSink`] adapts any closure (used by tests and by the
//!   legacy `progress` callback shim in `odt-core`).
//! * **Metrics** — a global registry of [`Counter`]s, [`Gauge`]s and
//!   log-bucketed latency [`Histogram`]s keyed by `&'static str` names.
//!   Histograms answer p50/p95/p99/max/mean queries ([`Histogram::summary`]);
//!   [`snapshot`] returns everything for end-of-run reports.
//! * **Span timers** — [`span!`] returns an RAII [`SpanTimer`] that records
//!   its wall-clock duration into the histogram of the same name on drop.
//!   Spans nest (the current depth is visible via [`span_depth`]), so
//!   wall-clock can be attributed per stage (`stage1.denoise_step` inside
//!   `oracle.infer_pits` inside a query).
//! * **Request tracing** — [`trace`] mints per-process trace/span ids
//!   (entropy-seeded so cluster peers never collide; pin the seed via
//!   `ODT_TRACE_SEED` for replayable runs),
//!   propagates a thread-local context (explicitly across thread pools via
//!   [`trace::install_context`]), head-samples 1-in-N with force-retention
//!   of anomalous traces, and exports Perfetto-loadable JSON. While a
//!   context is installed, [`SpanTimer`]s double as trace child spans,
//!   events carry `trace_id`/`span_id` fields, and histograms capture
//!   per-bucket trace-id exemplars ([`HistogramSummary::p99_exemplar`]).
//! * **Flight recorder** — [`flightrec`] dumps the event ring, open spans
//!   and a metrics snapshot as an `odt-flightrec/v1` JSONL black box on
//!   incident triggers (breaker open, SLO breach, panic).
//! * **SLO burn-rate monitor** — [`slo::BurnRateMonitor`] implements
//!   multi-window (fast + slow) error-budget burn alerting over a
//!   deterministic caller-supplied clock.
//! * **Prometheus exposition** — [`expo::render`] serializes the whole
//!   registry as text exposition format 0.0.4 (cumulative `le` buckets
//!   with exact integer-µs bounds, quantile/max gauges per histogram)
//!   for the admin plane's `GET /metrics`.
//! * **Model-quality windows** — [`quality::QualityTracker`] turns a
//!   shadow-scored `(predicted, actual)` travel-time stream into windowed
//!   MAE/MAPE/bias gauges plus a quantile-shift drift score against a
//!   frozen reference window, with edge-triggered alerts wired into the
//!   same SLO and flight-recorder machinery.
//!
//! ## Event taxonomy and metric names
//!
//! DESIGN.md §7 documents the event names (`train.*`, `serve.*`, `run.*`),
//! metric names and the JSONL schema used across the workspace.
//!
//! ```
//! let h = odt_obs::histogram("demo.step");
//! {
//!     let _span = odt_obs::span!("demo.step");
//!     // ... timed work ...
//! }
//! assert_eq!(h.count(), 1);
//! odt_obs::event(odt_obs::Level::Info, "demo.done")
//!     .field("steps", 1u64)
//!     .emit();
//! assert!(odt_obs::recent_events().iter().any(|e| e.name == "demo.done"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod expo;
pub mod flightrec;
pub mod json;
mod metrics;
pub mod quality;
mod ring;
pub mod rng;
mod sink;
pub mod slo;
mod span;
pub mod trace;

pub use event::{emit, event, min_level, set_min_level, Event, EventBuilder, FieldValue, Level};
pub use metrics::{
    bucket_le_us, counter, gauge, histogram, snapshot, Counter, Gauge, Histogram, HistogramData,
    HistogramSummary, MetricsSnapshot, NUM_BUCKETS,
};
pub use quality::{QualityConfig, QualitySnapshot, QualityTracker};
pub use ring::{recent_events, ring_capacity, set_ring_capacity};
pub use rng::SplitMix64;
pub use sink::{add_sink, flush_sinks, remove_sink, FnSink, JsonlSink, Sink, SinkId, StderrSink};
pub use span::{span, span_depth, span_if_traced, SpanTimer};
pub use trace::{SpanId, TraceContext, TraceId};

/// Start an RAII span timer feeding the histogram of the same name:
/// `let _guard = span!("stage1.denoise_step");`. The duration is recorded
/// when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}
