//! Minimal JSON rendering helpers (no serde in a zero-dependency crate).
//!
//! Shared across the workspace: the event sinks and flight recorder in
//! this crate, the `odt-wire/v1` writers in `odt-net`, and the admin
//! plane's `/varz`/`/tracez` renderers all build JSON through these two
//! functions, so string escaping exists exactly once.

/// Append `s` to `out` as a JSON string literal, with escaping.
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite JSON number; non-finite floats become `null` (JSON has
/// no NaN/Infinity).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        let mut out = String::new();
        push_str_escaped(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = String::new();
            push_f64(&mut out, v);
            assert_eq!(out, "null");
        }
        let mut out = String::new();
        push_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
    }
}
