//! Flight recorder: on-incident black-box dumps.
//!
//! When something goes wrong at serving time — a circuit breaker opens, the
//! SLO burn rate crosses its alert thresholds, or a panic escapes — the
//! aggregate metrics that survive the run are not enough to reconstruct
//! *that incident*. The flight recorder freezes the forensic state at the
//! moment of the trigger: the full event ring buffer, every currently open
//! trace span (what each thread was doing), and a metrics snapshot, written
//! as one `odt-flightrec/v1` JSONL file per incident.
//!
//! Dumps are **off by default** (a library test tripping a breaker must not
//! litter the filesystem): nothing is written until [`enable`] points the
//! recorder at a directory, or [`init_from_env`] reads `ODT_FLIGHTREC_DIR`.
//! Dump files are named `flightrec_<seq>_<reason>.jsonl`, written
//! atomically (temp + rename), and capped at [`MAX_DUMPS`] per process so a
//! flapping breaker cannot fill the disk.
//!
//! [`install_panic_hook`] chains a hook that — for panics *not* marked
//! expected via [`suppress_panic_dump`] (chaos-injected faults are caught
//! at the request boundary and must not each produce a dump) — emits a
//! `run.panic` event, flushes all sinks (so JSONL telemetry of a crashed
//! run is never stranded in the autoflush window), and triggers a dump.

use crate::json;
use std::cell::Cell;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// JSONL schema tag written in every dump header line.
pub const SCHEMA: &str = "odt-flightrec/v1";

/// Maximum dumps per process; triggers beyond the cap are counted but not
/// written.
pub const MAX_DUMPS: u64 = 64;

static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);
static SUPPRESSED_TRIGGERS: AtomicU64 = AtomicU64::new(0);

struct RecorderState {
    dir: Option<PathBuf>,
    last_dump: Option<PathBuf>,
}

fn state() -> &'static Mutex<RecorderState> {
    static STATE: OnceLock<Mutex<RecorderState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(RecorderState {
            dir: None,
            last_dump: None,
        })
    })
}

/// Point the recorder at `dir` (created if missing on first dump) and arm
/// it. Until this (or [`init_from_env`] with `ODT_FLIGHTREC_DIR` set) is
/// called, [`trigger`] is a no-op.
pub fn enable(dir: impl Into<PathBuf>) {
    state().lock().expect("flightrec state poisoned").dir = Some(dir.into());
}

/// Disarm the recorder (no further dumps are written).
pub fn disable() {
    state().lock().expect("flightrec state poisoned").dir = None;
}

/// Whether the recorder is armed.
pub fn enabled() -> bool {
    state()
        .lock()
        .expect("flightrec state poisoned")
        .dir
        .is_some()
}

/// Arm the recorder from `ODT_FLIGHTREC_DIR` (unset or empty leaves it
/// disarmed).
pub fn init_from_env() {
    if let Ok(dir) = std::env::var("ODT_FLIGHTREC_DIR") {
        if !dir.trim().is_empty() {
            enable(dir.trim());
        }
    }
}

/// Number of dumps written so far in this process.
pub fn dump_count() -> u64 {
    DUMP_SEQ.load(Ordering::Relaxed).min(MAX_DUMPS)
}

/// Path of the most recent dump, if any.
pub fn last_dump() -> Option<PathBuf> {
    state()
        .lock()
        .expect("flightrec state poisoned")
        .last_dump
        .clone()
}

fn render_dump(reason: &str, seq: u64) -> String {
    let mut out = String::with_capacity(16 * 1024);

    // Header: schema, trigger, and the trace active on the triggering
    // thread (how a chaos-drill report line links to its dump).
    out.push_str("{\"schema\":");
    json::push_str_escaped(&mut out, SCHEMA);
    out.push_str(",\"kind\":\"header\",\"reason\":");
    json::push_str_escaped(&mut out, reason);
    let _ = write!(out, ",\"seq\":{seq},\"ts_us\":{}", crate::trace::now_us());
    out.push_str(",\"trace_id\":");
    match crate::trace::current_context() {
        Some(ctx) => json::push_str_escaped(&mut out, &ctx.trace_id().to_hex()),
        None => out.push_str("null"),
    }
    out.push_str("}\n");

    // The event ring, oldest first.
    for ev in crate::recent_events() {
        let line = ev.to_json();
        out.push_str("{\"kind\":\"event\",");
        out.push_str(&line[1..]); // splice: line is `{...}`, keep `...}`
        out.push('\n');
    }

    // Every span currently open anywhere in the process: what each thread
    // was in the middle of when the incident fired.
    for s in crate::trace::open_spans() {
        out.push_str("{\"kind\":\"open_span\",\"trace_id\":");
        json::push_str_escaped(&mut out, &s.trace_id.to_hex());
        let _ = write!(out, ",\"span_id\":{},\"name\":", s.span_id);
        json::push_str_escaped(&mut out, s.name);
        let _ = write!(out, ",\"start_us\":{},\"tid\":{}}}", s.start_us, s.tid);
        out.push('\n');
    }

    // Metrics snapshot.
    let snap = crate::snapshot();
    for (name, v) in &snap.counters {
        out.push_str("{\"kind\":\"counter\",\"name\":");
        json::push_str_escaped(&mut out, name);
        let _ = write!(out, ",\"value\":{v}}}");
        out.push('\n');
    }
    for (name, v) in &snap.gauges {
        out.push_str("{\"kind\":\"gauge\",\"name\":");
        json::push_str_escaped(&mut out, name);
        out.push_str(",\"value\":");
        json::push_f64(&mut out, *v);
        out.push_str("}\n");
    }
    for (name, s) in &snap.histograms {
        out.push_str("{\"kind\":\"histogram\",\"name\":");
        json::push_str_escaped(&mut out, name);
        let _ = write!(out, ",\"count\":{},\"mean_us\":", s.count);
        json::push_f64(&mut out, s.mean_us);
        out.push_str(",\"p50_us\":");
        json::push_f64(&mut out, s.p50_us);
        out.push_str(",\"p95_us\":");
        json::push_f64(&mut out, s.p95_us);
        out.push_str(",\"p99_us\":");
        json::push_f64(&mut out, s.p99_us);
        out.push_str(",\"max_us\":");
        json::push_f64(&mut out, s.max_us);
        out.push_str(",\"p99_exemplar\":");
        match s.p99_exemplar {
            Some(id) => json::push_str_escaped(&mut out, &format!("{id:016x}")),
            None => out.push_str("null"),
        }
        out.push_str("}\n");
    }
    out
}

fn sanitize_reason(reason: &str) -> String {
    reason
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .take(48)
        .collect()
}

/// Dump the black box now, tagged with `reason`. Returns the dump path,
/// or `None` when disarmed, over the [`MAX_DUMPS`] cap, or on I/O failure
/// (the recorder must never take the process down).
pub fn trigger(reason: &str) -> Option<PathBuf> {
    let dir = state()
        .lock()
        .expect("flightrec state poisoned")
        .dir
        .clone()?;
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    if seq >= MAX_DUMPS {
        SUPPRESSED_TRIGGERS.fetch_add(1, Ordering::Relaxed);
        DUMP_SEQ.store(MAX_DUMPS, Ordering::Relaxed);
        return None;
    }
    let content = render_dump(reason, seq);
    if fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = dir.join(format!(
        "flightrec_{seq:03}_{}.jsonl",
        sanitize_reason(reason)
    ));
    if atomic_write(&path, &content).is_err() {
        return None;
    }
    crate::counter("flightrec.dumps").inc();
    state().lock().expect("flightrec state poisoned").last_dump = Some(path.clone());
    Some(path)
}

fn atomic_write(path: &Path, content: &str) -> std::io::Result<()> {
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(content.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

thread_local! {
    static SUPPRESS: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard of [`suppress_panic_dump`].
#[must_use = "dropping the guard re-enables panic dumps on this thread"]
pub struct SuppressGuard {
    _priv: (),
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESS.with(|s| s.set(s.get().saturating_sub(1)));
    }
}

/// Mark panics on this thread as *expected* while the guard lives: the
/// panic hook skips the flush + dump for them. Wrap `catch_unwind` regions
/// where panics are part of normal fault handling (the panic hook runs
/// even for caught panics, and a chaos drill injecting hundreds of panics
/// must not write hundreds of dumps).
pub fn suppress_panic_dump() -> SuppressGuard {
    SUPPRESS.with(|s| s.set(s.get() + 1));
    SuppressGuard { _priv: () }
}

/// Whether panic dumps are currently suppressed on this thread.
pub fn panic_dump_suppressed() -> bool {
    SUPPRESS.with(|s| s.get() > 0)
}

/// Install (once per process; later calls are no-ops) a panic hook that,
/// for unsuppressed panics, emits a `run.panic` event, flushes every sink,
/// and [`trigger`]s a `"panic"` dump — then chains to the previously
/// installed hook. Install *after* any hook that should run for every
/// panic (e.g. a drill's output silencer), since chaining runs the
/// previous hook last.
pub fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !panic_dump_suppressed() {
                let msg = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                let location = info
                    .location()
                    .map(|l| format!("{}:{}", l.file(), l.line()))
                    .unwrap_or_default();
                crate::event(crate::Level::Error, "run.panic")
                    .field("message", msg)
                    .field("location", location)
                    .emit();
                crate::flush_sinks();
                let _ = trigger("panic");
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock_tests() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_recorder_writes_nothing() {
        let _g = lock_tests();
        disable();
        assert!(!enabled());
        assert_eq!(trigger("test_disarmed"), None);
    }

    #[test]
    fn armed_trigger_writes_schema_dump() {
        let _g = lock_tests();
        let dir = std::env::temp_dir().join(format!("odt_flightrec_{}", std::process::id()));
        enable(&dir);
        crate::event(crate::Level::Warn, "test.flightrec.marker")
            .field("k", 7u64)
            .emit();
        crate::counter("test.flightrec.counter").inc();
        let path = trigger("unit test!").expect("armed recorder dumps");
        disable();
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .contains("unit_test_"));
        let content = fs::read_to_string(&path).unwrap();
        let mut lines = content.lines();
        let header = lines.next().unwrap();
        assert!(
            header.contains("\"schema\":\"odt-flightrec/v1\""),
            "{header}"
        );
        assert!(header.contains("\"kind\":\"header\""), "{header}");
        assert!(header.contains("\"reason\":\"unit test!\""), "{header}");
        assert!(
            content
                .lines()
                .any(|l| l.contains("\"kind\":\"event\"") && l.contains("test.flightrec.marker")),
            "ring events present"
        );
        assert!(
            content.lines().any(|l| l.contains("\"kind\":\"counter\"")
                && l.contains("test.flightrec.counter")),
            "metrics snapshot present"
        );
        for line in content.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert_eq!(last_dump().as_deref(), Some(path.as_path()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn suppression_guard_nests() {
        assert!(!panic_dump_suppressed());
        {
            let _a = suppress_panic_dump();
            assert!(panic_dump_suppressed());
            {
                let _b = suppress_panic_dump();
                assert!(panic_dump_suppressed());
            }
            assert!(panic_dump_suppressed());
        }
        assert!(!panic_dump_suppressed());
    }
}
