//! Model-quality telemetry: rolling accuracy windows and drift detection.
//!
//! Latency is observed exhaustively elsewhere in this crate; this module
//! makes estimate *quality* a live signal too. A [`QualityTracker`]
//! consumes `(predicted, actual)` travel-time pairs — produced by a
//! shadow holdout stream replayed through the serving model — and
//! maintains:
//!
//! * a **rolling window** of recent errors, from which windowed MAE,
//!   MAPE and signed-error mean (bias) are derived and exported as the
//!   `quality.mae` / `quality.mape` / `quality.bias` gauges;
//! * a **frozen reference window**: the first full window of relative
//!   errors is sorted and kept as the "what the model looked like at
//!   deployment" distribution;
//! * a **quantile-shift drift score**: the mean absolute displacement of
//!   the rolling window's error deciles (q10…q90) from the reference
//!   deciles, normalized by the reference IQR — `0` means the live error
//!   distribution sits exactly on the reference, `1` means the deciles
//!   have moved a full reference-IQR on average. Exported as the
//!   `quality.drift.score` gauge.
//!
//! Crossing [`QualityConfig::drift_threshold`] is edge-triggered like a
//! breaker: one `quality.drift.alert` event + `quality.drift.alerts`
//! counter increment + flight-recorder dump (`quality_drift`) per
//! episode, cleared with hysteresis at `drift_threshold ×
//! drift_clear_ratio`. Independently, every sample feeds an optional
//! [`BurnRateMonitor`] (`ok` = absolute percentage error within
//! [`QualityConfig::ape_tolerance`]), so sustained accuracy loss pages
//! through the exact same multi-window SLO machinery as latency does.

use crate::slo::{BurnRateConfig, BurnRateMonitor, BurnRateSnapshot};
use std::collections::VecDeque;

/// Configuration of a [`QualityTracker`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct QualityConfig {
    /// Rolling (and reference) window length in samples.
    pub window: usize,
    /// Minimum rolling-window samples before a drift score is computed.
    pub min_samples: usize,
    /// Per-sample accuracy SLO: a sample is "good" when its absolute
    /// percentage error is at or below this.
    pub ape_tolerance: f64,
    /// Drift score at which the edge-triggered drift alert fires.
    pub drift_threshold: f64,
    /// The alert clears when the score falls below `drift_threshold ×
    /// drift_clear_ratio` (hysteresis; in `(0, 1]`).
    pub drift_clear_ratio: f64,
    /// Feed each sample's good/bad outcome into a burn-rate monitor.
    pub slo: Option<BurnRateConfig>,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            window: 512,
            min_samples: 64,
            ape_tolerance: 0.35,
            drift_threshold: 0.75,
            drift_clear_ratio: 0.8,
            slo: Some(BurnRateConfig::default()),
        }
    }
}

impl QualityConfig {
    /// Drill/CI-scale preset: tiny windows so a short run can freeze a
    /// reference, drift, alert and clear.
    pub fn for_drill() -> Self {
        QualityConfig {
            window: 64,
            min_samples: 16,
            slo: Some(BurnRateConfig::for_drill()),
            ..QualityConfig::default()
        }
    }
}

/// Point-in-time view of a [`QualityTracker`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QualitySnapshot {
    /// Samples consumed over the tracker's lifetime.
    pub samples: u64,
    /// Samples currently in the rolling window.
    pub window_len: usize,
    /// Windowed mean absolute error, seconds.
    pub mae_s: f64,
    /// Windowed mean absolute percentage error (fraction, not %).
    pub mape: f64,
    /// Windowed signed-error mean, seconds (positive = overestimating).
    pub bias_s: f64,
    /// Quantile-shift drift score vs the frozen reference window.
    pub drift_score: f64,
    /// Whether the reference window has been frozen yet.
    pub reference_frozen: bool,
    /// Whether the drift alert is currently firing.
    pub drift_alerting: bool,
    /// Drift alert edges seen so far.
    pub drift_alerts: u64,
    /// Accuracy-SLO burn state, when configured.
    pub slo: Option<BurnRateSnapshot>,
}

/// Linear-interpolated `q`-quantile of a sorted non-empty slice.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

const DRIFT_DECILES: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

/// Rolling accuracy + drift tracker over a `(predicted, actual)` stream.
///
/// Single-owner (lives on the dispatcher/serving thread next to the
/// model); publish [`QualityTracker::snapshot`]s outward instead of
/// sharing the tracker.
#[derive(Debug)]
pub struct QualityTracker {
    cfg: QualityConfig,
    /// `(signed error s, APE, relative error)` per rolling sample.
    win: VecDeque<(f64, f64, f64)>,
    sum_abs_s: f64,
    sum_ape: f64,
    sum_err_s: f64,
    /// Relative errors accumulating toward the reference freeze.
    pending_ref: Vec<f64>,
    /// Sorted reference relative errors, once frozen.
    reference: Option<Vec<f64>>,
    /// Reference IQR with a floor, the drift normalizer.
    ref_scale: f64,
    drift_score: f64,
    drift_alerting: bool,
    drift_alerts: u64,
    samples: u64,
    monitor: Option<BurnRateMonitor>,
}

impl QualityTracker {
    /// Build a tracker; `window` and `min_samples` are clamped to sane
    /// minimums.
    pub fn new(mut cfg: QualityConfig) -> Self {
        cfg.window = cfg.window.max(8);
        cfg.min_samples = cfg.min_samples.clamp(4, cfg.window);
        cfg.drift_clear_ratio = cfg.drift_clear_ratio.clamp(0.05, 1.0);
        QualityTracker {
            win: VecDeque::with_capacity(cfg.window + 1),
            sum_abs_s: 0.0,
            sum_ape: 0.0,
            sum_err_s: 0.0,
            pending_ref: Vec::with_capacity(cfg.window),
            reference: None,
            ref_scale: 0.0,
            drift_score: 0.0,
            drift_alerting: false,
            drift_alerts: 0,
            samples: 0,
            monitor: cfg.slo.map(BurnRateMonitor::new),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &QualityConfig {
        &self.cfg
    }

    /// Record one shadow-scored pair at `now_us` on the caller's clock
    /// (feeds the SLO windows; timestamps must be non-decreasing).
    /// Non-finite inputs and non-positive actuals are counted
    /// (`quality.samples.invalid`) and otherwise ignored.
    pub fn record(&mut self, predicted_s: f64, actual_s: f64, now_us: u64) {
        if !predicted_s.is_finite() || !actual_s.is_finite() || actual_s <= 0.0 {
            crate::counter("quality.samples.invalid").inc();
            return;
        }
        let err = predicted_s - actual_s;
        let rel = err / actual_s;
        let ape = rel.abs();
        self.samples += 1;
        crate::counter("quality.samples").inc();

        self.win.push_back((err, ape, rel));
        self.sum_abs_s += err.abs();
        self.sum_ape += ape;
        self.sum_err_s += err;
        if self.win.len() > self.cfg.window {
            let (e, a, _) = self.win.pop_front().expect("window non-empty");
            self.sum_abs_s -= e.abs();
            self.sum_ape -= a;
            self.sum_err_s -= e;
        }

        if self.reference.is_none() {
            self.pending_ref.push(rel);
            if self.pending_ref.len() >= self.cfg.window {
                let mut r = std::mem::take(&mut self.pending_ref);
                r.sort_by(|a, b| a.total_cmp(b));
                // IQR floor: a near-constant reference error distribution
                // (IQR ~ 0) would make any change register as infinite
                // drift; 1% relative error is the smallest shift scale
                // worth normalizing against.
                self.ref_scale = (quantile_sorted(&r, 0.75) - quantile_sorted(&r, 0.25)).max(0.01);
                self.reference = Some(r);
                crate::event(crate::Level::Info, "quality.reference.frozen")
                    .field("window", self.cfg.window as u64)
                    .field("iqr", self.ref_scale)
                    .emit();
            }
        }

        self.update_drift();
        let n = self.win.len().max(1) as f64;
        crate::gauge("quality.mae").set(self.sum_abs_s / n);
        crate::gauge("quality.mape").set(self.sum_ape / n);
        crate::gauge("quality.bias").set(self.sum_err_s / n);
        crate::gauge("quality.window").set(self.win.len() as f64);

        if let Some(m) = &mut self.monitor {
            m.record(ape <= self.cfg.ape_tolerance, now_us);
        }
    }

    fn update_drift(&mut self) {
        let Some(reference) = &self.reference else {
            return;
        };
        if self.win.len() < self.cfg.min_samples {
            return;
        }
        let mut live: Vec<f64> = self.win.iter().map(|&(_, _, rel)| rel).collect();
        live.sort_by(|a, b| a.total_cmp(b));
        let shift: f64 = DRIFT_DECILES
            .iter()
            .map(|&d| (quantile_sorted(&live, d) - quantile_sorted(reference, d)).abs())
            .sum::<f64>()
            / DRIFT_DECILES.len() as f64;
        self.drift_score = shift / self.ref_scale;
        crate::gauge("quality.drift.score").set(self.drift_score);

        if self.drift_score >= self.cfg.drift_threshold && !self.drift_alerting {
            self.drift_alerting = true;
            self.drift_alerts += 1;
            crate::counter("quality.drift.alerts").inc();
            let n = self.win.len() as f64;
            crate::event(crate::Level::Error, "quality.drift.alert")
                .field("drift_score", self.drift_score)
                .field("threshold", self.cfg.drift_threshold)
                .field("mae_s", self.sum_abs_s / n)
                .field("mape", self.sum_ape / n)
                .field("bias_s", self.sum_err_s / n)
                .msg("estimate error distribution has shifted from the reference window")
                .emit();
            crate::trace::force_retain_current("quality_drift");
            let _ = crate::flightrec::trigger("quality_drift");
        } else if self.drift_alerting
            && self.drift_score < self.cfg.drift_threshold * self.cfg.drift_clear_ratio
        {
            self.drift_alerting = false;
            crate::event(crate::Level::Info, "quality.drift.clear")
                .field("drift_score", self.drift_score)
                .emit();
        }
    }

    /// Current snapshot; `now_us` evaluates the SLO burn windows.
    pub fn snapshot(&self, now_us: u64) -> QualitySnapshot {
        let n = self.win.len().max(1) as f64;
        QualitySnapshot {
            samples: self.samples,
            window_len: self.win.len(),
            mae_s: self.sum_abs_s / n,
            mape: self.sum_ape / n,
            bias_s: self.sum_err_s / n,
            drift_score: self.drift_score,
            reference_frozen: self.reference.is_some(),
            drift_alerting: self.drift_alerting,
            drift_alerts: self.drift_alerts,
            slo: self.monitor.as_ref().map(|m| m.snapshot(now_us)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> QualityConfig {
        QualityConfig {
            window: 32,
            min_samples: 8,
            ape_tolerance: 0.25,
            drift_threshold: 0.75,
            drift_clear_ratio: 0.8,
            slo: None,
        }
    }

    /// Deterministic small wobble in [-amp, amp].
    fn wobble(i: u64, amp: f64) -> f64 {
        amp * (((i.wrapping_mul(0x9e3779b97f4a7c15) >> 33) % 1000) as f64 / 500.0 - 1.0)
    }

    #[test]
    fn accurate_stream_freezes_reference_and_stays_calm() {
        let mut t = QualityTracker::new(cfg());
        for i in 0..100u64 {
            let actual = 600.0;
            let pred = actual * (1.0 + wobble(i, 0.05));
            t.record(pred, actual, i * 1000);
        }
        let s = t.snapshot(100_000);
        assert_eq!(s.samples, 100);
        assert_eq!(s.window_len, 32);
        assert!(s.reference_frozen);
        assert!(s.mape < 0.06, "mape {}", s.mape);
        assert!(s.mae_s < 36.0, "mae {}", s.mae_s);
        assert!(s.drift_score < 0.75, "drift {}", s.drift_score);
        assert_eq!(s.drift_alerts, 0);
        assert!(!s.drift_alerting);
    }

    #[test]
    fn shifted_stream_raises_edge_triggered_drift_alert_and_clears() {
        let mut t = QualityTracker::new(cfg());
        let mut now = 0u64;
        for i in 0..64u64 {
            now += 1000;
            t.record(600.0 * (1.0 + wobble(i, 0.05)), 600.0, now);
        }
        assert_eq!(t.snapshot(now).drift_alerts, 0);
        // Systematic +60% overestimate: every decile moves ~0.6, far past
        // threshold × IQR.
        for i in 0..64u64 {
            now += 1000;
            t.record(960.0 * (1.0 + wobble(i, 0.05)), 600.0, now);
        }
        let s = t.snapshot(now);
        assert!(s.drift_score > 0.75, "drift {}", s.drift_score);
        assert!(s.bias_s > 300.0, "bias {}", s.bias_s);
        assert_eq!(s.drift_alerts, 1, "edge-triggered: one alert");
        assert!(s.drift_alerting);
        // Recovery: accurate stream again → score decays, alert clears,
        // no second edge.
        for i in 0..64u64 {
            now += 1000;
            t.record(600.0 * (1.0 + wobble(i, 0.05)), 600.0, now);
        }
        let s = t.snapshot(now);
        assert!(!s.drift_alerting, "drift {}", s.drift_score);
        assert_eq!(s.drift_alerts, 1);
    }

    #[test]
    fn slo_monitor_pages_on_sustained_accuracy_loss() {
        let mut t = QualityTracker::new(QualityConfig {
            slo: Some(BurnRateConfig {
                fast_window_us: 1_000_000,
                slow_window_us: 10_000_000,
                min_samples: 5,
                ..BurnRateConfig::default()
            }),
            ..cfg()
        });
        let mut now = 0u64;
        for i in 0..40u64 {
            now += 10_000;
            t.record(600.0 * (1.0 + wobble(i, 0.05)), 600.0, now);
        }
        assert!(!t.snapshot(now).slo.unwrap().alerting);
        for _ in 0..40u64 {
            now += 10_000;
            t.record(1200.0, 600.0, now); // APE 1.0 >> tolerance
        }
        let slo = t.snapshot(now).slo.unwrap();
        assert!(slo.alerting, "sustained accuracy loss must burn the SLO");
        assert!(slo.alerts >= 1);
        assert_eq!(slo.errors, 40);
    }

    #[test]
    fn invalid_samples_are_counted_not_crashed() {
        let mut t = QualityTracker::new(cfg());
        let before = crate::counter("quality.samples.invalid").get();
        t.record(f64::NAN, 600.0, 0);
        t.record(600.0, f64::INFINITY, 0);
        t.record(600.0, 0.0, 0);
        t.record(600.0, -5.0, 0);
        assert_eq!(t.snapshot(0).samples, 0);
        assert_eq!(crate::counter("quality.samples.invalid").get(), before + 4);
    }

    #[test]
    fn windowed_stats_match_hand_computation() {
        let mut t = QualityTracker::new(cfg());
        // Window 32, feed exactly 4: mae over the 4.
        for (pred, actual) in [
            (110.0, 100.0),
            (90.0, 100.0),
            (100.0, 100.0),
            (130.0, 100.0),
        ] {
            t.record(pred, actual, 0);
        }
        let s = t.snapshot(0);
        assert!((s.mae_s - 12.5).abs() < 1e-9, "{}", s.mae_s);
        assert!((s.mape - 0.125).abs() < 1e-9, "{}", s.mape);
        assert!((s.bias_s - 7.5).abs() < 1e-9, "{}", s.bias_s);
        assert!(!s.reference_frozen);
        assert_eq!(s.drift_score, 0.0);
    }

    #[test]
    fn quantile_sorted_interpolates() {
        let v = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(quantile_sorted(&v, 0.0), 0.0);
        assert_eq!(quantile_sorted(&v, 1.0), 3.0);
        assert!((quantile_sorted(&v, 0.5) - 1.5).abs() < 1e-12);
        assert!((quantile_sorted(&v, 0.25) - 0.75).abs() < 1e-12);
    }
}
