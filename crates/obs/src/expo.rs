//! Prometheus text exposition (format version 0.0.4) for the metrics
//! registry — what the admin plane's `GET /metrics` serves.
//!
//! Mapping from the registry's dotted names to the Prometheus data model:
//!
//! * Names are sanitized (`[^a-zA-Z0-9_:]` → `_`) and prefixed `odt_`
//!   unless already so, e.g. `serve.request` → `odt_serve_request`.
//! * **Counters** gain the conventional `_total` suffix.
//! * **Gauges** render as-is.
//! * **Histograms** record integer microseconds, so the rendered name
//!   gains a `_us` unit suffix and the classic triplet is emitted:
//!   cumulative `_bucket{le="..."}` series, `_sum` (µs) and `_count`.
//!   Because observations are integers, the `le` bounds are the *exact*
//!   inclusive bucket tops (`0, 1, 3, 7, …, 2^i - 1`; see
//!   [`crate::metrics::bucket_le_us`]) — cumulative counts are exact, not
//!   off-by-half-a-bucket. The final catch-all bucket only ever surfaces
//!   through `+Inf`. Alongside each histogram, the interpolated
//!   p50/p95/p99 land as a `_quantile{quantile="..."}` gauge and the
//!   exact maximum as a `_max` gauge, so dashboards get quantiles without
//!   running `histogram_quantile` over 48 buckets.
//!
//! Rendering never panics and tolerates odd names (label values escaped
//! per the exposition spec; post-sanitization name collisions keep the
//! first metric and drop later ones rather than emitting a duplicate
//! family). An empty registry renders to an empty (still valid) body.

use crate::metrics::Histogram;
use std::collections::BTreeSet;

/// Content-Type an HTTP endpoint should declare for [`render`] output.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Sanitize a registry name into a Prometheus metric name: every char
/// outside `[a-zA-Z0-9_:]` becomes `_`, and the result is prefixed with
/// `odt_` unless it already starts with it (this also guarantees a legal
/// leading character).
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    if !name.starts_with("odt_") {
        out.push_str("odt_");
    }
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Append `v` escaped as a Prometheus label *value* (the part between the
/// quotes): backslash, double-quote and newline get backslash-escaped per
/// the exposition format spec.
pub fn push_label_value(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Append a sample value. Prometheus accepts Go-style floats including
/// `NaN`, `+Inf` and `-Inf` (unlike JSON — compare `json::push_f64`).
fn push_sample(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn push_help_type(out: &mut String, name: &str, source: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push_str(" odt registry metric ");
    // HELP text escaping per spec: backslash and newline only.
    for c in source.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Render the whole process-global registry as one exposition body.
pub fn render() -> String {
    let snap = crate::metrics::snapshot();
    let hists = crate::metrics::registry_histograms();
    render_parts(&snap.counters, &snap.gauges, &hists)
}

/// Render an exposition body from explicit parts — the testable core of
/// [`render`] (the registry is process-global, so tests feed local
/// histograms and literal counter/gauge slices instead).
pub fn render_parts(
    counters: &[(&str, u64)],
    gauges: &[(&str, f64)],
    histograms: &[(&str, &Histogram)],
) -> String {
    let mut out = String::new();
    // Families already emitted, by sanitized name: a post-sanitization
    // collision ("a.b" vs "a_b") must not emit the same family twice.
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let claim = |seen: &mut BTreeSet<String>, base: &str| -> bool {
        if seen.contains(base) {
            return false;
        }
        seen.insert(base.to_string());
        true
    };

    for &(name, v) in counters {
        let mut base = sanitize_name(name);
        if !base.ends_with("_total") {
            base.push_str("_total");
        }
        if !claim(&mut seen, &base) {
            continue;
        }
        push_help_type(&mut out, &base, name, "counter");
        out.push_str(&base);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }

    for &(name, v) in gauges {
        let base = sanitize_name(name);
        if !claim(&mut seen, &base) {
            continue;
        }
        push_help_type(&mut out, &base, name, "gauge");
        out.push_str(&base);
        out.push(' ');
        push_sample(&mut out, v);
        out.push('\n');
    }

    for &(name, h) in histograms {
        let mut base = sanitize_name(name);
        if !base.ends_with("_us") {
            base.push_str("_us");
        }
        if !claim(&mut seen, &base) {
            continue;
        }
        let count = h.count();
        push_help_type(&mut out, &base, name, "histogram");
        for (le, cum) in h.cumulative_buckets() {
            out.push_str(&base);
            out.push_str("_bucket{le=\"");
            push_label_value(&mut out, &le.to_string());
            out.push_str("\"} ");
            out.push_str(&cum.to_string());
            out.push('\n');
        }
        out.push_str(&base);
        out.push_str("_bucket{le=\"+Inf\"} ");
        out.push_str(&count.to_string());
        out.push('\n');
        out.push_str(&base);
        out.push_str("_sum ");
        out.push_str(&h.sum_micros().to_string());
        out.push('\n');
        out.push_str(&base);
        out.push_str("_count ");
        out.push_str(&count.to_string());
        out.push('\n');

        let qname = format!("{base}_quantile");
        if claim(&mut seen, &qname) {
            push_help_type(&mut out, &qname, name, "gauge");
            for (label, q) in [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)] {
                out.push_str(&qname);
                out.push_str("{quantile=\"");
                push_label_value(&mut out, label);
                out.push_str("\"} ");
                push_sample(&mut out, h.quantile_micros(q));
                out.push('\n');
            }
        }
        let mname = format!("{base}_max");
        if claim(&mut seen, &mname) {
            push_help_type(&mut out, &mname, name, "gauge");
            out.push_str(&mname);
            out.push(' ');
            out.push_str(&h.max_micros().to_string());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names_and_prefixes() {
        assert_eq!(sanitize_name("serve.request"), "odt_serve_request");
        assert_eq!(sanitize_name("odt_already"), "odt_already");
        assert_eq!(sanitize_name("weird name-µs"), "odt_weird_name__s");
        assert_eq!(sanitize_name("9lead"), "odt_9lead");
    }

    #[test]
    fn label_values_escape_per_spec() {
        let mut out = String::new();
        push_label_value(&mut out, "a\\b\"c\nd");
        assert_eq!(out, "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn empty_registry_renders_empty_body() {
        assert_eq!(render_parts(&[], &[], &[]), "");
    }

    #[test]
    fn counter_gets_total_suffix_and_help() {
        let body = render_parts(&[("net.conns.opened", 7)], &[], &[]);
        assert!(body.contains("# TYPE odt_net_conns_opened_total counter\n"));
        assert!(body.contains("\nodt_net_conns_opened_total 7\n"));
        assert!(body
            .contains("# HELP odt_net_conns_opened_total odt registry metric net.conns.opened\n"));
    }

    #[test]
    fn gauge_renders_nonfinite_go_style() {
        let body = render_parts(
            &[],
            &[("a", f64::NAN), ("b", f64::INFINITY), ("c", -2.5)],
            &[],
        );
        assert!(body.contains("odt_a NaN\n"));
        assert!(body.contains("odt_b +Inf\n"));
        assert!(body.contains("odt_c -2.5\n"));
    }

    #[test]
    fn zero_observation_histogram_is_minimal_but_valid() {
        let h = Histogram::default();
        let body = render_parts(&[], &[], &[("serve.request", &h)]);
        assert!(body.contains("# TYPE odt_serve_request_us histogram\n"));
        assert!(body.contains("odt_serve_request_us_bucket{le=\"+Inf\"} 0\n"));
        assert!(body.contains("odt_serve_request_us_sum 0\n"));
        assert!(body.contains("odt_serve_request_us_count 0\n"));
        assert!(
            !body.contains("_bucket{le=\"0\"}"),
            "no finite buckets for an empty histogram"
        );
        assert!(body.contains("odt_serve_request_us_quantile{quantile=\"0.5\"} 0\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_with_inf() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 700, 700, 5_000] {
            h.record_micros(v);
        }
        let body = render_parts(&[], &[], &[("q", &h)]);
        let mut cums = Vec::new();
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("odt_q_us_bucket{le=\"") {
                let (le, cnt) = rest.split_once("\"} ").unwrap();
                cums.push((le.to_string(), cnt.parse::<u64>().unwrap()));
            }
        }
        assert_eq!(cums.last().unwrap(), &("+Inf".to_string(), 6));
        for w in cums.windows(2) {
            assert!(w[0].1 <= w[1].1, "cumulative counts must be monotone");
        }
        // Exact inclusive bounds: le="0" counts the one zero, le="1023"
        // counts everything but the 5 ms outlier.
        assert!(cums.contains(&("0".to_string(), 1)));
        assert!(cums.contains(&("1023".to_string(), 5)));
        assert!(body.contains("odt_q_us_sum 6403\n"));
        assert!(body.contains("odt_q_us_count 6\n"));
        assert!(body.contains("odt_q_us_max 5000\n"));
    }

    #[test]
    fn sanitization_collisions_keep_first_family() {
        let body = render_parts(&[("a.b", 1), ("a_b", 2)], &[("a.b", 9.0)], &[]);
        assert_eq!(body.matches("# TYPE odt_a_b_total counter").count(), 1);
        assert!(body.contains("odt_a_b_total 1\n"));
        assert!(!body.contains("odt_a_b_total 2"));
        // The gauge's sanitized name does not collide with the counter's
        // (different suffix), so it still renders.
        assert!(body.contains("odt_a_b 9\n"));
    }

    #[test]
    fn every_line_is_comment_or_sample_shaped() {
        let h = Histogram::default();
        h.record_micros(42);
        let body = render_parts(&[("c.x", 1)], &[("g.y", 0.5)], &[("h.z", &h)]);
        for line in body.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "{line}"
                );
            } else {
                let (name_labels, value) = line.rsplit_once(' ').expect(line);
                assert!(!value.is_empty(), "{line}");
                let name = name_labels.split('{').next().unwrap();
                assert!(
                    name.chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                    "{line}"
                );
                assert!(name.starts_with("odt_"), "{line}");
            }
        }
    }
}
