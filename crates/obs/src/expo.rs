//! Prometheus text exposition (format version 0.0.4) for the metrics
//! registry — what the admin plane's `GET /metrics` serves.
//!
//! Mapping from the registry's dotted names to the Prometheus data model:
//!
//! * Names are sanitized (`[^a-zA-Z0-9_:]` → `_`) and prefixed `odt_`
//!   unless already so, e.g. `serve.request` → `odt_serve_request`.
//! * **Counters** gain the conventional `_total` suffix.
//! * **Gauges** render as-is.
//! * **Histograms** record integer microseconds, so the rendered name
//!   gains a `_us` unit suffix and the classic triplet is emitted:
//!   cumulative `_bucket{le="..."}` series, `_sum` (µs) and `_count`.
//!   Because observations are integers, the `le` bounds are the *exact*
//!   inclusive bucket tops (`0, 1, 3, 7, …, 2^i - 1`; see
//!   [`crate::metrics::bucket_le_us`]) — cumulative counts are exact, not
//!   off-by-half-a-bucket. The final catch-all bucket only ever surfaces
//!   through `+Inf`. Alongside each histogram, the interpolated
//!   p50/p95/p99 land as a `_quantile{quantile="..."}` gauge and the
//!   exact maximum as a `_max` gauge, so dashboards get quantiles without
//!   running `histogram_quantile` over 48 buckets.
//!
//! Rendering never panics and tolerates odd names (label values escaped
//! per the exposition spec; post-sanitization name collisions keep the
//! first metric and drop later ones rather than emitting a duplicate
//! family). An empty registry renders to an empty (still valid) body.

use crate::metrics::{Histogram, HistogramData, NUM_BUCKETS};
use std::collections::BTreeSet;

/// Content-Type an HTTP endpoint should declare for [`render`] output.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Sanitize a registry name into a Prometheus metric name: every char
/// outside `[a-zA-Z0-9_:]` becomes `_`, and the result is prefixed with
/// `odt_` unless it already starts with it (this also guarantees a legal
/// leading character).
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    if !name.starts_with("odt_") {
        out.push_str("odt_");
    }
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Append `v` escaped as a Prometheus label *value* (the part between the
/// quotes): backslash, double-quote and newline get backslash-escaped per
/// the exposition format spec.
pub fn push_label_value(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Append a sample value. Prometheus accepts Go-style floats including
/// `NaN`, `+Inf` and `-Inf` (unlike JSON — compare `json::push_f64`).
/// Public so federation re-renderers emit values the same way.
pub fn push_sample(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn push_help_type(out: &mut String, name: &str, source: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push_str(" odt registry metric ");
    // HELP text escaping per spec: backslash and newline only.
    for c in source.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Render the whole process-global registry as one exposition body.
pub fn render() -> String {
    let snap = crate::metrics::snapshot();
    let hists = crate::metrics::registry_histograms();
    render_parts(&snap.counters, &snap.gauges, &hists)
}

/// Render an exposition body from explicit parts — the testable core of
/// [`render`] (the registry is process-global, so tests feed local
/// histograms and literal counter/gauge slices instead).
pub fn render_parts(
    counters: &[(&str, u64)],
    gauges: &[(&str, f64)],
    histograms: &[(&str, &Histogram)],
) -> String {
    let mut out = String::new();
    // Families already emitted, by sanitized name: a post-sanitization
    // collision ("a.b" vs "a_b") must not emit the same family twice.
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let claim = |seen: &mut BTreeSet<String>, base: &str| -> bool {
        if seen.contains(base) {
            return false;
        }
        seen.insert(base.to_string());
        true
    };

    for &(name, v) in counters {
        let mut base = sanitize_name(name);
        if !base.ends_with("_total") {
            base.push_str("_total");
        }
        if !claim(&mut seen, &base) {
            continue;
        }
        push_help_type(&mut out, &base, name, "counter");
        out.push_str(&base);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }

    for &(name, v) in gauges {
        let base = sanitize_name(name);
        if !claim(&mut seen, &base) {
            continue;
        }
        push_help_type(&mut out, &base, name, "gauge");
        out.push_str(&base);
        out.push(' ');
        push_sample(&mut out, v);
        out.push('\n');
    }

    for &(name, h) in histograms {
        let mut base = sanitize_name(name);
        if !base.ends_with("_us") {
            base.push_str("_us");
        }
        if !claim(&mut seen, &base) {
            continue;
        }
        let count = h.count();
        push_help_type(&mut out, &base, name, "histogram");
        for (le, cum) in h.cumulative_buckets() {
            out.push_str(&base);
            out.push_str("_bucket{le=\"");
            push_label_value(&mut out, &le.to_string());
            out.push_str("\"} ");
            out.push_str(&cum.to_string());
            out.push('\n');
        }
        out.push_str(&base);
        out.push_str("_bucket{le=\"+Inf\"} ");
        out.push_str(&count.to_string());
        out.push('\n');
        out.push_str(&base);
        out.push_str("_sum ");
        out.push_str(&h.sum_micros().to_string());
        out.push('\n');
        out.push_str(&base);
        out.push_str("_count ");
        out.push_str(&count.to_string());
        out.push('\n');

        let qname = format!("{base}_quantile");
        if claim(&mut seen, &qname) {
            push_help_type(&mut out, &qname, name, "gauge");
            for (label, q) in [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)] {
                out.push_str(&qname);
                out.push_str("{quantile=\"");
                push_label_value(&mut out, label);
                out.push_str("\"} ");
                push_sample(&mut out, h.quantile_micros(q));
                out.push('\n');
            }
        }
        let mname = format!("{base}_max");
        if claim(&mut seen, &mname) {
            push_help_type(&mut out, &mname, name, "gauge");
            out.push_str(&mname);
            out.push(' ');
            out.push_str(&h.max_micros().to_string());
            out.push('\n');
        }
    }
    out
}

/// One parsed sample line of an exposition body.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpoSample {
    /// Series name, e.g. `odt_serve_request_us_bucket`.
    pub name: String,
    /// Label pairs, in appearance order, unescaped.
    pub labels: Vec<(String, String)>,
    /// Sample value (Go-style floats: `NaN`/`+Inf`/`-Inf` accepted).
    pub value: f64,
}

impl ExpoSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition body: `# TYPE` declarations plus every sample.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedExposition {
    /// Family name → declared type (`counter`/`gauge`/`histogram`), in
    /// declaration order.
    pub types: Vec<(String, String)>,
    /// Every sample line, in order.
    pub samples: Vec<ExpoSample>,
}

impl ParsedExposition {
    /// The declared type of family `name`, if any.
    pub fn type_of(&self, name: &str) -> Option<&str> {
        self.types
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.as_str())
    }
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "NaN" => Ok(f64::NAN),
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {other:?}")),
    }
}

/// Parse a Prometheus 0.0.4 text body back into its samples — the inverse
/// of [`render`], and the reading half of cluster metrics federation (the
/// router scrapes each replica's `/metrics` and re-assembles histograms
/// via [`histograms_from_parts`]). Strict on sample shape (a malformed
/// line is an error, not a skip: replicas only ever serve bodies produced
/// by [`render`], so lenience would just mask bugs); tolerant of comment
/// lines and of an optional trailing timestamp token.
pub fn parse(body: &str) -> Result<ParsedExposition, String> {
    let mut out = ParsedExposition::default();
    for (ln, line) in body.lines().enumerate() {
        let ln = ln + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next(), it.next());
            match (name, kind) {
                (Some(n), Some(k)) => out.types.push((n.to_string(), k.to_string())),
                _ => return Err(format!("line {ln}: malformed TYPE declaration")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let bytes = line.as_bytes();
        let name_end = bytes
            .iter()
            .position(|&b| b == b'{' || b == b' ')
            .ok_or_else(|| format!("line {ln}: sample without value"))?;
        let name = &line[..name_end];
        if name.is_empty() {
            return Err(format!("line {ln}: empty sample name"));
        }
        let mut labels = Vec::new();
        let mut pos = name_end;
        if bytes[pos] == b'{' {
            pos += 1;
            loop {
                if pos >= bytes.len() {
                    return Err(format!("line {ln}: unterminated label set"));
                }
                if bytes[pos] == b'}' {
                    pos += 1;
                    break;
                }
                let eq = line[pos..]
                    .find('=')
                    .map(|i| pos + i)
                    .ok_or_else(|| format!("line {ln}: label without '='"))?;
                let key = line[pos..eq].trim().to_string();
                if bytes.get(eq + 1) != Some(&b'"') {
                    return Err(format!("line {ln}: unquoted label value"));
                }
                let mut val = String::new();
                let mut i = eq + 2;
                loop {
                    match bytes.get(i) {
                        None => return Err(format!("line {ln}: unterminated label value")),
                        Some(b'\\') => {
                            match bytes.get(i + 1) {
                                Some(b'\\') => val.push('\\'),
                                Some(b'"') => val.push('"'),
                                Some(b'n') => val.push('\n'),
                                _ => return Err(format!("line {ln}: bad escape")),
                            }
                            i += 2;
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Label values are escaped byte-safe ASCII or
                            // passed-through UTF-8: copy the whole char.
                            let c = line[i..].chars().next().unwrap();
                            val.push(c);
                            i += c.len_utf8();
                        }
                    }
                }
                labels.push((key, val));
                match bytes.get(i) {
                    Some(b',') => pos = i + 1,
                    Some(b'}') => pos = i,
                    _ => return Err(format!("line {ln}: expected ',' or '}}' after label")),
                }
            }
        }
        let rest = line[pos..].trim_start();
        let value_tok = rest
            .split_whitespace()
            .next()
            .ok_or_else(|| format!("line {ln}: sample without value"))?;
        out.samples.push(ExpoSample {
            name: name.to_string(),
            labels,
            value: parse_value(value_tok).map_err(|e| format!("line {ln}: {e}"))?,
        });
    }
    Ok(out)
}

fn le_to_bucket_index(le: &str) -> Result<usize, String> {
    let v: u64 = le
        .parse()
        .map_err(|_| format!("non-integer le bound {le:?}"))?;
    if v == 0 {
        return Ok(0);
    }
    let up = v
        .checked_add(1)
        .ok_or_else(|| format!("le bound {le} overflows"))?;
    if !up.is_power_of_two() {
        return Err(format!("le bound {le} is not 2^i - 1"));
    }
    let i = up.trailing_zeros() as usize;
    if i >= NUM_BUCKETS {
        return Err(format!("le bound {le} beyond bucket range"));
    }
    Ok(i)
}

/// Re-assemble every histogram-typed family of a parsed body into a
/// [`HistogramData`], keyed by family base name. The inverse of the
/// histogram triplet rendering: cumulative `_bucket` series are
/// differenced back to per-bucket counts (exact, because the `le` bounds
/// are the fixed `2^i - 1` bucket tops), the `+Inf` remainder lands in
/// the final catch-all bucket, and the `_max` companion gauge restores
/// the exact maximum. Only unlabeled series (the per-process `/metrics`
/// shape) participate; samples carrying labels other than `le` are
/// ignored. Malformed families (unknown bounds, non-monotone cumulative
/// counts, missing `_count`) are errors.
pub fn histograms_from_parts(p: &ParsedExposition) -> Result<Vec<(String, HistogramData)>, String> {
    let mut out = Vec::new();
    for (fam, kind) in &p.types {
        if kind != "histogram" {
            continue;
        }
        let bucket_name = format!("{fam}_bucket");
        let mut finite: Vec<(usize, u64)> = Vec::new();
        let mut count: Option<u64> = None;
        let mut sum: Option<u64> = None;
        let mut max: Option<u64> = None;
        for s in &p.samples {
            if s.name == bucket_name && s.labels.len() == 1 {
                let le = s.label("le").ok_or_else(|| format!("{fam}: no le"))?;
                if le == "+Inf" {
                    continue; // total restored from _count below
                }
                let idx = le_to_bucket_index(le).map_err(|e| format!("{fam}: {e}"))?;
                finite.push((idx, s.value as u64));
            } else if s.name == format!("{fam}_count") && s.labels.is_empty() {
                count = Some(s.value as u64);
            } else if s.name == format!("{fam}_sum") && s.labels.is_empty() {
                sum = Some(s.value as u64);
            } else if s.name == format!("{fam}_max") && s.labels.is_empty() {
                max = Some(s.value as u64);
            }
        }
        let count = count.ok_or_else(|| format!("{fam}: missing _count"))?;
        let sum = sum.ok_or_else(|| format!("{fam}: missing _sum"))?;
        finite.sort_unstable();
        let mut d = HistogramData {
            count,
            sum_us: sum,
            max_us: max.unwrap_or(0),
            ..HistogramData::default()
        };
        let mut prev_cum = 0u64;
        for &(idx, cum) in &finite {
            let c = cum
                .checked_sub(prev_cum)
                .ok_or_else(|| format!("{fam}: non-monotone cumulative buckets"))?;
            d.buckets[idx] = c;
            prev_cum = cum;
        }
        // Observations above the highest rendered finite bound live in
        // the catch-all bucket (the renderer stops at the highest
        // non-empty finite bucket, so intermediate buckets are covered).
        d.buckets[NUM_BUCKETS - 1] += count
            .checked_sub(prev_cum)
            .ok_or_else(|| format!("{fam}: _count below cumulative buckets"))?;
        out.push((fam.clone(), d));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names_and_prefixes() {
        assert_eq!(sanitize_name("serve.request"), "odt_serve_request");
        assert_eq!(sanitize_name("odt_already"), "odt_already");
        assert_eq!(sanitize_name("weird name-µs"), "odt_weird_name__s");
        assert_eq!(sanitize_name("9lead"), "odt_9lead");
    }

    #[test]
    fn label_values_escape_per_spec() {
        let mut out = String::new();
        push_label_value(&mut out, "a\\b\"c\nd");
        assert_eq!(out, "a\\\\b\\\"c\\nd");
    }

    #[test]
    fn empty_registry_renders_empty_body() {
        assert_eq!(render_parts(&[], &[], &[]), "");
    }

    #[test]
    fn counter_gets_total_suffix_and_help() {
        let body = render_parts(&[("net.conns.opened", 7)], &[], &[]);
        assert!(body.contains("# TYPE odt_net_conns_opened_total counter\n"));
        assert!(body.contains("\nodt_net_conns_opened_total 7\n"));
        assert!(body
            .contains("# HELP odt_net_conns_opened_total odt registry metric net.conns.opened\n"));
    }

    #[test]
    fn gauge_renders_nonfinite_go_style() {
        let body = render_parts(
            &[],
            &[("a", f64::NAN), ("b", f64::INFINITY), ("c", -2.5)],
            &[],
        );
        assert!(body.contains("odt_a NaN\n"));
        assert!(body.contains("odt_b +Inf\n"));
        assert!(body.contains("odt_c -2.5\n"));
    }

    #[test]
    fn zero_observation_histogram_is_minimal_but_valid() {
        let h = Histogram::default();
        let body = render_parts(&[], &[], &[("serve.request", &h)]);
        assert!(body.contains("# TYPE odt_serve_request_us histogram\n"));
        assert!(body.contains("odt_serve_request_us_bucket{le=\"+Inf\"} 0\n"));
        assert!(body.contains("odt_serve_request_us_sum 0\n"));
        assert!(body.contains("odt_serve_request_us_count 0\n"));
        assert!(
            !body.contains("_bucket{le=\"0\"}"),
            "no finite buckets for an empty histogram"
        );
        assert!(body.contains("odt_serve_request_us_quantile{quantile=\"0.5\"} 0\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_with_inf() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 700, 700, 5_000] {
            h.record_micros(v);
        }
        let body = render_parts(&[], &[], &[("q", &h)]);
        let mut cums = Vec::new();
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("odt_q_us_bucket{le=\"") {
                let (le, cnt) = rest.split_once("\"} ").unwrap();
                cums.push((le.to_string(), cnt.parse::<u64>().unwrap()));
            }
        }
        assert_eq!(cums.last().unwrap(), &("+Inf".to_string(), 6));
        for w in cums.windows(2) {
            assert!(w[0].1 <= w[1].1, "cumulative counts must be monotone");
        }
        // Exact inclusive bounds: le="0" counts the one zero, le="1023"
        // counts everything but the 5 ms outlier.
        assert!(cums.contains(&("0".to_string(), 1)));
        assert!(cums.contains(&("1023".to_string(), 5)));
        assert!(body.contains("odt_q_us_sum 6403\n"));
        assert!(body.contains("odt_q_us_count 6\n"));
        assert!(body.contains("odt_q_us_max 5000\n"));
    }

    #[test]
    fn sanitization_collisions_keep_first_family() {
        let body = render_parts(&[("a.b", 1), ("a_b", 2)], &[("a.b", 9.0)], &[]);
        assert_eq!(body.matches("# TYPE odt_a_b_total counter").count(), 1);
        assert!(body.contains("odt_a_b_total 1\n"));
        assert!(!body.contains("odt_a_b_total 2"));
        // The gauge's sanitized name does not collide with the counter's
        // (different suffix), so it still renders.
        assert!(body.contains("odt_a_b 9\n"));
    }

    #[test]
    fn parse_round_trips_rendered_samples() {
        let h = Histogram::default();
        for v in [0u64, 3, 700, 5_000] {
            h.record_micros(v);
        }
        let body = render_parts(
            &[("net.conns.opened", 7)],
            &[("quality.mae", 37.5)],
            &[("serve.request", &h)],
        );
        let p = parse(&body).expect("own render output parses");
        assert_eq!(p.type_of("odt_net_conns_opened_total"), Some("counter"));
        assert_eq!(p.type_of("odt_quality_mae"), Some("gauge"));
        assert_eq!(p.type_of("odt_serve_request_us"), Some("histogram"));
        let c = p
            .samples
            .iter()
            .find(|s| s.name == "odt_net_conns_opened_total")
            .unwrap();
        assert_eq!(c.value, 7.0);
        assert!(c.labels.is_empty());
        let b = p
            .samples
            .iter()
            .find(|s| s.name == "odt_serve_request_us_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(b.value, 4.0);
        // Label-value escapes survive a round trip.
        let mut line = String::from("odt_x{k=\"");
        push_label_value(&mut line, "a\\b\"c\nd");
        line.push_str("\"} 1\n");
        let p = parse(&line).unwrap();
        assert_eq!(p.samples[0].label("k"), Some("a\\b\"c\nd"));
        // Go-style non-finite values parse.
        let p = parse("odt_g NaN\nodt_h +Inf\nodt_i -Inf\n").unwrap();
        assert!(p.samples[0].value.is_nan());
        assert_eq!(p.samples[1].value, f64::INFINITY);
        assert_eq!(p.samples[2].value, f64::NEG_INFINITY);
        // Malformed lines are errors, not skips.
        for bad in ["odt_x", "odt_x{le=\"1\" 3", "odt_x{le=1} 3", "{} 1"] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn histograms_reassemble_exactly_from_exposition() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 700, 700, 5_000, u64::MAX] {
            h.record_micros(v);
        }
        let body = render_parts(&[], &[], &[("serve.request", &h)]);
        let p = parse(&body).unwrap();
        let hists = histograms_from_parts(&p).unwrap();
        assert_eq!(hists.len(), 1);
        let (fam, d) = &hists[0];
        assert_eq!(fam, "odt_serve_request_us");
        assert_eq!(
            d,
            &h.data(),
            "parse(render(h)) restores the exact bucket state"
        );
        // An empty histogram reassembles to the empty data.
        let e = Histogram::default();
        let body = render_parts(&[], &[], &[("empty", &e)]);
        let hists = histograms_from_parts(&parse(&body).unwrap()).unwrap();
        assert_eq!(hists[0].1, HistogramData::default());
    }

    #[test]
    fn every_line_is_comment_or_sample_shaped() {
        let h = Histogram::default();
        h.record_micros(42);
        let body = render_parts(&[("c.x", 1)], &[("g.y", 0.5)], &[("h.z", &h)]);
        for line in body.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "{line}"
                );
            } else {
                let (name_labels, value) = line.rsplit_once(' ').expect(line);
                assert!(!value.is_empty(), "{line}");
                let name = name_labels.split('{').next().unwrap();
                assert!(
                    name.chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                    "{line}"
                );
                assert!(name.starts_with("odt_"), "{line}");
            }
        }
    }
}
