//! Pluggable event sinks: stderr pretty-printer, atomic JSONL file writer,
//! and a closure adapter.

use crate::{Event, Level};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// An event consumer. Sinks receive every emitted event at or above the
/// global minimum level and may filter further themselves.
pub trait Sink: Send + Sync {
    /// Consume one event.
    fn accept(&self, event: &Event);
    /// Persist any buffered output (no-op by default).
    fn flush(&self) {}
}

/// Handle returned by [`add_sink`], used to unregister.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SinkId(u64);

type SinkList = RwLock<Vec<(u64, Arc<dyn Sink>)>>;

fn sinks() -> &'static SinkList {
    static SINKS: OnceLock<SinkList> = OnceLock::new();
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Register a sink; it receives every subsequently emitted event.
pub fn add_sink(sink: Arc<dyn Sink>) -> SinkId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    sinks()
        .write()
        .expect("sink list poisoned")
        .push((id, sink));
    SinkId(id)
}

/// Unregister a sink, returning it so the caller can flush it one last
/// time.
pub fn remove_sink(id: SinkId) -> Option<Arc<dyn Sink>> {
    let mut list = sinks().write().expect("sink list poisoned");
    list.iter()
        .position(|(i, _)| *i == id.0)
        .map(|pos| list.remove(pos).1)
}

/// Flush every registered sink.
pub fn flush_sinks() {
    for (_, s) in sinks().read().expect("sink list poisoned").iter() {
        s.flush();
    }
}

pub(crate) fn dispatch(ev: &Event) {
    for (_, s) in sinks().read().expect("sink list poisoned").iter() {
        s.accept(ev);
    }
}

/// Pretty-prints events at or above its own level to stderr.
pub struct StderrSink {
    min_level: Level,
}

impl StderrSink {
    /// Build with a per-sink level filter.
    pub fn new(min_level: Level) -> Self {
        StderrSink { min_level }
    }
}

impl Sink for StderrSink {
    fn accept(&self, event: &Event) {
        if event.level >= self.min_level {
            eprintln!("{}", event.pretty());
        }
    }
}

/// Adapts any `Fn(&Event)` closure into a sink (test collectors, legacy
/// callback bridges).
pub struct FnSink<F: Fn(&Event) + Send + Sync>(F);

impl<F: Fn(&Event) + Send + Sync> FnSink<F> {
    /// Wrap a closure.
    pub fn new(f: F) -> Self {
        FnSink(f)
    }
}

impl<F: Fn(&Event) + Send + Sync> Sink for FnSink<F> {
    fn accept(&self, event: &Event) {
        (self.0)(event);
    }
}

/// Auto-flush cadence of [`JsonlSink`] (events between flushes), bounding
/// how much telemetry a crash can lose.
const JSONL_AUTOFLUSH_EVERY: usize = 128;

struct JsonlState {
    lines: Vec<String>,
    unflushed: usize,
}

/// Accumulates events as JSONL and flushes **atomically**: the full
/// accumulated log is written to `<path>.tmp` and renamed over `<path>`, so
/// the file at `path` is always complete, valid JSONL — a crash mid-flush
/// leaves the previous complete version, never a torn line.
pub struct JsonlSink {
    path: PathBuf,
    state: Mutex<JsonlState>,
}

impl JsonlSink {
    /// Build a sink writing to `path` (flushes also happen automatically
    /// every [`JSONL_AUTOFLUSH_EVERY`] events and on drop).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JsonlSink {
            path: path.into(),
            state: Mutex::new(JsonlState {
                lines: Vec::new(),
                unflushed: 0,
            }),
        }
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn flush_locked(&self, state: &mut JsonlState) -> std::io::Result<()> {
        if state.unflushed == 0 && state.lines.is_empty() {
            return Ok(());
        }
        let tmp = PathBuf::from(format!("{}.tmp", self.path.display()));
        {
            let mut f = fs::File::create(&tmp)?;
            for line in &state.lines {
                writeln!(f, "{line}")?;
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        state.unflushed = 0;
        Ok(())
    }
}

impl Sink for JsonlSink {
    fn accept(&self, event: &Event) {
        let mut state = self.state.lock().expect("jsonl sink poisoned");
        state.lines.push(event.to_json());
        state.unflushed += 1;
        if state.unflushed >= JSONL_AUTOFLUSH_EVERY {
            // Best-effort: telemetry must never take the run down.
            let _ = self.flush_locked(&mut state);
        }
    }

    fn flush(&self) {
        let mut state = self.state.lock().expect("jsonl sink poisoned");
        let _ = self.flush_locked(&mut state);
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn fn_sink_receives_emitted_events() {
        static SEEN: AtomicUsize = AtomicUsize::new(0);
        let id = add_sink(Arc::new(FnSink::new(|e: &Event| {
            if e.name == "test.fnsink" {
                SEEN.fetch_add(1, Ordering::Relaxed);
            }
        })));
        event(Level::Info, "test.fnsink").emit();
        event(Level::Info, "test.other").emit();
        remove_sink(id).expect("sink registered");
        event(Level::Info, "test.fnsink").emit();
        assert_eq!(SEEN.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn mid_run_sink_sees_only_subsequent_events() {
        // A sink registered mid-run must not replay history (the ring
        // holds the past; sinks are forward-only).
        let seen = Arc::new(Mutex::new(Vec::<u64>::new()));
        event(Level::Info, "test.midrun").field("i", 0u64).emit();
        let seen2 = Arc::clone(&seen);
        let id = add_sink(Arc::new(FnSink::new(move |e: &Event| {
            if e.name == "test.midrun" {
                if let Some(i) = e.field("i").and_then(crate::FieldValue::as_u64) {
                    seen2.lock().unwrap().push(i);
                }
            }
        })));
        event(Level::Info, "test.midrun").field("i", 1u64).emit();
        event(Level::Info, "test.midrun").field("i", 2u64).emit();
        remove_sink(id).expect("sink registered");
        event(Level::Info, "test.midrun").field("i", 3u64).emit();
        assert_eq!(*seen.lock().unwrap(), vec![1, 2]);
        // The pre-registration event is still in the ring, though.
        assert!(crate::recent_events()
            .iter()
            .any(|e| e.name == "test.midrun"
                && e.field("i").and_then(crate::FieldValue::as_u64) == Some(0)));
    }

    #[test]
    fn jsonl_sink_flushes_atomically_via_rename() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("odt_obs_jsonl_{}.jsonl", std::process::id()));
        let tmp = PathBuf::from(format!("{}.tmp", path.display()));
        let _ = fs::remove_file(&path);
        let sink = JsonlSink::new(&path);
        for i in 0..5u64 {
            sink.accept(&event(Level::Info, "test.jsonl").field("i", i).build());
        }
        // Nothing on disk until a flush.
        assert!(!path.exists());
        Sink::flush(&sink);
        // Write-then-rename: the temp file must be gone, the target
        // complete.
        assert!(!tmp.exists(), "temp file must be renamed away");
        let content = fs::read_to_string(&path).expect("flushed file readable");
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 5);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with("{\"ts_us\":"), "line {i}: {line}");
            assert!(line.ends_with("}}"), "line {i}: {line}");
            assert!(line.contains(&format!("\"i\":{i}")), "line {i}: {line}");
        }
        // A second flush after more events rewrites the complete file.
        sink.accept(&event(Level::Info, "test.jsonl").field("i", 5u64).build());
        Sink::flush(&sink);
        let content = fs::read_to_string(&path).expect("reflushed file readable");
        assert_eq!(content.lines().count(), 6);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        let path =
            std::env::temp_dir().join(format!("odt_obs_jsonl_drop_{}.jsonl", std::process::id()));
        let _ = fs::remove_file(&path);
        {
            let sink = JsonlSink::new(&path);
            sink.accept(&event(Level::Info, "test.drop").build());
        }
        let content = fs::read_to_string(&path).expect("dropped sink flushed");
        assert_eq!(content.lines().count(), 1);
        let _ = fs::remove_file(&path);
    }
}
