//! RAII span timers feeding the latency histograms.

use crate::metrics::{histogram, Histogram};
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// An RAII wall-clock timer: created by [`span`] (or the [`crate::span!`]
/// macro), it records its elapsed time into the histogram named after the
/// span when dropped. Spans nest freely; [`span_depth`] reports the current
/// nesting depth on this thread.
pub struct SpanTimer {
    hist: &'static Histogram,
    start: Instant,
}

/// Start a span timer feeding `histogram(name)`.
pub fn span(name: &'static str) -> SpanTimer {
    DEPTH.with(|d| d.set(d.get() + 1));
    SpanTimer {
        hist: histogram(name),
        start: Instant::now(),
    }
}

/// The number of open spans on the current thread.
pub fn span_depth() -> usize {
    DEPTH.with(Cell::get)
}

impl SpanTimer {
    /// Microseconds elapsed so far (the value recorded at drop keeps
    /// counting until then).
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.hist.record_micros(self.elapsed_micros());
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_record_into_histograms_and_track_depth() {
        assert_eq!(span_depth(), 0);
        {
            let outer = span("test.span.outer");
            assert_eq!(span_depth(), 1);
            {
                let _inner = span("test.span.inner");
                assert_eq!(span_depth(), 2);
                std::thread::sleep(Duration::from_millis(2));
            }
            assert_eq!(span_depth(), 1);
            assert!(outer.elapsed_micros() >= 2_000);
        }
        assert_eq!(span_depth(), 0);
        assert_eq!(histogram("test.span.outer").count(), 1);
        assert_eq!(histogram("test.span.inner").count(), 1);
    }

    #[test]
    fn nested_span_timings_are_monotone() {
        // A parent's wall-clock must dominate the sum of its (sequential)
        // children — the property wall-clock attribution rests on.
        {
            let _parent = span("test.span.parent");
            for _ in 0..3 {
                let _child = span("test.span.child");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let parent = histogram("test.span.parent");
        let child = histogram("test.span.child");
        assert_eq!(parent.count(), 1);
        assert_eq!(child.count(), 3);
        assert!(
            parent.max_micros() >= child.sum_micros(),
            "parent {} µs < children sum {} µs",
            parent.max_micros(),
            child.sum_micros()
        );
    }
}
