//! RAII span timers feeding the latency histograms — and, when a trace
//! context is installed on the thread (see [`crate::trace`]), doubling as
//! trace child spans.

use crate::metrics::{histogram, Histogram};
use crate::trace;
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// An RAII wall-clock timer: created by [`span`] (or the [`crate::span!`]
/// macro), it records its elapsed time into the histogram named after the
/// span when dropped. Spans nest freely; [`span_depth`] reports the current
/// nesting depth on this thread.
///
/// When tracing is enabled and the current thread carries a
/// [`trace::TraceContext`], the timer additionally opens a child span of
/// the innermost open span: it becomes the current context for its
/// lifetime (further spans nest under it) and is recorded into its trace's
/// span buffer on drop. Without a context the timer is exactly the plain
/// histogram recorder it always was.
pub struct SpanTimer {
    hist: &'static Histogram,
    name: &'static str,
    trace: Option<trace::SpanHandle>,
    start: Instant,
}

/// Start a span timer feeding `histogram(name)` (and the current trace,
/// if one is installed on this thread).
pub fn span(name: &'static str) -> SpanTimer {
    DEPTH.with(|d| d.set(d.get() + 1));
    SpanTimer {
        hist: histogram(name),
        name,
        trace: trace::begin_span(name),
        start: Instant::now(),
    }
}

/// Like [`span`], but returns `None` unless the current thread carries a
/// trace context — for hot paths that want per-request attribution when
/// traced but not even a histogram record otherwise (one relaxed atomic
/// load when tracing is off).
pub fn span_if_traced(name: &'static str) -> Option<SpanTimer> {
    if trace::current_context().is_some() {
        Some(span(name))
    } else {
        None
    }
}

/// The number of open spans on the current thread.
pub fn span_depth() -> usize {
    DEPTH.with(Cell::get)
}

impl SpanTimer {
    /// Microseconds elapsed so far (the value recorded at drop keeps
    /// counting until then).
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let el = self.elapsed_micros();
        // Record into the histogram *before* closing the trace span: the
        // span's own context is still current, so the exemplar of the
        // containing bucket points at this very trace.
        self.hist.record_micros(el);
        if let Some(h) = self.trace.take() {
            trace::end_span(h, self.name, el);
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_record_into_histograms_and_track_depth() {
        assert_eq!(span_depth(), 0);
        {
            let outer = span("test.span.outer");
            assert_eq!(span_depth(), 1);
            {
                let _inner = span("test.span.inner");
                assert_eq!(span_depth(), 2);
                std::thread::sleep(Duration::from_millis(2));
            }
            assert_eq!(span_depth(), 1);
            assert!(outer.elapsed_micros() >= 2_000);
        }
        assert_eq!(span_depth(), 0);
        assert_eq!(histogram("test.span.outer").count(), 1);
        assert_eq!(histogram("test.span.inner").count(), 1);
    }

    #[test]
    fn nested_span_timings_are_monotone() {
        // A parent's wall-clock must dominate the sum of its (sequential)
        // children — the property wall-clock attribution rests on.
        {
            let _parent = span("test.span.parent");
            for _ in 0..3 {
                let _child = span("test.span.child");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let parent = histogram("test.span.parent");
        let child = histogram("test.span.child");
        assert_eq!(parent.count(), 1);
        assert_eq!(child.count(), 3);
        assert!(
            parent.max_micros() >= child.sum_micros(),
            "parent {} µs < children sum {} µs",
            parent.max_micros(),
            child.sum_micros()
        );
    }

    #[test]
    fn span_if_traced_is_none_without_context() {
        let _g = trace::test_gate();
        trace::set_sample_every(0);
        assert!(span_if_traced("test.span.untraced").is_none());
        assert_eq!(histogram("test.span.untraced").count(), 0);
        trace::set_sample_every(1);
        // Enabled but no root installed on this thread: still None.
        assert!(span_if_traced("test.span.untraced").is_none());
        {
            let _root = trace::root_span("test.span.traced_root");
            let sp = span_if_traced("test.span.traced_child");
            assert!(sp.is_some());
        }
        trace::set_sample_every(0);
        assert_eq!(histogram("test.span.traced_child").count(), 1);
    }
}
