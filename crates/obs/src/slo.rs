//! Multi-window SLO burn-rate monitoring (Google SRE workbook style).
//!
//! An SLO like "99% of requests meet their deadline" grants an **error
//! budget** of 1%. The *burn rate* over a window is the observed error
//! rate divided by that budget: burn 1 means the budget is being consumed
//! exactly at the sustainable pace, burn 14.4 means a 30-day budget would
//! be gone in ~2 days. Alerting on a single window either pages too late
//! (long window) or flaps on noise (short window); the standard fix is to
//! require **two windows simultaneously** — a fast window (is it burning
//! *right now*?) AND a slow window (has enough budget actually been
//! consumed to matter?).
//!
//! [`BurnRateMonitor`] implements exactly that over a caller-supplied
//! microsecond clock (the serving frontend's epoch clock in production,
//! a synthetic clock in tests — determinism is preserved because the
//! monitor never reads wall-clock itself). On the alert edge it emits a
//! `slo.burn.alert` event, updates the `slo.burn.fast`/`slo.burn.slow`
//! gauges, force-retains the current trace (if any), and triggers a
//! flight-recorder dump (`slo_breach`); on recovery it emits
//! `slo.burn.clear`.

use std::collections::VecDeque;

/// Configuration of a [`BurnRateMonitor`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BurnRateConfig {
    /// SLO attainment target, e.g. `0.99` = 99% of requests good. Must be
    /// in `(0, 1)`.
    pub slo_target: f64,
    /// Fast ("is it burning now?") window, µs. Default 5 minutes.
    pub fast_window_us: u64,
    /// Slow ("does it matter yet?") window, µs. Default 1 hour.
    pub slow_window_us: u64,
    /// Fast-window burn-rate alert threshold. Default 14.4 (the classic
    /// 2%-of-30-day-budget-in-1-hour page).
    pub fast_threshold: f64,
    /// Slow-window burn-rate alert threshold. Default 6.0.
    pub slow_threshold: f64,
    /// Minimum samples inside the fast window before alerting (guards the
    /// first few requests of a run from tripping on one failure).
    pub min_samples: u64,
}

impl Default for BurnRateConfig {
    fn default() -> Self {
        BurnRateConfig {
            slo_target: 0.99,
            fast_window_us: 300_000_000,
            slow_window_us: 3_600_000_000,
            fast_threshold: 14.4,
            slow_threshold: 6.0,
            min_samples: 10,
        }
    }
}

impl BurnRateConfig {
    /// A drill/bench-scale preset: second-scale windows so a short run can
    /// exercise the full alert → clear cycle.
    pub fn for_drill() -> Self {
        BurnRateConfig {
            fast_window_us: 2_000_000,
            slow_window_us: 20_000_000,
            ..BurnRateConfig::default()
        }
    }

    fn budget(&self) -> f64 {
        (1.0 - self.slo_target).max(1e-9)
    }
}

/// Point-in-time view of a [`BurnRateMonitor`].
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct BurnRateSnapshot {
    /// Burn rate over the fast window.
    pub fast_burn: f64,
    /// Burn rate over the slow window.
    pub slow_burn: f64,
    /// Whether the monitor is currently in the alerting state.
    pub alerting: bool,
    /// Number of alert edges seen so far.
    pub alerts: u64,
    /// Total samples recorded.
    pub total: u64,
    /// Total bad (SLO-violating) samples recorded.
    pub errors: u64,
}

/// Sliding-window burn-rate monitor over a boolean good/bad sample stream.
///
/// Not thread-safe by itself (the serving frontend records from its one
/// serving thread); wrap in a `Mutex` for concurrent use.
#[derive(Debug)]
pub struct BurnRateMonitor {
    cfg: BurnRateConfig,
    /// `(ts_us, ok)` samples inside the slow window, oldest first.
    samples: VecDeque<(u64, bool)>,
    alerting: bool,
    alerts: u64,
    total: u64,
    errors: u64,
}

impl BurnRateMonitor {
    /// Build a monitor; `cfg.slo_target` is clamped into `(0, 1)`.
    pub fn new(mut cfg: BurnRateConfig) -> Self {
        cfg.slo_target = cfg.slo_target.clamp(1e-6, 1.0 - 1e-6);
        BurnRateMonitor {
            cfg,
            samples: VecDeque::new(),
            alerting: false,
            alerts: 0,
            total: 0,
            errors: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &BurnRateConfig {
        &self.cfg
    }

    fn window_burn(&self, now_us: u64, window_us: u64) -> (f64, u64) {
        let cutoff = now_us.saturating_sub(window_us);
        let mut n = 0u64;
        let mut bad = 0u64;
        for &(ts, ok) in self.samples.iter().rev() {
            if ts < cutoff {
                break;
            }
            n += 1;
            if !ok {
                bad += 1;
            }
        }
        if n == 0 {
            return (0.0, 0);
        }
        ((bad as f64 / n as f64) / self.cfg.budget(), n)
    }

    /// Record one request outcome (`ok` = the SLO was met for it) at
    /// `now_us` on the caller's clock, and re-evaluate the alert state.
    /// Returns the updated snapshot. Timestamps must be non-decreasing.
    pub fn record(&mut self, ok: bool, now_us: u64) -> BurnRateSnapshot {
        self.total += 1;
        if !ok {
            self.errors += 1;
        }
        self.samples.push_back((now_us, ok));
        let cutoff = now_us.saturating_sub(self.cfg.slow_window_us);
        while self.samples.front().is_some_and(|&(ts, _)| ts < cutoff) {
            self.samples.pop_front();
        }

        let (fast, fast_n) = self.window_burn(now_us, self.cfg.fast_window_us);
        let (slow, _) = self.window_burn(now_us, self.cfg.slow_window_us);
        crate::gauge("slo.burn.fast").set(fast);
        crate::gauge("slo.burn.slow").set(slow);

        let firing = fast >= self.cfg.fast_threshold
            && slow >= self.cfg.slow_threshold
            && fast_n >= self.cfg.min_samples;
        if firing && !self.alerting {
            self.alerting = true;
            self.alerts += 1;
            crate::counter("slo.burn.alerts").inc();
            crate::event(crate::Level::Error, "slo.burn.alert")
                .field("fast_burn", fast)
                .field("slow_burn", slow)
                .field("fast_threshold", self.cfg.fast_threshold)
                .field("slow_threshold", self.cfg.slow_threshold)
                .field("slo_target", self.cfg.slo_target)
                .msg("error-budget burn rate over threshold in both windows")
                .emit();
            crate::trace::force_retain_current("slo_breach");
            let _ = crate::flightrec::trigger("slo_breach");
        } else if !firing && self.alerting && fast < self.cfg.fast_threshold {
            self.alerting = false;
            crate::event(crate::Level::Info, "slo.burn.clear")
                .field("fast_burn", fast)
                .field("slow_burn", slow)
                .emit();
        }
        self.snapshot_at(fast, slow)
    }

    fn snapshot_at(&self, fast: f64, slow: f64) -> BurnRateSnapshot {
        BurnRateSnapshot {
            fast_burn: fast,
            slow_burn: slow,
            alerting: self.alerting,
            alerts: self.alerts,
            total: self.total,
            errors: self.errors,
        }
    }

    /// Current snapshot evaluated at `now_us` (no sample recorded).
    pub fn snapshot(&self, now_us: u64) -> BurnRateSnapshot {
        let (fast, _) = self.window_burn(now_us, self.cfg.fast_window_us);
        let (slow, _) = self.window_burn(now_us, self.cfg.slow_window_us);
        self.snapshot_at(fast, slow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BurnRateConfig {
        BurnRateConfig {
            slo_target: 0.9, // budget 0.1 → burn = error_rate * 10
            fast_window_us: 1_000,
            slow_window_us: 10_000,
            fast_threshold: 5.0,
            slow_threshold: 2.0,
            min_samples: 5,
        }
    }

    #[test]
    fn healthy_stream_never_alerts() {
        let mut m = BurnRateMonitor::new(cfg());
        for t in 0..200u64 {
            let s = m.record(true, t * 50);
            assert!(!s.alerting, "t={t}");
            assert_eq!(s.fast_burn, 0.0);
        }
        assert_eq!(m.snapshot(10_000).alerts, 0);
    }

    #[test]
    fn sustained_burn_alerts_once_and_clears() {
        let mut m = BurnRateMonitor::new(cfg());
        let mut now = 0u64;
        // Healthy prefix fills the slow window.
        for _ in 0..50 {
            now += 100;
            m.record(true, now);
        }
        // Total failure: fast burn → 10 (error rate 1.0 / budget 0.1).
        let mut first_alert = None;
        for i in 0..40 {
            now += 100;
            let s = m.record(false, now);
            if s.alerting && first_alert.is_none() {
                first_alert = Some((i, s.alerts));
            }
        }
        let (_, alerts) = first_alert.expect("sustained failure must alert");
        assert_eq!(alerts, 1, "edge-triggered: one alert per episode");
        assert!(m.snapshot(now).alerting);
        // Recovery: healthy samples push fast burn back under threshold.
        let mut cleared = false;
        for _ in 0..100 {
            now += 100;
            let s = m.record(true, now);
            if !s.alerting {
                cleared = true;
                break;
            }
        }
        assert!(cleared, "alert must clear after recovery");
        assert_eq!(m.snapshot(now).alerts, 1);
    }

    #[test]
    fn min_samples_guards_cold_start() {
        let mut m = BurnRateMonitor::new(cfg());
        // Far fewer samples than min_samples, all bad: no alert.
        let s1 = m.record(false, 100);
        let s2 = m.record(false, 200);
        assert!(!s1.alerting && !s2.alerting);
        assert!(s2.fast_burn > 5.0, "burn itself is over threshold");
    }

    #[test]
    fn old_samples_age_out_of_both_windows() {
        let mut m = BurnRateMonitor::new(cfg());
        for i in 0..10u64 {
            m.record(false, i * 10);
        }
        // Jump far past the slow window: old failures no longer count.
        let s = m.record(true, 1_000_000);
        assert_eq!(s.fast_burn, 0.0);
        assert_eq!(s.slow_burn, 0.0);
        assert_eq!(s.errors, 10);
        assert_eq!(s.total, 11);
    }

    #[test]
    fn burn_rate_is_error_rate_over_budget() {
        let mut m = BurnRateMonitor::new(BurnRateConfig {
            min_samples: 1,
            ..cfg()
        });
        // 1 bad in 4 inside the fast window → error rate 0.25, budget 0.1,
        // burn 2.5.
        let mut s = BurnRateSnapshot::default();
        for (ok, t) in [(true, 10), (true, 20), (false, 30), (true, 40)] {
            s = m.record(ok, t);
        }
        assert!((s.fast_burn - 2.5).abs() < 1e-9, "{}", s.fast_burn);
    }
}
