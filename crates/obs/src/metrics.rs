//! The metrics registry: counters, gauges and log-bucketed latency
//! histograms keyed by static names.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets. Bucket 0 holds exact zeros; bucket `i ≥ 1`
/// holds values (in µs) in `[2^(i-1), 2^i)` — geometric base-2 buckets up
/// to ~2^46 µs (≈ 2 years), far beyond any latency this stack records.
pub const NUM_BUCKETS: usize = 48;

/// Inclusive-lower / exclusive-upper bounds of bucket `i`, in µs.
fn bucket_bounds(i: usize) -> (f64, f64) {
    if i == 0 {
        (0.0, 1.0)
    } else {
        ((1u64 << (i - 1)) as f64, (1u64 << i) as f64)
    }
}

/// Inclusive upper bound of bucket `i` in integer µs: the largest value
/// that lands in the bucket (`0` for the zeros bucket, else `2^i - 1`).
/// Because observations are integer microseconds, a cumulative count "of
/// everything at or below this bound" is exact — this is what the
/// Prometheus `le` label renders as (see [`crate::expo`]).
pub fn bucket_le_us(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i.min(63)) - 1
    }
}

fn bucket_index(micros: u64) -> usize {
    if micros == 0 {
        0
    } else {
        (64 - micros.leading_zeros() as usize).min(NUM_BUCKETS - 1)
    }
}

/// A log-bucketed latency histogram (microsecond resolution).
///
/// Recording is lock-free (relaxed atomics); quantiles are answered from
/// the bucket counts by linear interpolation inside the containing bucket,
/// so a reported pXX is accurate to within its base-2 bucket width.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; NUM_BUCKETS],
    /// Last trace id observed per bucket (0 = none): the exemplar that
    /// answers "which request landed in this latency bucket". Only written
    /// while tracing is enabled and a context is installed.
    exemplars: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

/// Plain-value summary of a [`Histogram`], all durations in microseconds.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Mean observation.
    pub mean_us: f64,
    /// Median estimate.
    pub p50_us: f64,
    /// 95th-percentile estimate.
    pub p95_us: f64,
    /// 99th-percentile estimate.
    pub p99_us: f64,
    /// Exact maximum observation.
    pub max_us: f64,
    /// Exemplar trace id (raw `u64`, render as 16-hex) for the bucket
    /// containing the p99 — "which request was the p99". `None` when no
    /// traced observation has landed near that bucket.
    pub p99_exemplar: Option<u64>,
}

impl Histogram {
    /// Record one duration.
    pub fn record(&self, d: Duration) {
        self.record_micros(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Record one duration given in (non-negative, finite) seconds.
    pub fn record_secs(&self, secs: f64) {
        if secs.is_finite() && secs >= 0.0 {
            self.record_micros((secs * 1e6).min(u64::MAX as f64) as u64);
        }
    }

    /// Record one duration in microseconds. When tracing is enabled and a
    /// trace context is installed on this thread, the trace id is stored as
    /// the containing bucket's exemplar (last-writer-wins) — one relaxed
    /// atomic load of the tracing flag when tracing is off.
    pub fn record_micros(&self, micros: u64) {
        let idx = bucket_index(micros);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
        if let Some(ctx) = crate::trace::current_context() {
            self.exemplars[idx].store(ctx.trace_id().raw(), Ordering::Relaxed);
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded observations, µs.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Exact maximum observation, µs.
    pub fn max_micros(&self) -> u64 {
        self.max_micros.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`q ∈ [0, 1]`) in µs: find the bucket
    /// containing the target rank and interpolate linearly inside it. The
    /// result is clamped to the exact recorded maximum.
    pub fn quantile_micros(&self, q: f64) -> f64 {
        self.data().quantile_micros(q)
    }

    /// An owned plain-value copy of the full histogram state (buckets,
    /// count, sum, max) — the unit of cross-process metrics federation.
    /// A relaxed-atomic snapshot, same caveat as [`Histogram::bucket_counts`].
    pub fn data(&self) -> HistogramData {
        HistogramData {
            buckets: self.bucket_counts(),
            count: self.count(),
            sum_us: self.sum_micros(),
            max_us: self.max_micros(),
        }
    }

    /// Raw per-bucket observation counts (index `i` as in
    /// [`bucket_le_us`]). A relaxed-atomic snapshot: concurrent recording
    /// may make the copy momentarily inconsistent with [`Histogram::count`]
    /// by the in-flight observations.
    pub fn bucket_counts(&self) -> [u64; NUM_BUCKETS] {
        std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }

    /// Cumulative `(le_us, count ≤ le_us)` pairs for Prometheus-style
    /// exposition — see [`HistogramData::cumulative_buckets`].
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        self.data().cumulative_buckets()
    }

    /// The bucket index containing the `q`-quantile's rank, or `None` for
    /// an empty histogram.
    fn quantile_bucket(&self, q: f64) -> Option<usize> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        let mut last_nonempty = 0usize;
        for (i, c) in self.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                return Some(i);
            }
            cum += c;
            last_nonempty = i;
        }
        Some(last_nonempty)
    }

    /// The exemplar trace id (raw `u64`) nearest the `q`-quantile: the
    /// containing bucket's exemplar if one was captured, otherwise the
    /// closest higher-latency bucket's, otherwise the closest lower one's.
    /// `None` when the histogram is empty or no exemplar exists at all.
    pub fn exemplar_for_quantile(&self, q: f64) -> Option<u64> {
        let b = self.quantile_bucket(q)?;
        let load = |i: usize| {
            let v = self.exemplars[i].load(Ordering::Relaxed);
            (v != 0).then_some(v)
        };
        load(b)
            .or_else(|| (b + 1..NUM_BUCKETS).find_map(load))
            .or_else(|| (0..b).rev().find_map(load))
    }

    /// p50/p95/p99/max/mean summary (plus the p99 exemplar, if any).
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        HistogramSummary {
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                self.sum_micros() as f64 / count as f64
            },
            p50_us: self.quantile_micros(0.50),
            p95_us: self.quantile_micros(0.95),
            p99_us: self.quantile_micros(0.99),
            max_us: self.max_micros() as f64,
            p99_exemplar: self.exemplar_for_quantile(0.99),
        }
    }
}

/// An owned, plain-value histogram: per-bucket counts plus the
/// count/sum/max aggregates, detached from the registry's atomics.
///
/// This is the unit of **metrics federation**. Every histogram in every
/// process uses the same [`NUM_BUCKETS`] base-2 bucket layout (bounds are
/// fixed by construction, never configured), so two `HistogramData` —
/// scraped from two different replicas — merge *exactly* by bucket-wise
/// addition: the merge's bucket counts, `count` and `sum` are precisely
/// what one process observing both streams would have recorded, and its
/// `max` is the true maximum. No re-bucketing, no interpolation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramData {
    /// Per-bucket observation counts (index `i` as in [`bucket_le_us`]).
    pub buckets: [u64; NUM_BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observations, µs.
    pub sum_us: u64,
    /// Exact maximum observation, µs.
    pub max_us: u64,
}

impl Default for HistogramData {
    fn default() -> Self {
        HistogramData {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl HistogramData {
    /// Record one observation (µs) — for building fixtures and goldens;
    /// live recording happens on [`Histogram`].
    pub fn record_micros(&mut self, micros: u64) {
        self.buckets[bucket_index(micros)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(micros);
        self.max_us = self.max_us.max(micros);
    }

    /// Merge `other` into `self` bucket-wise. Exact (see the type docs):
    /// associative, commutative, and conserves `count` and `sum`.
    /// Saturating adds guard against adversarial scraped inputs.
    pub fn merge_from(&mut self, other: &HistogramData) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The exact merge of `parts` (identity element: [`HistogramData::default`]).
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a HistogramData>) -> HistogramData {
        let mut out = HistogramData::default();
        for p in parts {
            out.merge_from(p);
        }
        out
    }

    /// Estimate the `q`-quantile (`q ∈ [0, 1]`) in µs: find the bucket
    /// containing the target rank and interpolate linearly inside it,
    /// clamped to the exact recorded maximum. Same estimator as
    /// [`Histogram::quantile_micros`].
    pub fn quantile_micros(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let (lo, hi) = bucket_bounds(i);
                let frac = (rank - cum) as f64 / c as f64;
                let est = lo + frac * (hi - lo);
                return est.min(self.max_us as f64);
            }
            cum += c;
        }
        self.max_us as f64
    }

    /// Cumulative `(le_us, count ≤ le_us)` pairs for Prometheus-style
    /// exposition, covering buckets 0 through the highest non-empty one
    /// (empty histogram → empty vec). The final catch-all bucket
    /// (`i = NUM_BUCKETS - 1`) is *excluded* — it has no exact finite
    /// upper bound — so renderers must close the series with a `+Inf`
    /// bucket carrying the total count.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let highest = match self.buckets.iter().rposition(|&c| c > 0) {
            Some(h) => h,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(highest + 1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate().take(highest + 1) {
            cum += c;
            if i < NUM_BUCKETS - 1 {
                out.push((bucket_le_us(i), cum));
            }
        }
        out
    }
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// The counter named `name`, created (and leaked: metrics live for the
/// process) on first use. Cache the returned reference outside hot loops.
pub fn counter(name: &'static str) -> &'static Counter {
    registry()
        .counters
        .lock()
        .expect("metrics registry poisoned")
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// The gauge named `name` (see [`counter`] for the lifetime contract).
pub fn gauge(name: &'static str) -> &'static Gauge {
    registry()
        .gauges
        .lock()
        .expect("metrics registry poisoned")
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// The histogram named `name` (see [`counter`] for the lifetime contract).
pub fn histogram(name: &'static str) -> &'static Histogram {
    registry()
        .histograms
        .lock()
        .expect("metrics registry poisoned")
        .entry(name)
        .or_insert_with(|| Box::leak(Box::default()))
}

/// Every registered histogram by reference (sorted by name), for
/// exporters that need raw buckets rather than the summary in
/// [`MetricsSnapshot`].
pub(crate) fn registry_histograms() -> Vec<(&'static str, &'static Histogram)> {
    registry()
        .histograms
        .lock()
        .expect("metrics registry poisoned")
        .iter()
        .map(|(k, v)| (*k, *v))
        .collect()
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge values.
    pub gauges: Vec<(&'static str, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<(&'static str, HistogramSummary)>,
}

/// Snapshot the whole registry (for end-of-run summaries and exporters).
pub fn snapshot() -> MetricsSnapshot {
    let r = registry();
    MetricsSnapshot {
        counters: r
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (*k, v.get()))
            .collect(),
        gauges: r
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (*k, v.get()))
            .collect(),
        histograms: r
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (*k, v.summary()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_base2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        for i in 1..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(hi, lo * 2.0, "bucket {i}");
            assert_eq!(bucket_index(lo as u64), i, "lower bound lands in {i}");
            assert_eq!(
                bucket_index(hi as u64 - 1),
                i,
                "upper bound - 1 stays in {i}"
            );
        }
    }

    #[test]
    fn quantiles_of_uniform_distribution_land_in_right_buckets() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record_micros(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max_micros(), 1000);
        assert_eq!(h.sum_micros(), 500_500);
        let s = h.summary();
        // True p50 = 500 lives in [256, 512); p95 = 950 and p99 = 990 in
        // [512, 1024) — the estimate must stay inside the containing bucket.
        assert!((256.0..512.0).contains(&s.p50_us), "p50 {}", s.p50_us);
        assert!((512.0..=1000.0).contains(&s.p95_us), "p95 {}", s.p95_us);
        assert!((512.0..=1000.0).contains(&s.p99_us), "p99 {}", s.p99_us);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us);
        assert!(s.p99_us <= s.max_us);
        assert!((s.mean_us - 500.5).abs() < 1e-9);
    }

    #[test]
    fn constant_distribution_quantiles_are_tight() {
        let h = Histogram::default();
        for _ in 0..100 {
            h.record_micros(300);
        }
        let s = h.summary();
        // All mass in [256, 512); every quantile clamped to the max = 300.
        for q in [s.p50_us, s.p95_us, s.p99_us] {
            assert!((256.0..=300.0).contains(&q), "{q}");
        }
        assert_eq!(s.max_us, 300.0);
        assert_eq!(s.mean_us, 300.0);
    }

    #[test]
    fn zero_only_histogram_reports_zero() {
        let h = Histogram::default();
        h.record_micros(0);
        h.record_micros(0);
        let s = h.summary();
        assert_eq!(s.max_us, 0.0);
        assert_eq!(s.p50_us, 0.0);
        assert_eq!(s.mean_us, 0.0);
    }

    #[test]
    fn empty_histogram_summary_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.summary(), HistogramSummary::default());
        assert_eq!(h.quantile_micros(0.5), 0.0);
        assert_eq!(h.exemplar_for_quantile(0.99), None);
    }

    #[test]
    fn single_sample_quantiles_all_equal_it() {
        let h = Histogram::default();
        h.record_micros(777);
        let s = h.summary();
        // One observation: every quantile is that observation (clamped to
        // the exact max).
        assert_eq!(s.count, 1);
        for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile_micros(q), 777.0, "q={q}");
        }
        assert_eq!(s.p50_us, 777.0);
        assert_eq!(s.p99_us, 777.0);
        assert_eq!(s.max_us, 777.0);
        assert_eq!(s.mean_us, 777.0);
    }

    #[test]
    fn all_samples_in_one_bucket_stay_in_bounds() {
        let h = Histogram::default();
        // All of [520, 1000) lives in bucket [512, 1024).
        for v in (520..1000).step_by(16) {
            h.record_micros(v);
        }
        let s = h.summary();
        for q in [s.p50_us, s.p95_us, s.p99_us] {
            assert!((512.0..1024.0).contains(&q), "{q}");
            assert!(q <= s.max_us, "{q} > max {}", s.max_us);
        }
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us);
    }

    #[test]
    fn exemplars_link_buckets_to_traces() {
        let _g = crate::trace::test_gate();
        let h = Histogram::default();
        h.record_micros(100);
        assert_eq!(
            h.exemplar_for_quantile(0.99),
            None,
            "untraced observations leave no exemplar"
        );
        crate::trace::set_sample_every(1);
        let tid = {
            let root = crate::trace::root_span("test.metrics.exemplar");
            let id = root.trace_id().unwrap().raw();
            h.record_micros(100);
            id
        };
        crate::trace::set_sample_every(0);
        assert_eq!(h.exemplar_for_quantile(0.99), Some(tid));
        assert_eq!(h.summary().p99_exemplar, Some(tid));
        // Quantiles pointing at an empty-exemplar bucket fall back to the
        // nearest captured one.
        assert_eq!(h.exemplar_for_quantile(0.0), Some(tid));
    }

    #[test]
    fn record_secs_ignores_garbage() {
        let h = Histogram::default();
        h.record_secs(f64::NAN);
        h.record_secs(-1.0);
        assert_eq!(h.count(), 0);
        h.record_secs(0.001);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_micros(), 1000);
    }

    #[test]
    fn cumulative_buckets_are_exact_at_integer_bounds() {
        let h = Histogram::default();
        assert!(h.cumulative_buckets().is_empty());
        h.record_micros(0);
        h.record_micros(1);
        h.record_micros(3);
        h.record_micros(1000);
        let cum = h.cumulative_buckets();
        // Highest non-empty bucket for 1000 µs is 10 ([512, 1024)).
        assert_eq!(cum.len(), 11);
        assert_eq!(cum[0], (0, 1), "zeros bucket: le=0 counts exact zeros");
        assert_eq!(cum[1], (1, 2), "le=1 covers {{0, 1}}");
        assert_eq!(cum[2], (3, 3), "le=3 covers [0, 3]");
        assert_eq!(cum[10], (1023, 4), "le=1023 covers everything recorded");
        // Monotone in both coordinates.
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1);
        }
        assert_eq!(cum.last().unwrap().1, h.count());
    }

    #[test]
    fn golden_merge_of_two_known_histograms_is_exact() {
        // Two fixed replicas' worth of observations with every structural
        // case: shared buckets, disjoint buckets, the zeros bucket, and a
        // catch-all overflow. The merge must equal the histogram a single
        // process would have recorded from the union — byte-for-byte on
        // every field.
        let mut a = HistogramData::default();
        for v in [0u64, 1, 3, 3, 120, 90_000] {
            a.record_micros(v);
        }
        let mut b = HistogramData::default();
        for v in [2u64, 512, 90_001, u64::MAX] {
            b.record_micros(v);
        }
        let mut union = HistogramData::default();
        for v in [0u64, 1, 3, 3, 120, 90_000, 2, 512, 90_001, u64::MAX] {
            union.record_micros(v);
        }
        let m = HistogramData::merged([&a, &b]);
        assert_eq!(m, union, "merge must equal single-process recording");
        assert_eq!(m.count, 10);
        // The overflow observation saturates the sum — in the merge
        // exactly as it does in single-process recording.
        assert_eq!(m.sum_us, u64::MAX);
        assert_eq!(m.max_us, u64::MAX);
        // Identity and self-merge doubling.
        assert_eq!(HistogramData::merged([&a]), a);
        assert_eq!(
            HistogramData::merged([] as [&HistogramData; 0]),
            HistogramData::default()
        );
        let twice = HistogramData::merged([&a, &a]);
        assert_eq!(twice.count, 2 * a.count);
        assert_eq!(twice.sum_us, 2 * a.sum_us);
        assert_eq!(twice.max_us, a.max_us);
    }

    #[test]
    fn catch_all_bucket_has_no_finite_le() {
        let h = Histogram::default();
        h.record_micros(u64::MAX);
        // Everything lives in the final catch-all bucket, which has no
        // exact finite bound — the cumulative series must leave it to the
        // renderer's +Inf bucket.
        assert!(h.cumulative_buckets().len() < NUM_BUCKETS);
        assert_eq!(
            h.cumulative_buckets().last().map(|&(_, c)| c).unwrap_or(0),
            0,
            "no finite bucket contains the overflow observation"
        );
        assert_eq!(h.bucket_counts()[NUM_BUCKETS - 1], 1);
    }

    #[test]
    fn registry_returns_same_instance_and_snapshots() {
        counter("test.reg.counter").add(3);
        counter("test.reg.counter").inc();
        gauge("test.reg.gauge").set(2.5);
        histogram("test.reg.hist").record_micros(10);
        assert_eq!(counter("test.reg.counter").get(), 4);
        let snap = snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|&(k, v)| k == "test.reg.counter" && v == 4));
        assert!(snap
            .gauges
            .iter()
            .any(|&(k, v)| k == "test.reg.gauge" && v == 2.5));
        assert!(snap
            .histograms
            .iter()
            .any(|&(k, s)| k == "test.reg.hist" && s.count >= 1));
    }
}
