//! The workspace's one std-only seedable PRNG: SplitMix64.
//!
//! Shared by every subsystem that needs reproducible randomness *outside*
//! the model's `rand`-based RNGs — chaos fault streams (`odt-serve`),
//! trace-id minting ([`crate::trace`]), and the load generator's Poisson
//! arrival sampler (`odt-net`). Keeping one implementation here (instead
//! of the former per-crate copies) guarantees that "same seed, same
//! stream" means the same thing everywhere.

/// One SplitMix64 output step: mix `state + GOLDEN_GAMMA` into a
/// well-distributed 64-bit value. Pure function of its input, so callers
/// that derive ids from a counter (the tracer) can use it statelessly.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny, fast, seedable PRNG (SplitMix64). Std-only on purpose: fault
/// injection and load generation must not share state with the model's
/// `rand` RNGs, and the stream must be reproducible from the seed alone.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, n)` (`0` when `n == 0`).
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            // Multiply-shift reduction: unbiased enough for load mixes and
            // fault streams (bias < 2^-53 for any practical n).
            ((self.next_f64() * n as f64) as u64).min(n - 1)
        }
    }

    /// An exponentially-distributed draw with mean `1 / rate_per_sec`,
    /// in seconds — the inter-arrival gap of a Poisson process at
    /// `rate_per_sec`. Returns `f64::INFINITY` for non-positive rates.
    pub fn next_exp_secs(&mut self, rate_per_sec: f64) -> f64 {
        if rate_per_sec <= 0.0 {
            return f64::INFINITY;
        }
        // u in (0, 1]: 1 - next_f64() avoids ln(0).
        let u = 1.0 - self.next_f64();
        -u.ln() / rate_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stateless_mix_matches_stateful_stream() {
        let mut rng = SplitMix64::new(99);
        assert_eq!(rng.next_u64(), splitmix64(99));
        // The stateful stream advances its seed by the golden gamma each
        // step; the stateless mix reproduces any step from the seed chain.
        let mut state = 99u64.wrapping_add(0x9E37_79B9_7F4A_7C15);
        for _ in 0..10 {
            assert_eq!(rng.next_u64(), splitmix64(state));
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[test]
    fn deterministic_and_uniformish() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut lo = 0usize;
        for _ in 0..1_000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                lo += 1;
            }
        }
        assert!((350..=650).contains(&lo), "{lo} of 1000 below 0.5");
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut rng = SplitMix64::new(3);
        assert_eq!(rng.next_below(0), 0);
        assert_eq!(rng.next_below(1), 0);
        for n in [2u64, 7, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(n) < n);
            }
        }
    }

    #[test]
    fn exponential_gaps_have_the_right_mean() {
        let mut rng = SplitMix64::new(11);
        let rate = 50.0; // mean gap 20ms
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.next_exp_secs(rate)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.002,
            "mean gap {mean} vs expected {}",
            1.0 / rate
        );
        assert_eq!(rng.next_exp_secs(0.0), f64::INFINITY);
        assert_eq!(rng.next_exp_secs(-1.0), f64::INFINITY);
    }
}
