//! Leveled, structured events with named fields.

use crate::json;
use crate::ring;
use crate::sink;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered from most to least verbose.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// High-volume diagnostics (per-step timings, cache probes).
    Trace,
    /// Noteworthy internals (checkpoint writes, cache decisions).
    Debug,
    /// Normal progress (stage starts, periodic loss lines).
    Info,
    /// Defensive actions (watchdog trips, fallbacks, unusable checkpoints).
    Warn,
    /// Failures the run survives but must surface (write errors).
    Error,
}

impl Level {
    /// Lower-case name, as used in the JSONL schema.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Trace,
            1 => Level::Debug,
            2 => Level::Info,
            3 => Level::Warn,
            _ => Level::Error,
        }
    }
}

/// Global minimum level: events below it are dropped at the emit call.
static MIN_LEVEL: AtomicU8 = AtomicU8::new(0); // Trace: record everything

/// Set the global minimum event level.
pub fn set_min_level(level: Level) {
    MIN_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global minimum event level.
pub fn min_level() -> Level {
    Level::from_u8(MIN_LEVEL.load(Ordering::Relaxed))
}

/// A typed field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl FieldValue {
    /// The value as `i64`, converting integer variants.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            FieldValue::I64(v) => Some(*v),
            FieldValue::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `u64`, converting non-negative integer variants.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::F64(v) => Some(*v),
            FieldValue::I64(v) => Some(*v as f64),
            FieldValue::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            FieldValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn push_json(&self, out: &mut String) {
        match self {
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) => json::push_f64(out, *v),
            FieldValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::Str(s) => json::push_str_escaped(out, s),
        }
    }
}

macro_rules! impl_from_field {
    ($($ty:ty => $variant:ident via $conv:expr),* $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> FieldValue {
                #[allow(clippy::redundant_closure_call)]
                FieldValue::$variant(($conv)(v))
            }
        })*
    };
}

impl_from_field! {
    i64 => I64 via |v| v,
    i32 => I64 via |v: i32| i64::from(v),
    u64 => U64 via |v| v,
    u32 => U64 via |v: u32| u64::from(v),
    u8 => U64 via |v: u8| u64::from(v),
    usize => U64 via |v: usize| v as u64,
    f64 => F64 via |v| v,
    f32 => F64 via |v: f32| f64::from(v),
    bool => Bool via |v| v,
    String => Str via |v| v,
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

/// One structured event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Microseconds since the UNIX epoch, stamped at build time.
    pub ts_micros: u64,
    /// Severity.
    pub level: Level,
    /// Dot-separated event name (`train.watchdog.trip`).
    pub name: &'static str,
    /// Optional human-readable message (what legacy `progress` callbacks
    /// receive).
    pub msg: String,
    /// Named, typed fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Look up a field by name.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// The human-readable message: `msg` when set, otherwise the name plus
    /// rendered fields.
    pub fn message(&self) -> String {
        if !self.msg.is_empty() {
            return self.msg.clone();
        }
        let mut out = self.name.to_string();
        for (k, v) in &self.fields {
            let _ = write!(out, " {k}={v:?}");
        }
        out
    }

    /// Pretty one-line rendering for terminal sinks.
    pub fn pretty(&self) -> String {
        let mut out = format!("[{}] {}", self.level.as_str(), self.name);
        if !self.msg.is_empty() {
            let _ = write!(out, ": {}", self.msg);
        }
        if !self.fields.is_empty() {
            out.push_str(" (");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                match v {
                    FieldValue::Str(s) => {
                        let _ = write!(out, "{k}={s}");
                    }
                    other => {
                        let mut tmp = String::new();
                        other.push_json(&mut tmp);
                        let _ = write!(out, "{k}={tmp}");
                    }
                }
            }
            out.push(')');
        }
        out
    }

    /// One JSONL line (no trailing newline):
    /// `{"ts_us":…,"level":"…","name":"…","msg":"…","fields":{…}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(out, "{{\"ts_us\":{},\"level\":", self.ts_micros);
        json::push_str_escaped(&mut out, self.level.as_str());
        out.push_str(",\"name\":");
        json::push_str_escaped(&mut out, self.name);
        out.push_str(",\"msg\":");
        json::push_str_escaped(&mut out, &self.msg);
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_escaped(&mut out, k);
            out.push(':');
            v.push_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// Builder returned by [`event`].
#[must_use = "call .emit() (or .build()) to record the event"]
pub struct EventBuilder {
    ev: Event,
}

impl EventBuilder {
    /// Attach a typed field.
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        self.ev.fields.push((key, value.into()));
        self
    }

    /// Attach the human-readable message.
    pub fn msg(mut self, msg: impl Into<String>) -> Self {
        self.ev.msg = msg.into();
        self
    }

    /// Finalize with a timestamp without emitting (the caller dispatches via
    /// [`emit`] — used by shims that also need the message text). When the
    /// building thread carries a trace context, `trace_id` (16-hex string)
    /// and `span_id` fields are attached automatically unless the caller
    /// already set a `trace_id` field.
    pub fn build(mut self) -> Event {
        self.ev.ts_micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        if let Some(ctx) = crate::trace::current_context() {
            if self.ev.field("trace_id").is_none() {
                self.ev
                    .fields
                    .push(("trace_id", FieldValue::Str(ctx.trace_id().to_hex())));
                self.ev
                    .fields
                    .push(("span_id", FieldValue::U64(ctx.span_id().raw())));
            }
        }
        self.ev
    }

    /// Timestamp and emit to the ring buffer and all sinks.
    pub fn emit(self) {
        emit(self.build());
    }
}

/// Start building an event.
pub fn event(level: Level, name: &'static str) -> EventBuilder {
    EventBuilder {
        ev: Event {
            ts_micros: 0,
            level,
            name,
            msg: String::new(),
            fields: Vec::new(),
        },
    }
}

/// Emit an already-built event: push into the ring buffer and fan out to
/// every registered sink. Events below [`min_level`] are dropped.
pub fn emit(ev: Event) {
    if ev.level < min_level() {
        return;
    }
    ring::push(ev.clone());
    sink::dispatch(&ev);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_records_fields_and_message() {
        let ev = event(Level::Warn, "test.ev")
            .field("iter", 7usize)
            .field("loss", 0.5f32)
            .field("ok", true)
            .field("who", "watchdog")
            .msg("something happened")
            .build();
        assert_eq!(ev.level, Level::Warn);
        assert_eq!(ev.name, "test.ev");
        assert_eq!(ev.field("iter").and_then(FieldValue::as_u64), Some(7));
        assert_eq!(ev.field("loss").and_then(FieldValue::as_f64), Some(0.5));
        assert_eq!(ev.field("ok").and_then(FieldValue::as_bool), Some(true));
        assert_eq!(
            ev.field("who").and_then(FieldValue::as_str),
            Some("watchdog")
        );
        assert_eq!(ev.message(), "something happened");
        assert!(ev.ts_micros > 0);
    }

    #[test]
    fn json_line_has_schema_fields() {
        let line = event(Level::Info, "a.b")
            .field("n", 3i64)
            .field("s", "x\"y")
            .build()
            .to_json();
        assert!(line.starts_with("{\"ts_us\":"), "{line}");
        assert!(line.contains("\"level\":\"info\""), "{line}");
        assert!(line.contains("\"name\":\"a.b\""), "{line}");
        assert!(line.contains("\"n\":3"), "{line}");
        assert!(line.contains("\"s\":\"x\\\"y\""), "{line}");
        assert!(line.ends_with("}}"), "{line}");
    }

    #[test]
    fn level_ordering_is_verbosity_ordering() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }

    #[test]
    fn events_inherit_the_current_trace_context() {
        let _g = crate::trace::test_gate();
        crate::trace::set_sample_every(1);
        let hex;
        {
            let root = crate::trace::root_span("test.event.trace_root");
            hex = root.trace_id().unwrap().to_hex();
            let ev = event(Level::Info, "test.event.traced").build();
            assert_eq!(
                ev.field("trace_id").and_then(FieldValue::as_str),
                Some(hex.as_str())
            );
            assert_eq!(ev.field("span_id").and_then(FieldValue::as_u64), Some(1));
            // An explicit trace_id wins over auto-attachment.
            let ev = event(Level::Info, "test.event.explicit")
                .field("trace_id", "cafe")
                .build();
            assert_eq!(
                ev.field("trace_id").and_then(FieldValue::as_str),
                Some("cafe")
            );
        }
        crate::trace::set_sample_every(0);
        let ev = event(Level::Info, "test.event.untraced").build();
        assert!(ev.field("trace_id").is_none());
    }

    #[test]
    fn message_falls_back_to_name_and_fields() {
        let ev = event(Level::Info, "bare.event").field("k", 1u64).build();
        assert!(ev.message().starts_with("bare.event"));
        assert!(ev.message().contains("k="));
    }
}
