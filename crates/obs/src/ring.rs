//! A bounded in-memory ring buffer of recent events — the always-on flight
//! recorder behind [`crate::recent_events`]. Oldest events are evicted
//! first when the buffer is full.

use crate::Event;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

const DEFAULT_CAPACITY: usize = 2048;

struct Ring {
    buf: VecDeque<Event>,
    cap: usize,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| {
        Mutex::new(Ring {
            buf: VecDeque::with_capacity(DEFAULT_CAPACITY),
            cap: DEFAULT_CAPACITY,
        })
    })
}

pub(crate) fn push(ev: Event) {
    let mut r = ring().lock().expect("ring poisoned");
    while r.buf.len() >= r.cap {
        r.buf.pop_front();
    }
    r.buf.push_back(ev);
}

/// A copy of the buffered events, oldest first.
pub fn recent_events() -> Vec<Event> {
    ring()
        .lock()
        .expect("ring poisoned")
        .buf
        .iter()
        .cloned()
        .collect()
}

/// The current ring capacity.
pub fn ring_capacity() -> usize {
    ring().lock().expect("ring poisoned").cap
}

/// Resize the ring (minimum 1); excess oldest events are evicted
/// immediately.
pub fn set_ring_capacity(cap: usize) {
    let mut r = ring().lock().expect("ring poisoned");
    r.cap = cap.max(1);
    while r.buf.len() > r.cap {
        r.buf.pop_front();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{event, FieldValue, Level};

    #[test]
    fn overflow_evicts_oldest_and_preserves_order() {
        set_ring_capacity(8);
        for i in 0..40u64 {
            event(Level::Info, "test.ring").field("i", i).emit();
        }
        let ours: Vec<u64> = recent_events()
            .iter()
            .filter(|e| e.name == "test.ring")
            .filter_map(|e| e.field("i").and_then(FieldValue::as_u64))
            .collect();
        // Capacity 8: at most the 8 newest survive (other tests may emit
        // concurrently, evicting a few more), all from the tail, in FIFO
        // order.
        assert!(!ours.is_empty() && ours.len() <= 8, "{ours:?}");
        assert!(ours.iter().all(|&i| i >= 32), "{ours:?}");
        assert!(ours.windows(2).all(|w| w[0] < w[1]), "{ours:?}");
        assert_eq!(ring_capacity(), 8);
        set_ring_capacity(2048);
    }

    #[test]
    fn shrink_keeps_newest_in_emission_order() {
        set_ring_capacity(64);
        for i in 0..20u64 {
            event(Level::Info, "test.ring.shrink").field("i", i).emit();
        }
        // Shrinking evicts from the front (oldest): the survivors must be
        // a suffix of the emission sequence, still strictly in order.
        set_ring_capacity(5);
        let ours: Vec<u64> = recent_events()
            .iter()
            .filter(|e| e.name == "test.ring.shrink")
            .filter_map(|e| e.field("i").and_then(FieldValue::as_u64))
            .collect();
        assert!(!ours.is_empty() && ours.len() <= 5, "{ours:?}");
        assert!(ours.iter().all(|&i| i >= 15), "newest survive: {ours:?}");
        assert!(
            ours.windows(2).all(|w| w[1] == w[0] + 1),
            "contiguous suffix, emission order: {ours:?}"
        );
        // Growing back never resurrects evicted events.
        set_ring_capacity(2048);
        let after: Vec<u64> = recent_events()
            .iter()
            .filter(|e| e.name == "test.ring.shrink")
            .filter_map(|e| e.field("i").and_then(FieldValue::as_u64))
            .collect();
        assert_eq!(after, ours);
    }
}
