//! Property tests for the histogram quantile estimator (the lib crate
//! stays zero-dependency; proptest is a dev-dependency of this integration
//! test only).

use odt_obs::Histogram;
use proptest::prelude::*;

proptest! {
    /// For ANY sample set, quantiles must be monotone in q, bounded by the
    /// exact maximum, and the summary must agree with the raw queries.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        samples in prop::collection::vec(0u64..=10_000_000, 1..300),
    ) {
        let h = Histogram::default();
        for &s in &samples {
            h.record_micros(s);
        }
        let max = *samples.iter().max().unwrap() as f64;
        let s = h.summary();
        prop_assert_eq!(s.count, samples.len() as u64);
        prop_assert!(s.p50_us <= s.p95_us, "p50 {} > p95 {}", s.p50_us, s.p95_us);
        prop_assert!(s.p95_us <= s.p99_us, "p95 {} > p99 {}", s.p95_us, s.p99_us);
        prop_assert!(s.p99_us <= s.max_us, "p99 {} > max {}", s.p99_us, s.max_us);
        prop_assert_eq!(s.max_us, max);
        // Dense q sweep: monotone non-decreasing everywhere, within range.
        let mut prev = 0.0f64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile_micros(q);
            prop_assert!(v >= prev, "q={q}: {v} < {prev}");
            prop_assert!(v <= max, "q={q}: {v} > max {max}");
            prev = v;
        }
        // The mean of recorded samples is exact (sum/count, not bucketed).
        let exact_mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((s.mean_us - exact_mean).abs() < 1e-6);
    }

    /// A quantile estimate always lands inside (or at the clamped edge of)
    /// the base-2 bucket that contains the true order statistic.
    #[test]
    fn quantile_estimate_stays_in_true_bucket(
        mut samples in prop::collection::vec(0u64..=1_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::default();
        for &s in &samples {
            h.record_micros(s);
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let true_stat = samples[rank - 1];
        let est = h.quantile_micros(q);
        // Same base-2 bucket: [2^(i-1), 2^i) for i ≥ 1, {0} for bucket 0.
        let (lo, hi) = if true_stat == 0 {
            (0.0, 1.0)
        } else {
            let i = 64 - true_stat.leading_zeros() as usize;
            ((1u64 << (i - 1)) as f64, (1u64 << i) as f64)
        };
        let max = *samples.last().unwrap() as f64;
        // est interpolates inside [lo, hi] of the rank's bucket, then is
        // clamped to the exact max (which is ≥ the true order statistic ≥ lo).
        prop_assert!(
            est >= lo && est <= hi && est <= max,
            "q={q} est={est} true={true_stat} bucket=[{lo},{hi}) max={max}"
        );
    }
}

proptest! {
    /// Prometheus exposition invariants for ANY observation set: bucket
    /// lines are cumulative-monotone in both `le` and count, the series
    /// closes with `+Inf` equal to `_count`, and `_sum` is exact.
    #[test]
    fn exposition_buckets_are_cumulative_and_consistent(
        samples in prop::collection::vec(0u64..=50_000_000, 0..300),
    ) {
        let h = Histogram::default();
        for &s in &samples {
            h.record_micros(s);
        }
        let body = odt_obs::expo::render_parts(&[], &[], &[("prop.hist", &h)]);
        let mut les: Vec<u64> = Vec::new();
        let mut cums: Vec<u64> = Vec::new();
        let mut inf = None;
        let mut sum = None;
        let mut count = None;
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("odt_prop_hist_us_bucket{le=\"") {
                let (le, c) = rest.split_once("\"} ").unwrap();
                let c: u64 = c.parse().unwrap();
                if le == "+Inf" {
                    inf = Some(c);
                } else {
                    les.push(le.parse().unwrap());
                    cums.push(c);
                }
            } else if let Some(v) = line.strip_prefix("odt_prop_hist_us_sum ") {
                sum = Some(v.parse::<u64>().unwrap());
            } else if let Some(v) = line.strip_prefix("odt_prop_hist_us_count ") {
                count = Some(v.parse::<u64>().unwrap());
            }
        }
        prop_assert_eq!(inf, Some(samples.len() as u64), "+Inf bucket == count");
        prop_assert_eq!(count, Some(samples.len() as u64));
        prop_assert_eq!(sum, Some(samples.iter().sum::<u64>()));
        for w in les.windows(2) {
            prop_assert!(w[0] < w[1], "le bounds strictly increase");
        }
        for w in cums.windows(2) {
            prop_assert!(w[0] <= w[1], "cumulative counts are monotone");
        }
        if let Some(&last) = cums.last() {
            prop_assert!(last <= samples.len() as u64);
        }
        // Exactness: each rendered cumulative count equals the number of
        // observations at or below its integer `le` bound.
        for (&le, &c) in les.iter().zip(&cums) {
            let expect = samples.iter().filter(|&&s| s <= le).count() as u64;
            prop_assert_eq!(c, expect, "le={}", le);
        }
    }
}
