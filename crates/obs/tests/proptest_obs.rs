//! Property tests for the histogram quantile estimator (the lib crate
//! stays zero-dependency; proptest is a dev-dependency of this integration
//! test only).

use odt_obs::{bucket_le_us, Histogram, HistogramData, NUM_BUCKETS};
use proptest::prelude::*;

proptest! {
    /// For ANY sample set, quantiles must be monotone in q, bounded by the
    /// exact maximum, and the summary must agree with the raw queries.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        samples in prop::collection::vec(0u64..=10_000_000, 1..300),
    ) {
        let h = Histogram::default();
        for &s in &samples {
            h.record_micros(s);
        }
        let max = *samples.iter().max().unwrap() as f64;
        let s = h.summary();
        prop_assert_eq!(s.count, samples.len() as u64);
        prop_assert!(s.p50_us <= s.p95_us, "p50 {} > p95 {}", s.p50_us, s.p95_us);
        prop_assert!(s.p95_us <= s.p99_us, "p95 {} > p99 {}", s.p95_us, s.p99_us);
        prop_assert!(s.p99_us <= s.max_us, "p99 {} > max {}", s.p99_us, s.max_us);
        prop_assert_eq!(s.max_us, max);
        // Dense q sweep: monotone non-decreasing everywhere, within range.
        let mut prev = 0.0f64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile_micros(q);
            prop_assert!(v >= prev, "q={q}: {v} < {prev}");
            prop_assert!(v <= max, "q={q}: {v} > max {max}");
            prev = v;
        }
        // The mean of recorded samples is exact (sum/count, not bucketed).
        let exact_mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((s.mean_us - exact_mean).abs() < 1e-6);
    }

    /// A quantile estimate always lands inside (or at the clamped edge of)
    /// the base-2 bucket that contains the true order statistic.
    #[test]
    fn quantile_estimate_stays_in_true_bucket(
        mut samples in prop::collection::vec(0u64..=1_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::default();
        for &s in &samples {
            h.record_micros(s);
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let true_stat = samples[rank - 1];
        let est = h.quantile_micros(q);
        // Same base-2 bucket: [2^(i-1), 2^i) for i ≥ 1, {0} for bucket 0.
        let (lo, hi) = if true_stat == 0 {
            (0.0, 1.0)
        } else {
            let i = 64 - true_stat.leading_zeros() as usize;
            ((1u64 << (i - 1)) as f64, (1u64 << i) as f64)
        };
        let max = *samples.last().unwrap() as f64;
        // est interpolates inside [lo, hi] of the rank's bucket, then is
        // clamped to the exact max (which is ≥ the true order statistic ≥ lo).
        prop_assert!(
            est >= lo && est <= hi && est <= max,
            "q={q} est={est} true={true_stat} bucket=[{lo},{hi}) max={max}"
        );
    }
}

proptest! {
    /// Prometheus exposition invariants for ANY observation set: bucket
    /// lines are cumulative-monotone in both `le` and count, the series
    /// closes with `+Inf` equal to `_count`, and `_sum` is exact.
    #[test]
    fn exposition_buckets_are_cumulative_and_consistent(
        samples in prop::collection::vec(0u64..=50_000_000, 0..300),
    ) {
        let h = Histogram::default();
        for &s in &samples {
            h.record_micros(s);
        }
        let body = odt_obs::expo::render_parts(&[], &[], &[("prop.hist", &h)]);
        let mut les: Vec<u64> = Vec::new();
        let mut cums: Vec<u64> = Vec::new();
        let mut inf = None;
        let mut sum = None;
        let mut count = None;
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("odt_prop_hist_us_bucket{le=\"") {
                let (le, c) = rest.split_once("\"} ").unwrap();
                let c: u64 = c.parse().unwrap();
                if le == "+Inf" {
                    inf = Some(c);
                } else {
                    les.push(le.parse().unwrap());
                    cums.push(c);
                }
            } else if let Some(v) = line.strip_prefix("odt_prop_hist_us_sum ") {
                sum = Some(v.parse::<u64>().unwrap());
            } else if let Some(v) = line.strip_prefix("odt_prop_hist_us_count ") {
                count = Some(v.parse::<u64>().unwrap());
            }
        }
        prop_assert_eq!(inf, Some(samples.len() as u64), "+Inf bucket == count");
        prop_assert_eq!(count, Some(samples.len() as u64));
        prop_assert_eq!(sum, Some(samples.iter().sum::<u64>()));
        for w in les.windows(2) {
            prop_assert!(w[0] < w[1], "le bounds strictly increase");
        }
        for w in cums.windows(2) {
            prop_assert!(w[0] <= w[1], "cumulative counts are monotone");
        }
        if let Some(&last) = cums.last() {
            prop_assert!(last <= samples.len() as u64);
        }
        // Exactness: each rendered cumulative count equals the number of
        // observations at or below its integer `le` bound.
        for (&le, &c) in les.iter().zip(&cums) {
            let expect = samples.iter().filter(|&&s| s <= le).count() as u64;
            prop_assert_eq!(c, expect, "le={}", le);
        }
    }
}

/// Build a [`HistogramData`] from raw observations.
fn data_of(samples: &[u64]) -> HistogramData {
    let mut d = HistogramData::default();
    for &s in samples {
        d.record_micros(s);
    }
    d
}

/// The index of the base-2 bucket containing value `v` (µs, as a float
/// estimate): the smallest `i` with `v ≤ bucket_le_us(i)`, or the
/// catch-all bucket when none is.
fn bucket_of(v: f64) -> usize {
    for i in 0..NUM_BUCKETS - 1 {
        if v <= bucket_le_us(i) as f64 {
            return i;
        }
    }
    NUM_BUCKETS - 1
}

proptest! {
    /// Federation-merge invariants for ANY pair/triple of observation
    /// sets: merging is commutative and associative, conserves `_count`,
    /// `_sum` and every bucket exactly, and equals the histogram a
    /// single process would have recorded from the union.
    #[test]
    fn histogram_merge_is_exact_commutative_and_associative(
        xs in prop::collection::vec(0u64..=50_000_000, 0..200),
        ys in prop::collection::vec(0u64..=50_000_000, 0..200),
        zs in prop::collection::vec(0u64..=50_000_000, 0..200),
    ) {
        let (a, b, c) = (data_of(&xs), data_of(&ys), data_of(&zs));
        let ab = HistogramData::merged([&a, &b]);
        // Conservation, bucket by bucket.
        prop_assert_eq!(ab.count, a.count + b.count);
        prop_assert_eq!(ab.sum_us, a.sum_us + b.sum_us);
        prop_assert_eq!(ab.max_us, a.max_us.max(b.max_us));
        for i in 0..NUM_BUCKETS {
            prop_assert_eq!(ab.buckets[i], a.buckets[i] + b.buckets[i], "bucket {}", i);
        }
        // Merge == single-process recording of the union.
        let mut union: Vec<u64> = xs.clone();
        union.extend_from_slice(&ys);
        prop_assert_eq!(&ab, &data_of(&union));
        // Commutative.
        prop_assert_eq!(&ab, &HistogramData::merged([&b, &a]));
        // Associative.
        let bc = HistogramData::merged([&b, &c]);
        prop_assert_eq!(
            HistogramData::merged([&ab, &c]),
            HistogramData::merged([&a, &bc])
        );
    }

    /// A merged quantile is bounded by the inputs' quantiles at bucket
    /// resolution. The exact q-order-statistic of a union lies between
    /// the parts' exact q-order-statistics, and the estimator answers
    /// within the order statistic's base-2 bucket (touching its open
    /// upper edge at worst) — so the merged estimate's bucket lies
    /// within one bucket of the interval spanned by the parts' estimate
    /// buckets, and its value within a factor-of-two band of the parts'
    /// estimates. Tighter value-level betweenness is NOT guaranteed:
    /// two inputs concentrated at a shared bucket's top interpolate
    /// higher alone than their union does.
    #[test]
    fn merged_quantiles_are_bounded_by_input_quantiles(
        xs in prop::collection::vec(0u64..=50_000_000, 1..200),
        ys in prop::collection::vec(0u64..=50_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let (a, b) = (data_of(&xs), data_of(&ys));
        let m = HistogramData::merged([&a, &b]);
        let (qa, qb, qm) = (
            a.quantile_micros(q),
            b.quantile_micros(q),
            m.quantile_micros(q),
        );
        let (lo, hi) = (bucket_of(qa.min(qb)), bucket_of(qa.max(qb)));
        let bm = bucket_of(qm);
        prop_assert!(
            (lo.saturating_sub(1)..=hi + 1).contains(&bm),
            "q={q}: merged {qm} (bucket {bm}) outside inputs' [{qa}, {qb}] \
             bucket band [{lo}, {hi}] ± 1"
        );
        // One base-2 bucket of slack is a factor of two in value.
        prop_assert!(
            qm >= qa.min(qb) / 2.0 - 1.0,
            "q={q}: merged {qm} below half the smaller input quantile {}",
            qa.min(qb)
        );
        prop_assert!(
            qm <= qa.max(qb) * 2.0 + 1.0,
            "q={q}: merged {qm} above twice the larger input quantile {}",
            qa.max(qb)
        );
        // And the merged estimate never exceeds the merged exact max.
        prop_assert!(qm <= m.max_us as f64);
    }
}
