//! End-to-end drift incident: a synthetically shifted holdout stream must
//! cross the drift threshold, raise the edge-triggered alert, and freeze
//! the flight recorder — the acceptance path for the quality observer.
//!
//! Lives in its own integration-test process because the flight recorder
//! is process-global (the lib's unit tests arm/disarm it under their own
//! lock; sharing a process would race).

use odt_obs::quality::{QualityConfig, QualityTracker};
use odt_obs::slo::BurnRateConfig;

#[test]
fn synthetic_shift_triggers_alert_and_flightrec_dump() {
    let dir = std::env::temp_dir().join(format!("odt_quality_drift_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    odt_obs::flightrec::enable(&dir);

    let mut t = QualityTracker::new(QualityConfig {
        window: 64,
        min_samples: 16,
        slo: Some(BurnRateConfig {
            fast_window_us: 1_000_000,
            slow_window_us: 10_000_000,
            min_samples: 5,
            ..BurnRateConfig::default()
        }),
        ..QualityConfig::default()
    });

    // Healthy phase: ±5% wobble freezes an honest reference window.
    let mut now = 0u64;
    for i in 0..64u64 {
        now += 10_000;
        let wobble = 0.05 * ((i % 10) as f64 / 5.0 - 1.0);
        t.record(600.0 * (1.0 + wobble), 600.0, now);
    }
    let healthy = t.snapshot(now);
    assert!(healthy.reference_frozen);
    assert_eq!(healthy.drift_alerts, 0);
    let dumps_before = odt_obs::flightrec::dump_count();

    // Shifted phase: the same workload with ground truth 60% above the
    // model's predictions (demand shift — the model is now stale).
    for i in 0..64u64 {
        now += 10_000;
        let wobble = 0.05 * ((i % 10) as f64 / 5.0 - 1.0);
        t.record(600.0 * (1.0 + wobble), 960.0, now);
    }
    let shifted = t.snapshot(now);
    assert!(
        shifted.drift_score > t.config().drift_threshold,
        "drift {} must cross {}",
        shifted.drift_score,
        t.config().drift_threshold
    );
    assert_eq!(shifted.drift_alerts, 1, "edge-triggered alert");
    assert!(shifted.drift_alerting);
    let slo = shifted.slo.expect("slo monitor configured");
    assert!(
        slo.alerting,
        "sustained APE over tolerance must burn the accuracy SLO"
    );

    // The incident left a black box.
    assert!(odt_obs::flightrec::dump_count() > dumps_before);
    let dump = odt_obs::flightrec::last_dump().expect("dump written");
    let name = dump.file_name().unwrap().to_string_lossy().to_string();
    // The drift alert fires first, then the SLO breach may dump again —
    // both reasons are acceptable as "last", but a quality_drift dump
    // must exist in the directory.
    let has_drift_dump = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .any(|e| e.file_name().to_string_lossy().contains("quality_drift"));
    assert!(has_drift_dump, "no quality_drift dump (last: {name})");
    let content = std::fs::read_to_string(&dump).unwrap();
    assert!(content
        .lines()
        .next()
        .unwrap()
        .contains("\"schema\":\"odt-flightrec/v1\""));
    assert!(
        content
            .lines()
            .any(|l| l.contains("quality.drift.alert") || l.contains("slo.burn.alert")),
        "dump carries the alerting event ring"
    );

    odt_obs::flightrec::disable();
    let _ = std::fs::remove_dir_all(&dir);
}
