//! Golden-file test for the Prometheus exposition renderer: a fixed set
//! of counters, gauges and histogram observations must render
//! byte-identically to `tests/golden/exposition.txt`. Any intentional
//! format change must update the golden file in the same commit —
//! dashboards and scrape configs parse this format.

use odt_obs::Histogram;

/// The fixture must be deterministic and registry-independent: local
/// histograms, literal counter/gauge slices, no process-global state.
fn golden_body() -> String {
    let lat = Histogram::default();
    for v in [0u64, 1, 2, 3, 120, 480, 512, 700, 1023, 90_000] {
        lat.record_micros(v);
    }
    let empty = Histogram::default();
    odt_obs::expo::render_parts(
        &[("net.conns.opened", 42), ("serve.shed.queue_full", 3)],
        &[
            ("quality.drift.score", 0.125),
            ("quality.mae", 37.5),
            ("slo.burn.fast", 0.0),
        ],
        &[("serve.request", &lat), ("serve.rung.fallback", &empty)],
    )
}

#[test]
fn exposition_matches_golden_file() {
    let expected = include_str!("golden/exposition.txt");
    let got = golden_body();
    if got != expected {
        // Line-level diff for a readable failure.
        for (i, (g, e)) in got.lines().zip(expected.lines()).enumerate() {
            assert_eq!(g, e, "first divergence at line {}", i + 1);
        }
        assert_eq!(
            got.lines().count(),
            expected.lines().count(),
            "line-count mismatch"
        );
        panic!("bodies differ only in trailing whitespace");
    }
}
