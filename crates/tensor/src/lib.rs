//! # odt-tensor
//!
//! Dense `f32` tensor library with reverse-mode automatic differentiation.
//!
//! This crate is the deep-learning substrate for the DOT ODT-Oracle
//! reproduction. The paper trains a conditioned denoising diffusion model and
//! a masked vision Transformer; since no mature Rust DL training stack
//! exists, this crate provides everything those models need, from scratch:
//!
//! * [`Tensor`] — a row-major, contiguous, dense `f32` tensor with NumPy-style
//!   broadcasting, matrix multiplication, 2-D convolution, reductions,
//!   activations and shape manipulation.
//! * [`Graph`] — an append-only tape recording differentiable operations.
//!   Calling [`Graph::backward`] propagates gradients to every recorded
//!   operation and accumulates them into shared [`Param`] leaves, which the
//!   optimizer in `odt-nn` then consumes.
//! * [`init`] — seedable random initializers (uniform, normal, Xavier/Glorot,
//!   Kaiming/He).
//!
//! Every differentiable op's gradient is validated against central finite
//! differences in the test suite.
//!
//! ## Example
//!
//! ```
//! use odt_tensor::{Graph, Param, Tensor};
//!
//! let g = Graph::new();
//! let w = Param::new(Tensor::from_vec(vec![2.0], vec![1]), "w");
//! let x = g.input(Tensor::from_vec(vec![3.0], vec![1]));
//! let wv = g.param(&w);
//! let y = g.mul(wv, x);           // y = w * x
//! let loss = g.sum_all(y);
//! g.backward(loss);
//! assert_eq!(w.grad().data()[0], 3.0); // dy/dw = x = 3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
pub mod init;
pub mod ops;
mod param;
mod shape;
mod tensor;

pub use error::TensorError;
pub use graph::{Graph, Var};
pub use ops::{bmm, conv2d, conv_out_size, matmul, upsample_nearest2};
pub use param::Param;
pub use shape::{broadcast_shapes, strides_for, Shape};
pub use tensor::Tensor;
