//! Shared trainable parameters.

use crate::tensor::Tensor;
use std::cell::RefCell;
use std::rc::Rc;

struct ParamInner {
    value: Tensor,
    grad: Tensor,
    name: String,
}

/// A trainable parameter: a tensor value plus an accumulated gradient,
/// shared between the model (which records it on a [`crate::Graph`]) and the
/// optimizer (which applies updates).
///
/// Cloning a `Param` clones the handle, not the storage — all clones see the
/// same value and gradient. This mirrors how layers hand their parameters to
/// an optimizer.
#[derive(Clone)]
pub struct Param(Rc<RefCell<ParamInner>>);

impl Param {
    /// Create a parameter with an initial value and a diagnostic name.
    pub fn new(value: Tensor, name: impl Into<String>) -> Self {
        let grad = Tensor::zeros(value.shape().to_vec());
        Param(Rc::new(RefCell::new(ParamInner {
            value,
            grad,
            name: name.into(),
        })))
    }

    /// Snapshot of the current value.
    pub fn value(&self) -> Tensor {
        self.0.borrow().value.clone()
    }

    /// Snapshot of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.0.borrow().grad.clone()
    }

    /// Replace the value (used by optimizers and checkpoint loading).
    pub fn set_value(&self, value: Tensor) {
        let mut inner = self.0.borrow_mut();
        assert_eq!(
            inner.value.shape(),
            value.shape(),
            "param '{}' value shape change",
            inner.name
        );
        inner.value = value;
    }

    /// Accumulate a gradient contribution (`grad += delta`).
    pub fn accumulate_grad(&self, delta: &Tensor) {
        let mut inner = self.0.borrow_mut();
        assert_eq!(
            inner.grad.shape(),
            delta.shape(),
            "param '{}' grad shape mismatch",
            inner.name
        );
        inner.grad = inner.grad.add(delta);
    }

    /// Reset the accumulated gradient to zero.
    pub fn zero_grad(&self) {
        let mut inner = self.0.borrow_mut();
        inner.grad = Tensor::zeros(inner.value.shape().to_vec());
    }

    /// Diagnostic name.
    pub fn name(&self) -> String {
        self.0.borrow().name.clone()
    }

    /// Number of scalar elements in the parameter.
    pub fn numel(&self) -> usize {
        self.0.borrow().value.numel()
    }

    /// `true` if two handles share the same storage.
    pub fn same_storage(&self, other: &Param) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }
}

impl std::fmt::Debug for Param {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.0.borrow();
        write!(
            f,
            "Param('{}', shape {:?})",
            inner.name,
            inner.value.shape()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let p = Param::new(Tensor::scalar(1.0), "p");
        let q = p.clone();
        q.set_value(Tensor::scalar(5.0));
        assert_eq!(p.value().data()[0], 5.0);
        assert!(p.same_storage(&q));
    }

    #[test]
    fn grad_accumulates_and_resets() {
        let p = Param::new(Tensor::zeros(vec![2]), "p");
        p.accumulate_grad(&Tensor::from_vec(vec![1.0, 2.0], vec![2]));
        p.accumulate_grad(&Tensor::from_vec(vec![0.5, 0.5], vec![2]));
        assert_eq!(p.grad().data(), &[1.5, 2.5]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn shape_change_rejected() {
        let p = Param::new(Tensor::zeros(vec![2]), "p");
        p.set_value(Tensor::zeros(vec![3]));
    }
}
