//! Heavy compute kernels: matrix multiplication, batched matmul, 2-D
//! convolution (forward and the two backward kernels) and nearest-neighbor
//! upsampling. The autograd [`crate::Graph`] dispatches into these.
//!
//! Kernels are plain nested loops in `ikj` order (matmul) / direct form
//! (conv). At DOT's model sizes (images ≤ 30×30, channels ≤ 128, batch ≤ 64)
//! these are fast enough on one CPU core and trivially auditable.

use crate::tensor::Tensor;

/// `C = A @ B` for 2-D matrices: `[m, k] @ [k, n] -> [m, n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be 2-D, got {:?}", a.shape());
    assert_eq!(b.rank(), 2, "matmul rhs must be 2-D, got {:?}", b.shape());
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(
        k,
        k2,
        "matmul inner dims differ: {:?} @ {:?}",
        a.shape(),
        b.shape()
    );
    let mut out = Tensor::zeros(vec![m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Batched matmul: `[b, m, k] @ [b, k, n] -> [b, m, n]`.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 3, "bmm lhs must be 3-D");
    assert_eq!(b.rank(), 3, "bmm rhs must be 3-D");
    let (ba, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let (bb, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
    assert_eq!(ba, bb, "bmm batch dims differ");
    assert_eq!(k, k2, "bmm inner dims differ");
    let mut out = Tensor::zeros(vec![ba, m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for t in 0..ba {
        let abase = t * m * k;
        let bbase = t * k * n;
        let obase = t * m * n;
        for i in 0..m {
            for p in 0..k {
                let av = ad[abase + i * k + p];
                if av == 0.0 {
                    continue;
                }
                let brow = &bd[bbase + p * n..bbase + (p + 1) * n];
                let orow = &mut od[obase + i * n..obase + (i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
    out
}

/// Output spatial size of a convolution: `(in + 2*pad - kernel) / stride + 1`.
pub fn conv_out_size(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(input + 2 * pad >= kernel, "kernel larger than padded input");
    (input + 2 * pad - kernel) / stride + 1
}

/// Unfold one NCHW sample into an im2col matrix `[c_in*kh*kw, ho*wo]`
/// (row-major into `cols`, which must be zeroed and correctly sized).
#[allow(clippy::too_many_arguments)]
fn im2col(
    sample: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    ho: usize,
    wo: usize,
    cols: &mut [f32],
) {
    debug_assert_eq!(cols.len(), c_in * kh * kw * ho * wo);
    for ci in 0..c_in {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((ci * kh + ky) * kw + kx) * (ho * wo);
                for oy in 0..ho {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        for ox in 0..wo {
                            cols[row + oy * wo + ox] = 0.0;
                        }
                        continue;
                    }
                    let in_row = (ci * h + iy as usize) * w;
                    for ox in 0..wo {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        cols[row + oy * wo + ox] = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            sample[in_row + ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Fold an im2col matrix back into an NCHW sample, accumulating overlaps —
/// the adjoint of [`im2col`].
#[allow(clippy::too_many_arguments)]
fn col2im(
    cols: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    ho: usize,
    wo: usize,
    sample: &mut [f32],
) {
    for ci in 0..c_in {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((ci * kh + ky) * kw + kx) * (ho * wo);
                for oy in 0..ho {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let in_row = (ci * h + iy as usize) * w;
                    for ox in 0..wo {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        sample[in_row + ix as usize] += cols[row + oy * wo + ox];
                    }
                }
            }
        }
    }
}

/// `C[m,n] += A[m,k] @ B[k,n]` on raw slices (ikj loop order).
fn gemm_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (o, &bv) in crow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `C[m,n] += A^T[k,m] @ B[k,n]` where `A` is stored `[k, m]`.
fn gemm_at_b_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            for (o, &bv) in crow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `C[m,n] += A[m,k] @ B^T[n,k]` where `B` is stored `[n, k]`.
fn gemm_a_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            c[i * n + j] += acc;
        }
    }
}

/// 2-D convolution, NCHW layout, via im2col + GEMM.
///
/// * `x`: `[batch, c_in, h, w]`
/// * `weight`: `[c_out, c_in, kh, kw]`
/// * `bias`: `[c_out]` (optional)
///
/// Returns `[batch, c_out, h_out, w_out]`.
pub fn conv2d(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Tensor {
    assert_eq!(x.rank(), 4, "conv2d input must be NCHW");
    assert_eq!(
        weight.rank(),
        4,
        "conv2d weight must be [c_out, c_in, kh, kw]"
    );
    let (b, c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (c_out, c_in2, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    assert_eq!(c_in, c_in2, "conv2d channel mismatch");
    if let Some(bt) = bias {
        assert_eq!(bt.shape(), &[c_out], "conv2d bias must be [c_out]");
    }
    let ho = conv_out_size(h, kh, stride, pad);
    let wo = conv_out_size(w, kw, stride, pad);
    let k = c_in * kh * kw;
    let n = ho * wo;
    let mut out = Tensor::zeros(vec![b, c_out, ho, wo]);
    let xd = x.data();
    let wd = weight.data();
    let od = out.data_mut();
    let mut cols = vec![0.0f32; k * n];
    for bi in 0..b {
        im2col(
            &xd[bi * c_in * h * w..(bi + 1) * c_in * h * w],
            c_in,
            h,
            w,
            kh,
            kw,
            stride,
            pad,
            ho,
            wo,
            &mut cols,
        );
        let out_b = &mut od[bi * c_out * n..(bi + 1) * c_out * n];
        gemm_acc(wd, &cols, out_b, c_out, k, n);
        if let Some(bt) = bias {
            for co in 0..c_out {
                let bv = bt.data()[co];
                for o in &mut out_b[co * n..(co + 1) * n] {
                    *o += bv;
                }
            }
        }
    }
    out
}

/// Gradient of conv2d w.r.t. the input (`dL/dx`), given upstream `dL/dy`:
/// `dcols = Wᵀ @ dy`, folded back with col2im.
pub fn conv2d_grad_input(
    grad_out: &Tensor,
    weight: &Tensor,
    input_shape: &[usize],
    stride: usize,
    pad: usize,
) -> Tensor {
    let (b, c_in, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let (c_out, _, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let (ho, wo) = (grad_out.shape()[2], grad_out.shape()[3]);
    let k = c_in * kh * kw;
    let n = ho * wo;
    let mut gx = Tensor::zeros(input_shape.to_vec());
    let gd = grad_out.data();
    let wd = weight.data();
    let gxd = gx.data_mut();
    let mut dcols = vec![0.0f32; k * n];
    for bi in 0..b {
        dcols.iter_mut().for_each(|v| *v = 0.0);
        let gout_b = &gd[bi * c_out * n..(bi + 1) * c_out * n];
        // dcols [k, n] = W^T [k, c_out] @ gout [c_out, n]; W stored [c_out, k].
        gemm_at_b_acc(wd, gout_b, &mut dcols, k, c_out, n);
        col2im(
            &dcols,
            c_in,
            h,
            w,
            kh,
            kw,
            stride,
            pad,
            ho,
            wo,
            &mut gxd[bi * c_in * h * w..(bi + 1) * c_in * h * w],
        );
    }
    gx
}

/// Gradient of conv2d w.r.t. the weight (`dL/dW`), given upstream `dL/dy`:
/// `dW = Σ_b dy_b @ cols_bᵀ`.
pub fn conv2d_grad_weight(
    grad_out: &Tensor,
    x: &Tensor,
    weight_shape: &[usize],
    stride: usize,
    pad: usize,
) -> Tensor {
    let (b, c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (c_out, _, kh, kw) = (
        weight_shape[0],
        weight_shape[1],
        weight_shape[2],
        weight_shape[3],
    );
    let (ho, wo) = (grad_out.shape()[2], grad_out.shape()[3]);
    let k = c_in * kh * kw;
    let n = ho * wo;
    let mut gw = Tensor::zeros(weight_shape.to_vec());
    let gd = grad_out.data();
    let xd = x.data();
    let gwd = gw.data_mut();
    let mut cols = vec![0.0f32; k * n];
    for bi in 0..b {
        im2col(
            &xd[bi * c_in * h * w..(bi + 1) * c_in * h * w],
            c_in,
            h,
            w,
            kh,
            kw,
            stride,
            pad,
            ho,
            wo,
            &mut cols,
        );
        let gout_b = &gd[bi * c_out * n..(bi + 1) * c_out * n];
        // dW [c_out, k] += gout [c_out, n] @ cols^T [n, k]; cols stored [k, n].
        gemm_a_bt_acc(gout_b, &cols, gwd, c_out, n, k);
    }
    gw
}

/// Gradient of conv2d w.r.t. the bias: sum of `dL/dy` over batch and space.
pub fn conv2d_grad_bias(grad_out: &Tensor) -> Tensor {
    let (b, c_out, ho, wo) = (
        grad_out.shape()[0],
        grad_out.shape()[1],
        grad_out.shape()[2],
        grad_out.shape()[3],
    );
    let mut gb = Tensor::zeros(vec![c_out]);
    let gd = grad_out.data();
    let gbd = gb.data_mut();
    for bi in 0..b {
        for co in 0..c_out {
            let base = ((bi * c_out + co) * ho) * wo;
            gbd[co] += gd[base..base + ho * wo].iter().sum::<f32>();
        }
    }
    gb
}

/// Nearest-neighbor 2× spatial upsampling, NCHW: `[b, c, h, w] -> [b, c, 2h, 2w]`.
pub fn upsample_nearest2(x: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 4, "upsample input must be NCHW");
    let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let mut out = Tensor::zeros(vec![b, c, 2 * h, 2 * w]);
    let xd = x.data();
    let od = out.data_mut();
    for bc in 0..b * c {
        for y in 0..h {
            for xx in 0..w {
                let v = xd[(bc * h + y) * w + xx];
                let base = bc * 4 * h * w;
                od[base + (2 * y) * 2 * w + 2 * xx] = v;
                od[base + (2 * y) * 2 * w + 2 * xx + 1] = v;
                od[base + (2 * y + 1) * 2 * w + 2 * xx] = v;
                od[base + (2 * y + 1) * 2 * w + 2 * xx + 1] = v;
            }
        }
    }
    out
}

/// Gradient of [`upsample_nearest2`]: each input pixel receives the sum of
/// its four output copies.
pub fn upsample_nearest2_grad(grad_out: &Tensor) -> Tensor {
    let (b, c, h2, w2) = (
        grad_out.shape()[0],
        grad_out.shape()[1],
        grad_out.shape()[2],
        grad_out.shape()[3],
    );
    assert!(
        h2 % 2 == 0 && w2 % 2 == 0,
        "upsample grad expects even dims"
    );
    let (h, w) = (h2 / 2, w2 / 2);
    let mut gx = Tensor::zeros(vec![b, c, h, w]);
    let gd = grad_out.data();
    let gxd = gx.data_mut();
    for bc in 0..b * c {
        for y in 0..h {
            for xx in 0..w {
                let base = bc * h2 * w2;
                let s = gd[base + (2 * y) * w2 + 2 * xx]
                    + gd[base + (2 * y) * w2 + 2 * xx + 1]
                    + gd[base + (2 * y + 1) * w2 + 2 * xx]
                    + gd[base + (2 * y + 1) * w2 + 2 * xx + 1];
                gxd[(bc * h + y) * w + xx] = s;
            }
        }
    }
    gx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], vec![2, 2]);
        assert_eq!(matmul(&a, &i).data(), a.data());
        assert_eq!(matmul(&i, &a).data(), a.data());
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], vec![3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), vec![2, 2, 3]);
        let b = Tensor::from_vec((0..12).map(|v| (v as f32) * 0.5).collect(), vec![2, 3, 2]);
        let c = bmm(&a, &b);
        for t in 0..2 {
            let at = a.slice(0, t, t + 1).reshape(vec![2, 3]);
            let bt = b.slice(0, t, t + 1).reshape(vec![3, 2]);
            let ct = matmul(&at, &bt);
            assert_eq!(c.slice(0, t, t + 1).reshape(vec![2, 2]).data(), ct.data());
        }
    }

    #[test]
    fn conv_out_sizes() {
        assert_eq!(conv_out_size(5, 3, 1, 1), 5); // same padding
        assert_eq!(conv_out_size(5, 3, 1, 0), 3); // valid
        assert_eq!(conv_out_size(6, 4, 2, 1), 3); // strided downsample
    }

    #[test]
    fn conv2d_identity_kernel() {
        // A 1x1 kernel of weight 1 is the identity map.
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), vec![1, 1, 3, 3]);
        let w = Tensor::from_vec(vec![1.0], vec![1, 1, 1, 1]);
        let y = conv2d(&x, &w, None, 1, 0);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv2d_box_filter_with_padding() {
        // 3x3 all-ones kernel with pad 1: center pixel sums whole 3x3 input.
        let x = Tensor::ones(vec![1, 1, 3, 3]);
        let w = Tensor::ones(vec![1, 1, 3, 3]);
        let y = conv2d(&x, &w, None, 1, 1);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert_eq!(y.at(&[0, 0, 1, 1]), 9.0); // center sees all 9
        assert_eq!(y.at(&[0, 0, 0, 0]), 4.0); // corner sees 4
        assert_eq!(y.at(&[0, 0, 0, 1]), 6.0); // edge sees 6
    }

    #[test]
    fn conv2d_bias_added_per_channel() {
        let x = Tensor::zeros(vec![1, 1, 2, 2]);
        let w = Tensor::zeros(vec![2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![1.5, -2.0], vec![2]);
        let y = conv2d(&x, &w, Some(&b), 1, 0);
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.5);
        assert_eq!(y.at(&[0, 1, 1, 1]), -2.0);
    }

    #[test]
    fn conv2d_multi_channel_sums_inputs() {
        let x = Tensor::ones(vec![1, 3, 2, 2]);
        let w = Tensor::ones(vec![1, 3, 1, 1]);
        let y = conv2d(&x, &w, None, 1, 0);
        assert!(y.data().iter().all(|&v| (v - 3.0).abs() < 1e-6));
    }

    #[test]
    fn conv2d_stride_two_downsamples() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), vec![1, 1, 4, 4]);
        let w = Tensor::from_vec(vec![1.0], vec![1, 1, 1, 1]);
        let y = conv2d(&x, &w, None, 2, 0);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn conv_grad_bias_sums_everything_per_channel() {
        let g = Tensor::ones(vec![2, 3, 2, 2]);
        let gb = conv2d_grad_bias(&g);
        assert_eq!(gb.shape(), &[3]);
        assert!(gb.data().iter().all(|&v| (v - 8.0).abs() < 1e-6));
    }

    #[test]
    fn upsample_and_grad_round_trip() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![1, 1, 2, 2]);
        let up = upsample_nearest2(&x);
        assert_eq!(up.shape(), &[1, 1, 4, 4]);
        assert_eq!(up.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(up.at(&[0, 0, 0, 1]), 1.0);
        assert_eq!(up.at(&[0, 0, 3, 3]), 4.0);
        // Sum over a one-tensor upstream grad = 4 copies of each pixel.
        let g = upsample_nearest2_grad(&Tensor::ones(vec![1, 1, 4, 4]));
        assert!(g.data().iter().all(|&v| v == 4.0));
    }
}
