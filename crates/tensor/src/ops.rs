//! Heavy compute kernels: matrix multiplication, batched matmul, 2-D
//! convolution (forward and the two backward kernels) and nearest-neighbor
//! upsampling. The autograd [`crate::Graph`] dispatches into these.
//!
//! The hot kernels run on [`odt_compute`]: matmul uses the cache-blocked,
//! row-parallel GEMM; bmm fans out over all `batch × m` output rows; conv2d
//! parallelizes over the batch (falling back to a row-parallel GEMM for the
//! single-sample serving path) with a per-thread im2col scratch buffer so no
//! call allocates a fresh `cols` matrix. Every parallel split writes disjoint
//! output rows and preserves each element's ascending-`p` accumulation order,
//! so forward and grad-input results are **bit-identical** to the naive
//! single-threaded kernels (kept below under `#[cfg(test)]` as oracles) for
//! any `ODT_THREADS`. The one true reduction — conv2d's weight gradient over
//! the batch — uses the fixed-split deterministic reduce, so it is
//! bit-identical across pool sizes (though it may differ from the naive
//! serial sum by float associativity).
//!
//! Per-kernel wall-clock latency is recorded into `odt-obs` histograms
//! (`kernel.matmul`, `kernel.bmm`, `kernel.conv2d`, `kernel.conv2d_dx`,
//! `kernel.conv2d_dw`).

use crate::tensor::Tensor;
use odt_compute::gemm as pgemm;
use std::cell::RefCell;
use std::sync::OnceLock;
use std::time::Instant;

/// Fetch (once) a leaked histogram reference so the hot path never touches
/// the registry mutex.
fn khist(
    cell: &'static OnceLock<&'static odt_obs::Histogram>,
    name: &'static str,
) -> &'static odt_obs::Histogram {
    cell.get_or_init(|| odt_obs::histogram(name))
}

static H_MATMUL: OnceLock<&'static odt_obs::Histogram> = OnceLock::new();
static H_BMM: OnceLock<&'static odt_obs::Histogram> = OnceLock::new();
static H_CONV2D: OnceLock<&'static odt_obs::Histogram> = OnceLock::new();
static H_CONV2D_DX: OnceLock<&'static odt_obs::Histogram> = OnceLock::new();
static H_CONV2D_DW: OnceLock<&'static odt_obs::Histogram> = OnceLock::new();

thread_local! {
    /// Per-thread im2col scratch, reused across samples and calls so the
    /// conv kernels never allocate a fresh `cols` matrix per invocation.
    static COLS_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a per-thread scratch slice of exactly `len` floats. The
/// slice's contents are whatever the previous use left behind — callers must
/// fully overwrite (im2col does) or explicitly zero it.
fn with_cols_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    COLS_SCRATCH.with(|c| {
        let mut v = c.borrow_mut();
        if v.len() < len {
            v.resize(len, 0.0);
        }
        f(&mut v[..len])
    })
}

/// `C = A @ B` for 2-D matrices: `[m, k] @ [k, n] -> [m, n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be 2-D, got {:?}", a.shape());
    assert_eq!(b.rank(), 2, "matmul rhs must be 2-D, got {:?}", b.shape());
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(
        k,
        k2,
        "matmul inner dims differ: {:?} @ {:?}",
        a.shape(),
        b.shape()
    );
    let t0 = Instant::now();
    let mut out = Tensor::zeros(vec![m, n]);
    pgemm::gemm(a.data(), b.data(), out.data_mut(), m, k, n);
    khist(&H_MATMUL, "kernel.matmul").record(t0.elapsed());
    out
}

/// Batched matmul: `[b, m, k] @ [b, k, n] -> [b, m, n]`, parallel over all
/// `b × m` output rows.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 3, "bmm lhs must be 3-D");
    assert_eq!(b.rank(), 3, "bmm rhs must be 3-D");
    let (ba, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let (bb, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
    assert_eq!(ba, bb, "bmm batch dims differ");
    assert_eq!(k, k2, "bmm inner dims differ");
    let t0 = Instant::now();
    let mut out = Tensor::zeros(vec![ba, m, n]);
    if out.numel() == 0 {
        return out;
    }
    let ad = a.data();
    let bd = b.data();
    let grain = (4096 / (k * n).max(1)).max(1);
    odt_compute::parallel_rows(out.data_mut(), n, grain, |r0, rows| {
        for (off, orow) in rows.chunks_mut(n).enumerate() {
            let r = r0 + off;
            let (t, i) = (r / m, r % m);
            let arow = &ad[(t * m + i) * k..(t * m + i + 1) * k];
            let bblk = &bd[t * k * n..(t + 1) * k * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &bblk[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    });
    khist(&H_BMM, "kernel.bmm").record(t0.elapsed());
    out
}

/// Output spatial size of a convolution: `(in + 2*pad - kernel) / stride + 1`.
pub fn conv_out_size(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(input + 2 * pad >= kernel, "kernel larger than padded input");
    (input + 2 * pad - kernel) / stride + 1
}

/// Unfold one NCHW sample into an im2col matrix `[c_in*kh*kw, ho*wo]`
/// (row-major into `cols`; every entry is written, so `cols` need not be
/// zeroed beforehand).
#[allow(clippy::too_many_arguments)]
fn im2col(
    sample: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    ho: usize,
    wo: usize,
    cols: &mut [f32],
) {
    debug_assert_eq!(cols.len(), c_in * kh * kw * ho * wo);
    for ci in 0..c_in {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((ci * kh + ky) * kw + kx) * (ho * wo);
                for oy in 0..ho {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        for ox in 0..wo {
                            cols[row + oy * wo + ox] = 0.0;
                        }
                        continue;
                    }
                    let in_row = (ci * h + iy as usize) * w;
                    for ox in 0..wo {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        cols[row + oy * wo + ox] = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            sample[in_row + ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Fold an im2col matrix back into an NCHW sample, accumulating overlaps —
/// the adjoint of [`im2col`].
#[allow(clippy::too_many_arguments)]
fn col2im(
    cols: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    ho: usize,
    wo: usize,
    sample: &mut [f32],
) {
    for ci in 0..c_in {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((ci * kh + ky) * kw + kx) * (ho * wo);
                for oy in 0..ho {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let in_row = (ci * h + iy as usize) * w;
                    for ox in 0..wo {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        sample[in_row + ix as usize] += cols[row + oy * wo + ox];
                    }
                }
            }
        }
    }
}

/// 2-D convolution, NCHW layout, via im2col + GEMM.
///
/// * `x`: `[batch, c_in, h, w]`
/// * `weight`: `[c_out, c_in, kh, kw]`
/// * `bias`: `[c_out]` (optional)
///
/// Returns `[batch, c_out, h_out, w_out]`. Parallel over the batch when
/// there is one (training / batched serving); a single sample instead
/// parallelizes the GEMM over output-channel rows. Both paths are
/// bit-identical to the serial reference for any pool size.
pub fn conv2d(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Tensor {
    assert_eq!(x.rank(), 4, "conv2d input must be NCHW");
    assert_eq!(
        weight.rank(),
        4,
        "conv2d weight must be [c_out, c_in, kh, kw]"
    );
    let (b, c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (c_out, c_in2, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    assert_eq!(c_in, c_in2, "conv2d channel mismatch");
    if let Some(bt) = bias {
        assert_eq!(bt.shape(), &[c_out], "conv2d bias must be [c_out]");
    }
    let ho = conv_out_size(h, kh, stride, pad);
    let wo = conv_out_size(w, kw, stride, pad);
    let k = c_in * kh * kw;
    let n = ho * wo;
    let t0 = Instant::now();
    let mut out = Tensor::zeros(vec![b, c_out, ho, wo]);
    if out.numel() == 0 {
        return out;
    }
    let xd = x.data();
    let wd = weight.data();
    let bias_d: Option<&[f32]> = bias.map(|bt| bt.data());
    let sample_x = c_in * h * w;
    let sample_o = c_out * n;
    if b == 1 {
        // Single sample (the per-query serving path): no batch dimension to
        // split, so parallelize the GEMM over output-channel rows instead.
        let od = out.data_mut();
        with_cols_scratch(k * n, |cols| {
            im2col(
                &xd[..sample_x],
                c_in,
                h,
                w,
                kh,
                kw,
                stride,
                pad,
                ho,
                wo,
                cols,
            );
            pgemm::gemm(wd, cols, od, c_out, k, n);
        });
        if let Some(bv) = bias_d {
            add_bias_rows(od, bv, c_out, n);
        }
    } else {
        odt_compute::parallel_rows(out.data_mut(), sample_o, 1, |b0, o_rows| {
            for (off, o_sample) in o_rows.chunks_mut(sample_o).enumerate() {
                let bi = b0 + off;
                with_cols_scratch(k * n, |cols| {
                    im2col(
                        &xd[bi * sample_x..(bi + 1) * sample_x],
                        c_in,
                        h,
                        w,
                        kh,
                        kw,
                        stride,
                        pad,
                        ho,
                        wo,
                        cols,
                    );
                    pgemm::gemm_rows(wd, cols, o_sample, c_out, k, n);
                });
                if let Some(bv) = bias_d {
                    add_bias_rows(o_sample, bv, c_out, n);
                }
            }
        });
    }
    khist(&H_CONV2D, "kernel.conv2d").record(t0.elapsed());
    out
}

/// Add a per-channel bias to one sample's `[c_out, n]` output block.
fn add_bias_rows(out_sample: &mut [f32], bias: &[f32], c_out: usize, n: usize) {
    for co in 0..c_out {
        let bv = bias[co];
        for o in &mut out_sample[co * n..(co + 1) * n] {
            *o += bv;
        }
    }
}

/// Gradient of conv2d w.r.t. the input (`dL/dx`), given upstream `dL/dy`:
/// `dcols = Wᵀ @ dy`, folded back with col2im. Parallel over the batch
/// (single-sample calls parallelize the transposed GEMM instead);
/// bit-identical to the serial reference for any pool size.
pub fn conv2d_grad_input(
    grad_out: &Tensor,
    weight: &Tensor,
    input_shape: &[usize],
    stride: usize,
    pad: usize,
) -> Tensor {
    let (b, c_in, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let (c_out, _, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    let (ho, wo) = (grad_out.shape()[2], grad_out.shape()[3]);
    let k = c_in * kh * kw;
    let n = ho * wo;
    let t0 = Instant::now();
    let mut gx = Tensor::zeros(input_shape.to_vec());
    if gx.numel() == 0 {
        return gx;
    }
    let gd = grad_out.data();
    let wd = weight.data();
    let sample_x = c_in * h * w;
    if b == 1 {
        let gxd = gx.data_mut();
        with_cols_scratch(k * n, |dcols| {
            dcols.fill(0.0);
            // dcols [k, n] = W^T [k, c_out] @ gout [c_out, n]; W stored [c_out, k].
            pgemm::gemm_at_b(wd, &gd[..c_out * n], dcols, k, c_out, n);
            col2im(dcols, c_in, h, w, kh, kw, stride, pad, ho, wo, gxd);
        });
    } else {
        odt_compute::parallel_rows(gx.data_mut(), sample_x, 1, |b0, gx_rows| {
            for (off, gx_sample) in gx_rows.chunks_mut(sample_x).enumerate() {
                let bi = b0 + off;
                with_cols_scratch(k * n, |dcols| {
                    dcols.fill(0.0);
                    let gout_b = &gd[bi * c_out * n..(bi + 1) * c_out * n];
                    pgemm::gemm_at_b_rows(wd, gout_b, dcols, 0, k, k, c_out, n);
                    col2im(dcols, c_in, h, w, kh, kw, stride, pad, ho, wo, gx_sample);
                });
            }
        });
    }
    khist(&H_CONV2D_DX, "kernel.conv2d_dx").record(t0.elapsed());
    gx
}

/// How many batch samples each chunk of the weight-gradient reduction
/// folds. Fixed (not derived from the thread count) so the reduction's
/// chunk split — and therefore its float summation order — is identical
/// for every `ODT_THREADS`.
const DW_ITEMS_PER_CHUNK: usize = 4;

/// Gradient of conv2d w.r.t. the weight (`dL/dW`), given upstream `dL/dy`:
/// `dW = Σ_b dy_b @ cols_bᵀ`. The batch sum is a fixed-split deterministic
/// reduction: partial `dW` blocks are computed per chunk in parallel and
/// merged in chunk order, so the result is bit-identical across pool sizes
/// (it may differ from the naive serial sum by float associativity).
pub fn conv2d_grad_weight(
    grad_out: &Tensor,
    x: &Tensor,
    weight_shape: &[usize],
    stride: usize,
    pad: usize,
) -> Tensor {
    let (b, c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (c_out, _, kh, kw) = (
        weight_shape[0],
        weight_shape[1],
        weight_shape[2],
        weight_shape[3],
    );
    let (ho, wo) = (grad_out.shape()[2], grad_out.shape()[3]);
    let k = c_in * kh * kw;
    let n = ho * wo;
    let t0 = Instant::now();
    let mut gw = Tensor::zeros(weight_shape.to_vec());
    let w_len = gw.numel();
    if w_len == 0 || b == 0 {
        return gw;
    }
    let gd = grad_out.data();
    let xd = x.data();
    let sample_x = c_in * h * w;
    let partials = odt_compute::parallel_reduce_deterministic(
        b,
        DW_ITEMS_PER_CHUNK,
        || vec![0.0f32; w_len],
        |acc, bi| {
            with_cols_scratch(k * n, |cols| {
                im2col(
                    &xd[bi * sample_x..(bi + 1) * sample_x],
                    c_in,
                    h,
                    w,
                    kh,
                    kw,
                    stride,
                    pad,
                    ho,
                    wo,
                    cols,
                );
                let gout_b = &gd[bi * c_out * n..(bi + 1) * c_out * n];
                // dW [c_out, k] += gout [c_out, n] @ cols^T [n, k]; cols stored [k, n].
                pgemm::gemm_a_bt_rows(gout_b, cols, acc, c_out, n, k);
            });
        },
    );
    let gwd = gw.data_mut();
    for part in &partials {
        for (g, &p) in gwd.iter_mut().zip(part) {
            *g += p;
        }
    }
    khist(&H_CONV2D_DW, "kernel.conv2d_dw").record(t0.elapsed());
    gw
}

/// Gradient of conv2d w.r.t. the bias: sum of `dL/dy` over batch and space.
pub fn conv2d_grad_bias(grad_out: &Tensor) -> Tensor {
    let (b, c_out, ho, wo) = (
        grad_out.shape()[0],
        grad_out.shape()[1],
        grad_out.shape()[2],
        grad_out.shape()[3],
    );
    let mut gb = Tensor::zeros(vec![c_out]);
    let gd = grad_out.data();
    let gbd = gb.data_mut();
    for bi in 0..b {
        for co in 0..c_out {
            let base = ((bi * c_out + co) * ho) * wo;
            gbd[co] += gd[base..base + ho * wo].iter().sum::<f32>();
        }
    }
    gb
}

/// Nearest-neighbor 2× spatial upsampling, NCHW: `[b, c, h, w] -> [b, c, 2h, 2w]`.
pub fn upsample_nearest2(x: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 4, "upsample input must be NCHW");
    let (b, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let mut out = Tensor::zeros(vec![b, c, 2 * h, 2 * w]);
    let xd = x.data();
    let od = out.data_mut();
    for bc in 0..b * c {
        for y in 0..h {
            for xx in 0..w {
                let v = xd[(bc * h + y) * w + xx];
                let base = bc * 4 * h * w;
                od[base + (2 * y) * 2 * w + 2 * xx] = v;
                od[base + (2 * y) * 2 * w + 2 * xx + 1] = v;
                od[base + (2 * y + 1) * 2 * w + 2 * xx] = v;
                od[base + (2 * y + 1) * 2 * w + 2 * xx + 1] = v;
            }
        }
    }
    out
}

/// Gradient of [`upsample_nearest2`]: each input pixel receives the sum of
/// its four output copies.
pub fn upsample_nearest2_grad(grad_out: &Tensor) -> Tensor {
    let (b, c, h2, w2) = (
        grad_out.shape()[0],
        grad_out.shape()[1],
        grad_out.shape()[2],
        grad_out.shape()[3],
    );
    assert!(
        h2 % 2 == 0 && w2 % 2 == 0,
        "upsample grad expects even dims"
    );
    let (h, w) = (h2 / 2, w2 / 2);
    let mut gx = Tensor::zeros(vec![b, c, h, w]);
    let gd = grad_out.data();
    let gxd = gx.data_mut();
    for bc in 0..b * c {
        for y in 0..h {
            for xx in 0..w {
                let base = bc * h2 * w2;
                let s = gd[base + (2 * y) * w2 + 2 * xx]
                    + gd[base + (2 * y) * w2 + 2 * xx + 1]
                    + gd[base + (2 * y + 1) * w2 + 2 * xx]
                    + gd[base + (2 * y + 1) * w2 + 2 * xx + 1];
                gxd[(bc * h + y) * w + xx] = s;
            }
        }
    }
    gx
}

/// Naive single-threaded reference kernels, kept as test oracles for the
/// parallel implementations above (also exercised by the property-based
/// equivalence suite in `tests/parallel_equivalence.rs`, which carries its
/// own copies since integration tests cannot see `#[cfg(test)]` items).
#[cfg(test)]
pub(crate) mod reference {
    use super::*;

    /// `C[m,n] += A[m,k] @ B[k,n]` on raw slices (ikj loop order).
    pub fn gemm_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let crow = &mut c[i * n..(i + 1) * n];
                for (o, &bv) in crow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }

    /// `C[m,n] += A^T[k,m] @ B[k,n]` where `A` is stored `[k, m]`.
    pub fn gemm_at_b_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let crow = &mut c[i * n..(i + 1) * n];
                for (o, &bv) in crow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }

    /// `C[m,n] += A[m,k] @ B^T[n,k]` where `B` is stored `[n, k]`.
    pub fn gemm_a_bt_acc(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                c[i * n + j] += acc;
            }
        }
    }

    /// The pre-refactor serial conv2d forward (per-sample im2col + gemm).
    pub fn conv2d_naive(
        x: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (b, c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (c_out, _, kh, kw) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        let ho = conv_out_size(h, kh, stride, pad);
        let wo = conv_out_size(w, kw, stride, pad);
        let k = c_in * kh * kw;
        let n = ho * wo;
        let mut out = Tensor::zeros(vec![b, c_out, ho, wo]);
        let xd = x.data();
        let wd = weight.data();
        let od = out.data_mut();
        let mut cols = vec![0.0f32; k * n];
        for bi in 0..b {
            im2col(
                &xd[bi * c_in * h * w..(bi + 1) * c_in * h * w],
                c_in,
                h,
                w,
                kh,
                kw,
                stride,
                pad,
                ho,
                wo,
                &mut cols,
            );
            let out_b = &mut od[bi * c_out * n..(bi + 1) * c_out * n];
            gemm_acc(wd, &cols, out_b, c_out, k, n);
            if let Some(bt) = bias {
                for co in 0..c_out {
                    let bv = bt.data()[co];
                    for o in &mut out_b[co * n..(co + 1) * n] {
                        *o += bv;
                    }
                }
            }
        }
        out
    }

    /// The pre-refactor serial grad-input kernel.
    pub fn conv2d_grad_input_naive(
        grad_out: &Tensor,
        weight: &Tensor,
        input_shape: &[usize],
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (b, c_in, h, w) = (
            input_shape[0],
            input_shape[1],
            input_shape[2],
            input_shape[3],
        );
        let (c_out, _, kh, kw) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        let (ho, wo) = (grad_out.shape()[2], grad_out.shape()[3]);
        let k = c_in * kh * kw;
        let n = ho * wo;
        let mut gx = Tensor::zeros(input_shape.to_vec());
        let gd = grad_out.data();
        let wd = weight.data();
        let gxd = gx.data_mut();
        let mut dcols = vec![0.0f32; k * n];
        for bi in 0..b {
            dcols.iter_mut().for_each(|v| *v = 0.0);
            let gout_b = &gd[bi * c_out * n..(bi + 1) * c_out * n];
            gemm_at_b_acc(wd, gout_b, &mut dcols, k, c_out, n);
            col2im(
                &dcols,
                c_in,
                h,
                w,
                kh,
                kw,
                stride,
                pad,
                ho,
                wo,
                &mut gxd[bi * c_in * h * w..(bi + 1) * c_in * h * w],
            );
        }
        gx
    }

    /// The pre-refactor serial grad-weight kernel.
    pub fn conv2d_grad_weight_naive(
        grad_out: &Tensor,
        x: &Tensor,
        weight_shape: &[usize],
        stride: usize,
        pad: usize,
    ) -> Tensor {
        let (b, c_in, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (c_out, _, kh, kw) = (
            weight_shape[0],
            weight_shape[1],
            weight_shape[2],
            weight_shape[3],
        );
        let (ho, wo) = (grad_out.shape()[2], grad_out.shape()[3]);
        let k = c_in * kh * kw;
        let n = ho * wo;
        let mut gw = Tensor::zeros(weight_shape.to_vec());
        let gd = grad_out.data();
        let xd = x.data();
        let gwd = gw.data_mut();
        let mut cols = vec![0.0f32; k * n];
        for bi in 0..b {
            im2col(
                &xd[bi * c_in * h * w..(bi + 1) * c_in * h * w],
                c_in,
                h,
                w,
                kh,
                kw,
                stride,
                pad,
                ho,
                wo,
                &mut cols,
            );
            let gout_b = &gd[bi * c_out * n..(bi + 1) * c_out * n];
            gemm_a_bt_acc(gout_b, &cols, gwd, c_out, n, k);
        }
        gw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: u32) -> Vec<f32> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 17;
                s ^= s << 5;
                (s as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], vec![2, 2]);
        assert_eq!(matmul(&a, &i).data(), a.data());
        assert_eq!(matmul(&i, &a).data(), a.data());
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], vec![3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), vec![2, 2, 3]);
        let b = Tensor::from_vec((0..12).map(|v| (v as f32) * 0.5).collect(), vec![2, 3, 2]);
        let c = bmm(&a, &b);
        for t in 0..2 {
            let at = a.slice(0, t, t + 1).reshape(vec![2, 3]);
            let bt = b.slice(0, t, t + 1).reshape(vec![3, 2]);
            let ct = matmul(&at, &bt);
            assert_eq!(c.slice(0, t, t + 1).reshape(vec![2, 2]).data(), ct.data());
        }
    }

    #[test]
    fn bmm_bit_identical_to_reference_gemm_per_batch() {
        let (ba, m, k, n) = (3, 9, 17, 7);
        let a = Tensor::from_vec(pseudo(ba * m * k, 21), vec![ba, m, k]);
        let b = Tensor::from_vec(pseudo(ba * k * n, 23), vec![ba, k, n]);
        let c = bmm(&a, &b);
        let mut want = vec![0.0f32; ba * m * n];
        for t in 0..ba {
            reference::gemm_acc(
                &a.data()[t * m * k..(t + 1) * m * k],
                &b.data()[t * k * n..(t + 1) * k * n],
                &mut want[t * m * n..(t + 1) * m * n],
                m,
                k,
                n,
            );
        }
        assert_eq!(c.data(), &want[..]);
    }

    #[test]
    fn conv_out_sizes() {
        assert_eq!(conv_out_size(5, 3, 1, 1), 5); // same padding
        assert_eq!(conv_out_size(5, 3, 1, 0), 3); // valid
        assert_eq!(conv_out_size(6, 4, 2, 1), 3); // strided downsample
    }

    #[test]
    fn conv2d_identity_kernel() {
        // A 1x1 kernel of weight 1 is the identity map.
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), vec![1, 1, 3, 3]);
        let w = Tensor::from_vec(vec![1.0], vec![1, 1, 1, 1]);
        let y = conv2d(&x, &w, None, 1, 0);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv2d_box_filter_with_padding() {
        // 3x3 all-ones kernel with pad 1: center pixel sums whole 3x3 input.
        let x = Tensor::ones(vec![1, 1, 3, 3]);
        let w = Tensor::ones(vec![1, 1, 3, 3]);
        let y = conv2d(&x, &w, None, 1, 1);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert_eq!(y.at(&[0, 0, 1, 1]), 9.0); // center sees all 9
        assert_eq!(y.at(&[0, 0, 0, 0]), 4.0); // corner sees 4
        assert_eq!(y.at(&[0, 0, 0, 1]), 6.0); // edge sees 6
    }

    #[test]
    fn conv2d_bias_added_per_channel() {
        let x = Tensor::zeros(vec![1, 1, 2, 2]);
        let w = Tensor::zeros(vec![2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![1.5, -2.0], vec![2]);
        let y = conv2d(&x, &w, Some(&b), 1, 0);
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.5);
        assert_eq!(y.at(&[0, 1, 1, 1]), -2.0);
    }

    #[test]
    fn conv2d_multi_channel_sums_inputs() {
        let x = Tensor::ones(vec![1, 3, 2, 2]);
        let w = Tensor::ones(vec![1, 3, 1, 1]);
        let y = conv2d(&x, &w, None, 1, 0);
        assert!(y.data().iter().all(|&v| (v - 3.0).abs() < 1e-6));
    }

    #[test]
    fn conv2d_stride_two_downsamples() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), vec![1, 1, 4, 4]);
        let w = Tensor::from_vec(vec![1.0], vec![1, 1, 1, 1]);
        let y = conv2d(&x, &w, None, 2, 0);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn conv2d_batched_bit_identical_to_naive() {
        let (b, c_in, h, w) = (5, 3, 7, 6);
        let (c_out, kh, kw, stride, pad) = (4, 3, 3, 1, 1);
        let x = Tensor::from_vec(pseudo(b * c_in * h * w, 31), vec![b, c_in, h, w]);
        let wt = Tensor::from_vec(
            pseudo(c_out * c_in * kh * kw, 33),
            vec![c_out, c_in, kh, kw],
        );
        let bias = Tensor::from_vec(pseudo(c_out, 35), vec![c_out]);
        let got = conv2d(&x, &wt, Some(&bias), stride, pad);
        let want = reference::conv2d_naive(&x, &wt, Some(&bias), stride, pad);
        assert_eq!(got.data(), want.data());
        assert_eq!(got.shape(), want.shape());
    }

    #[test]
    fn conv2d_grad_input_bit_identical_to_naive() {
        let (b, c_in, h, w) = (3, 2, 5, 5);
        let (c_out, kh, kw, stride, pad) = (3, 3, 3, 2, 1);
        let ho = conv_out_size(h, kh, stride, pad);
        let wo = conv_out_size(w, kw, stride, pad);
        let g = Tensor::from_vec(pseudo(b * c_out * ho * wo, 41), vec![b, c_out, ho, wo]);
        let wt = Tensor::from_vec(
            pseudo(c_out * c_in * kh * kw, 43),
            vec![c_out, c_in, kh, kw],
        );
        let shape = [b, c_in, h, w];
        let got = conv2d_grad_input(&g, &wt, &shape, stride, pad);
        let want = reference::conv2d_grad_input_naive(&g, &wt, &shape, stride, pad);
        assert_eq!(got.data(), want.data());
    }

    #[test]
    fn conv2d_grad_weight_close_to_naive_and_deterministic() {
        // The batch reduction is fixed-split: bit-identical across pool
        // sizes, but allowed to differ from the naive serial sum by float
        // associativity — hence tolerance vs naive, equality vs sequential.
        let (b, c_in, h, w) = (6, 2, 5, 4);
        let (c_out, kh, kw, stride, pad) = (3, 3, 3, 1, 1);
        let ho = conv_out_size(h, kh, stride, pad);
        let wo = conv_out_size(w, kw, stride, pad);
        let x = Tensor::from_vec(pseudo(b * c_in * h * w, 51), vec![b, c_in, h, w]);
        let g = Tensor::from_vec(pseudo(b * c_out * ho * wo, 53), vec![b, c_out, ho, wo]);
        let shape = [c_out, c_in, kh, kw];
        let got = conv2d_grad_weight(&g, &x, &shape, stride, pad);
        let want = reference::conv2d_grad_weight_naive(&g, &x, &shape, stride, pad);
        for (a, e) in got.data().iter().zip(want.data()) {
            assert!((a - e).abs() <= 1e-5, "{a} vs {e}");
        }
        let mut seq = Tensor::zeros(vec![1]);
        odt_compute::run_sequential(|| {
            seq = conv2d_grad_weight(&g, &x, &shape, stride, pad);
        });
        assert_eq!(got.data(), seq.data());
    }

    #[test]
    fn conv_grad_bias_sums_everything_per_channel() {
        let g = Tensor::ones(vec![2, 3, 2, 2]);
        let gb = conv2d_grad_bias(&g);
        assert_eq!(gb.shape(), &[3]);
        assert!(gb.data().iter().all(|&v| (v - 8.0).abs() < 1e-6));
    }

    #[test]
    fn upsample_and_grad_round_trip() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![1, 1, 2, 2]);
        let up = upsample_nearest2(&x);
        assert_eq!(up.shape(), &[1, 1, 4, 4]);
        assert_eq!(up.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(up.at(&[0, 0, 0, 1]), 1.0);
        assert_eq!(up.at(&[0, 0, 3, 3]), 4.0);
        // Sum over a one-tensor upstream grad = 4 copies of each pixel.
        let g = upsample_nearest2_grad(&Tensor::ones(vec![1, 1, 4, 4]));
        assert!(g.data().iter().all(|&v| v == 4.0));
    }
}
