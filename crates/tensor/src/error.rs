use std::fmt;

/// Errors raised by tensor construction and shape-sensitive operations.
///
/// Most tensor ops in this crate panic on shape mismatch (a programming
/// error in model code), but constructors and data-loading paths return
/// `Result<_, TensorError>` so callers can surface malformed inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements does not match the product of the shape dims.
    LengthMismatch {
        /// Number of data elements provided.
        len: usize,
        /// Number of elements the shape implies.
        expected: usize,
    },
    /// Two shapes cannot be broadcast together.
    BroadcastMismatch {
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// A reshape changed the element count.
    ReshapeMismatch {
        /// Original shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { len, expected } => {
                write!(
                    f,
                    "data length {len} does not match shape (expected {expected})"
                )
            }
            TensorError::BroadcastMismatch { lhs, rhs } => {
                write!(f, "shapes {lhs:?} and {rhs:?} cannot be broadcast together")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(
                    f,
                    "cannot reshape {from:?} into {to:?}: element counts differ"
                )
            }
        }
    }
}

impl std::error::Error for TensorError {}
