//! Seedable random tensor initializers.
//!
//! All model initialization in the DOT pipeline flows through these so that
//! experiments are reproducible run-to-run from a single seed.

use crate::tensor::Tensor;
use rand::Rng;

/// Uniform values in `[lo, hi)`.
pub fn uniform(rng: &mut impl Rng, shape: Vec<usize>, lo: f32, hi: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape)
}

/// Standard-normal values scaled by `std` (Box–Muller; avoids a
/// distribution-crate dependency).
pub fn normal(rng: &mut impl Rng, shape: Vec<usize>, std: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let mut data = vec![0.0f32; n];
    normal_into(rng, &mut data, std);
    Tensor::from_vec(data, shape)
}

/// Fill `out` with standard-normal values scaled by `std`, in place. Draws
/// the same RNG sequence as [`normal`] for the same length, so callers that
/// reuse a scratch buffer (e.g. the DDPM sampling loop) stay bit-identical
/// to the allocating path.
pub fn normal_into(rng: &mut impl Rng, out: &mut [f32], std: f32) {
    let n = out.len();
    let mut i = 0;
    while i < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        out[i] = r * theta.cos() * std;
        i += 1;
        if i < n {
            out[i] = r * theta.sin() * std;
            i += 1;
        }
    }
}

/// Xavier/Glorot uniform initialization for a weight of shape
/// `[fan_out, fan_in]` (or any shape whose first two dims play those roles).
pub fn xavier_uniform(rng: &mut impl Rng, shape: Vec<usize>) -> Tensor {
    let (fan_in, fan_out) = fans(&shape);
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, shape, -bound, bound)
}

/// Kaiming/He normal initialization (for ReLU-family activations).
pub fn kaiming_normal(rng: &mut impl Rng, shape: Vec<usize>) -> Tensor {
    let (fan_in, _) = fans(&shape);
    let std = (2.0 / fan_in as f32).sqrt();
    normal(rng, shape, std)
}

/// Fan-in / fan-out of a weight shape. For linear `[out, in]`; for conv
/// `[c_out, c_in, kh, kw]` the kernel area multiplies both fans.
fn fans(shape: &[usize]) -> (usize, usize) {
    match shape.len() {
        0 => (1, 1),
        1 => (shape[0], shape[0]),
        2 => (shape[1], shape[0]),
        _ => {
            let receptive: usize = shape[2..].iter().product();
            (shape[1] * receptive, shape[0] * receptive)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&mut rng, vec![1000], -0.5, 0.5);
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = normal(&mut rng, vec![20000], 2.0);
        let mean = t.mean();
        let var: f32 = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.numel() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = normal(&mut StdRng::seed_from_u64(7), vec![16], 1.0);
        let b = normal(&mut StdRng::seed_from_u64(7), vec![16], 1.0);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn normal_into_matches_allocating_normal() {
        // Odd length exercises the unpaired final Box–Muller draw.
        let a = normal(&mut StdRng::seed_from_u64(11), vec![17], 0.7);
        let mut buf = vec![9.0f32; 17];
        normal_into(&mut StdRng::seed_from_u64(11), &mut buf, 0.7);
        assert_eq!(a.data(), &buf[..]);
    }

    #[test]
    fn xavier_bound_scales_with_fans() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = xavier_uniform(&mut rng, vec![4, 100]);
        let bound = (6.0f32 / 104.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn conv_fans() {
        assert_eq!(super::fans(&[8, 4, 3, 3]), (36, 72));
        assert_eq!(super::fans(&[10, 20]), (20, 10));
    }
}
