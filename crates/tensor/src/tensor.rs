//! The dense `f32` [`Tensor`] type and its forward math.
//!
//! Tensors are row-major and always contiguous; views are materialized.
//! This keeps the autograd tape simple (every node owns its value) at the
//! cost of some copies, which is acceptable at the model sizes the DOT
//! pipeline uses (images of `L_G × L_G ≤ 30 × 30`, embeddings ≤ 256).

use crate::shape::{broadcast_shapes, broadcast_strides, next_index, numel, strides_for};
use crate::TensorError;
use serde::{Deserialize, Serialize};

/// A dense, row-major, contiguous `f32` tensor.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        let ellipsis = if self.data.len() > 8 { ", …" } else { "" };
        write!(f, "Tensor{:?} {preview:?}{ellipsis}", self.shape)
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = numel(&shape);
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor of ones with the given shape.
    pub fn ones(shape: Vec<usize>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n = numel(&shape);
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// A rank-0-like scalar stored as shape `[1]`.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: vec![1],
            data: vec![value],
        }
    }

    /// Build a tensor from raw data; errors if `data.len()` disagrees with
    /// the shape.
    pub fn try_from_vec(data: Vec<f32>, shape: Vec<usize>) -> Result<Self, TensorError> {
        let expected = numel(&shape);
        if data.len() != expected {
            return Err(TensorError::LengthMismatch {
                len: data.len(),
                expected,
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Build a tensor from raw data; panics on length mismatch.
    pub fn from_vec(data: Vec<f32>, shape: Vec<usize>) -> Self {
        Self::try_from_vec(data, shape).expect("tensor data length must match shape")
    }

    /// `n` evenly spaced values from `start` to `end` inclusive, shape `[n]`.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        assert!(n >= 2, "linspace needs at least two points");
        let step = (end - start) / (n as f32 - 1.0);
        let data = (0..n).map(|i| start + step * i as f32).collect();
        Tensor {
            shape: vec![n],
            data,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape (dimension sizes, outermost first).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Raw data slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the raw data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        debug_assert_eq!(idx.len(), self.shape.len());
        let strides = strides_for(&self.shape);
        let flat: usize = idx.iter().zip(&strides).map(|(i, s)| i * s).sum();
        self.data[flat]
    }

    /// Set element at a multi-dimensional index.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        debug_assert_eq!(idx.len(), self.shape.len());
        let strides = strides_for(&self.shape);
        let flat: usize = idx.iter().zip(&strides).map(|(i, s)| i * s).sum();
        self.data[flat] = value;
    }

    /// `true` if every element is finite (no NaN/inf).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Number of non-finite (NaN/inf) elements.
    pub fn count_non_finite(&self) -> usize {
        self.data.iter().filter(|v| !v.is_finite()).count()
    }

    /// Flat index and value of the first non-finite element, if any —
    /// diagnostic companion to [`Tensor::is_finite`] for error messages.
    pub fn first_non_finite(&self) -> Option<(usize, f32)> {
        self.data
            .iter()
            .enumerate()
            .find(|(_, v)| !v.is_finite())
            .map(|(i, &v)| (i, v))
    }

    /// Clamp every element into `[lo, hi]` (NaN maps to `lo`).
    pub fn clamp(&self, lo: f32, hi: f32) -> Self {
        self.map(|v| if v.is_nan() { lo } else { v.clamp(lo, hi) })
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reshape without copying semantics change; element count must match.
    pub fn reshape(&self, shape: Vec<usize>) -> Self {
        assert_eq!(
            numel(&shape),
            self.data.len(),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Permute dimensions; `perm` must be a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.rank(), "permutation rank mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let out_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let in_strides = strides_for(&self.shape);
        let mut out = Tensor::zeros(out_shape.clone());
        if out.data.is_empty() {
            return out;
        }
        let mut idx = vec![0usize; out_shape.len()];
        let mut flat = 0usize;
        loop {
            let src: usize = idx
                .iter()
                .enumerate()
                .map(|(d, &i)| i * in_strides[perm[d]])
                .sum();
            out.data[flat] = self.data[src];
            flat += 1;
            if !next_index(&mut idx, &out_shape) {
                break;
            }
        }
        out
    }

    /// Transpose a 2-D tensor.
    pub fn transpose2(&self) -> Self {
        assert_eq!(self.rank(), 2, "transpose2 requires a matrix");
        self.permute(&[1, 0])
    }

    /// Concatenate tensors along `axis`; all other dims must match.
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Self {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let rank = tensors[0].rank();
        assert!(axis < rank, "concat axis out of range");
        for t in tensors {
            assert_eq!(t.rank(), rank, "concat rank mismatch");
            for d in 0..rank {
                if d != axis {
                    assert_eq!(t.shape[d], tensors[0].shape[d], "concat dim {d} mismatch");
                }
            }
        }
        let mut out_shape = tensors[0].shape.clone();
        out_shape[axis] = tensors.iter().map(|t| t.shape[axis]).sum();

        // Treat each tensor as (outer, axis_len, inner) blocks.
        let outer: usize = out_shape[..axis].iter().product();
        let inner: usize = out_shape[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(numel(&out_shape));
        for o in 0..outer {
            for t in tensors {
                let a = t.shape[axis];
                let start = o * a * inner;
                data.extend_from_slice(&t.data[start..start + a * inner]);
            }
        }
        Tensor {
            shape: out_shape,
            data,
        }
    }

    /// Slice `[start, end)` along `axis`.
    pub fn slice(&self, axis: usize, start: usize, end: usize) -> Self {
        assert!(axis < self.rank(), "slice axis out of range");
        assert!(
            start <= end && end <= self.shape[axis],
            "slice range out of bounds"
        );
        let mut out_shape = self.shape.clone();
        out_shape[axis] = end - start;
        let outer: usize = self.shape[..axis].iter().product();
        let inner: usize = self.shape[axis + 1..].iter().product();
        let a = self.shape[axis];
        let mut data = Vec::with_capacity(numel(&out_shape));
        for o in 0..outer {
            let base = o * a * inner;
            data.extend_from_slice(&self.data[base + start * inner..base + end * inner]);
        }
        Tensor {
            shape: out_shape,
            data,
        }
    }

    /// Select rows (axis 0) by index, producing shape `[indices.len(), rest…]`.
    /// This is the embedding-lookup / masked-gather primitive.
    pub fn index_select0(&self, indices: &[usize]) -> Self {
        assert!(self.rank() >= 1, "index_select0 needs rank >= 1");
        let row = self.data.len() / self.shape[0].max(1);
        let mut out_shape = self.shape.clone();
        out_shape[0] = indices.len();
        let mut data = Vec::with_capacity(indices.len() * row);
        for &i in indices {
            assert!(
                i < self.shape[0],
                "index {i} out of bounds for dim {}",
                self.shape[0]
            );
            data.extend_from_slice(&self.data[i * row..(i + 1) * row]);
        }
        Tensor {
            shape: out_shape,
            data,
        }
    }

    /// Scatter-add rows into a zero tensor of `dim0` rows: the reverse of
    /// [`Tensor::index_select0`]. Duplicate indices accumulate.
    pub fn index_add0(&self, indices: &[usize], dim0: usize) -> Self {
        assert_eq!(
            self.shape[0],
            indices.len(),
            "index_add0 row count mismatch"
        );
        let row = if indices.is_empty() {
            0
        } else {
            self.data.len() / indices.len()
        };
        let mut out_shape = self.shape.clone();
        out_shape[0] = dim0;
        let mut out = Tensor::zeros(out_shape);
        for (r, &i) in indices.iter().enumerate() {
            assert!(i < dim0, "index {i} out of bounds for dim {dim0}");
            for c in 0..row {
                out.data[i * row + c] += self.data[r * row + c];
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Elementwise / broadcasting
    // ------------------------------------------------------------------

    /// Apply `f` elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Broadcasting binary op: `f(self, rhs)` elementwise over the broadcast
    /// shape. Panics on incompatible shapes.
    pub fn zip_broadcast(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        if self.shape == rhs.shape {
            // Fast path: same shape, no stride juggling.
            let data = self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect();
            return Tensor {
                shape: self.shape.clone(),
                data,
            };
        }
        let out_shape = broadcast_shapes(&self.shape, &rhs.shape).unwrap_or_else(|e| panic!("{e}"));
        let ls = broadcast_strides(&self.shape, &out_shape);
        let rs = broadcast_strides(&rhs.shape, &out_shape);
        let mut out = Tensor::zeros(out_shape.clone());
        if out.data.is_empty() {
            return out;
        }
        let mut idx = vec![0usize; out_shape.len()];
        let mut flat = 0usize;
        loop {
            let li: usize = idx.iter().zip(&ls).map(|(i, s)| i * s).sum();
            let ri: usize = idx.iter().zip(&rs).map(|(i, s)| i * s).sum();
            out.data[flat] = f(self.data[li], rhs.data[ri]);
            flat += 1;
            if !next_index(&mut idx, &out_shape) {
                break;
            }
        }
        out
    }

    /// Elementwise (broadcasting) addition.
    pub fn add(&self, rhs: &Tensor) -> Self {
        self.zip_broadcast(rhs, |a, b| a + b)
    }

    /// Elementwise (broadcasting) subtraction.
    pub fn sub(&self, rhs: &Tensor) -> Self {
        self.zip_broadcast(rhs, |a, b| a - b)
    }

    /// Elementwise (broadcasting) multiplication.
    pub fn mul(&self, rhs: &Tensor) -> Self {
        self.zip_broadcast(rhs, |a, b| a * b)
    }

    /// Elementwise (broadcasting) division.
    pub fn div(&self, rhs: &Tensor) -> Self {
        self.zip_broadcast(rhs, |a, b| a / b)
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|v| v * s)
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|v| v + s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Self {
        self.map(|v| -v)
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element; `None` when empty.
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Minimum element; `None` when empty.
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::min)
    }

    /// Sum along `axis`, keeping the axis as size 1 when `keepdim`.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Self {
        assert!(axis < self.rank(), "sum_axis out of range");
        let outer: usize = self.shape[..axis].iter().product();
        let a = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out_shape = self.shape.clone();
        if keepdim {
            out_shape[axis] = 1;
        } else {
            out_shape.remove(axis);
        }
        let mut data = vec![0.0; outer * inner];
        for o in 0..outer {
            for k in 0..a {
                let base = (o * a + k) * inner;
                for i in 0..inner {
                    data[o * inner + i] += self.data[base + i];
                }
            }
        }
        Tensor {
            shape: out_shape,
            data,
        }
    }

    /// Mean along `axis`, keeping the axis as size 1 when `keepdim`.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Self {
        let n = self.shape[axis].max(1) as f32;
        self.sum_axis(axis, keepdim).scale(1.0 / n)
    }

    /// Sum-reduce this tensor down to `target` shape (inverse of a broadcast):
    /// used to push gradients back through broadcasting binary ops.
    pub fn reduce_to_shape(&self, target: &[usize]) -> Self {
        if self.shape == target {
            return self.clone();
        }
        let mut t = self.clone();
        // Remove extra leading dims by summing them away.
        while t.rank() > target.len() {
            t = t.sum_axis(0, false);
        }
        // Sum over dims where target is 1 but t is larger.
        for d in 0..target.len() {
            if target[d] == 1 && t.shape[d] != 1 {
                t = t.sum_axis(d, true);
            }
        }
        assert_eq!(t.shape, target, "reduce_to_shape produced wrong shape");
        t
    }

    /// Softmax along the last dimension (numerically stabilized). Rows are
    /// independent, so the loop is parallelized over disjoint row ranges —
    /// bit-identical for any pool size.
    pub fn softmax_lastdim(&self) -> Self {
        let inner = *self.shape.last().expect("softmax needs rank >= 1");
        let mut out = self.clone();
        if inner == 0 || self.data.is_empty() {
            return out;
        }
        let grain = (4096 / inner).max(1);
        odt_compute::parallel_rows(&mut out.data, inner, grain, |_, rows| {
            for row in rows.chunks_mut(inner) {
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for v in row.iter_mut() {
                    *v = (*v - m).exp();
                    sum += *v;
                }
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        });
        out
    }

    /// Index of the maximum along the last dimension; shape loses that dim.
    pub fn argmax_lastdim(&self) -> Vec<usize> {
        let inner = *self.shape.last().expect("argmax needs rank >= 1");
        let outer = self.data.len() / inner.max(1);
        (0..outer)
            .map(|o| {
                let row = &self.data[o * inner..(o + 1) * inner];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(vec![2, 3]);
        assert_eq!(z.shape(), &[2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));

        let f = Tensor::full(vec![2], 4.5);
        assert_eq!(f.data(), &[4.5, 4.5]);

        assert!(Tensor::try_from_vec(vec![1.0, 2.0], vec![3]).is_err());
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(0.0, 1.0, 5);
        assert_eq!(t.data(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(vec![2, 3]);
        t.set(&[1, 2], 7.0);
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.data()[5], 7.0);
    }

    #[test]
    fn broadcast_add_row() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let b = Tensor::from_vec(vec![10.0, 20.0, 30.0], vec![3]);
        let c = a.add(&b);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn broadcast_col_times_row() {
        let col = Tensor::from_vec(vec![1.0, 2.0], vec![2, 1]);
        let row = Tensor::from_vec(vec![3.0, 4.0, 5.0], vec![1, 3]);
        let m = col.mul(&row);
        assert_eq!(m.shape(), &[2, 3]);
        assert_eq!(m.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "broadcast")]
    fn broadcast_mismatch_panics() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 4]);
        let _ = a.add(&b);
    }

    #[test]
    fn permute_and_transpose() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        let tt = t.transpose2();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);

        let t3 = Tensor::from_vec((0..24).map(|v| v as f32).collect(), vec![2, 3, 4]);
        let p = t3.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), t3.at(&[0, 2, 1]));
    }

    #[test]
    fn concat_axis0_and_1() {
        let a = Tensor::from_vec(vec![1.0, 2.0], vec![1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], vec![1, 2]);
        let c0 = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c0.shape(), &[2, 2]);
        assert_eq!(c0.data(), &[1.0, 2.0, 3.0, 4.0]);
        let c1 = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c1.shape(), &[1, 4]);
        assert_eq!(c1.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn slice_middle_axis() {
        let t = Tensor::from_vec((0..24).map(|v| v as f32).collect(), vec![2, 3, 4]);
        let s = t.slice(1, 1, 3);
        assert_eq!(s.shape(), &[2, 2, 4]);
        assert_eq!(s.at(&[0, 0, 0]), t.at(&[0, 1, 0]));
        assert_eq!(s.at(&[1, 1, 3]), t.at(&[1, 2, 3]));
    }

    #[test]
    fn index_select_and_add_are_adjoint_shapes() {
        let t = Tensor::from_vec((0..12).map(|v| v as f32).collect(), vec![4, 3]);
        let sel = t.index_select0(&[3, 1, 1]);
        assert_eq!(sel.shape(), &[3, 3]);
        assert_eq!(sel.data()[0..3], [9.0, 10.0, 11.0]);
        let back = sel.index_add0(&[3, 1, 1], 4);
        assert_eq!(back.shape(), &[4, 3]);
        // Row 1 accumulated twice.
        assert_eq!(back.at(&[1, 0]), 6.0);
        assert_eq!(back.at(&[0, 0]), 0.0);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![2, 3]);
        assert_eq!(t.sum(), 21.0);
        assert!((t.mean() - 3.5).abs() < 1e-6);
        let s0 = t.sum_axis(0, false);
        assert_eq!(s0.shape(), &[3]);
        assert_eq!(s0.data(), &[5.0, 7.0, 9.0]);
        let s1 = t.sum_axis(1, true);
        assert_eq!(s1.shape(), &[2, 1]);
        assert_eq!(s1.data(), &[6.0, 15.0]);
        let m1 = t.mean_axis(1, false);
        assert_eq!(m1.data(), &[2.0, 5.0]);
    }

    #[test]
    fn reduce_to_shape_inverts_broadcast() {
        let g = Tensor::ones(vec![2, 3]);
        let r = g.reduce_to_shape(&[3]);
        assert_eq!(r.shape(), &[3]);
        assert_eq!(r.data(), &[2.0, 2.0, 2.0]);
        let r2 = g.reduce_to_shape(&[2, 1]);
        assert_eq!(r2.data(), &[3.0, 3.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], vec![2, 3]);
        let s = t.softmax_lastdim();
        for o in 0..2 {
            let sum: f32 = s.data()[o * 3..(o + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Numerical stability: huge logits must not produce NaN.
        assert!(s.is_finite());
        assert!((s.data()[3] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn finite_checks_and_clamp() {
        let ok = Tensor::from_vec(vec![1.0, -2.0], vec![2]);
        assert!(ok.is_finite());
        assert_eq!(ok.count_non_finite(), 0);
        assert_eq!(ok.first_non_finite(), None);

        let bad = Tensor::from_vec(vec![1.0, f32::NAN, f32::INFINITY], vec![3]);
        assert!(!bad.is_finite());
        assert_eq!(bad.count_non_finite(), 2);
        let (i, v) = bad.first_non_finite().unwrap();
        assert_eq!(i, 1);
        assert!(v.is_nan());

        let c = bad.clamp(-1.0, 1.0);
        assert_eq!(c.data(), &[1.0, -1.0, 1.0]);
    }

    #[test]
    fn argmax() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2, 0.1, 0.3], vec![2, 3]);
        assert_eq!(t.argmax_lastdim(), vec![1, 2]);
    }
}
