//! Shape arithmetic: element counts, row-major strides and NumPy-style
//! broadcasting rules.

use crate::TensorError;

/// A tensor shape: dimension sizes, outermost first.
pub type Shape = Vec<usize>;

/// Number of elements a shape describes (product of dims; 1 for scalars).
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for a contiguous tensor of the given shape.
///
/// `strides_for(&[2, 3, 4]) == [12, 4, 1]`.
pub fn strides_for(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1;
    for (stride, &dim) in strides.iter_mut().zip(shape.iter()).rev() {
        *stride = acc;
        acc *= dim;
    }
    strides
}

/// Compute the broadcast result shape of two shapes per NumPy rules:
/// align trailing dims; each pair must be equal or one of them 1.
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize]) -> Result<Shape, TensorError> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0; rank];
    for i in 0..rank {
        let l = dim_from_end(lhs, i);
        let r = dim_from_end(rhs, i);
        out[rank - 1 - i] = if l == r || r == 1 {
            l
        } else if l == 1 {
            r
        } else {
            return Err(TensorError::BroadcastMismatch {
                lhs: lhs.to_vec(),
                rhs: rhs.to_vec(),
            });
        };
    }
    Ok(out)
}

/// The `i`-th dimension counted from the end, treating missing leading dims
/// as size 1 (the broadcasting convention).
fn dim_from_end(shape: &[usize], i: usize) -> usize {
    if i < shape.len() {
        shape[shape.len() - 1 - i]
    } else {
        1
    }
}

/// Strides to iterate a tensor of shape `shape` as if it had the (broadcast)
/// shape `target`: broadcast dimensions get stride 0.
///
/// Panics if `shape` does not broadcast to `target`; call
/// [`broadcast_shapes`] first to validate.
pub fn broadcast_strides(shape: &[usize], target: &[usize]) -> Vec<usize> {
    let base = strides_for(shape);
    let rank = target.len();
    let mut out = vec![0; rank];
    for i in 0..rank {
        let dim = dim_from_end(shape, i);
        let tdim = target[rank - 1 - i];
        assert!(
            dim == tdim || dim == 1,
            "shape {shape:?} does not broadcast to {target:?}"
        );
        out[rank - 1 - i] = if dim == tdim && dim != 1 {
            base[shape.len() - 1 - i]
        } else if dim == 1 {
            0
        } else {
            base[shape.len() - 1 - i]
        };
    }
    out
}

/// Advance a multi-dimensional index `idx` (odometer order) within `shape`.
/// Returns `false` once the index wraps past the final element.
pub fn next_index(idx: &mut [usize], shape: &[usize]) -> bool {
    for i in (0..shape.len()).rev() {
        idx[i] += 1;
        if idx[i] < shape[i] {
            return true;
        }
        idx[i] = 0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn numel_products() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[0, 4]), 0);
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[1], &[4, 5]).unwrap(), vec![4, 5]);
    }

    #[test]
    fn broadcast_mismatch() {
        assert!(broadcast_shapes(&[2, 3], &[2, 4]).is_err());
        assert!(broadcast_shapes(&[3, 2], &[2, 3]).is_err());
    }

    #[test]
    fn broadcast_strides_zeroes_broadcast_dims() {
        assert_eq!(broadcast_strides(&[2, 1], &[2, 3]), vec![1, 0]);
        assert_eq!(broadcast_strides(&[3], &[2, 3]), vec![0, 1]);
        assert_eq!(broadcast_strides(&[2, 3], &[2, 3]), vec![3, 1]);
    }

    #[test]
    fn odometer_iterates_all() {
        let shape = [2, 3];
        let mut idx = vec![0, 0];
        let mut count = 1;
        while next_index(&mut idx, &shape) {
            count += 1;
        }
        assert_eq!(count, 6);
    }
}
