//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is an append-only tape of operations. Every op returns a
//! [`Var`] (an index into the tape) and records a backward closure that maps
//! an upstream gradient to per-parent gradient contributions. Calling
//! [`Graph::backward`] walks the tape in reverse, accumulating gradients;
//! gradients that reach [`crate::Param`] leaves are added to the shared
//! parameter storage that the optimizer reads.
//!
//! One graph is built per training step and discarded afterwards.

use crate::ops;
use crate::param::Param;
use crate::tensor::Tensor;
use std::cell::RefCell;

/// Handle to a node on the tape.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Var(usize);

type BackFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    parents: Vec<usize>,
    backward: Option<BackFn>,
    param: Option<Param>,
}

/// The autograd tape. See the [module docs](self) for the execution model.
#[derive(Default)]
pub struct Graph {
    nodes: RefCell<Vec<Node>>,
}

impl Graph {
    /// An empty tape.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// `true` when no ops have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    fn push(&self, value: Tensor, parents: Vec<usize>, backward: Option<BackFn>) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            value,
            grad: None,
            parents,
            backward,
            param: None,
        });
        Var(nodes.len() - 1)
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Record a constant input (no gradient flows into it).
    pub fn input(&self, t: Tensor) -> Var {
        self.push(t, vec![], None)
    }

    /// Record a trainable parameter leaf. After [`Graph::backward`], the
    /// gradient that reached this node is accumulated into `p`.
    pub fn param(&self, p: &Param) -> Var {
        let v = self.push(p.value(), vec![], None);
        self.nodes.borrow_mut()[v.0].param = Some(p.clone());
        v
    }

    /// Snapshot of a node's value.
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// Shape of a node's value.
    pub fn shape(&self, v: Var) -> Vec<usize> {
        self.nodes.borrow()[v.0].value.shape().to_vec()
    }

    /// Gradient accumulated at a node by the last [`Graph::backward`] call.
    pub fn grad(&self, v: Var) -> Option<Tensor> {
        self.nodes.borrow()[v.0].grad.clone()
    }

    /// Re-enter a value as a fresh constant, cutting the gradient flow.
    pub fn detach(&self, v: Var) -> Var {
        let t = self.value(v);
        self.input(t)
    }

    // ------------------------------------------------------------------
    // Elementwise binary (broadcasting)
    // ------------------------------------------------------------------

    /// Broadcasting elementwise addition.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let (sa, sb) = (va.shape().to_vec(), vb.shape().to_vec());
        let out = va.add(&vb);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g| {
                vec![g.reduce_to_shape(&sa), g.reduce_to_shape(&sb)]
            })),
        )
    }

    /// Broadcasting elementwise subtraction.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let (sa, sb) = (va.shape().to_vec(), vb.shape().to_vec());
        let out = va.sub(&vb);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g| {
                vec![g.reduce_to_shape(&sa), g.neg().reduce_to_shape(&sb)]
            })),
        )
    }

    /// Broadcasting elementwise multiplication.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let (sa, sb) = (va.shape().to_vec(), vb.shape().to_vec());
        let out = va.mul(&vb);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g| {
                vec![
                    g.mul(&vb).reduce_to_shape(&sa),
                    g.mul(&va).reduce_to_shape(&sb),
                ]
            })),
        )
    }

    /// Broadcasting elementwise division.
    pub fn div(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let (sa, sb) = (va.shape().to_vec(), vb.shape().to_vec());
        let out = va.div(&vb);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g| {
                let ga = g.div(&vb).reduce_to_shape(&sa);
                let gb = g.mul(&va).div(&vb.mul(&vb)).neg().reduce_to_shape(&sb);
                vec![ga, gb]
            })),
        )
    }

    // ------------------------------------------------------------------
    // Elementwise unary
    // ------------------------------------------------------------------

    /// Elementwise negation.
    pub fn neg(&self, a: Var) -> Var {
        let out = self.value(a).neg();
        self.push(out, vec![a.0], Some(Box::new(|g| vec![g.neg()])))
    }

    /// Multiply by a compile-time scalar.
    pub fn scale(&self, a: Var, s: f32) -> Var {
        let out = self.value(a).scale(s);
        self.push(out, vec![a.0], Some(Box::new(move |g| vec![g.scale(s)])))
    }

    /// Add a compile-time scalar.
    pub fn add_scalar(&self, a: Var, s: f32) -> Var {
        let out = self.value(a).add_scalar(s);
        self.push(out, vec![a.0], Some(Box::new(|g| vec![g.clone()])))
    }

    /// Rectified linear unit.
    pub fn relu(&self, a: Var) -> Var {
        let va = self.value(a);
        let out = va.map(|v| v.max(0.0));
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g| {
                vec![g.zip_broadcast(&va, |gv, xv| if xv > 0.0 { gv } else { 0.0 })]
            })),
        )
    }

    /// GELU (tanh approximation), as used by the paper's OCConv blocks.
    pub fn gelu(&self, a: Var) -> Var {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        const A: f32 = 0.044_715;
        let va = self.value(a);
        let out = va.map(|x| {
            let u = C * (x + A * x * x * x);
            0.5 * x * (1.0 + u.tanh())
        });
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g| {
                vec![g.zip_broadcast(&va, |gv, x| {
                    let u = C * (x + A * x * x * x);
                    let t = u.tanh();
                    let du = C * (1.0 + 3.0 * A * x * x);
                    gv * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du)
                })]
            })),
        )
    }

    /// Sigmoid logistic function.
    pub fn sigmoid(&self, a: Var) -> Var {
        let out = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let saved = out.clone();
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g| {
                vec![g.zip_broadcast(&saved, |gv, s| gv * s * (1.0 - s))]
            })),
        )
    }

    /// SiLU / swish: `x * sigmoid(x)`.
    pub fn silu(&self, a: Var) -> Var {
        let va = self.value(a);
        let out = va.map(|x| x / (1.0 + (-x).exp()));
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g| {
                vec![g.zip_broadcast(&va, |gv, x| {
                    let s = 1.0 / (1.0 + (-x).exp());
                    gv * (s + x * s * (1.0 - s))
                })]
            })),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let out = self.value(a).map(f32::tanh);
        let saved = out.clone();
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g| {
                vec![g.zip_broadcast(&saved, |gv, t| gv * (1.0 - t * t))]
            })),
        )
    }

    /// Elementwise exponential.
    pub fn exp(&self, a: Var) -> Var {
        let out = self.value(a).map(f32::exp);
        let saved = out.clone();
        self.push(out, vec![a.0], Some(Box::new(move |g| vec![g.mul(&saved)])))
    }

    /// Elementwise natural log.
    pub fn ln(&self, a: Var) -> Var {
        let va = self.value(a);
        let out = va.map(f32::ln);
        self.push(out, vec![a.0], Some(Box::new(move |g| vec![g.div(&va)])))
    }

    /// Elementwise square root.
    pub fn sqrt(&self, a: Var) -> Var {
        let out = self.value(a).map(f32::sqrt);
        let saved = out.clone();
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g| {
                vec![g.zip_broadcast(&saved, |gv, s| gv * 0.5 / s)]
            })),
        )
    }

    /// Elementwise square.
    pub fn square(&self, a: Var) -> Var {
        let va = self.value(a);
        let out = va.map(|x| x * x);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g| {
                vec![g.zip_broadcast(&va, |gv, x| gv * 2.0 * x)]
            })),
        )
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// 2-D matrix multiplication.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let out = ops::matmul(&va, &vb);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g| {
                let ga = ops::matmul(g, &vb.transpose2());
                let gb = ops::matmul(&va.transpose2(), g);
                vec![ga, gb]
            })),
        )
    }

    /// Batched 3-D matrix multiplication.
    pub fn bmm(&self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        let out = ops::bmm(&va, &vb);
        self.push(
            out,
            vec![a.0, b.0],
            Some(Box::new(move |g| {
                let ga = ops::bmm(g, &vb.permute(&[0, 2, 1]));
                let gb = ops::bmm(&va.permute(&[0, 2, 1]), g);
                vec![ga, gb]
            })),
        )
    }

    /// 2-D convolution (NCHW); see [`ops::conv2d`].
    pub fn conv2d(&self, x: Var, weight: Var, bias: Option<Var>, stride: usize, pad: usize) -> Var {
        let vx = self.value(x);
        let vw = self.value(weight);
        let vb = bias.map(|b| self.value(b));
        let out = ops::conv2d(&vx, &vw, vb.as_ref(), stride, pad);
        let mut parents = vec![x.0, weight.0];
        if let Some(b) = bias {
            parents.push(b.0);
        }
        let has_bias = bias.is_some();
        let xs = vx.shape().to_vec();
        let ws = vw.shape().to_vec();
        self.push(
            out,
            parents,
            Some(Box::new(move |g| {
                let gx = ops::conv2d_grad_input(g, &vw, &xs, stride, pad);
                let gw = ops::conv2d_grad_weight(g, &vx, &ws, stride, pad);
                let mut grads = vec![gx, gw];
                if has_bias {
                    grads.push(ops::conv2d_grad_bias(g));
                }
                grads
            })),
        )
    }

    /// Nearest-neighbor 2× upsampling (NCHW).
    pub fn upsample_nearest2(&self, x: Var) -> Var {
        let out = ops::upsample_nearest2(&self.value(x));
        self.push(
            out,
            vec![x.0],
            Some(Box::new(|g| vec![ops::upsample_nearest2_grad(g)])),
        )
    }

    // ------------------------------------------------------------------
    // Shape ops
    // ------------------------------------------------------------------

    /// Reshape preserving element count.
    pub fn reshape(&self, a: Var, shape: Vec<usize>) -> Var {
        let va = self.value(a);
        let orig = va.shape().to_vec();
        let out = va.reshape(shape);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g| vec![g.reshape(orig.clone())])),
        )
    }

    /// Permute dimensions.
    pub fn permute(&self, a: Var, perm: &[usize]) -> Var {
        let out = self.value(a).permute(perm);
        // The inverse permutation maps gradients back.
        let mut inv = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inv[p] = i;
        }
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g| vec![g.permute(&inv)])),
        )
    }

    /// Concatenate along `axis`.
    pub fn concat(&self, vars: &[Var], axis: usize) -> Var {
        let values: Vec<Tensor> = vars.iter().map(|&v| self.value(v)).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let out = Tensor::concat(&refs, axis);
        let sizes: Vec<usize> = values.iter().map(|t| t.shape()[axis]).collect();
        let parents = vars.iter().map(|v| v.0).collect();
        self.push(
            out,
            parents,
            Some(Box::new(move |g| {
                let mut grads = Vec::with_capacity(sizes.len());
                let mut offset = 0;
                for &s in &sizes {
                    grads.push(g.slice(axis, offset, offset + s));
                    offset += s;
                }
                grads
            })),
        )
    }

    /// Slice `[start, end)` along `axis`.
    pub fn slice(&self, a: Var, axis: usize, start: usize, end: usize) -> Var {
        let va = self.value(a);
        let orig = va.shape().to_vec();
        let out = va.slice(axis, start, end);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g| {
                // Scatter the gradient back into a zero tensor of the
                // original shape.
                let mut full = Tensor::zeros(orig.clone());
                let outer: usize = orig[..axis].iter().product();
                let inner: usize = orig[axis + 1..].iter().product();
                let a_len = orig[axis];
                let s_len = end - start;
                let gd = g.data();
                let fd = full.data_mut();
                for o in 0..outer {
                    let src = o * s_len * inner;
                    let dst = (o * a_len + start) * inner;
                    fd[dst..dst + s_len * inner].copy_from_slice(&gd[src..src + s_len * inner]);
                }
                vec![full]
            })),
        )
    }

    /// Select rows along axis 0 (embedding lookup / masked gather).
    pub fn index_select0(&self, a: Var, indices: &[usize]) -> Var {
        let va = self.value(a);
        let dim0 = va.shape()[0];
        let out = va.index_select0(indices);
        let idx = indices.to_vec();
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g| vec![g.index_add0(&idx, dim0)])),
        )
    }

    // ------------------------------------------------------------------
    // Reductions & normalization helpers
    // ------------------------------------------------------------------

    /// Sum all elements into a `[1]` tensor.
    pub fn sum_all(&self, a: Var) -> Var {
        let va = self.value(a);
        let shape = va.shape().to_vec();
        let out = Tensor::scalar(va.sum());
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g| {
                vec![Tensor::full(shape.clone(), g.data()[0])]
            })),
        )
    }

    /// Mean of all elements into a `[1]` tensor.
    pub fn mean_all(&self, a: Var) -> Var {
        let n = self.value(a).numel().max(1) as f32;
        let s = self.sum_all(a);
        self.scale(s, 1.0 / n)
    }

    /// Sum along one axis.
    pub fn sum_axis(&self, a: Var, axis: usize, keepdim: bool) -> Var {
        let va = self.value(a);
        let orig = va.shape().to_vec();
        let out = va.sum_axis(axis, keepdim);
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g| {
                // Broadcast the reduced gradient back over the summed axis.
                let mut keep_shape = orig.clone();
                keep_shape[axis] = 1;
                let gk = if g.shape().len() == orig.len() {
                    g.clone()
                } else {
                    g.reshape(keep_shape)
                };
                vec![gk.add(&Tensor::zeros(orig.clone()))]
            })),
        )
    }

    /// Mean along one axis.
    pub fn mean_axis(&self, a: Var, axis: usize, keepdim: bool) -> Var {
        let n = self.value(a).shape()[axis].max(1) as f32;
        let s = self.sum_axis(a, axis, keepdim);
        self.scale(s, 1.0 / n)
    }

    /// Softmax along the last dimension.
    pub fn softmax_lastdim(&self, a: Var) -> Var {
        let out = self.value(a).softmax_lastdim();
        let saved = out.clone();
        self.push(
            out,
            vec![a.0],
            Some(Box::new(move |g| {
                // dL/dx = s ⊙ (g - sum(g ⊙ s, lastdim, keepdim))
                let gs = g.mul(&saved);
                let rank = saved.rank();
                let dot = gs.sum_axis(rank - 1, true);
                vec![saved.mul(&g.sub(&dot))]
            })),
        )
    }

    /// Fused layer normalization over the last dimension with affine
    /// parameters: `y = γ ⊙ (x − μ)/√(σ² + ε) + β` per row. One tape node
    /// instead of the eight-op composed form; forward and backward are
    /// row-parallel over disjoint ranges and bit-identical for any pool
    /// size (the dγ/dβ row sums stay serial, in fixed row order).
    pub fn layernorm_lastdim(&self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let vx = self.value(x);
        let vg = self.value(gamma);
        let vb = self.value(beta);
        let d = *vx.shape().last().expect("layernorm needs rank >= 1");
        assert!(d > 0, "layernorm needs a non-empty last dimension");
        assert_eq!(vg.shape(), &[d], "layernorm gamma must be [d]");
        assert_eq!(vb.shape(), &[d], "layernorm beta must be [d]");
        let rows = vx.numel() / d;
        let grain = (4096 / d).max(1);
        // Forward: x̂ = (x − μ)/√(σ² + ε) per row, saved together with 1/σ
        // for the backward pass; y = γ ⊙ x̂ + β.
        let mut xhat = vx;
        let mut inv_std = vec![0.0f32; rows];
        odt_compute::parallel_rows2(
            xhat.data_mut(),
            &mut inv_std,
            d,
            1,
            grain,
            |_, xs, stats| {
                for (row, s) in xs.chunks_mut(d).zip(stats.iter_mut()) {
                    let mean = row.iter().sum::<f32>() / d as f32;
                    let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
                    let inv = 1.0 / (var + eps).sqrt();
                    for v in row.iter_mut() {
                        *v = (*v - mean) * inv;
                    }
                    *s = inv;
                }
            },
        );
        let mut out = xhat.clone();
        {
            let gdat = vg.data();
            let bdat = vb.data();
            odt_compute::parallel_rows(out.data_mut(), d, grain, |_, ys| {
                for row in ys.chunks_mut(d) {
                    for ((y, &gv), &bv) in row.iter_mut().zip(gdat).zip(bdat) {
                        *y = *y * gv + bv;
                    }
                }
            });
        }
        self.push(
            out,
            vec![x.0, gamma.0, beta.0],
            Some(Box::new(move |g| {
                let gd = g.data();
                let n_rows = inv_std.len();
                // dβ = Σ_rows G ; dγ = Σ_rows G ⊙ x̂ (serial, fixed row order).
                let mut dgamma = Tensor::zeros(vec![d]);
                let mut dbeta = Tensor::zeros(vec![d]);
                {
                    let dg = dgamma.data_mut();
                    let db = dbeta.data_mut();
                    let xh = xhat.data();
                    for r in 0..n_rows {
                        let grow = &gd[r * d..(r + 1) * d];
                        let xrow = &xh[r * d..(r + 1) * d];
                        for j in 0..d {
                            dg[j] += grow[j] * xrow[j];
                            db[j] += grow[j];
                        }
                    }
                }
                // dx = (1/σ)(ĝ − mean(ĝ) − x̂ ⊙ mean(ĝ ⊙ x̂)) with ĝ = γ ⊙ G.
                let mut dx = g.clone();
                let gam = vg.data();
                let xh = xhat.data();
                let inv = &inv_std;
                odt_compute::parallel_rows(dx.data_mut(), d, (4096 / d).max(1), |r0, drows| {
                    for (off, row) in drows.chunks_mut(d).enumerate() {
                        let r = r0 + off;
                        let xrow = &xh[r * d..(r + 1) * d];
                        let mut m1 = 0.0f32; // mean(ĝ)
                        let mut m2 = 0.0f32; // mean(ĝ ⊙ x̂)
                        for ((v, &gv), &xv) in row.iter_mut().zip(gam).zip(xrow) {
                            *v *= gv;
                            m1 += *v;
                            m2 += *v * xv;
                        }
                        m1 /= d as f32;
                        m2 /= d as f32;
                        for (v, &xv) in row.iter_mut().zip(xrow) {
                            *v = (*v - m1 - xv * m2) * inv[r];
                        }
                    }
                });
                vec![dx, dgamma, dbeta]
            })),
        )
    }

    /// Mean-squared error between two tensors, returned as `[1]`.
    pub fn mse(&self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let sq = self.square(d);
        self.mean_all(sq)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Backpropagate from a scalar (`[1]`) loss node. Gradients accumulate
    /// into every reachable node and into bound [`Param`] leaves.
    pub fn backward(&self, loss: Var) {
        let seed = {
            let nodes = self.nodes.borrow();
            assert_eq!(
                nodes[loss.0].value.numel(),
                1,
                "backward requires a scalar loss, got shape {:?}",
                nodes[loss.0].value.shape()
            );
            Tensor::ones(nodes[loss.0].value.shape().to_vec())
        };
        self.backward_with_grad(loss, seed);
    }

    /// Backpropagate from `v` with an explicit upstream gradient.
    pub fn backward_with_grad(&self, v: Var, seed: Tensor) {
        let mut nodes = self.nodes.borrow_mut();
        assert_eq!(
            nodes[v.0].value.shape(),
            seed.shape(),
            "seed gradient shape mismatch"
        );
        nodes[v.0].grad = Some(seed);
        for i in (0..=v.0).rev() {
            let Some(grad) = nodes[i].grad.clone() else {
                continue;
            };
            if let Some(back) = nodes[i].backward.as_ref() {
                let parent_grads = back(&grad);
                let parents = nodes[i].parents.clone();
                assert_eq!(
                    parent_grads.len(),
                    parents.len(),
                    "backward fn returned wrong arity"
                );
                for (p, pg) in parents.into_iter().zip(parent_grads) {
                    debug_assert_eq!(
                        nodes[p].value.shape(),
                        pg.shape(),
                        "gradient shape mismatch flowing into node {p}"
                    );
                    nodes[p].grad = Some(match nodes[p].grad.take() {
                        Some(existing) => existing.add(&pg),
                        None => pg,
                    });
                }
            }
            if let Some(param) = nodes[i].param.as_ref() {
                param.accumulate_grad(&grad);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Central finite-difference gradient of `f` w.r.t. `x`, flattened.
    fn numeric_grad(f: &dyn Fn(&Tensor) -> f32, x: &Tensor, eps: f32) -> Vec<f32> {
        let mut out = Vec::with_capacity(x.numel());
        for i in 0..x.numel() {
            let mut plus = x.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x.clone();
            minus.data_mut()[i] -= eps;
            out.push((f(&plus) - f(&minus)) / (2.0 * eps));
        }
        out
    }

    /// Assert analytic gradient of builder-defined scalar loss matches
    /// finite differences at `x`.
    fn check_grad(build: &dyn Fn(&Graph, Var) -> Var, x: &Tensor, tol: f32) {
        let g = Graph::new();
        let xv = g.input(x.clone());
        let loss = build(&g, xv);
        g.backward(loss);
        let analytic = g.grad(xv).expect("gradient should reach input");
        let f = |t: &Tensor| {
            let g2 = Graph::new();
            let v = g2.input(t.clone());
            let l = build(&g2, v);
            g2.value(l).data()[0]
        };
        let numeric = numeric_grad(&f, x, 1e-2);
        for (i, (&a, &n)) in analytic.data().iter().zip(&numeric).enumerate() {
            assert!(
                (a - n).abs() <= tol * (1.0 + n.abs()),
                "grad mismatch at {i}: analytic {a} vs numeric {n}"
            );
        }
    }

    fn rand_t(shape: Vec<usize>, seed: u64) -> Tensor {
        init::uniform(&mut StdRng::seed_from_u64(seed), shape, -1.0, 1.0)
    }

    #[test]
    fn grad_add_mul_chain() {
        let x = rand_t(vec![2, 3], 1);
        check_grad(
            &|g, v| {
                let c = g.input(Tensor::full(vec![2, 3], 2.0));
                let y = g.mul(g.add(v, c), v); // (x + 2) * x
                g.sum_all(y)
            },
            &x,
            1e-2,
        );
    }

    #[test]
    fn grad_div() {
        let x = rand_t(vec![4], 2).add_scalar(3.0); // keep away from 0
        check_grad(
            &|g, v| {
                let c = g.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![4]));
                let y = g.div(c, v);
                g.sum_all(y)
            },
            &x,
            1e-2,
        );
    }

    #[test]
    fn grad_broadcast_add_reduces() {
        // x: [3] broadcast against [2,3]; gradient must reduce back to [3].
        let x = rand_t(vec![3], 3);
        check_grad(
            &|g, v| {
                let m = g.input(rand_t(vec![2, 3], 4));
                let y = g.mul(g.add(v, m), g.add(v, m));
                g.sum_all(y)
            },
            &x,
            1e-2,
        );
    }

    #[test]
    fn grad_activations() {
        let x = rand_t(vec![8], 5);
        for op in ["gelu", "sigmoid", "silu", "tanh", "exp", "square"] {
            check_grad(
                &|g, v| {
                    let y = match op {
                        "gelu" => g.gelu(v),
                        "sigmoid" => g.sigmoid(v),
                        "silu" => g.silu(v),
                        "tanh" => g.tanh(v),
                        "exp" => g.exp(v),
                        "square" => g.square(v),
                        _ => unreachable!(),
                    };
                    g.sum_all(y)
                },
                &x,
                2e-2,
            );
        }
    }

    #[test]
    fn grad_ln_sqrt_positive_domain() {
        let x = rand_t(vec![6], 6).map(|v| v.abs() + 0.5);
        check_grad(&|g, v| g.sum_all(g.ln(v)), &x, 1e-2);
        check_grad(&|g, v| g.sum_all(g.sqrt(v)), &x, 1e-2);
    }

    #[test]
    fn grad_relu_away_from_kink() {
        let x = Tensor::from_vec(vec![-2.0, -1.0, 1.0, 2.0], vec![4]);
        check_grad(&|g, v| g.sum_all(g.relu(v)), &x, 1e-2);
    }

    #[test]
    fn grad_matmul_both_sides() {
        let x = rand_t(vec![3, 4], 7);
        check_grad(
            &|g, v| {
                let w = g.input(rand_t(vec![4, 2], 8));
                let y = g.matmul(v, w);
                g.sum_all(g.square(y))
            },
            &x,
            1e-2,
        );
        // Right-hand side.
        let w = rand_t(vec![4, 2], 9);
        check_grad(
            &|g, v| {
                let a = g.input(rand_t(vec![3, 4], 10));
                let y = g.matmul(a, v);
                g.sum_all(g.square(y))
            },
            &w,
            1e-2,
        );
    }

    #[test]
    fn grad_bmm() {
        let x = rand_t(vec![2, 2, 3], 11);
        check_grad(
            &|g, v| {
                let w = g.input(rand_t(vec![2, 3, 2], 12));
                g.sum_all(g.square(g.bmm(v, w)))
            },
            &x,
            1e-2,
        );
    }

    #[test]
    fn grad_conv2d_input_weight_bias() {
        let x = rand_t(vec![1, 2, 4, 4], 13);
        check_grad(
            &|g, v| {
                let w = g.input(rand_t(vec![3, 2, 3, 3], 14));
                let b = g.input(rand_t(vec![3], 15));
                g.sum_all(g.square(g.conv2d(v, w, Some(b), 1, 1)))
            },
            &x,
            2e-2,
        );
        let w = rand_t(vec![3, 2, 3, 3], 16);
        check_grad(
            &|g, v| {
                let x = g.input(rand_t(vec![1, 2, 4, 4], 17));
                g.sum_all(g.square(g.conv2d(x, v, None, 2, 1)))
            },
            &w,
            2e-2,
        );
        let b = rand_t(vec![2], 18);
        check_grad(
            &|g, v| {
                let x = g.input(rand_t(vec![1, 1, 4, 4], 19));
                let w = g.input(rand_t(vec![2, 1, 3, 3], 20));
                g.sum_all(g.square(g.conv2d(x, w, Some(v), 1, 0)))
            },
            &b,
            2e-2,
        );
    }

    #[test]
    fn grad_upsample() {
        let x = rand_t(vec![1, 2, 2, 2], 21);
        check_grad(
            &|g, v| g.sum_all(g.square(g.upsample_nearest2(v))),
            &x,
            1e-2,
        );
    }

    #[test]
    fn grad_reshape_permute() {
        let x = rand_t(vec![2, 3, 4], 22);
        check_grad(
            &|g, v| {
                let r = g.reshape(v, vec![6, 4]);
                let p = g.permute(r, &[1, 0]);
                g.sum_all(g.square(p))
            },
            &x,
            1e-2,
        );
    }

    #[test]
    fn grad_concat_slice() {
        let x = rand_t(vec![2, 3], 23);
        check_grad(
            &|g, v| {
                let other = g.input(rand_t(vec![2, 2], 24));
                let c = g.concat(&[v, other], 1);
                let s = g.slice(c, 1, 1, 4);
                g.sum_all(g.square(s))
            },
            &x,
            1e-2,
        );
    }

    #[test]
    fn grad_index_select_accumulates_duplicates() {
        let x = rand_t(vec![4, 2], 25);
        check_grad(
            &|g, v| {
                let s = g.index_select0(v, &[1, 1, 3]);
                g.sum_all(g.square(s))
            },
            &x,
            1e-2,
        );
    }

    #[test]
    fn grad_reductions() {
        let x = rand_t(vec![3, 4], 26);
        check_grad(&|g, v| g.mean_all(g.square(v)), &x, 1e-2);
        check_grad(
            &|g, v| {
                let s = g.sum_axis(v, 0, false);
                g.sum_all(g.square(s))
            },
            &x,
            1e-2,
        );
        check_grad(
            &|g, v| {
                let m = g.mean_axis(v, 1, true);
                g.sum_all(g.square(m))
            },
            &x,
            1e-2,
        );
    }

    #[test]
    fn grad_softmax() {
        let x = rand_t(vec![2, 5], 27);
        check_grad(
            &|g, v| {
                let s = g.softmax_lastdim(v);
                let w = g.input(rand_t(vec![2, 5], 28));
                g.sum_all(g.mul(s, w))
            },
            &x,
            1e-2,
        );
    }

    #[test]
    fn grad_layernorm_input() {
        let x = rand_t(vec![3, 6], 61);
        check_grad(
            &|g, v| {
                let gamma = g.input(rand_t(vec![6], 62).add_scalar(1.5));
                let beta = g.input(rand_t(vec![6], 63));
                let y = g.layernorm_lastdim(v, gamma, beta, 1e-5);
                let w = g.input(rand_t(vec![3, 6], 64));
                g.sum_all(g.mul(y, w))
            },
            &x,
            1e-2,
        );
    }

    #[test]
    fn grad_layernorm_gamma_beta() {
        // Check dγ/dβ by treating gamma (then beta) as the differentiated input.
        let gamma0 = rand_t(vec![4], 65).add_scalar(1.0);
        check_grad(
            &|g, v| {
                let x = g.input(rand_t(vec![2, 4], 66));
                let beta = g.input(rand_t(vec![4], 67));
                let w = g.input(rand_t(vec![2, 4], 68));
                g.sum_all(g.mul(g.layernorm_lastdim(x, v, beta, 1e-5), w))
            },
            &gamma0,
            1e-2,
        );
        let beta0 = rand_t(vec![4], 69);
        check_grad(
            &|g, v| {
                let x = g.input(rand_t(vec![2, 4], 70));
                let gamma = g.input(rand_t(vec![4], 71).add_scalar(1.0));
                let w = g.input(rand_t(vec![2, 4], 72));
                g.sum_all(g.mul(g.layernorm_lastdim(x, gamma, v, 1e-5), w))
            },
            &beta0,
            1e-2,
        );
    }

    #[test]
    fn grad_mse() {
        let x = rand_t(vec![5], 29);
        check_grad(
            &|g, v| {
                let t = g.input(rand_t(vec![5], 30));
                g.mse(v, t)
            },
            &x,
            1e-2,
        );
    }

    #[test]
    fn params_accumulate_over_multiple_backwards() {
        let p = Param::new(Tensor::scalar(2.0), "w");
        for _ in 0..2 {
            let g = Graph::new();
            let w = g.param(&p);
            let loss = g.square(w); // d/dw w^2 = 2w = 4
            g.backward(loss);
        }
        assert_eq!(p.grad().data()[0], 8.0); // two accumulations
        p.zero_grad();
        assert_eq!(p.grad().data()[0], 0.0);
    }

    #[test]
    fn detach_blocks_gradient() {
        let g = Graph::new();
        let p = Param::new(Tensor::scalar(3.0), "w");
        let w = g.param(&p);
        let d = g.detach(w);
        let loss = g.square(d);
        g.backward(loss);
        assert_eq!(p.grad().data()[0], 0.0);
    }

    #[test]
    fn diamond_graph_accumulates() {
        // loss = (x + x)^2 => dloss/dx = 8x
        let g = Graph::new();
        let x = g.input(Tensor::scalar(3.0));
        let y = g.add(x, x);
        let loss = g.square(y);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().data()[0], 24.0);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let g = Graph::new();
        let x = g.input(Tensor::zeros(vec![2]));
        g.backward(x);
    }
}
