//! Property-based equivalence suite for the parallel compute kernels.
//!
//! Every hot kernel rewritten onto `odt-compute` is checked against a naive
//! single-threaded oracle (reimplemented here, since integration tests
//! cannot see the library's `#[cfg(test)]` reference module) over randomized
//! shapes — including sizes that are not multiples of the GEMM tile (`KB =
//! 64`) — and against [`odt_compute::run_sequential`], the single-lane
//! execution mode that `ODT_THREADS=1` pins globally:
//!
//! * matmul / bmm / conv2d forward / conv2d grad-input preserve per-element
//!   accumulation order, so they must be **bit-identical** to the oracle and
//!   to the sequential run.
//! * conv2d grad-weight uses the fixed-split deterministic batch reduction:
//!   bit-identical between parallel and sequential runs, within tolerance of
//!   the oracle's serial sum (float associativity differs).
//! * conv2d is additionally cross-checked against a from-the-definition
//!   direct convolution, independent of the im2col factorization.

use odt_tensor::ops;
use odt_tensor::Tensor;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Naive oracles (the pre-refactor serial kernels).
// ---------------------------------------------------------------------------

/// `C += A @ B` in ikj order with the skip-zero fast path — the exact loop
/// the blocked kernel replaced.
fn naive_gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += av * b[p * n + j];
            }
        }
    }
}

fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = Tensor::zeros(vec![m, n]);
    naive_gemm(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

fn naive_bmm(a: &Tensor, b: &Tensor) -> Tensor {
    let (ba, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let n = b.shape()[2];
    let mut out = Tensor::zeros(vec![ba, m, n]);
    for t in 0..ba {
        naive_gemm(
            &a.data()[t * m * k..(t + 1) * m * k],
            &b.data()[t * k * n..(t + 1) * k * n],
            &mut out.data_mut()[t * m * n..(t + 1) * m * n],
            m,
            k,
            n,
        );
    }
    out
}

/// From-the-definition 2-D convolution — independent of im2col entirely.
fn direct_conv2d(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Tensor {
    let (b, c_in, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (c_out, _, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    let ho = ops::conv_out_size(h, kh, stride, pad);
    let wo = ops::conv_out_size(wd, kw, stride, pad);
    let mut out = Tensor::zeros(vec![b, c_out, ho, wo]);
    for bi in 0..b {
        for co in 0..c_out {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0f64;
                    for ci in 0..c_in {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = (oy * stride + ky) as isize - pad as isize;
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if iy < 0 || iy >= h as isize || ix < 0 || ix >= wd as isize {
                                    continue;
                                }
                                let xv = x.data()
                                    [((bi * c_in + ci) * h + iy as usize) * wd + ix as usize];
                                let wv = w.data()[((co * c_in + ci) * kh + ky) * kw + kx];
                                acc += (xv * wv) as f64;
                            }
                        }
                    }
                    if let Some(bt) = bias {
                        acc += bt.data()[co] as f64;
                    }
                    out.data_mut()[((bi * c_out + co) * ho + oy) * wo + ox] = acc as f32;
                }
            }
        }
    }
    out
}

fn tensor_of(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(-1.0f32..1.0, n)
        .prop_map(move |data| Tensor::from_vec(data, shape.clone()))
}

/// Conv hyper-parameters small enough to be fast but covering strides,
/// padding, multi-channel and batch > 1.
#[derive(Clone, Debug)]
struct ConvCase {
    x: Tensor,
    w: Tensor,
    bias: Tensor,
    stride: usize,
    pad: usize,
}

fn conv_case() -> impl Strategy<Value = ConvCase> {
    (
        1usize..=4,                              // b
        1usize..=3,                              // c_in
        3usize..=8,                              // h
        3usize..=8,                              // w
        1usize..=3,                              // c_out
        prop_oneof![Just(1usize), Just(3usize)], // kh = kw
        1usize..=2,                              // stride
        0usize..=1,                              // pad
    )
        .prop_flat_map(|(b, c_in, h, w, c_out, kk, stride, pad)| {
            (
                tensor_of(vec![b, c_in, h, w]),
                tensor_of(vec![c_out, c_in, kk, kk]),
                tensor_of(vec![c_out]),
                Just(stride),
                Just(pad),
            )
        })
        .prop_map(|(x, w, bias, stride, pad)| ConvCase {
            x,
            w,
            bias,
            stride,
            pad,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked parallel matmul is bit-identical to the naive ikj kernel and
    /// to its own sequential (`ODT_THREADS=1`-equivalent) execution,
    /// including shapes that straddle the KB=64 tile boundary.
    #[test]
    fn matmul_equivalent(
        (m, k, n) in (1usize..=20, 1usize..=130, 1usize..=20),
        seed in any::<u64>(),
    ) {
        let a = pseudo_tensor(vec![m, k], seed);
        let b = pseudo_tensor(vec![k, n], seed ^ 0x9e37);
        let par = ops::matmul(&a, &b);
        let seq = odt_compute::run_sequential(|| ops::matmul(&a, &b));
        let naive = naive_matmul(&a, &b);
        prop_assert_eq!(par.data(), seq.data());
        prop_assert_eq!(par.data(), naive.data());
    }

    #[test]
    fn bmm_equivalent(
        (ba, m, k, n) in (1usize..=4, 1usize..=12, 1usize..=16, 1usize..=12),
        seed in any::<u64>(),
    ) {
        let a = pseudo_tensor(vec![ba, m, k], seed);
        let b = pseudo_tensor(vec![ba, k, n], seed ^ 0x51f3);
        let par = ops::bmm(&a, &b);
        let seq = odt_compute::run_sequential(|| ops::bmm(&a, &b));
        let naive = naive_bmm(&a, &b);
        prop_assert_eq!(par.data(), seq.data());
        prop_assert_eq!(par.data(), naive.data());
    }

    /// conv2d forward: parallel == sequential bitwise, and within 1e-4 of a
    /// from-the-definition direct convolution (different summation order).
    #[test]
    fn conv2d_forward_equivalent(case in conv_case()) {
        let ConvCase { x, w, bias, stride, pad } = case;
        if x.shape()[2] + 2 * pad < w.shape()[2] {
            return Ok(()); // kernel larger than padded input
        }
        let par = ops::conv2d(&x, &w, Some(&bias), stride, pad);
        let seq = odt_compute::run_sequential(|| ops::conv2d(&x, &w, Some(&bias), stride, pad));
        prop_assert_eq!(par.data(), seq.data());
        let direct = direct_conv2d(&x, &w, Some(&bias), stride, pad);
        for (a, e) in par.data().iter().zip(direct.data()) {
            prop_assert!((a - e).abs() <= 1e-4 * (1.0 + e.abs()), "{} vs {}", a, e);
        }
    }

    /// conv2d grad-input: parallel == sequential bitwise.
    #[test]
    fn conv2d_grad_input_equivalent(case in conv_case()) {
        let ConvCase { x, w, stride, pad, .. } = case;
        if x.shape()[2] + 2 * pad < w.shape()[2] {
            return Ok(());
        }
        let y = ops::conv2d(&x, &w, None, stride, pad);
        let g = y.map(|v| v * 0.5 + 0.1); // arbitrary upstream gradient
        let par = ops::conv2d_grad_input(&g, &w, x.shape(), stride, pad);
        let seq =
            odt_compute::run_sequential(|| ops::conv2d_grad_input(&g, &w, x.shape(), stride, pad));
        prop_assert_eq!(par.data(), seq.data());
    }

    /// conv2d grad-weight: the fixed-split reduction must be bit-identical
    /// between parallel and sequential execution (determinism guarantee),
    /// and match the definition within float-associativity tolerance.
    #[test]
    fn conv2d_grad_weight_equivalent(case in conv_case()) {
        let ConvCase { x, w, stride, pad, .. } = case;
        if x.shape()[2] + 2 * pad < w.shape()[2] {
            return Ok(());
        }
        let y = ops::conv2d(&x, &w, None, stride, pad);
        let g = y.map(|v| v * 0.25 - 0.05);
        let par = ops::conv2d_grad_weight(&g, &x, w.shape(), stride, pad);
        let seq =
            odt_compute::run_sequential(|| ops::conv2d_grad_weight(&g, &x, w.shape(), stride, pad));
        prop_assert_eq!(par.data(), seq.data());
        // Definition: dW[co,ci,ky,kx] = Σ_{b,oy,ox} g[b,co,oy,ox] · x[...].
        let (b, c_in, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (c_out, kh, kw) = (w.shape()[0], w.shape()[2], w.shape()[3]);
        let (ho, wo) = (g.shape()[2], g.shape()[3]);
        for co in 0..c_out {
            for ci in 0..c_in {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let mut acc = 0.0f64;
                        for bi in 0..b {
                            for oy in 0..ho {
                                for ox in 0..wo {
                                    let iy = (oy * stride + ky) as isize - pad as isize;
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    if iy < 0 || iy >= h as isize || ix < 0 || ix >= wd as isize {
                                        continue;
                                    }
                                    let gv = g.data()[((bi * c_out + co) * ho + oy) * wo + ox];
                                    let xv = x.data()
                                        [((bi * c_in + ci) * h + iy as usize) * wd + ix as usize];
                                    acc += (gv * xv) as f64;
                                }
                            }
                        }
                        let got = par.data()[((co * c_in + ci) * kh + ky) * kw + kx];
                        prop_assert!(
                            (got as f64 - acc).abs() <= 1e-4 * (1.0 + acc.abs()),
                            "dW[{},{},{},{}] = {} vs {}", co, ci, ky, kx, got, acc
                        );
                    }
                }
            }
        }
    }

    /// Row-parallel softmax is bit-identical to sequential execution and
    /// rows sum to 1.
    #[test]
    fn softmax_rows_equivalent(
        (rows, inner) in (1usize..=32, 1usize..=40),
        seed in any::<u64>(),
    ) {
        let t = pseudo_tensor(vec![rows, inner], seed);
        let par = t.softmax_lastdim();
        let seq = odt_compute::run_sequential(|| t.softmax_lastdim());
        prop_assert_eq!(par.data(), seq.data());
        for r in 0..rows {
            let s: f32 = par.data()[r * inner..(r + 1) * inner].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row {} sums to {}", r, s);
        }
    }
}

/// Deterministic pseudo-random tensor (xorshift) so shrinking stays stable.
fn pseudo_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
    let n: usize = shape.iter().product();
    let mut s = seed | 1;
    let data = (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 32) as u32 as f32 / u32::MAX as f32) * 2.0 - 1.0
        })
        .collect();
    Tensor::from_vec(data, shape)
}
