//! Property-based tests for tensor algebra and autograd invariants.

use odt_tensor::{Graph, Tensor};
use proptest::prelude::*;

// Strategy: a small tensor with random shape (rank 1-3, dims 1-5) and values.
fn small_tensor() -> impl Strategy<Value = Tensor> {
    (1usize..=3)
        .prop_flat_map(|rank| proptest::collection::vec(1usize..=5, rank))
        .prop_flat_map(|shape| {
            let n: usize = shape.iter().product();
            proptest::collection::vec(-10.0f32..10.0, n)
                .prop_map(move |data| Tensor::from_vec(data, shape.clone()))
        })
}

fn matrix(m: usize, k: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, m * k)
        .prop_map(move |data| Tensor::from_vec(data, vec![m, k]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(t in small_tensor()) {
        let u = t.map(|v| v * 0.5 + 1.0);
        let ab = t.add(&u);
        let ba = u.add(&t);
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn sub_is_add_neg(t in small_tensor()) {
        let u = t.map(|v| v - 2.0);
        let sub = t.sub(&u);
        let addneg = t.add(&u.neg());
        prop_assert_eq!(sub.data(), addneg.data());
    }

    #[test]
    fn scale_distributes_over_add(t in small_tensor(), s in -5.0f32..5.0) {
        let u = t.map(|v| v + 1.0);
        let lhs = t.add(&u).scale(s);
        let rhs = t.scale(s).add(&u.scale(s));
        for (a, b) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn reshape_preserves_data(t in small_tensor()) {
        let n = t.numel();
        let r = t.reshape(vec![n]);
        prop_assert_eq!(r.data(), t.data());
    }

    #[test]
    fn double_permute_identity(t in small_tensor()) {
        let rank = t.rank();
        let perm: Vec<usize> = (0..rank).rev().collect();
        let mut inv = vec![0; rank];
        for (i, &p) in perm.iter().enumerate() { inv[p] = i; }
        let back = t.permute(&perm).permute(&inv);
        prop_assert_eq!(back.data(), t.data());
        prop_assert_eq!(back.shape(), t.shape());
    }

    #[test]
    fn sum_axis_total_matches_sum(t in small_tensor()) {
        for axis in 0..t.rank() {
            let s = t.sum_axis(axis, false);
            prop_assert!((s.sum() - t.sum()).abs() < 1e-2 * (1.0 + t.sum().abs()));
        }
    }

    #[test]
    fn softmax_rows_are_distributions(t in small_tensor()) {
        let s = t.softmax_lastdim();
        prop_assert!(s.is_finite());
        let inner = *s.shape().last().unwrap();
        let outer = s.numel() / inner;
        for o in 0..outer {
            let sum: f32 = s.data()[o * inner..(o + 1) * inner].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.data()[o * inner..(o + 1) * inner].iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn matmul_identity_left(a in matrix(3, 4)) {
        let mut eye = Tensor::zeros(vec![3, 3]);
        for i in 0..3 { eye.set(&[i, i], 1.0); }
        let out = odt_tensor::matmul(&eye, &a);
        prop_assert_eq!(out.data(), a.data());
    }

    #[test]
    fn matmul_linearity(a in matrix(2, 3), b in matrix(3, 2), c in matrix(3, 2)) {
        // A(B + C) == AB + AC
        let lhs = odt_tensor::matmul(&a, &b.add(&c));
        let rhs = odt_tensor::matmul(&a, &b).add(&odt_tensor::matmul(&a, &c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn concat_slice_round_trip(t in small_tensor()) {
        let u = t.map(|v| v + 1.0);
        let c = Tensor::concat(&[&t, &u], 0);
        let first = c.slice(0, 0, t.shape()[0]);
        prop_assert_eq!(first.data(), t.data());
    }

    #[test]
    fn grad_of_sum_is_ones(t in small_tensor()) {
        let g = Graph::new();
        let x = g.input(t.clone());
        let loss = g.sum_all(x);
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        prop_assert!(grad.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn grad_linearity_in_upstream(t in small_tensor()) {
        // d(2 * f)/dx == 2 * df/dx for f = sum(x^2)
        let g1 = Graph::new();
        let x1 = g1.input(t.clone());
        let l1 = g1.sum_all(g1.square(x1));
        g1.backward(l1);
        let grad1 = g1.grad(x1).unwrap();

        let g2 = Graph::new();
        let x2 = g2.input(t.clone());
        let l2 = g2.scale(g2.sum_all(g2.square(x2)), 2.0);
        g2.backward(l2);
        let grad2 = g2.grad(x2).unwrap();

        for (a, b) in grad1.data().iter().zip(grad2.data()) {
            prop_assert!((2.0 * a - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn reduce_to_shape_preserves_total(t in small_tensor()) {
        // Broadcast t up by a fresh leading axis of 2, then reduce back:
        // totals must agree (each element was duplicated twice).
        let mut wide_shape = vec![2usize];
        wide_shape.extend_from_slice(t.shape());
        let wide = t.add(&Tensor::zeros(wide_shape));
        let reduced = wide.reduce_to_shape(t.shape());
        prop_assert!((reduced.sum() - wide.sum()).abs() < 1e-2 * (1.0 + wide.sum().abs()));
    }
}
