//! The two-stage DOT training pipeline (paper §3.3, §4.1.3, §5.2, §6.3),
//! hardened with a divergence watchdog and crash-resumable checkpoints.
//!
//! ## Fault tolerance
//!
//! Both stages run behind a [`Watchdog`]: a batch whose loss is non-finite
//! or spikes far above the running average is *discarded* (no optimizer
//! step), and after `watchdog_patience` consecutive trips the parameters
//! roll back to the last good snapshot and the optimizer state resets —
//! so one poisoned batch (or an unlucky step into a NaN region) cannot
//! silently destroy a multi-hour run. Every defensive action is counted in
//! [`crate::RobustnessStats`].
//!
//! Batch sampling draws from a per-iteration RNG derived from
//! `(seed, stage, iteration)`, which makes the training stream a pure
//! function of the config — the property [`Dot::train_resumable`] relies on
//! to continue an interrupted run from its last [`TrainCheckpoint`].

use crate::config::{DotConfig, EstimatorKind};
use crate::guard::RobustnessSnapshot;
use crate::oracle::Dot;
use crate::persist::{read_versioned, write_versioned, PersistError};
use odt_diffusion::{ConditionedDenoiser, Ddpm, DenoiserConfig, NoiseSchedule};
use odt_estimator::MVitConfig as EstimatorMVitConfig;
use odt_estimator::{CnnEstimator, EmbedderConfig, MVit, PitEstimator, VanillaVit};
use odt_nn::serialize::StateDict;
use odt_nn::{load_state_dict, state_dict, Adam, HasParams};
use odt_obs::{event, Level};
use odt_tensor::{Graph, Tensor};
use odt_traj::{Dataset, GridSpec, OdtInput, Pit, Split, Trajectory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

/// Emit a typed event AND forward its human-readable message to the legacy
/// `progress` callback — the backwards-compat shim of the observability
/// layer: the callback behaves like one more [`odt_obs::Sink`] fed from the
/// same event stream, so pre-telemetry callers keep seeing the strings they
/// always did.
fn notify(progress: &mut dyn FnMut(&str), builder: odt_obs::EventBuilder) {
    let ev = builder.build();
    progress(&ev.message());
    odt_obs::emit(ev);
}

/// Every way checkpoint recovery can go sideways. All "checkpoint write
/// failed / config mismatch / unusable" branches funnel through
/// [`emit_ckpt_issue`] so the wording, event names and fields stay in one
/// place instead of four hand-formatted strings.
enum CkptIssue<'a> {
    /// A periodic in-training checkpoint failed to persist.
    WriteFailed {
        /// Training stage (1 or 2) whose snapshot was being written.
        stage: u8,
        /// Iteration at which the write was attempted.
        iter: usize,
        /// The underlying persistence error.
        err: &'a PersistError,
    },
    /// An existing checkpoint belongs to a different config.
    ConfigMismatch,
    /// An existing checkpoint failed integrity or parse checks.
    Unusable(&'a PersistError),
}

/// The single funnel for checkpoint-recovery messaging (typed event +
/// legacy progress string).
fn emit_ckpt_issue(progress: &mut dyn FnMut(&str), issue: CkptIssue<'_>) {
    let builder = match issue {
        CkptIssue::WriteFailed { stage, iter, err } => {
            event(Level::Error, "train.ckpt.write_failed")
                .field("stage", stage)
                .field("iter", iter)
                .msg(format!("train checkpoint write failed: {err}"))
        }
        CkptIssue::ConfigMismatch => event(Level::Warn, "train.ckpt.config_mismatch")
            .msg("training checkpoint config mismatch; starting fresh"),
        CkptIssue::Unusable(e) => event(Level::Warn, "train.ckpt.unusable").msg(format!(
            "training checkpoint unusable ({e}); starting fresh"
        )),
    };
    notify(progress, builder);
}

/// Diagnostics collected while training.
#[derive(Clone, Debug, Default)]
pub struct TrainingReport {
    /// Wall-clock seconds spent in stage 1 (PiT inference model).
    pub stage1_seconds: f64,
    /// Wall-clock seconds spent in stage 2 (travel-time estimator).
    pub stage2_seconds: f64,
    /// Trainable scalars in the denoiser.
    pub stage1_params: usize,
    /// Trainable scalars in the estimator.
    pub stage2_params: usize,
    /// Final stage-1 training loss.
    pub stage1_final_loss: f32,
    /// Best validation MAE (seconds) observed during stage-2 early stopping.
    pub best_val_mae: f64,
    /// Robustness counters as of the end of training (watchdog trips,
    /// skipped batches, rollbacks).
    pub robustness: RobustnessSnapshot,
}

/// Fault-injection instrumentation for the training loop. Production code
/// uses [`TrainHooks::default`] (no-ops); tests tamper with the loss the
/// watchdog observes to exercise the divergence-recovery path without
/// having to construct a genuinely diverging model.
#[derive(Default)]
pub struct TrainHooks {
    /// Maps `(iteration, loss)` to the loss value the stage-1 watchdog
    /// sees. Returning NaN/inf simulates a diverged batch.
    pub stage1_loss_tamper: Option<Box<dyn FnMut(usize, f32) -> f32>>,
    /// Same, for stage 2.
    pub stage2_loss_tamper: Option<Box<dyn FnMut(usize, f32) -> f32>>,
}

/// What the watchdog decided about one observed loss.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Verdict {
    /// Healthy loss: apply the update.
    Healthy,
    /// Suspicious loss: discard the batch.
    Skip,
    /// Repeated trips: discard and roll parameters back.
    Rollback,
}

/// Divergence watchdog: trips on non-finite losses always, and on losses
/// exceeding `spike_factor ×` a warmup-gated EMA of recent healthy losses.
struct Watchdog {
    spike_factor: f32,
    patience: usize,
    ema: f32,
    observed: usize,
    consecutive_trips: usize,
}

/// Healthy observations before spike detection arms (early losses swing
/// wildly while the model finds scale).
const WATCHDOG_WARMUP: usize = 8;

impl Watchdog {
    fn new(spike_factor: f32, patience: usize) -> Self {
        Watchdog {
            spike_factor: spike_factor.max(1.0),
            patience: patience.max(1),
            ema: 0.0,
            observed: 0,
            consecutive_trips: 0,
        }
    }

    fn observe(&mut self, loss: f32) -> Verdict {
        let armed = self.observed >= WATCHDOG_WARMUP;
        let spiking = armed && loss > self.spike_factor * self.ema.max(1e-6);
        if loss.is_finite() && !spiking {
            self.consecutive_trips = 0;
            self.ema = if self.observed == 0 {
                loss
            } else {
                0.9 * self.ema + 0.1 * loss
            };
            self.observed += 1;
            return Verdict::Healthy;
        }
        self.consecutive_trips += 1;
        if self.consecutive_trips >= self.patience {
            self.consecutive_trips = 0;
            Verdict::Rollback
        } else {
            Verdict::Skip
        }
    }
}

/// Derive the RNG for one training iteration from `(seed, stage salt,
/// iteration)` — the key to deterministic resume: iteration `k` draws the
/// same batch and noise whether or not the process restarted at `k-1`.
fn iter_rng(seed: u64, salt: u64, it: usize) -> StdRng {
    StdRng::seed_from_u64(
        seed ^ salt
            ^ (it as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17),
    )
}

const STAGE1_SALT: u64 = 0x51A6_E001;
const STAGE2_SALT: u64 = 0x51A6_E002;
/// Salt of the stage-2 validation-PiT inference RNG.
const VAL_SALT: u64 = 0x51A6_E003;

/// Magic tag of in-training checkpoints.
const TRAIN_MAGIC: &str = "DOTTRN";

/// A crash-recovery snapshot of an in-flight training run, written
/// periodically by [`Dot::train_resumable`] (atomic write, CRC-framed like
/// model checkpoints).
#[derive(Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Which stage was training: 1 or 2.
    pub stage: u8,
    /// Next iteration to execute within that stage.
    pub next_iter: usize,
    /// The config of the interrupted run (must match on resume).
    pub cfg: DotConfig,
    /// Grid of the interrupted run.
    pub grid: GridSpec,
    /// Target normalization mean.
    pub tt_mean: f64,
    /// Target normalization std.
    pub tt_std: f64,
    /// Stage-1 parameters at the snapshot.
    pub stage1: StateDict,
    /// Stage-2 parameters at the snapshot (present once stage 2 started).
    pub stage2: Option<StateDict>,
    /// Best early-stopping state so far (stage 2 only).
    pub best_state: Option<StateDict>,
    /// Best validation MAE so far (stage 2 only).
    pub best_val_mae: f64,
    /// Stage-1 wall-clock seconds accumulated before the snapshot.
    pub stage1_seconds: f64,
    /// Stage-2 wall-clock seconds accumulated before the snapshot.
    pub stage2_seconds: f64,
    /// Final (or latest) stage-1 loss.
    pub stage1_final_loss: f32,
    /// Robustness counters at the snapshot.
    pub robustness: RobustnessSnapshot,
}

impl TrainCheckpoint {
    /// Load an in-training checkpoint, verifying integrity.
    pub fn load(path: &Path) -> Result<Self, PersistError> {
        read_versioned(path, TRAIN_MAGIC)
    }

    fn save(&self, path: &Path) -> Result<(), PersistError> {
        write_versioned(path, TRAIN_MAGIC, self)
    }
}

/// Stack per-sample `[3, L, L]` PiT tensors into a `[B, 3, L, L]` batch.
fn stack_pits(pits: &[&Tensor]) -> Tensor {
    let shape = pits[0].shape().to_vec();
    let per: usize = shape.iter().product();
    let mut data = Vec::with_capacity(per * pits.len());
    for p in pits {
        assert_eq!(p.shape(), &shape[..], "inconsistent PiT shapes");
        data.extend_from_slice(p.data());
    }
    let mut out_shape = vec![pits.len()];
    out_shape.extend(shape);
    Tensor::from_vec(data, out_shape)
}

impl Dot {
    /// Train the full two-stage pipeline on a dataset. `progress` receives
    /// occasional human-readable status lines.
    ///
    /// <div class="warning">
    ///
    /// **Soft-deprecated:** the `progress` callback predates the structured
    /// observability layer and is kept only for backwards compatibility. It
    /// now behaves as a sink over the typed event stream: every line it
    /// receives is the `message()` of an [`odt_obs::Event`] that is also
    /// emitted globally. New code should pass `|_| {}` and subscribe via
    /// [`odt_obs::add_sink`] / read [`odt_obs::recent_events`] instead — the
    /// events carry machine-readable fields (iteration, loss, stage) the
    /// flat strings do not.
    ///
    /// </div>
    pub fn train(cfg: DotConfig, data: &Dataset, progress: impl FnMut(&str)) -> Dot {
        Self::train_impl(cfg, data, progress, TrainHooks::default(), None, None)
    }

    /// [`Dot::train`] with fault-injection hooks — instrumentation for
    /// robustness tests (inject a NaN loss, assert the watchdog recovers).
    pub fn train_with_hooks(
        cfg: DotConfig,
        data: &Dataset,
        progress: impl FnMut(&str),
        hooks: TrainHooks,
    ) -> Dot {
        Self::train_impl(cfg, data, progress, hooks, None, None)
    }

    /// Crash-resumable training: periodically writes a [`TrainCheckpoint`]
    /// to `ckpt_path` (every `robustness.snapshot_every` healthy
    /// iterations, atomically), and when `ckpt_path` already holds a valid
    /// checkpoint for the same config, continues from it instead of
    /// starting over. The file is removed on successful completion.
    ///
    /// An unreadable or mismatched checkpoint is reported through
    /// `progress` and training restarts from scratch — crash recovery must
    /// not itself be a crash source. Optimizer moments are not part of the
    /// snapshot, so a resumed run matches an uninterrupted one in data
    /// stream but re-warms Adam from the snapshot parameters.
    pub fn train_resumable(
        cfg: DotConfig,
        data: &Dataset,
        ckpt_path: &Path,
        mut progress: impl FnMut(&str),
    ) -> Dot {
        let resume = if ckpt_path.exists() {
            match TrainCheckpoint::load(ckpt_path) {
                Ok(tc) => {
                    let same =
                        serde_json::to_string(&tc.cfg).ok() == serde_json::to_string(&cfg).ok();
                    if same {
                        notify(
                            &mut progress,
                            event(Level::Info, "train.resume")
                                .field("stage", tc.stage)
                                .field("iter", tc.next_iter)
                                .msg(format!(
                                    "resuming training from {} (stage {}, iter {})",
                                    ckpt_path.display(),
                                    tc.stage,
                                    tc.next_iter
                                )),
                        );
                        Some(tc)
                    } else {
                        emit_ckpt_issue(&mut progress, CkptIssue::ConfigMismatch);
                        None
                    }
                }
                Err(e) => {
                    emit_ckpt_issue(&mut progress, CkptIssue::Unusable(&e));
                    None
                }
            }
        } else {
            None
        };
        let model = Self::train_impl(
            cfg,
            data,
            &mut progress,
            TrainHooks::default(),
            Some(ckpt_path),
            resume,
        );
        std::fs::remove_file(ckpt_path).ok();
        model
    }

    fn train_impl(
        cfg: DotConfig,
        data: &Dataset,
        mut progress: impl FnMut(&str),
        mut hooks: TrainHooks,
        ckpt_path: Option<&Path>,
        resume: Option<TrainCheckpoint>,
    ) -> Dot {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let grid = data.grid;
        assert_eq!(grid.lg, cfg.lg, "dataset grid must match config L_G");

        let train = data.split(Split::Train);

        // Target normalization from the training split.
        let tt_mean =
            train.iter().map(Trajectory::travel_time).sum::<f64>() / train.len().max(1) as f64;
        let tt_var = train
            .iter()
            .map(|t| (t.travel_time() - tt_mean).powi(2))
            .sum::<f64>()
            / train.len().max(1) as f64;
        let tt_std = tt_var.sqrt().max(1.0);

        // ------------------------------------------------------------------
        // Stage 1: conditioned PiT denoiser (Algorithm 2).
        // ------------------------------------------------------------------
        let denoiser_cfg = DenoiserConfig {
            channels: 3,
            lg: cfg.lg,
            base_channels: cfg.base_channels,
            depth: cfg.l_d,
            cond_dim: cfg.cond_dim,
            attn_max_tokens: cfg.attn_max_tokens,
        };
        let denoiser = ConditionedDenoiser::new(&mut rng, denoiser_cfg);
        let ddpm = Ddpm::new(NoiseSchedule::linear_scaled(cfg.n_steps));

        let mut model = Dot {
            grid,
            denoiser,
            ddpm,
            estimator: build_estimator(&cfg, &mut rng),
            tt_mean,
            tt_std,
            report: TrainingReport::default(),
            stats: Default::default(),
            cfg,
        };
        let cfg = model.cfg.clone();

        // Restore an interrupted run's parameters and counters.
        let (stage1_start, stage2_resume) = match resume {
            Some(tc) => {
                let s1 = model.denoiser.params();
                load_state_dict(&s1, &tc.stage1);
                if let Some(s2) = &tc.stage2 {
                    load_state_dict(&model.estimator.estimator_params(), s2);
                }
                model.stats = crate::guard::RobustnessStats::from_snapshot(tc.robustness);
                model.report.stage1_seconds = tc.stage1_seconds;
                model.report.stage2_seconds = tc.stage2_seconds;
                model.report.stage1_final_loss = tc.stage1_final_loss;
                if tc.stage == 1 {
                    (tc.next_iter, None)
                } else {
                    (
                        cfg.stage1_iters,
                        Some((tc.next_iter, tc.best_state, tc.best_val_mae)),
                    )
                }
            }
            None => (0, None),
        };

        // Precompute training PiTs and conditioning features.
        let pits: Vec<Tensor> = train
            .iter()
            .map(|t| Pit::from_trajectory(t, &grid).into_tensor())
            .collect();
        let conds: Vec<[f32; 5]> = train
            .iter()
            .map(|t| model.cond_features(&OdtInput::from_trajectory(t)))
            .collect();
        let n = train.len();

        if stage1_start < cfg.stage1_iters {
            notify(
                &mut progress,
                event(Level::Info, "train.stage1.start")
                    .field("params", model.denoiser.num_params())
                    .field("pits", n)
                    .field("from", stage1_start)
                    .field("to", cfg.stage1_iters)
                    .msg(format!(
                        "stage 1: training denoiser ({} params) on {} PiTs, iters {}..{}",
                        model.denoiser.num_params(),
                        n,
                        stage1_start,
                        cfg.stage1_iters
                    )),
            );
        }
        // Resolved once before the loop: registry lookups take a mutex, the
        // returned handles are lock-free atomics.
        let iter_hist = odt_obs::histogram("train.stage1.iter");
        let t0 = Instant::now();
        let stage1_seconds_before = model.report.stage1_seconds;
        let params = model.denoiser.params();
        let mut opt = Adam::new(params.clone(), cfg.lr).with_clip(2.0);
        let mut watchdog = Watchdog::new(
            cfg.robustness.watchdog_spike_factor,
            cfg.robustness.watchdog_patience,
        );
        let mut last_good = state_dict(&params);
        let mut healthy_streak = 0usize;
        let mut final_loss = model.report.stage1_final_loss;
        for it in stage1_start..cfg.stage1_iters {
            let iter_t0 = Instant::now();
            let mut brng = iter_rng(cfg.seed, STAGE1_SALT, it);
            opt.zero_grad();
            let idx: Vec<usize> = (0..cfg.stage1_batch)
                .map(|_| brng.gen_range(0..n))
                .collect();
            let refs: Vec<&Tensor> = idx.iter().map(|&i| &pits[i]).collect();
            let x0 = stack_pits(&refs);
            let mut cond = Tensor::zeros(vec![idx.len(), 5]);
            for (row, &i) in idx.iter().enumerate() {
                for (j, &v) in conds[i].iter().enumerate() {
                    cond.set(&[row, j], v);
                }
            }
            let g = Graph::new();
            let loss = model.ddpm.training_loss_biased(
                &g,
                &model.denoiser,
                &x0,
                &cond,
                cfg.step_gamma,
                &mut brng,
            );
            let mut loss_val = g.value(loss).data()[0];
            if let Some(tamper) = hooks.stage1_loss_tamper.as_mut() {
                loss_val = tamper(it, loss_val);
            }
            match watchdog.observe(loss_val) {
                Verdict::Healthy => {
                    g.backward(loss);
                    opt.step();
                    final_loss = loss_val;
                    healthy_streak += 1;
                    if healthy_streak >= cfg.robustness.snapshot_every.max(1) {
                        healthy_streak = 0;
                        last_good = state_dict(&params);
                        if let Some(path) = ckpt_path {
                            let tc = TrainCheckpoint {
                                stage: 1,
                                next_iter: it + 1,
                                cfg: cfg.clone(),
                                grid,
                                tt_mean,
                                tt_std,
                                stage1: last_good.clone(),
                                stage2: None,
                                best_state: None,
                                best_val_mae: f64::INFINITY,
                                stage1_seconds: stage1_seconds_before + t0.elapsed().as_secs_f64(),
                                stage2_seconds: 0.0,
                                stage1_final_loss: final_loss,
                                robustness: model.stats.snapshot(),
                            };
                            match tc.save(path) {
                                Ok(()) => event(Level::Debug, "train.ckpt.saved")
                                    .field("stage", 1u8)
                                    .field("iter", it + 1)
                                    .emit(),
                                Err(e) => emit_ckpt_issue(
                                    &mut progress,
                                    CkptIssue::WriteFailed {
                                        stage: 1,
                                        iter: it,
                                        err: &e,
                                    },
                                ),
                            }
                        }
                    }
                }
                Verdict::Skip => {
                    model.stats.record_watchdog_trip();
                    model.stats.record_batch_skipped();
                    notify(
                        &mut progress,
                        event(Level::Warn, "train.watchdog.trip")
                            .field("stage", 1u8)
                            .field("iter", it)
                            .field("loss", loss_val)
                            .msg(format!(
                                "stage 1 iter {it}: watchdog tripped (loss {loss_val}), batch skipped"
                            )),
                    );
                }
                Verdict::Rollback => {
                    model.stats.record_watchdog_trip();
                    model.stats.record_batch_skipped();
                    model.stats.record_rollback();
                    load_state_dict(&params, &last_good);
                    opt = Adam::new(params.clone(), cfg.lr).with_clip(2.0);
                    notify(
                        &mut progress,
                        event(Level::Warn, "train.watchdog.rollback")
                            .field("stage", 1u8)
                            .field("iter", it)
                            .msg(format!(
                                "stage 1 iter {it}: watchdog rollback to last good snapshot"
                            )),
                    );
                }
            }
            iter_hist.record(iter_t0.elapsed());
            if it % 100 == 0 {
                notify(
                    &mut progress,
                    event(Level::Info, "train.stage1.iter")
                        .field("iter", it)
                        .field("loss", final_loss)
                        .msg(format!("stage 1 iter {it}: loss {final_loss:.4}")),
                );
            }
        }
        let stage1_elapsed = t0.elapsed().as_secs_f64();
        if cfg.stage1_iters > stage1_start && stage1_elapsed > 0.0 {
            odt_obs::gauge("train.stage1.iters_per_s")
                .set((cfg.stage1_iters - stage1_start) as f64 / stage1_elapsed);
        }
        model.report.stage1_seconds = stage1_seconds_before + stage1_elapsed;
        model.report.stage1_params = model.denoiser.num_params();
        model.report.stage1_final_loss = final_loss;

        // ------------------------------------------------------------------
        // Stage 2: travel-time estimator, θ frozen (paper §5.2).
        // ------------------------------------------------------------------
        train_stage2(
            &mut model,
            data,
            &mut progress,
            hooks.stage2_loss_tamper.as_mut(),
            ckpt_path,
            stage2_resume,
        );
        model.report.robustness = model.stats.snapshot();
        model.stats.publish_gauges();
        model
    }

    /// Re-train only the travel-time estimator (stage 2) after mutating the
    /// estimator-side configuration (ablation switches, `d_E`, `L_E`),
    /// reusing the frozen stage-1 denoiser. This is how the Table 7
    /// *No-CE* / *No-ST* / *Est-CNN* / *Est-ViT* variants and the Figure 9
    /// `d_E`/`L_E` sweeps share one diffusion model.
    pub fn retrain_stage2(
        &mut self,
        mutate_cfg: impl FnOnce(&mut DotConfig),
        data: &Dataset,
        mut progress: impl FnMut(&str),
    ) {
        let (lg, n_steps, l_d) = (self.cfg.lg, self.cfg.n_steps, self.cfg.l_d);
        mutate_cfg(&mut self.cfg);
        assert!(
            self.cfg.lg == lg && self.cfg.n_steps == n_steps && self.cfg.l_d == l_d,
            "retrain_stage2 cannot change stage-1 hyper-parameters"
        );
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xab1a);
        self.estimator = build_estimator(&self.cfg, &mut rng);
        train_stage2(self, data, &mut progress, None, None, None);
        self.report.robustness = self.stats.snapshot();
    }
}

/// Train the estimator on ground-truth training PiTs, early-stopping on the
/// MAE over PiTs inferred for the validation split (§6.3). Runs behind the
/// same divergence watchdog as stage 1.
fn train_stage2(
    model: &mut Dot,
    data: &Dataset,
    progress: &mut dyn FnMut(&str),
    mut loss_tamper: Option<&mut Box<dyn FnMut(usize, f32) -> f32>>,
    ckpt_path: Option<&Path>,
    resume: Option<(usize, Option<StateDict>, f64)>,
) {
    let cfg = model.cfg.clone();
    let grid = model.grid;
    let train = data.split(Split::Train);
    let val = data.split(Split::Val);
    let n = train.len();
    let (tt_mean, tt_std) = (model.tt_mean, model.tt_std);

    let t1 = Instant::now();
    let stage2_seconds_before = model.report.stage2_seconds;
    let val_n = cfg.early_stop_samples.min(val.len());
    notify(
        progress,
        event(Level::Info, "train.stage2.val_pits")
            .field("count", val_n)
            .msg(format!(
                "stage 2: inferring {val_n} validation PiTs for early stopping"
            )),
    );
    let mut val_rng = iter_rng(cfg.seed, VAL_SALT, 0);
    let val_odts: Vec<OdtInput> = val[..val_n].iter().map(OdtInput::from_trajectory).collect();
    let val_pits = model.infer_pits(&val_odts, &mut val_rng);
    let val_targets: Vec<f64> = val[..val_n].iter().map(Trajectory::travel_time).collect();

    let train_pits: Vec<Pit> = train
        .iter()
        .map(|t| Pit::from_trajectory(t, &grid))
        .collect();
    let targets_norm: Vec<f32> = train
        .iter()
        .map(|t| ((t.travel_time() - tt_mean) / tt_std) as f32)
        .collect();

    let stage2_params: usize = model
        .estimator
        .estimator_params()
        .iter()
        .map(|p| p.numel())
        .sum();
    notify(
        progress,
        event(Level::Info, "train.stage2.start")
            .field("params", stage2_params)
            .field("iters", cfg.stage2_iters)
            .msg(format!(
                "stage 2: training {:?} estimator ({} params), {} iters",
                cfg.ablation.estimator, stage2_params, cfg.stage2_iters
            )),
    );
    let iter_hist = odt_obs::histogram("train.stage2.iter");
    let params = model.estimator.estimator_params();
    let mut opt = Adam::new(params.clone(), cfg.lr).with_clip(2.0);
    let mut watchdog = Watchdog::new(
        cfg.robustness.watchdog_spike_factor,
        cfg.robustness.watchdog_patience,
    );
    let (start_iter, resumed_best, resumed_mae) = match resume {
        Some((it, best, mae)) => (it, best, mae),
        None => (0, None, f64::INFINITY),
    };
    let mut best_mae = resumed_mae;
    let mut best_state = resumed_best.unwrap_or_else(|| state_dict(&params));
    let mut last_good = state_dict(&params);
    let mut healthy_streak = 0usize;
    for it in start_iter..cfg.stage2_iters {
        let iter_t0 = Instant::now();
        let mut brng = iter_rng(cfg.seed, STAGE2_SALT, it);
        opt.zero_grad();
        let g = Graph::new();
        let mut loss_acc = None;
        for _ in 0..cfg.stage2_batch {
            let i = brng.gen_range(0..n);
            let pred = model.estimator.predict(&g, &train_pits[i]);
            let y = g.input(Tensor::from_vec(vec![targets_norm[i]], vec![1]));
            let l = g.mse(pred, y);
            loss_acc = Some(match loss_acc {
                None => l,
                Some(acc) => g.add(acc, l),
            });
        }
        let loss = g.scale(
            loss_acc.expect("non-empty batch"),
            1.0 / cfg.stage2_batch as f32,
        );
        let mut loss_val = g.value(loss).data()[0];
        if let Some(tamper) = loss_tamper.as_mut() {
            loss_val = tamper(it, loss_val);
        }
        match watchdog.observe(loss_val) {
            Verdict::Healthy => {
                g.backward(loss);
                opt.step();
                healthy_streak += 1;
                if healthy_streak >= cfg.robustness.snapshot_every.max(1) {
                    healthy_streak = 0;
                    last_good = state_dict(&params);
                    if let Some(path) = ckpt_path {
                        let tc = TrainCheckpoint {
                            stage: 2,
                            next_iter: it + 1,
                            cfg: cfg.clone(),
                            grid,
                            tt_mean,
                            tt_std,
                            stage1: state_dict(&model.denoiser.params()),
                            stage2: Some(last_good.clone()),
                            best_state: Some(best_state.clone()),
                            best_val_mae: best_mae,
                            stage1_seconds: model.report.stage1_seconds,
                            stage2_seconds: stage2_seconds_before + t1.elapsed().as_secs_f64(),
                            stage1_final_loss: model.report.stage1_final_loss,
                            robustness: model.stats.snapshot(),
                        };
                        match tc.save(path) {
                            Ok(()) => event(Level::Debug, "train.ckpt.saved")
                                .field("stage", 2u8)
                                .field("iter", it + 1)
                                .emit(),
                            Err(e) => emit_ckpt_issue(
                                progress,
                                CkptIssue::WriteFailed {
                                    stage: 2,
                                    iter: it,
                                    err: &e,
                                },
                            ),
                        }
                    }
                }
            }
            Verdict::Skip => {
                model.stats.record_watchdog_trip();
                model.stats.record_batch_skipped();
                notify(
                    progress,
                    event(Level::Warn, "train.watchdog.trip")
                        .field("stage", 2u8)
                        .field("iter", it)
                        .field("loss", loss_val)
                        .msg(format!(
                            "stage 2 iter {it}: watchdog tripped (loss {loss_val}), batch skipped"
                        )),
                );
            }
            Verdict::Rollback => {
                model.stats.record_watchdog_trip();
                model.stats.record_batch_skipped();
                model.stats.record_rollback();
                load_state_dict(&params, &last_good);
                opt = Adam::new(params.clone(), cfg.lr).with_clip(2.0);
                notify(
                    progress,
                    event(Level::Warn, "train.watchdog.rollback")
                        .field("stage", 2u8)
                        .field("iter", it)
                        .msg(format!(
                            "stage 2 iter {it}: watchdog rollback to last good snapshot"
                        )),
                );
            }
        }
        iter_hist.record(iter_t0.elapsed());

        if (it + 1) % cfg.early_stop_every == 0 || it + 1 == cfg.stage2_iters {
            let mae = val_mae(model, &val_pits, &val_targets);
            notify(
                progress,
                event(Level::Info, "train.stage2.val")
                    .field("iter", it + 1)
                    .field("val_mae_s", mae)
                    .msg(format!("stage 2 iter {}: val MAE {:.1}s", it + 1, mae)),
            );
            if mae < best_mae {
                best_mae = mae;
                best_state = state_dict(&params);
            }
        }
    }
    load_state_dict(&params, &best_state);
    let stage2_elapsed = t1.elapsed().as_secs_f64();
    if cfg.stage2_iters > start_iter && stage2_elapsed > 0.0 {
        odt_obs::gauge("train.stage2.iters_per_s")
            .set((cfg.stage2_iters - start_iter) as f64 / stage2_elapsed);
    }
    model.report.stage2_seconds = stage2_seconds_before + stage2_elapsed;
    model.report.stage2_params = params.iter().map(|p| p.numel()).sum();
    model.report.best_val_mae = best_mae;
    notify(
        progress,
        event(Level::Info, "train.stage2.done")
            .field("seconds", model.report.stage2_seconds)
            .field("best_val_mae_s", best_mae)
            .msg(format!(
                "stage 2 done in {:.1}s, best val MAE {:.1}s",
                model.report.stage2_seconds, best_mae
            )),
    );
}

fn val_mae(model: &Dot, pits: &[Pit], targets: &[f64]) -> f64 {
    if pits.is_empty() {
        return f64::INFINITY;
    }
    pits.iter()
        .zip(targets)
        .map(|(p, &y)| (model.estimate_from_pit(p) - y).abs())
        .sum::<f64>()
        / pits.len() as f64
}

pub(crate) fn build_estimator(cfg: &DotConfig, rng: &mut StdRng) -> Box<dyn PitEstimator> {
    let mvit_cfg = EstimatorMVitConfig {
        d_e: cfg.d_e,
        l_e: cfg.l_e,
        heads: if cfg.d_e % 4 == 0 { 4 } else { 2 },
        ffn_hidden: cfg.d_e * 2,
    };
    match cfg.ablation.estimator {
        EstimatorKind::MVit => {
            let embed = EmbedderConfig {
                lg: cfg.lg,
                d_e: cfg.d_e,
                use_cell_embedding: cfg.ablation.cell_embedding,
                use_latent_cast: cfg.ablation.latent_cast,
            };
            Box::new(MVit::new(rng, &mvit_cfg, embed))
        }
        EstimatorKind::VanillaVit => Box::new(VanillaVit::new(rng, &mvit_cfg, cfg.lg)),
        EstimatorKind::Cnn => Box::new(CnnEstimator::new(rng, cfg.lg, cfg.d_e / 2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_traj::sim::CitySimConfig;

    fn tiny_dataset(lg: usize) -> Dataset {
        let mut cfg = CitySimConfig::chengdu_like();
        cfg.nx = 8;
        cfg.ny = 8;
        Dataset::simulated(cfg, 150, lg, 11)
    }

    fn tiny_config(lg: usize) -> DotConfig {
        let mut cfg = DotConfig::fast();
        cfg.lg = lg;
        cfg.n_steps = 8;
        cfg.base_channels = 4;
        cfg.cond_dim = 16;
        cfg.d_e = 16;
        cfg.stage1_iters = 12;
        cfg.stage1_batch = 4;
        cfg.stage2_iters = 40;
        cfg.stage2_batch = 4;
        cfg.early_stop_samples = 4;
        cfg.early_stop_every = 20;
        cfg
    }

    #[test]
    fn end_to_end_training_and_estimation() {
        let data = tiny_dataset(8);
        let model = Dot::train(tiny_config(8), &data, |_| {});
        let odt = OdtInput::from_trajectory(&data.split(Split::Test)[0]);
        let mut rng = StdRng::seed_from_u64(3);
        let est = model.estimate(&odt, &mut rng);
        assert!(est.seconds.is_finite() && est.seconds >= 0.0);
        assert_eq!(est.pit.lg(), 8);
        // The report carries diagnostics.
        let r = model.report();
        assert!(r.stage1_params > 0 && r.stage2_params > 0);
        assert!(r.stage1_seconds > 0.0);
    }

    #[test]
    fn estimate_batch_serves_every_query() {
        let data = tiny_dataset(8);
        let model = Dot::train(tiny_config(8), &data, |_| {});
        let odts: Vec<OdtInput> = data
            .split(Split::Test)
            .iter()
            .take(5)
            .map(OdtInput::from_trajectory)
            .collect();
        let mut rng = StdRng::seed_from_u64(6);
        let ests = model.estimate_batch(&odts, &mut rng);
        assert_eq!(ests.len(), odts.len());
        for est in &ests {
            assert!(est.seconds.is_finite() && est.seconds >= 0.0);
            assert_eq!(est.pit.lg(), 8);
        }
        // The empty batch short-circuits.
        assert!(model.estimate_batch(&[], &mut rng).is_empty());
    }

    #[test]
    fn ablation_estimators_build_and_run() {
        let data = tiny_dataset(8);
        for kind in [EstimatorKind::Cnn, EstimatorKind::VanillaVit] {
            let mut cfg = tiny_config(8);
            cfg.stage1_iters = 4;
            cfg.stage2_iters = 10;
            cfg.ablation.estimator = kind;
            let model = Dot::train(cfg, &data, |_| {});
            let odt = OdtInput::from_trajectory(&data.split(Split::Test)[0]);
            let mut rng = StdRng::seed_from_u64(4);
            assert!(model.estimate(&odt, &mut rng).seconds.is_finite());
        }
    }

    #[test]
    fn predictions_in_training_range_scale() {
        // The estimator is trained on normalized targets; after
        // denormalization, predictions should land in a plausible range.
        let data = tiny_dataset(8);
        let model = Dot::train(tiny_config(8), &data, |_| {});
        let mut rng = StdRng::seed_from_u64(5);
        for t in data.split(Split::Test).iter().take(3) {
            let odt = OdtInput::from_trajectory(t);
            let est = model.estimate(&odt, &mut rng);
            assert!(
                est.seconds < 4.0 * 3_600.0,
                "prediction {:.0}s is implausible",
                est.seconds
            );
        }
    }

    #[test]
    fn watchdog_skips_then_rolls_back() {
        let mut w = Watchdog::new(10.0, 2);
        for _ in 0..WATCHDOG_WARMUP + 2 {
            assert_eq!(w.observe(1.0), Verdict::Healthy);
        }
        // First trip skips, second (consecutive) rolls back.
        assert_eq!(w.observe(f32::NAN), Verdict::Skip);
        assert_eq!(w.observe(f32::INFINITY), Verdict::Rollback);
        // A healthy loss resets the streak.
        assert_eq!(w.observe(1.1), Verdict::Healthy);
        assert_eq!(w.observe(1000.0), Verdict::Skip); // spike vs EMA ≈ 1
        assert_eq!(w.observe(1.0), Verdict::Healthy);
    }

    #[test]
    fn watchdog_does_not_arm_during_warmup() {
        let mut w = Watchdog::new(2.0, 1);
        // Wildly swinging but finite losses during warmup are all healthy.
        for (i, loss) in [100.0f32, 1.0, 50.0, 0.5].iter().enumerate() {
            assert_eq!(w.observe(*loss), Verdict::Healthy, "obs {i}");
        }
        // Non-finite trips even during warmup.
        assert_eq!(w.observe(f32::NAN), Verdict::Rollback); // patience 1
    }

    #[test]
    fn nan_loss_injection_trips_watchdog_and_training_recovers() {
        let data = tiny_dataset(8);
        let mut cfg = tiny_config(8);
        cfg.robustness.watchdog_patience = 2;
        cfg.robustness.snapshot_every = 4;
        // Poison three consecutive stage-1 losses mid-training: the first
        // two trips skip, the third (post-rollback reset) skips again.
        let hooks =
            TrainHooks {
                stage1_loss_tamper: Some(Box::new(|it, loss| {
                    if (6..9).contains(&it) {
                        f32::NAN
                    } else {
                        loss
                    }
                })),
                stage2_loss_tamper: None,
            };
        let model = Dot::train_with_hooks(cfg, &data, |_| {}, hooks);
        let snap = model.report().robustness;
        assert_eq!(snap.watchdog_trips, 3, "{snap}");
        assert_eq!(snap.batches_skipped, 3, "{snap}");
        assert_eq!(snap.rollbacks, 1, "{snap}");
        // Training completed with finite parameters and finite predictions.
        for p in model.denoiser.params() {
            assert!(p.value().is_finite(), "non-finite param {}", p.name());
        }
        let odt = OdtInput::from_trajectory(&data.split(Split::Test)[0]);
        let mut rng = StdRng::seed_from_u64(9);
        let est = model.estimate(&odt, &mut rng);
        assert!(est.seconds.is_finite() && est.seconds >= 0.0);
    }

    #[test]
    fn stage2_nan_injection_recovers_too() {
        let data = tiny_dataset(8);
        let mut cfg = tiny_config(8);
        cfg.robustness.watchdog_patience = 1;
        let hooks = TrainHooks {
            stage1_loss_tamper: None,
            stage2_loss_tamper: Some(Box::new(
                |it, loss| {
                    if it == 5 {
                        f32::INFINITY
                    } else {
                        loss
                    }
                },
            )),
        };
        let model = Dot::train_with_hooks(cfg, &data, |_| {}, hooks);
        let snap = model.report().robustness;
        assert_eq!(snap.watchdog_trips, 1, "{snap}");
        assert_eq!(snap.rollbacks, 1, "{snap}");
        for p in model.estimator.estimator_params() {
            assert!(p.value().is_finite(), "non-finite param {}", p.name());
        }
    }

    #[test]
    fn resumable_training_continues_from_checkpoint() {
        let data = tiny_dataset(8);
        let mut cfg = tiny_config(8);
        cfg.robustness.snapshot_every = 3;
        let path =
            std::env::temp_dir().join(format!("odt_train_resume_{}.ckpt", std::process::id()));
        std::fs::remove_file(&path).ok();

        // Simulate a crash: run training, but capture the mid-flight
        // checkpoint file the moment stage 2 starts writing them.
        let full = Dot::train_resumable(cfg.clone(), &data, &path, |_| {});
        assert!(!path.exists(), "checkpoint removed on success");

        // Now write a stage-1 snapshot by training a clone and killing it
        // early: emulate by saving a TrainCheckpoint manually at iter 6.
        let probe = Dot::train(cfg.clone(), &data, |_| {});
        let tc = TrainCheckpoint {
            stage: 1,
            next_iter: 6,
            cfg: cfg.clone(),
            grid: data.grid,
            tt_mean: probe.tt_mean,
            tt_std: probe.tt_std,
            stage1: state_dict(&probe.denoiser.params()),
            stage2: None,
            best_state: None,
            best_val_mae: f64::INFINITY,
            stage1_seconds: 1.0,
            stage2_seconds: 0.0,
            stage1_final_loss: probe.report().stage1_final_loss,
            robustness: Default::default(),
        };
        tc.save(&path).unwrap();
        let mut saw_resume = false;
        let resumed = Dot::train_resumable(cfg.clone(), &data, &path, |m| {
            saw_resume |= m.contains("resuming training");
        });
        assert!(saw_resume, "resume path must be taken");
        assert!(!path.exists());
        // Both models answer queries sanely.
        let odt = OdtInput::from_trajectory(&data.split(Split::Test)[0]);
        for m in [&full, &resumed] {
            let mut rng = StdRng::seed_from_u64(5);
            let est = m.estimate(&odt, &mut rng);
            assert!(est.seconds.is_finite() && est.seconds >= 0.0);
        }
    }

    #[test]
    fn resumable_training_survives_corrupt_checkpoint() {
        let data = tiny_dataset(8);
        let cfg = tiny_config(8);
        let path =
            std::env::temp_dir().join(format!("odt_train_corrupt_{}.ckpt", std::process::id()));
        std::fs::write(&path, b"DOTTRN v1 crc32=00000000 len=3\nxyz").unwrap();
        let mut saw_fresh = false;
        let model = Dot::train_resumable(cfg, &data, &path, |m| {
            saw_fresh |= m.contains("starting fresh");
        });
        assert!(
            saw_fresh,
            "corrupt checkpoint must fall back to fresh start"
        );
        assert!(model.report().stage1_params > 0);
        std::fs::remove_file(&path).ok();
    }
}
