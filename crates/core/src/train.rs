//! The two-stage DOT training pipeline (paper §3.3, §4.1.3, §5.2, §6.3).

use crate::config::{DotConfig, EstimatorKind};
use crate::oracle::Dot;
use odt_diffusion::{ConditionedDenoiser, Ddpm, DenoiserConfig, NoiseSchedule};
use odt_estimator::{CnnEstimator, EmbedderConfig, MVit, PitEstimator, VanillaVit};
use odt_estimator::MVitConfig as EstimatorMVitConfig;
use odt_nn::{load_state_dict, state_dict, Adam, HasParams};
use odt_tensor::{Graph, Tensor};
use odt_traj::{Dataset, OdtInput, Pit, Split, Trajectory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Diagnostics collected while training.
#[derive(Clone, Debug, Default)]
pub struct TrainingReport {
    /// Wall-clock seconds spent in stage 1 (PiT inference model).
    pub stage1_seconds: f64,
    /// Wall-clock seconds spent in stage 2 (travel-time estimator).
    pub stage2_seconds: f64,
    /// Trainable scalars in the denoiser.
    pub stage1_params: usize,
    /// Trainable scalars in the estimator.
    pub stage2_params: usize,
    /// Final stage-1 training loss.
    pub stage1_final_loss: f32,
    /// Best validation MAE (seconds) observed during stage-2 early stopping.
    pub best_val_mae: f64,
}

/// Stack per-sample `[3, L, L]` PiT tensors into a `[B, 3, L, L]` batch.
fn stack_pits(pits: &[&Tensor]) -> Tensor {
    let shape = pits[0].shape().to_vec();
    let per: usize = shape.iter().product();
    let mut data = Vec::with_capacity(per * pits.len());
    for p in pits {
        assert_eq!(p.shape(), &shape[..], "inconsistent PiT shapes");
        data.extend_from_slice(p.data());
    }
    let mut out_shape = vec![pits.len()];
    out_shape.extend(shape);
    Tensor::from_vec(data, out_shape)
}

impl Dot {
    /// Train the full two-stage pipeline on a dataset. `progress` receives
    /// occasional human-readable status lines.
    pub fn train(cfg: DotConfig, data: &Dataset, mut progress: impl FnMut(&str)) -> Dot {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let grid = data.grid;
        assert_eq!(grid.lg, cfg.lg, "dataset grid must match config L_G");

        let train = data.split(Split::Train);

        // Target normalization from the training split.
        let tt_mean =
            train.iter().map(Trajectory::travel_time).sum::<f64>() / train.len().max(1) as f64;
        let tt_var = train
            .iter()
            .map(|t| (t.travel_time() - tt_mean).powi(2))
            .sum::<f64>()
            / train.len().max(1) as f64;
        let tt_std = tt_var.sqrt().max(1.0);

        // ------------------------------------------------------------------
        // Stage 1: conditioned PiT denoiser (Algorithm 2).
        // ------------------------------------------------------------------
        let denoiser_cfg = DenoiserConfig {
            channels: 3,
            lg: cfg.lg,
            base_channels: cfg.base_channels,
            depth: cfg.l_d,
            cond_dim: cfg.cond_dim,
            attn_max_tokens: cfg.attn_max_tokens,
        };
        let denoiser = ConditionedDenoiser::new(&mut rng, denoiser_cfg);
        let ddpm = Ddpm::new(NoiseSchedule::linear_scaled(cfg.n_steps));

        let mut model = Dot {
            grid,
            denoiser,
            ddpm,
            estimator: build_estimator(&cfg, &mut rng),
            tt_mean,
            tt_std,
            report: TrainingReport::default(),
            cfg,
        };
        let cfg = model.cfg.clone();

        // Precompute training PiTs and conditioning features.
        let pits: Vec<Tensor> = train
            .iter()
            .map(|t| Pit::from_trajectory(t, &grid).into_tensor())
            .collect();
        let conds: Vec<[f32; 5]> = train
            .iter()
            .map(|t| model.cond_features(&OdtInput::from_trajectory(t)))
            .collect();
        let n = train.len();

        progress(&format!(
            "stage 1: training denoiser ({} params) on {} PiTs, {} iters",
            model.denoiser.num_params(),
            n,
            cfg.stage1_iters
        ));
        let t0 = Instant::now();
        let mut opt = Adam::new(model.denoiser.params(), cfg.lr).with_clip(2.0);
        let mut final_loss = f32::NAN;
        for it in 0..cfg.stage1_iters {
            opt.zero_grad();
            let idx: Vec<usize> = (0..cfg.stage1_batch)
                .map(|_| rng.gen_range(0..n))
                .collect();
            let refs: Vec<&Tensor> = idx.iter().map(|&i| &pits[i]).collect();
            let x0 = stack_pits(&refs);
            let mut cond = Tensor::zeros(vec![idx.len(), 5]);
            for (row, &i) in idx.iter().enumerate() {
                for (j, &v) in conds[i].iter().enumerate() {
                    cond.set(&[row, j], v);
                }
            }
            let g = Graph::new();
            let loss = model.ddpm.training_loss_biased(
                &g,
                &model.denoiser,
                &x0,
                &cond,
                cfg.step_gamma,
                &mut rng,
            );
            final_loss = g.value(loss).data()[0];
            g.backward(loss);
            opt.step();
            if it % 100 == 0 {
                progress(&format!("stage 1 iter {it}: loss {final_loss:.4}"));
            }
        }
        model.report.stage1_seconds = t0.elapsed().as_secs_f64();
        model.report.stage1_params = model.denoiser.num_params();
        model.report.stage1_final_loss = final_loss;

        // ------------------------------------------------------------------
        // Stage 2: travel-time estimator, θ frozen (paper §5.2).
        // ------------------------------------------------------------------
        train_stage2(&mut model, data, &mut rng, &mut progress);
        model
    }

    /// Re-train only the travel-time estimator (stage 2) after mutating the
    /// estimator-side configuration (ablation switches, `d_E`, `L_E`),
    /// reusing the frozen stage-1 denoiser. This is how the Table 7
    /// *No-CE* / *No-ST* / *Est-CNN* / *Est-ViT* variants and the Figure 9
    /// `d_E`/`L_E` sweeps share one diffusion model.
    pub fn retrain_stage2(
        &mut self,
        mutate_cfg: impl FnOnce(&mut DotConfig),
        data: &Dataset,
        mut progress: impl FnMut(&str),
    ) {
        let (lg, n_steps, l_d) = (self.cfg.lg, self.cfg.n_steps, self.cfg.l_d);
        mutate_cfg(&mut self.cfg);
        assert!(
            self.cfg.lg == lg && self.cfg.n_steps == n_steps && self.cfg.l_d == l_d,
            "retrain_stage2 cannot change stage-1 hyper-parameters"
        );
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xab1a);
        self.estimator = build_estimator(&self.cfg, &mut rng);
        train_stage2(self, data, &mut rng, &mut progress);
    }
}

/// Train the estimator on ground-truth training PiTs, early-stopping on the
/// MAE over PiTs inferred for the validation split (§6.3).
fn train_stage2(
    model: &mut Dot,
    data: &Dataset,
    rng: &mut StdRng,
    progress: &mut dyn FnMut(&str),
) {
    let cfg = model.cfg.clone();
    let grid = model.grid;
    let train = data.split(Split::Train);
    let val = data.split(Split::Val);
    let n = train.len();
    let (tt_mean, tt_std) = (model.tt_mean, model.tt_std);

    let t1 = Instant::now();
    let val_n = cfg.early_stop_samples.min(val.len());
    progress(&format!(
        "stage 2: inferring {val_n} validation PiTs for early stopping"
    ));
    let val_odts: Vec<OdtInput> = val[..val_n].iter().map(OdtInput::from_trajectory).collect();
    let val_pits = model.infer_pits(&val_odts, rng);
    let val_targets: Vec<f64> = val[..val_n].iter().map(Trajectory::travel_time).collect();

    let train_pits: Vec<Pit> = train
        .iter()
        .map(|t| Pit::from_trajectory(t, &grid))
        .collect();
    let targets_norm: Vec<f32> = train
        .iter()
        .map(|t| ((t.travel_time() - tt_mean) / tt_std) as f32)
        .collect();

    progress(&format!(
        "stage 2: training {:?} estimator ({} params), {} iters",
        cfg.ablation.estimator,
        model
            .estimator
            .estimator_params()
            .iter()
            .map(|p| p.numel())
            .sum::<usize>(),
        cfg.stage2_iters
    ));
    let params = model.estimator.estimator_params();
    let mut opt = Adam::new(params.clone(), cfg.lr).with_clip(2.0);
    let mut best_mae = f64::INFINITY;
    let mut best_state = state_dict(&params);
    for it in 0..cfg.stage2_iters {
        opt.zero_grad();
        let g = Graph::new();
        let mut loss_acc = None;
        for _ in 0..cfg.stage2_batch {
            let i = rng.gen_range(0..n);
            let pred = model.estimator.predict(&g, &train_pits[i]);
            let y = g.input(Tensor::from_vec(vec![targets_norm[i]], vec![1]));
            let l = g.mse(pred, y);
            loss_acc = Some(match loss_acc {
                None => l,
                Some(acc) => g.add(acc, l),
            });
        }
        let loss = g.scale(loss_acc.expect("non-empty batch"), 1.0 / cfg.stage2_batch as f32);
        g.backward(loss);
        opt.step();

        if (it + 1) % cfg.early_stop_every == 0 || it + 1 == cfg.stage2_iters {
            let mae = val_mae(model, &val_pits, &val_targets);
            progress(&format!("stage 2 iter {}: val MAE {:.1}s", it + 1, mae));
            if mae < best_mae {
                best_mae = mae;
                best_state = state_dict(&params);
            }
        }
    }
    load_state_dict(&params, &best_state);
    model.report.stage2_seconds = t1.elapsed().as_secs_f64();
    model.report.stage2_params = params.iter().map(|p| p.numel()).sum();
    model.report.best_val_mae = best_mae;
    progress(&format!(
        "stage 2 done in {:.1}s, best val MAE {:.1}s",
        model.report.stage2_seconds, best_mae
    ));
}

fn val_mae(model: &Dot, pits: &[Pit], targets: &[f64]) -> f64 {
    if pits.is_empty() {
        return f64::INFINITY;
    }
    pits.iter()
        .zip(targets)
        .map(|(p, &y)| (model.estimate_from_pit(p) - y).abs())
        .sum::<f64>()
        / pits.len() as f64
}

pub(crate) fn build_estimator(cfg: &DotConfig, rng: &mut StdRng) -> Box<dyn PitEstimator> {
    let mvit_cfg = EstimatorMVitConfig {
        d_e: cfg.d_e,
        l_e: cfg.l_e,
        heads: if cfg.d_e % 4 == 0 { 4 } else { 2 },
        ffn_hidden: cfg.d_e * 2,
    };
    match cfg.ablation.estimator {
        EstimatorKind::MVit => {
            let embed = EmbedderConfig {
                lg: cfg.lg,
                d_e: cfg.d_e,
                use_cell_embedding: cfg.ablation.cell_embedding,
                use_latent_cast: cfg.ablation.latent_cast,
            };
            Box::new(MVit::new(rng, &mvit_cfg, embed))
        }
        EstimatorKind::VanillaVit => Box::new(VanillaVit::new(rng, &mvit_cfg, cfg.lg)),
        EstimatorKind::Cnn => Box::new(CnnEstimator::new(rng, cfg.lg, cfg.d_e / 2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_traj::sim::CitySimConfig;

    fn tiny_dataset(lg: usize) -> Dataset {
        let mut cfg = CitySimConfig::chengdu_like();
        cfg.nx = 8;
        cfg.ny = 8;
        Dataset::simulated(cfg, 150, lg, 11)
    }

    fn tiny_config(lg: usize) -> DotConfig {
        let mut cfg = DotConfig::fast();
        cfg.lg = lg;
        cfg.n_steps = 8;
        cfg.base_channels = 4;
        cfg.cond_dim = 16;
        cfg.d_e = 16;
        cfg.stage1_iters = 12;
        cfg.stage1_batch = 4;
        cfg.stage2_iters = 40;
        cfg.stage2_batch = 4;
        cfg.early_stop_samples = 4;
        cfg.early_stop_every = 20;
        cfg
    }

    #[test]
    fn end_to_end_training_and_estimation() {
        let data = tiny_dataset(8);
        let model = Dot::train(tiny_config(8), &data, |_| {});
        let odt = OdtInput::from_trajectory(&data.split(Split::Test)[0]);
        let mut rng = StdRng::seed_from_u64(3);
        let est = model.estimate(&odt, &mut rng);
        assert!(est.seconds.is_finite() && est.seconds >= 0.0);
        assert_eq!(est.pit.lg(), 8);
        // The report carries diagnostics.
        let r = model.report();
        assert!(r.stage1_params > 0 && r.stage2_params > 0);
        assert!(r.stage1_seconds > 0.0);
    }

    #[test]
    fn ablation_estimators_build_and_run() {
        let data = tiny_dataset(8);
        for kind in [EstimatorKind::Cnn, EstimatorKind::VanillaVit] {
            let mut cfg = tiny_config(8);
            cfg.stage1_iters = 4;
            cfg.stage2_iters = 10;
            cfg.ablation.estimator = kind;
            let model = Dot::train(cfg, &data, |_| {});
            let odt = OdtInput::from_trajectory(&data.split(Split::Test)[0]);
            let mut rng = StdRng::seed_from_u64(4);
            assert!(model.estimate(&odt, &mut rng).seconds.is_finite());
        }
    }

    #[test]
    fn predictions_in_training_range_scale() {
        // The estimator is trained on normalized targets; after
        // denormalization, predictions should land in a plausible range.
        let data = tiny_dataset(8);
        let model = Dot::train(tiny_config(8), &data, |_| {});
        let mut rng = StdRng::seed_from_u64(5);
        for t in data.split(Split::Test).iter().take(3) {
            let odt = OdtInput::from_trajectory(t);
            let est = model.estimate(&odt, &mut rng);
            assert!(
                est.seconds < 4.0 * 3_600.0,
                "prediction {:.0}s is implausible",
                est.seconds
            );
        }
    }
}
