//! DOT configuration: the paper's hyper-parameters (Table 2) and the
//! ablation switches of Table 7.

use serde::{Deserialize, Serialize};

/// Which stage-2 estimator to use.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// The Masked Vision Transformer (the DOT default).
    MVit,
    /// The vanilla ViT ablation (*Est-ViT*).
    VanillaVit,
    /// The CNN ablation (*Est-CNN*).
    Cnn,
}

/// The Table 7 ablation switches. Defaults are the full DOT model.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct AblationOptions {
    /// Include origin/destination coordinates in the conditioning
    /// (`false` = *No-od*).
    pub condition_on_od: bool,
    /// Include the departure time in the conditioning (`false` = *No-t*;
    /// both false = *No-odt*).
    pub condition_on_t: bool,
    /// Include the cell embedding module (`false` = *No-CE*).
    pub cell_embedding: bool,
    /// Include the latent casting module (`false` = *No-ST*).
    pub latent_cast: bool,
    /// Stage-2 estimator.
    pub estimator: EstimatorKind,
}

impl Default for AblationOptions {
    fn default() -> Self {
        AblationOptions {
            condition_on_od: true,
            condition_on_t: true,
            cell_embedding: true,
            latent_cast: true,
            estimator: EstimatorKind::MVit,
        }
    }
}

/// Fault-tolerance knobs for training and serving (the robustness layer;
/// DESIGN.md "Failure modes and recovery").
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct RobustnessOptions {
    /// A stage loss counts as a spike when it exceeds this multiple of the
    /// running loss EMA (after warmup). Non-finite losses always trip.
    pub watchdog_spike_factor: f32,
    /// Consecutive watchdog trips before parameters roll back to the last
    /// good snapshot.
    pub watchdog_patience: usize,
    /// Take an in-training "last good" parameter snapshot every this many
    /// healthy iterations (also the `train_resumable` checkpoint cadence).
    pub snapshot_every: usize,
    /// Serve the haversine-speed prior when the inferred PiT is degenerate
    /// (empty/saturated) instead of feeding it to the estimator.
    pub degraded_mode_fallback: bool,
}

impl Default for RobustnessOptions {
    fn default() -> Self {
        RobustnessOptions {
            watchdog_spike_factor: 25.0,
            watchdog_patience: 3,
            snapshot_every: 50,
            degraded_mode_fallback: true,
        }
    }
}

/// Full DOT configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DotConfig {
    /// Grid side length `L_G` (Table 2 optimum: 20).
    pub lg: usize,
    /// Diffusion steps `N` (Table 2 optimum: 1000).
    pub n_steps: usize,
    /// UNet depth `L_D` (Table 2 optimum: 3).
    pub l_d: usize,
    /// Embedding dimension `d_E` (Table 2 optimum: 128).
    pub d_e: usize,
    /// Estimator layers `L_E` (Table 2 optimum: 2).
    pub l_e: usize,
    /// Denoiser base channel width.
    pub base_channels: usize,
    /// Denoiser conditioning width.
    pub cond_dim: usize,
    /// Attention token cap inside the denoiser.
    pub attn_max_tokens: usize,
    /// Stage-1 training iterations (mini-batches).
    pub stage1_iters: usize,
    /// Stage-1 batch size.
    pub stage1_batch: usize,
    /// Stage-2 training iterations (mini-batches).
    pub stage2_iters: usize,
    /// Stage-2 batch size.
    pub stage2_batch: usize,
    /// Learning rate (the paper uses 1e-3 across the board).
    pub lr: f32,
    /// Validation samples used for early stopping (PiT inference for the
    /// whole split is expensive; a fixed subset suffices).
    pub early_stop_samples: usize,
    /// Evaluate early stopping every this many stage-2 iterations.
    pub early_stop_every: usize,
    /// Stage-1 step-sampling exponent (1.0 = Algorithm 2's uniform
    /// sampling; >1 concentrates on low-noise steps — see odt-diffusion).
    pub step_gamma: f64,
    /// Number of reverse-diffusion candidates sampled per query; the most
    /// plausible PiT (by route-occupancy prior) is kept. 1 = Algorithm 1
    /// verbatim. At reduced step counts the reverse chain occasionally
    /// saturates; candidate selection implements the paper's "infer the
    /// most plausible PiT" robustly.
    pub infer_candidates: usize,
    /// Ablation switches.
    pub ablation: AblationOptions,
    /// Fault-tolerance knobs (`#[serde(default)]` keeps older configs
    /// loadable).
    #[serde(default)]
    pub robustness: RobustnessOptions,
    /// RNG seed for initialization, batching and sampling.
    pub seed: u64,
}

impl DotConfig {
    /// The paper's optimal configuration (Table 2) — sized for the authors'
    /// GPU testbed; expect long CPU runtimes.
    pub fn paper() -> Self {
        DotConfig {
            lg: 20,
            n_steps: 1000,
            l_d: 3,
            d_e: 128,
            l_e: 2,
            base_channels: 32,
            cond_dim: 128,
            attn_max_tokens: 1 << 16,
            stage1_iters: 20_000,
            stage1_batch: 32,
            stage2_iters: 20_000,
            stage2_batch: 32,
            lr: 1e-3,
            early_stop_samples: 256,
            early_stop_every: 2_000,
            step_gamma: 1.0,
            infer_candidates: 1,
            ablation: AblationOptions::default(),
            robustness: RobustnessOptions::default(),
            seed: 7,
        }
    }

    /// CPU-scale profile: same algorithms, reduced steps and widths. The
    /// experiment harness uses this by default and records it in
    /// EXPERIMENTS.md.
    pub fn fast() -> Self {
        DotConfig {
            lg: 20,
            n_steps: 40,
            l_d: 2,
            d_e: 32,
            l_e: 2,
            base_channels: 8,
            cond_dim: 32,
            attn_max_tokens: 128,
            stage1_iters: 350,
            stage1_batch: 8,
            stage2_iters: 900,
            stage2_batch: 8,
            lr: 1e-3,
            early_stop_samples: 24,
            early_stop_every: 300,
            step_gamma: 2.0,
            infer_candidates: 3,
            ablation: AblationOptions::default(),
            robustness: RobustnessOptions::default(),
            seed: 7,
        }
    }

    /// Apply a conditioning mask to raw ODT features (the 5-vector of
    /// Eq. 13): zero out what the ablation removes.
    pub fn mask_features(&self, feats: [f32; 5]) -> [f32; 5] {
        let mut f = feats;
        if !self.ablation.condition_on_od {
            f[..4].iter_mut().for_each(|v| *v = 0.0);
        }
        if !self.ablation.condition_on_t {
            f[4] = 0.0;
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2_optima() {
        let c = DotConfig::paper();
        assert_eq!(c.lg, 20);
        assert_eq!(c.n_steps, 1000);
        assert_eq!(c.l_d, 3);
        assert_eq!(c.d_e, 128);
        assert_eq!(c.l_e, 2);
    }

    #[test]
    fn masks_implement_no_t_no_od_no_odt() {
        let mut c = DotConfig::fast();
        let f = [0.1, 0.2, 0.3, 0.4, 0.5];
        c.ablation.condition_on_t = false;
        assert_eq!(c.mask_features(f), [0.1, 0.2, 0.3, 0.4, 0.0]);
        c.ablation.condition_on_t = true;
        c.ablation.condition_on_od = false;
        assert_eq!(c.mask_features(f), [0.0, 0.0, 0.0, 0.0, 0.5]);
        c.ablation.condition_on_t = false;
        assert_eq!(c.mask_features(f), [0.0; 5]);
    }
}
