//! # odt-core
//!
//! The paper's primary contribution: **DOT**, the two-stage
//! Diffusion-based Origin-destination Travel time estimation framework
//! behind the ODT-Oracle of Eq. 1:
//!
//! ```text
//! odt ──f_θ──▶ (Δt, X)      — a travel time AND an explainable PiT
//! ```
//!
//! * [`DotConfig`] — the Table 2 hyper-parameters (`L_G`, `N`, `L_D`,
//!   `d_E`, `L_E`) plus training settings, with the paper's optima and a
//!   CPU-scale `fast` profile.
//! * [`Dot::train`] — the two-stage pipeline of §3.3/§5: stage 1 trains the
//!   conditioned PiT denoiser (Algorithm 2); its parameters are then frozen
//!   and stage 2 trains the travel-time estimator on PiTs, early-stopped on
//!   the MAE over PiTs *inferred* for the validation split, exactly as §6.3
//!   prescribes.
//! * [`Dot::estimate`] — Algorithm 1 (conditioned reverse diffusion) to
//!   infer the PiT, then the estimator for the travel time.
//! * [`AblationOptions`] — the Table 7 variants: *No-t* / *No-od* /
//!   *No-odt* conditioning masks, *No-CE* / *No-ST* embedding switches and
//!   the *Est-CNN* / *Est-ViT* estimator swaps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod oracle;
mod persist;
mod train;

pub use config::{AblationOptions, DotConfig, EstimatorKind};
pub use oracle::{pit_to_path_points, Dot, Estimate};
pub use train::TrainingReport;
