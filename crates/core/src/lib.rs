//! # odt-core
//!
//! The paper's primary contribution: **DOT**, the two-stage
//! Diffusion-based Origin-destination Travel time estimation framework
//! behind the ODT-Oracle of Eq. 1:
//!
//! ```text
//! odt ──f_θ──▶ (Δt, X)      — a travel time AND an explainable PiT
//! ```
//!
//! * [`DotConfig`] — the Table 2 hyper-parameters (`L_G`, `N`, `L_D`,
//!   `d_E`, `L_E`) plus training settings, with the paper's optima and a
//!   CPU-scale `fast` profile.
//! * [`Dot::train`] — the two-stage pipeline of §3.3/§5: stage 1 trains the
//!   conditioned PiT denoiser (Algorithm 2); its parameters are then frozen
//!   and stage 2 trains the travel-time estimator on PiTs, early-stopped on
//!   the MAE over PiTs *inferred* for the validation split, exactly as §6.3
//!   prescribes.
//! * [`Dot::estimate`] — Algorithm 1 (conditioned reverse diffusion) to
//!   infer the PiT, then the estimator for the travel time.
//! * [`AblationOptions`] — the Table 7 variants: *No-t* / *No-od* /
//!   *No-odt* conditioning masks, *No-CE* / *No-ST* embedding switches and
//!   the *Est-CNN* / *Est-ViT* estimator swaps.
//!
//! ## Robustness layer
//!
//! * Training runs behind a divergence watchdog (skip poisoned batches,
//!   roll back on repeated trips) and can crash-resume via
//!   [`Dot::train_resumable`] / [`TrainCheckpoint`].
//! * Checkpoints use a versioned CRC-framed format written atomically;
//!   [`Dot::load`] returns a typed [`PersistError`] on corruption, version
//!   or shape mismatch, and never constructs a model from non-finite
//!   parameters.
//! * Serving sanitizes malformed queries ([`sanitize_odt`]) and falls back
//!   to a haversine-speed prior when PiT inference degenerates; every
//!   defensive action is counted in [`RobustnessStats`], surfaced via
//!   [`Dot::robustness`].
//!
//! ## Observability layer
//!
//! Training and serving are instrumented through [`odt_obs`]: typed events
//! (`train.*`, `serve.*`) replace ad-hoc progress strings — the legacy
//! `progress: impl FnMut(&str)` callbacks still work, fed the `message()`
//! of each event — per-iteration and per-query latencies land in named
//! histograms (`train.stage1.iter`, `serve.query.full`,
//! `serve.query.fallback`), and robustness counters are published as
//! `robustness.*` gauges. See DESIGN.md §7 for the event taxonomy and
//! metric names.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod guard;
mod oracle;
mod persist;
mod registry;
mod train;

pub use config::{AblationOptions, DotConfig, EstimatorKind, RobustnessOptions};
pub use guard::{
    fallback_estimate_seconds, haversine_m, pit_is_degenerate, point_excess_spans, sanitize_odt,
    sanitize_odt_strict, QueryRejectReason, RobustnessSnapshot, RobustnessStats, FALLBACK_CIRCUITY,
    FALLBACK_OVERHEAD_S, FALLBACK_SPEED_MPS, FAR_QUERY_SPANS, SATURATION_FRACTION,
};
pub use oracle::{pit_to_path_points, Dot, Estimate, PitSampler};
pub use persist::{PersistError, CHECKPOINT_VERSION};
pub use registry::{ModelRegistry, RegistryError, CURRENT_FILE, REGISTRY_EXT};
pub use train::{TrainCheckpoint, TrainHooks, TrainingReport};
