//! The model registry: versioned CRC-framed checkpoints on disk, with
//! an atomically-updated `CURRENT` pointer.
//!
//! Zero-downtime model replacement needs a place where checkpoint
//! versions accumulate and exactly one is "what this process serves".
//! The registry is deliberately dumb storage — a directory:
//!
//! ```text
//! registry/
//!   v1.dotckpt      ← checkpoint format v1 (persist.rs framing)
//!   v2.dotckpt
//!   CURRENT         ← "2\n", written via temp-file + rename
//! ```
//!
//! Every mutation is crash-safe the same way checkpoints themselves
//! are: content lands under a temp name in the same directory and is
//! renamed into place, so a torn write can never leave a half-visible
//! version or a `CURRENT` pointing at garbage. Candidate files are
//! framing-validated (magic, version, declared length, CRC32) **before**
//! they're admitted into the registry; schema/shape validation happens
//! at [`Dot::load`] time, and the swap machinery on top adds shadow
//! scoring — the registry only guarantees "this file is an intact
//! checkpoint".

use crate::oracle::Dot;
use crate::persist::{read_validated_bytes, PersistError, CKPT_MAGIC};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File extension of registry checkpoint versions.
pub const REGISTRY_EXT: &str = "dotckpt";
/// Name of the current-version pointer file.
pub const CURRENT_FILE: &str = "CURRENT";

/// Why a registry operation failed.
#[derive(Debug)]
pub enum RegistryError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The candidate (or stored) checkpoint failed integrity or schema
    /// validation.
    Persist(PersistError),
    /// `CURRENT` exists but names a version with no checkpoint file.
    MissingVersion {
        /// The dangling version number.
        version: u64,
    },
    /// The registry has no `CURRENT` pointer yet.
    NoCurrent,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry I/O error: {e}"),
            RegistryError::Persist(e) => write!(f, "registry checkpoint invalid: {e}"),
            RegistryError::MissingVersion { version } => {
                write!(f, "registry CURRENT points at missing version v{version}")
            }
            RegistryError::NoCurrent => write!(f, "registry has no CURRENT version"),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io(e) => Some(e),
            RegistryError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}

impl From<PersistError> for RegistryError {
    fn from(e: PersistError) -> Self {
        RegistryError::Persist(e)
    }
}

/// A checkpoint registry rooted at one directory.
#[derive(Clone, Debug)]
pub struct ModelRegistry {
    dir: PathBuf,
}

impl ModelRegistry {
    /// Open (creating if needed) the registry at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ModelRegistry, RegistryError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ModelRegistry { dir })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of version `v`'s checkpoint file.
    pub fn version_path(&self, v: u64) -> PathBuf {
        self.dir.join(format!("v{v}.{REGISTRY_EXT}"))
    }

    /// All stored versions, ascending.
    pub fn versions(&self) -> Result<Vec<u64>, RegistryError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name.strip_suffix(&format!(".{REGISTRY_EXT}")) else {
                continue;
            };
            if let Some(v) = stem.strip_prefix('v').and_then(|s| s.parse::<u64>().ok()) {
                out.push(v);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// The version `CURRENT` points at, if any.
    pub fn current_version(&self) -> Result<Option<u64>, RegistryError> {
        match std::fs::read_to_string(self.dir.join(CURRENT_FILE)) {
            Ok(text) => Ok(text.trim().parse::<u64>().ok()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Framing-validate a candidate checkpoint file (magic, version,
    /// length, CRC32) without loading it. The cheap first gate of every
    /// swap: a corrupt file is refused here, before model construction.
    pub fn validate_file(&self, path: &Path) -> Result<(), RegistryError> {
        read_validated_bytes(path, CKPT_MAGIC)?;
        Ok(())
    }

    /// Save `model` as the next version and point `CURRENT` at it.
    /// Returns the new version number.
    pub fn publish(&self, model: &Dot) -> Result<u64, RegistryError> {
        let v = self.next_version()?;
        model.save(&self.version_path(v))?;
        self.set_current(v)?;
        Ok(v)
    }

    /// Admit an external checkpoint file as the next version and point
    /// `CURRENT` at it: framing-validate, copy into the registry under
    /// a temp name, rename into the version slot. Returns the version.
    pub fn promote_file(&self, candidate: &Path) -> Result<u64, RegistryError> {
        self.validate_file(candidate)?;
        let v = self.next_version()?;
        let dst = self.version_path(v);
        let tmp = dst.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::copy(candidate, &tmp)?;
        if let Err(e) = std::fs::rename(&tmp, &dst) {
            std::fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        self.set_current(v)?;
        Ok(v)
    }

    /// Point `CURRENT` at an existing version (atomic temp + rename).
    pub fn set_current(&self, v: u64) -> Result<(), RegistryError> {
        if !self.version_path(v).exists() {
            return Err(RegistryError::MissingVersion { version: v });
        }
        let tmp = self
            .dir
            .join(format!("{CURRENT_FILE}.tmp.{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "{v}")?;
            f.sync_all().ok();
        }
        match std::fs::rename(&tmp, self.dir.join(CURRENT_FILE)) {
            Ok(()) => Ok(()),
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                Err(e.into())
            }
        }
    }

    /// Load the `CURRENT` model (full integrity + shape validation).
    pub fn load_current(&self) -> Result<(u64, Dot), RegistryError> {
        let v = self.current_version()?.ok_or(RegistryError::NoCurrent)?;
        Ok((v, self.load_version(v)?))
    }

    /// Load one stored version.
    pub fn load_version(&self, v: u64) -> Result<Dot, RegistryError> {
        let path = self.version_path(v);
        if !path.exists() {
            return Err(RegistryError::MissingVersion { version: v });
        }
        Ok(Dot::load(&path)?)
    }

    fn next_version(&self) -> Result<u64, RegistryError> {
        Ok(self.versions()?.last().copied().unwrap_or(0) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::write_versioned;

    fn temp_registry(tag: &str) -> ModelRegistry {
        let dir = std::env::temp_dir().join(format!("odt_registry_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ModelRegistry::open(dir).unwrap()
    }

    /// A structurally-valid framed file whose payload is arbitrary JSON
    /// (framing validation is schema-blind, so registry plumbing tests
    /// need no trained model).
    fn framed_file(dir: &Path, name: &str) -> PathBuf {
        let path = dir.join(name);
        write_versioned(&path, CKPT_MAGIC, &serde_json::json!({"k": [1, 2, 3]})).unwrap();
        path
    }

    #[test]
    fn empty_registry_has_no_versions_and_no_current() {
        let r = temp_registry("empty");
        assert_eq!(r.versions().unwrap(), Vec::<u64>::new());
        assert_eq!(r.current_version().unwrap(), None);
        assert!(matches!(r.load_current(), Err(RegistryError::NoCurrent)));
        let _ = std::fs::remove_dir_all(r.dir());
    }

    #[test]
    fn promote_file_validates_copies_and_advances_current() {
        let r = temp_registry("promote");
        let cand = framed_file(r.dir(), "candidate.json");
        let v1 = r.promote_file(&cand).unwrap();
        assert_eq!(v1, 1);
        assert_eq!(r.current_version().unwrap(), Some(1));
        assert!(r.version_path(1).exists());
        // A second promotion lands as v2 and CURRENT follows it.
        let v2 = r.promote_file(&cand).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(r.current_version().unwrap(), Some(2));
        assert_eq!(r.versions().unwrap(), vec![1, 2]);
        let _ = std::fs::remove_dir_all(r.dir());
    }

    #[test]
    fn corrupt_candidates_are_refused_and_leave_no_trace() {
        let r = temp_registry("corrupt");
        let cand = framed_file(r.dir(), "candidate.json");
        let mut bytes = std::fs::read(&cand).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10; // flip a payload bit: CRC must catch it
        std::fs::write(&cand, &bytes).unwrap();
        match r.promote_file(&cand) {
            Err(RegistryError::Persist(PersistError::Corrupt { detail })) => {
                assert!(detail.contains("crc32"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert_eq!(r.versions().unwrap(), Vec::<u64>::new());
        assert_eq!(r.current_version().unwrap(), None);
        let _ = std::fs::remove_dir_all(r.dir());
    }

    #[test]
    fn current_cannot_point_at_a_missing_version() {
        let r = temp_registry("dangling");
        assert!(matches!(
            r.set_current(7),
            Err(RegistryError::MissingVersion { version: 7 })
        ));
        let _ = std::fs::remove_dir_all(r.dir());
    }

    #[test]
    fn stray_files_do_not_count_as_versions() {
        let r = temp_registry("stray");
        framed_file(r.dir(), "notes.json");
        std::fs::write(r.dir().join("vX.dotckpt"), "junk").unwrap();
        std::fs::write(r.dir().join("v3.backup"), "junk").unwrap();
        let cand = framed_file(r.dir(), "candidate.json");
        r.promote_file(&cand).unwrap();
        assert_eq!(r.versions().unwrap(), vec![1]);
        let _ = std::fs::remove_dir_all(r.dir());
    }
}
