//! The trained DOT oracle: PiT inference (Algorithm 1) + travel-time
//! estimation, implementing Eq. 1's `odt → (Δt, X)`.

use crate::config::DotConfig;
use crate::guard::{self, RobustnessSnapshot, RobustnessStats};
use crate::train::TrainingReport;
use odt_diffusion::{ConditionedDenoiser, Ddpm};
use odt_estimator::PitEstimator;
use odt_obs::{event, Level};
use odt_roadnet::{Point, Projection};
use odt_tensor::{Graph, Tensor};
use odt_traj::{GridSpec, OdtInput, Pit};
use rand::Rng;
use std::time::{Duration, Instant};

/// Record one served query into the per-path latency histograms:
/// `serve.query.fallback` when the answer came from the degraded-mode
/// haversine prior, `serve.query.full` when the full DDPM → estimator
/// pipeline produced it. `serve.queries` counts both. Batched serving
/// records the amortized per-query share of the batch's wall clock.
fn record_query_latency(elapsed: Duration, fallback: bool) {
    let hist = if fallback {
        odt_obs::histogram("serve.query.fallback")
    } else {
        odt_obs::histogram("serve.query.full")
    };
    hist.record(elapsed);
    odt_obs::counter("serve.queries").inc();
}

/// Which reverse-diffusion sampler answers a query — the model-backed rungs
/// of the serving degradation ladder (`odt-serve`). Each variant trades PiT
/// fidelity for latency; the terminal (model-free) rung is
/// [`Dot::estimate_prior`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PitSampler {
    /// Full stochastic DDPM over every trained step, with candidate
    /// selection (Algorithm 1 — the highest-fidelity rung).
    Ddpm,
    /// Stochastic DDPM over an evenly strided subsequence of this many
    /// steps ([`Ddpm::sample_clamped_strided`]).
    DdpmStrided(usize),
    /// Deterministic DDIM over this many strided steps
    /// ([`Dot::infer_pits_fast`]).
    Ddim(usize),
}

impl PitSampler {
    /// Short tag for events and reports.
    pub fn name(&self) -> &'static str {
        match self {
            PitSampler::Ddpm => "ddpm",
            PitSampler::DdpmStrided(_) => "ddpm_strided",
            PitSampler::Ddim(_) => "ddim",
        }
    }
}

/// The output of the oracle: a travel time and the inferred PiT that
/// explains it (§6.6's explainability analysis).
pub struct Estimate {
    /// Predicted travel time, seconds.
    pub seconds: f64,
    /// The inferred Pixelated Trajectory.
    pub pit: Pit,
}

/// A trained DOT model.
pub struct Dot {
    pub(crate) cfg: DotConfig,
    pub(crate) grid: GridSpec,
    pub(crate) denoiser: ConditionedDenoiser,
    pub(crate) ddpm: Ddpm,
    pub(crate) estimator: Box<dyn PitEstimator>,
    pub(crate) tt_mean: f64,
    pub(crate) tt_std: f64,
    pub(crate) report: TrainingReport,
    pub(crate) stats: RobustnessStats,
}

impl Dot {
    /// The configuration the model was trained with.
    pub fn config(&self) -> &DotConfig {
        &self.cfg
    }

    /// The PiT grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Training diagnostics (stage timings, parameter counts).
    pub fn report(&self) -> &TrainingReport {
        &self.report
    }

    /// Current robustness counters: every defensive action the model has
    /// taken across training (watchdog trips, rollbacks) and serving
    /// (clamped queries, degenerate PiTs, fallback estimates).
    pub fn robustness(&self) -> RobustnessSnapshot {
        self.stats.snapshot()
    }

    /// Masked conditioning features for an ODT-Input.
    pub(crate) fn cond_features(&self, odt: &OdtInput) -> [f32; 5] {
        self.cfg
            .mask_features(odt.features(self.grid.min, self.grid.max))
    }

    /// Raw noise prediction `ε_θ(x_n, n, cond)` — exposed for diagnostics
    /// and the per-step error analyses in the evaluation harness.
    pub fn noise_pred(
        &self,
        g: &Graph,
        x_noisy: Tensor,
        n: usize,
        cond: &Tensor,
    ) -> odt_tensor::Var {
        use odt_diffusion::NoisePredictor;
        let b = x_noisy.shape()[0];
        let xv = g.input(x_noisy);
        self.denoiser.predict(g, xv, &vec![n; b], cond)
    }

    /// Expected number of visited cells for a query: along-track length
    /// (crow-fly × a circuity factor) over the cell size, plus endpoints.
    /// Used as the plausibility prior for candidate selection.
    fn expected_cells(&self, odt: &OdtInput) -> f64 {
        const M_PER_DEG: f64 = 111_320.0;
        let mean_lat = (self.grid.min.lat + self.grid.max.lat) / 2.0;
        let dx = (odt.dest.lng - odt.origin.lng) * M_PER_DEG * mean_lat.to_radians().cos();
        let dy = (odt.dest.lat - odt.origin.lat) * M_PER_DEG;
        let crow = (dx * dx + dy * dy).sqrt();
        let cell_m = (self.grid.max.lat - self.grid.min.lat) * M_PER_DEG / self.grid.lg as f64;
        1.3 * crow / cell_m.max(1.0) + 2.0
    }

    /// Infer PiTs for a batch of queries via conditioned reverse diffusion
    /// (Algorithm 1). Batching shares every denoiser forward pass.
    ///
    /// When `infer_candidates > 1`, several reverse chains are sampled per
    /// query and the PiT whose visited-cell count best matches the
    /// occupancy prior is kept — the paper's "infer the most plausible PiT"
    /// made explicit, guarding against the occasional saturated chain at
    /// reduced step counts (DESIGN.md §5).
    pub fn infer_pits(&self, odts: &[OdtInput], rng: &mut impl Rng) -> Vec<Pit> {
        if odts.is_empty() {
            return Vec::new();
        }
        let odts = self.sanitize_all(odts);
        self.infer_pits_presanitized(&odts, rng)
    }

    /// [`Dot::infer_pits`] for queries already passed through
    /// [`Dot::sanitize_all`] — the shared body that lets the serving entry
    /// points sanitize exactly once.
    fn infer_pits_presanitized(&self, odts: &[OdtInput], rng: &mut impl Rng) -> Vec<Pit> {
        let _span = odt_obs::span("oracle.infer_pits");
        let b = odts.len();
        let cond = self.cond_tensor(odts);
        let lg = self.cfg.lg;
        let per = 3 * lg * lg;
        let k = self.cfg.infer_candidates.max(1);
        // best (score, pit) per query across candidate rounds.
        let mut best: Vec<Option<(f64, Pit)>> = (0..b).map(|_| None).collect();
        for _round in 0..k {
            // PiT channels live in [-1, 1]: clamp the implied clean image
            // each reverse step (stabilizes reduced-step CPU schedules).
            let out =
                self.ddpm
                    .sample_clamped(&self.denoiser, &cond, 3, lg, Some((-1.0, 1.0)), rng);
            for i in 0..b {
                // One direct copy of the sample's slab (no intermediate
                // slice + reshape tensors per query per round).
                let t =
                    Tensor::from_vec(out.data()[i * per..(i + 1) * per].to_vec(), vec![3, lg, lg]);
                let pit = Pit::from_tensor(t).sanitized();
                let expected = self.expected_cells(&odts[i]);
                let count = pit.num_visited() as f64;
                // Plausibility: relative deviation from the occupancy
                // prior; empty PiTs are heavily penalized.
                let mut score = (count - expected).abs() / expected.max(1.0);
                if count < 2.0 {
                    score += 10.0;
                }
                if best[i].as_ref().map_or(true, |(s, _)| score < *s) {
                    best[i] = Some((score, pit));
                }
            }
        }
        best.into_iter()
            .map(|b| b.expect("at least one candidate per query").1)
            .collect()
    }

    /// Accelerated PiT inference via deterministic DDIM sampling over
    /// `sample_steps ≤ N` strided schedule steps — an extension beyond the
    /// paper that trades a little PiT fidelity for a large latency cut
    /// (benchmarked in `odt-bench`).
    pub fn infer_pits_fast(
        &self,
        odts: &[OdtInput],
        sample_steps: usize,
        rng: &mut impl Rng,
    ) -> Vec<Pit> {
        if odts.is_empty() {
            return Vec::new();
        }
        let odts = self.sanitize_all(odts);
        self.infer_pits_fast_presanitized(&odts, sample_steps, rng)
    }

    /// Stack the masked conditioning features of a batch into a `[B, 5]`
    /// tensor.
    fn cond_tensor(&self, odts: &[OdtInput]) -> Tensor {
        let mut cond = Tensor::zeros(vec![odts.len(), 5]);
        for (i, odt) in odts.iter().enumerate() {
            for (j, &v) in self.cond_features(odt).iter().enumerate() {
                cond.set(&[i, j], v);
            }
        }
        cond
    }

    /// Split a sampled `[B, 3, L, L]` batch into per-query sanitized PiTs.
    fn pits_from_slab(&self, out: &Tensor, b: usize) -> Vec<Pit> {
        let lg = self.cfg.lg;
        let per = 3 * lg * lg;
        (0..b)
            .map(|i| {
                let t =
                    Tensor::from_vec(out.data()[i * per..(i + 1) * per].to_vec(), vec![3, lg, lg]);
                Pit::from_tensor(t).sanitized()
            })
            .collect()
    }

    /// [`Dot::infer_pits_fast`] for queries already passed through
    /// [`Dot::sanitize_all`].
    fn infer_pits_fast_presanitized(
        &self,
        odts: &[OdtInput],
        sample_steps: usize,
        rng: &mut impl Rng,
    ) -> Vec<Pit> {
        let _span = odt_obs::span("oracle.infer_pits_ddim");
        let cond = self.cond_tensor(odts);
        let out = self.ddpm.sample_ddim(
            &self.denoiser,
            &cond,
            3,
            self.cfg.lg,
            sample_steps,
            Some((-1.0, 1.0)),
            rng,
        );
        self.pits_from_slab(&out, odts.len())
    }

    /// Stochastic DDPM PiT inference with a step-count override
    /// ([`Ddpm::sample_clamped_strided`]), for queries already passed
    /// through [`Dot::sanitize_all`].
    fn infer_pits_strided_presanitized(
        &self,
        odts: &[OdtInput],
        sample_steps: usize,
        rng: &mut impl Rng,
    ) -> Vec<Pit> {
        let _span = odt_obs::span("oracle.infer_pits_strided");
        let cond = self.cond_tensor(odts);
        let out = self.ddpm.sample_clamped_strided(
            &self.denoiser,
            &cond,
            3,
            self.cfg.lg,
            Some((-1.0, 1.0)),
            sample_steps,
            rng,
        );
        self.pits_from_slab(&out, odts.len())
    }

    /// Rung-parameterized PiT inference: run the batch through the given
    /// [`PitSampler`]. Sanitizes exactly once; step counts are clamped into
    /// `1..=N`.
    pub fn infer_pits_sampled(
        &self,
        odts: &[OdtInput],
        sampler: PitSampler,
        rng: &mut impl Rng,
    ) -> Vec<Pit> {
        if odts.is_empty() {
            return Vec::new();
        }
        let odts = self.sanitize_all(odts);
        self.infer_pits_sampled_presanitized(&odts, sampler, rng)
    }

    /// [`Dot::infer_pits_sampled`] for pre-sanitized queries — the shared
    /// dispatch of the serving entry points.
    fn infer_pits_sampled_presanitized(
        &self,
        odts: &[OdtInput],
        sampler: PitSampler,
        rng: &mut impl Rng,
    ) -> Vec<Pit> {
        let clamp_steps = |s: usize| s.clamp(1, self.cfg.n_steps);
        match sampler {
            PitSampler::Ddpm => self.infer_pits_presanitized(odts, rng),
            PitSampler::DdpmStrided(s) => {
                self.infer_pits_strided_presanitized(odts, clamp_steps(s), rng)
            }
            PitSampler::Ddim(s) => self.infer_pits_fast_presanitized(odts, clamp_steps(s), rng),
        }
    }

    /// Infer the PiT for one query.
    pub fn infer_pit(&self, odt: &OdtInput, rng: &mut impl Rng) -> Pit {
        self.infer_pits(std::slice::from_ref(odt), rng)
            .pop()
            .expect("one query in, one PiT out")
    }

    /// Estimate the travel time of an already-available PiT (used by the
    /// Table 7 `Routing+Est.` ablations and by stage-2 training).
    pub fn estimate_from_pit(&self, pit: &Pit) -> f64 {
        let g = Graph::new();
        let pred = self.estimator.predict(&g, pit);
        let v = g.value(pred).data()[0] as f64;
        (v * self.tt_std + self.tt_mean).max(0.0)
    }

    /// Estimate the travel times of a batch of PiTs through one fused
    /// estimator forward pass ([`PitEstimator::predict_batch`]).
    pub fn estimate_from_pits(&self, pits: &[Pit]) -> Vec<f64> {
        if pits.is_empty() {
            return Vec::new();
        }
        let g = Graph::new();
        let pred = self.estimator.predict_batch(&g, pits);
        g.value(pred)
            .data()
            .iter()
            .map(|&v| (v as f64 * self.tt_std + self.tt_mean).max(0.0))
            .collect()
    }

    /// Sanitize a batch of queries (clamping policy of
    /// [`crate::sanitize_odt`]), counting every query that needed repair.
    fn sanitize_all(&self, odts: &[OdtInput]) -> Vec<OdtInput> {
        odts.iter()
            .map(|odt| {
                let (clean, changed) = guard::sanitize_odt(odt, &self.grid);
                if changed {
                    self.stats.record_query_clamped();
                }
                clean
            })
            .collect()
    }

    /// Estimate with the serving guardrails: if the PiT is degenerate
    /// (empty/saturated reverse chain) or the estimator's output is
    /// non-finite, serve the haversine-speed prior instead (when
    /// `robustness.degraded_mode_fallback` is on) and count the fallback.
    ///
    /// Each call records into the per-path latency histograms
    /// (`serve.query.full` / `serve.query.fallback`); fallback decisions
    /// additionally emit `serve.fallback` events.
    pub fn estimate_from_pit_guarded(&self, odt: &OdtInput, pit: Pit) -> Estimate {
        let t0 = Instant::now();
        let (est, fallback) = self.guarded_inner(odt, pit);
        record_query_latency(t0.elapsed(), fallback);
        est
    }

    /// The guardrail decision logic; returns the estimate and whether the
    /// degraded-mode fallback path produced it (the latency-histogram split
    /// key of [`record_query_latency`]).
    fn guarded_inner(&self, odt: &OdtInput, pit: Pit) -> (Estimate, bool) {
        let degenerate = guard::pit_is_degenerate(&pit);
        if degenerate {
            self.stats.record_degenerate_pit();
            event(Level::Warn, "serve.degenerate_pit")
                .field("visited", pit.num_visited())
                .emit();
        }
        if self.cfg.robustness.degraded_mode_fallback {
            if degenerate {
                self.stats.record_fallback();
                event(Level::Warn, "serve.fallback")
                    .field("reason", "degenerate_pit")
                    .emit();
                let seconds = guard::fallback_estimate_seconds(odt);
                return (Estimate { seconds, pit }, true);
            }
            let seconds = self.estimate_from_pit(&pit);
            if !seconds.is_finite() {
                self.stats.record_fallback();
                event(Level::Warn, "serve.fallback")
                    .field("reason", "non_finite_estimate")
                    .emit();
                let seconds = guard::fallback_estimate_seconds(odt);
                return (Estimate { seconds, pit }, true);
            }
            return (Estimate { seconds, pit }, false);
        }
        let seconds = self.estimate_from_pit(&pit);
        (Estimate { seconds, pit }, false)
    }

    /// The full ODT-Oracle (Eq. 1): sanitize the query, infer the PiT,
    /// then estimate the travel time from it — behind the degraded-mode
    /// guardrails of [`Dot::estimate_from_pit_guarded`]. The recorded
    /// query latency covers the whole pipeline, PiT inference included.
    pub fn estimate(&self, odt: &OdtInput, rng: &mut impl Rng) -> Estimate {
        self.estimate_sampled(odt, PitSampler::Ddpm, rng)
    }

    /// Rung-parameterized serving entry point: [`Dot::estimate`] with the
    /// PiT inferred by the given [`PitSampler`]. Sanitization, degraded-mode
    /// guardrails and latency accounting match [`Dot::estimate`]; the
    /// serving frontend (`odt-serve`) maps its degradation-ladder rungs
    /// onto this.
    pub fn estimate_sampled(
        &self,
        odt: &OdtInput,
        sampler: PitSampler,
        rng: &mut impl Rng,
    ) -> Estimate {
        let t0 = Instant::now();
        let (clean, changed) = guard::sanitize_odt(odt, &self.grid);
        if changed {
            self.stats.record_query_clamped();
        }
        let pit = self
            .infer_pits_sampled_presanitized(std::slice::from_ref(&clean), sampler, rng)
            .pop()
            .expect("one query in, one PiT out");
        // Estimator stage as its own child span (only when a request trace
        // is active): lets `trace_report` split a request's critical path
        // into PiT inference vs MLM estimation.
        let _est_span = odt_obs::span_if_traced("oracle.estimator");
        let (est, fallback) = self.guarded_inner(&clean, pit);
        record_query_latency(t0.elapsed(), fallback);
        est
    }

    /// The model-free terminal rung of the serving ladder: answer straight
    /// from the haversine-speed prior ([`guard::fallback_estimate_seconds`])
    /// without touching the diffusion model. Always finite for any query;
    /// counted as a fallback in [`RobustnessStats`] and recorded on the
    /// `serve.query.fallback` latency path. The returned PiT is empty (there
    /// is no inferred trajectory to explain a prior-based answer).
    pub fn estimate_prior(&self, odt: &OdtInput) -> Estimate {
        let t0 = Instant::now();
        let (clean, changed) = guard::sanitize_odt(odt, &self.grid);
        if changed {
            self.stats.record_query_clamped();
        }
        self.stats.record_fallback();
        event(Level::Info, "serve.fallback")
            .field("reason", "prior_rung")
            .emit();
        let seconds = guard::fallback_estimate_seconds(&clean);
        let lg = self.cfg.lg;
        let pit = Pit::from_tensor(Tensor::full(vec![3, lg, lg], -1.0));
        record_query_latency(t0.elapsed(), true);
        Estimate { seconds, pit }
    }

    /// Strict admission-time sanitization for the serving frontend:
    /// [`guard::sanitize_odt_strict`] with robustness accounting. Far
    /// out-of-region queries return the typed [`QueryRejectReason`] (and
    /// bump the `queries_rejected` counter) instead of being clamped onto
    /// the boundary; everything else is repaired and counted exactly like
    /// [`Dot::estimate`]'s lenient path.
    pub fn sanitize_strict(&self, odt: &OdtInput) -> Result<OdtInput, guard::QueryRejectReason> {
        match guard::sanitize_odt_strict(odt, &self.grid) {
            Ok((clean, changed)) => {
                if changed {
                    self.stats.record_query_clamped();
                }
                Ok(clean)
            }
            Err(reason) => {
                self.stats.record_query_rejected();
                event(Level::Warn, "serve.query_rejected")
                    .field("reason", reason.kind())
                    .field("spans", reason.spans())
                    .emit();
                Err(reason)
            }
        }
    }

    /// Batched ODT-Oracle serving: sanitize every query once, infer all
    /// PiTs through **one** shared reverse-diffusion chain (every denoiser
    /// forward pass covers the whole batch), then estimate the surviving
    /// queries through **one** fused estimator pass. Per-query guardrails
    /// match [`Dot::estimate`]: degenerate PiTs and non-finite estimates
    /// fall back to the haversine prior when degraded mode is enabled.
    ///
    /// The batch wall clock is amortized into the per-path latency
    /// histograms (one `serve.queries` tick per query), so serving metrics
    /// stay comparable between the sequential and batched paths.
    pub fn estimate_batch(&self, odts: &[OdtInput], rng: &mut impl Rng) -> Vec<Estimate> {
        if odts.is_empty() {
            return Vec::new();
        }
        let _span = odt_obs::span("oracle.estimate_batch");
        let t0 = Instant::now();
        let n = odts.len();
        let clean = self.sanitize_all(odts);
        let pits = self.infer_pits_presanitized(&clean, rng);
        let fallback_on = self.cfg.robustness.degraded_mode_fallback;
        let mut seconds = vec![0.0f64; n];
        let mut is_fallback = vec![false; n];
        let mut live_idx: Vec<usize> = Vec::with_capacity(n);
        let mut live_pits: Vec<Pit> = Vec::with_capacity(n);
        for (i, pit) in pits.iter().enumerate() {
            let degenerate = guard::pit_is_degenerate(pit);
            if degenerate {
                self.stats.record_degenerate_pit();
                event(Level::Warn, "serve.degenerate_pit")
                    .field("visited", pit.num_visited())
                    .emit();
            }
            if fallback_on && degenerate {
                self.stats.record_fallback();
                event(Level::Warn, "serve.fallback")
                    .field("reason", "degenerate_pit")
                    .emit();
                seconds[i] = guard::fallback_estimate_seconds(&clean[i]);
                is_fallback[i] = true;
            } else {
                live_idx.push(i);
                live_pits.push(pit.clone());
            }
        }
        if !live_pits.is_empty() {
            for (&i, s) in live_idx.iter().zip(self.estimate_from_pits(&live_pits)) {
                if fallback_on && !s.is_finite() {
                    self.stats.record_fallback();
                    event(Level::Warn, "serve.fallback")
                        .field("reason", "non_finite_estimate")
                        .emit();
                    seconds[i] = guard::fallback_estimate_seconds(&clean[i]);
                    is_fallback[i] = true;
                } else {
                    seconds[i] = s;
                }
            }
        }
        let per_query = t0.elapsed() / n as u32;
        for &fb in &is_fallback {
            record_query_latency(per_query, fb);
        }
        pits.into_iter()
            .zip(seconds)
            .map(|(pit, seconds)| Estimate { seconds, pit })
            .collect()
    }

    /// [`Dot::estimate`] over the accelerated DDIM sampler
    /// ([`Dot::infer_pits_fast`]) — same sanitization and degraded-mode
    /// guardrails, reduced latency.
    pub fn estimate_fast(
        &self,
        odt: &OdtInput,
        sample_steps: usize,
        rng: &mut impl Rng,
    ) -> Estimate {
        self.estimate_sampled(odt, PitSampler::Ddim(sample_steps), rng)
    }

    /// Total number of trainable scalars per stage, `(stage1, stage2)`.
    pub fn param_counts(&self) -> (usize, usize) {
        (self.report.stage1_params, self.report.stage2_params)
    }

    /// Model size in bytes (both stages; Table 5).
    pub fn model_size_bytes(&self) -> usize {
        (self.report.stage1_params + self.report.stage2_params) * 4
    }
}

/// Convert an (inferred) PiT into an ordered polyline of cell centers by
/// sorting visited cells on the time-offset channel — how the Table 7
/// `Infer.+WDDRA` / `Infer.+STDGCN` variants feed path-based estimators,
/// and how Figure 10/11 renders inferred routes.
pub fn pit_to_path_points(pit: &Pit, grid: &GridSpec, proj: &Projection) -> Vec<Point> {
    let mut visited: Vec<(f32, usize, usize)> = Vec::new();
    for row in 0..pit.lg() {
        for col in 0..pit.lg() {
            if pit.is_visited(row, col) {
                visited.push((pit.at(odt_traj_offset_channel(), row, col), row, col));
            }
        }
    }
    visited.sort_by(|a, b| a.0.total_cmp(&b.0));
    visited
        .into_iter()
        .map(|(_, row, col)| proj.to_point(grid.cell_center(row, col)))
        .collect()
}

/// The PiT time-offset channel index (re-exported to keep the dependency
/// one-way).
fn odt_traj_offset_channel() -> usize {
    2
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_roadnet::LngLat;

    #[test]
    fn pit_path_orders_by_offset() {
        let grid = GridSpec::new(
            LngLat { lng: 0.0, lat: 0.0 },
            LngLat { lng: 1.0, lat: 1.0 },
            4,
        );
        let proj = Projection::new(LngLat { lng: 0.5, lat: 0.5 });
        let mut t = Tensor::full(vec![3, 4, 4], -1.0);
        // Visit (3,3) first (offset -1), then (0,0) (offset +1).
        for (row, col, offset) in [(3usize, 3usize, -1.0f32), (0, 0, 1.0)] {
            t.set(&[0, row, col], 1.0);
            t.set(&[2, row, col], offset);
        }
        let pit = Pit::from_tensor(t);
        let pts = pit_to_path_points(&pit, &grid, &proj);
        assert_eq!(pts.len(), 2);
        // First point must be the (3,3) cell — the north-east one.
        assert!(pts[0].y > pts[1].y);
    }
}
