//! Serving guardrails and robustness accounting for the DOT oracle.
//!
//! Production OD queries are adversarially messy: out-of-region coordinates,
//! zero-distance pairs, departures decades away, NaN-poisoned inputs. This
//! module centralizes the defensive layer in front of the trained model:
//!
//! * [`sanitize_odt`] — query validation with a *clamping* policy: rather
//!   than rejecting a malformed query, it is projected onto the nearest
//!   well-formed one (coordinates clamped into the area of interest,
//!   non-finite values replaced, departures folded into valid time), so the
//!   oracle always answers.
//! * [`sanitize_odt_strict`] — the clamp-*or-reject* variant used by the
//!   serving frontend (`odt-serve`): endpoints further than
//!   [`FAR_QUERY_SPANS`] grid-spans outside the area of interest yield a
//!   typed [`QueryRejectReason`] instead of a silently clamped query for
//!   the wrong city.
//! * [`pit_is_degenerate`] — detection of reverse-diffusion failures (empty
//!   or saturated PiTs) that would feed the estimator garbage.
//! * [`fallback_estimate_seconds`] — the degraded-mode estimate: a cheap
//!   haversine-distance / speed prior used when PiT inference fails, so a
//!   saturated chain degrades accuracy instead of poisoning the answer.
//! * [`RobustnessStats`] / [`RobustnessSnapshot`] — counters for every
//!   defensive action taken (watchdog trips, skipped batches, rollbacks,
//!   clamped queries, degenerate PiTs, fallbacks), surfaced through
//!   [`crate::Dot::robustness`] and the eval harness.

use odt_roadnet::LngLat;
use odt_traj::{GridSpec, OdtInput, Pit};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for every defensive action the robustness layer takes.
///
/// Serving methods take `&self`, so the counters are atomics; training
/// increments them through the same handle. Read a coherent copy with
/// [`RobustnessStats::snapshot`].
#[derive(Debug, Default)]
pub struct RobustnessStats {
    /// Stage-1/2 watchdog activations (non-finite or spiking loss).
    watchdog_trips: AtomicU64,
    /// Training batches whose update was discarded by the watchdog.
    batches_skipped: AtomicU64,
    /// Parameter rollbacks to the last good snapshot.
    rollbacks: AtomicU64,
    /// Queries whose coordinates or departure time needed clamping.
    queries_clamped: AtomicU64,
    /// Queries rejected outright by strict sanitization (endpoints far
    /// outside the area of interest).
    queries_rejected: AtomicU64,
    /// Inferred PiTs rejected as degenerate (empty or saturated).
    degenerate_pits: AtomicU64,
    /// Estimates served from the haversine-speed prior instead of the model.
    fallbacks_taken: AtomicU64,
}

impl RobustnessStats {
    /// Record a watchdog activation.
    pub fn record_watchdog_trip(&self) {
        self.watchdog_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a discarded training batch.
    pub fn record_batch_skipped(&self) {
        self.batches_skipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a parameter rollback.
    pub fn record_rollback(&self) {
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a clamped query.
    pub fn record_query_clamped(&self) {
        self.queries_clamped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a query rejected by strict sanitization.
    pub fn record_query_rejected(&self) {
        self.queries_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a degenerate inferred PiT.
    pub fn record_degenerate_pit(&self) {
        self.degenerate_pits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a degraded-mode fallback estimate.
    pub fn record_fallback(&self) {
        self.fallbacks_taken.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-value copy of the counters.
    pub fn snapshot(&self) -> RobustnessSnapshot {
        RobustnessSnapshot {
            watchdog_trips: self.watchdog_trips.load(Ordering::Relaxed),
            batches_skipped: self.batches_skipped.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            queries_clamped: self.queries_clamped.load(Ordering::Relaxed),
            queries_rejected: self.queries_rejected.load(Ordering::Relaxed),
            degenerate_pits: self.degenerate_pits.load(Ordering::Relaxed),
            fallbacks_taken: self.fallbacks_taken.load(Ordering::Relaxed),
        }
    }

    /// Publish the counters as `robustness.*` gauges in the global
    /// [`odt_obs`] metrics registry, so robustness accounting shows up in
    /// metrics summaries and `--telemetry` dumps alongside latency
    /// histograms. Gauges (not counters) because the registry is global
    /// while stats are per-model: the latest publish wins.
    pub fn publish_gauges(&self) {
        let s = self.snapshot();
        odt_obs::gauge("robustness.watchdog_trips").set(s.watchdog_trips as f64);
        odt_obs::gauge("robustness.batches_skipped").set(s.batches_skipped as f64);
        odt_obs::gauge("robustness.rollbacks").set(s.rollbacks as f64);
        odt_obs::gauge("robustness.queries_clamped").set(s.queries_clamped as f64);
        odt_obs::gauge("robustness.queries_rejected").set(s.queries_rejected as f64);
        odt_obs::gauge("robustness.degenerate_pits").set(s.degenerate_pits as f64);
        odt_obs::gauge("robustness.fallbacks_taken").set(s.fallbacks_taken as f64);
    }

    /// Rebuild counters from a snapshot (checkpoint restore).
    pub fn from_snapshot(s: RobustnessSnapshot) -> Self {
        RobustnessStats {
            watchdog_trips: AtomicU64::new(s.watchdog_trips),
            batches_skipped: AtomicU64::new(s.batches_skipped),
            rollbacks: AtomicU64::new(s.rollbacks),
            queries_clamped: AtomicU64::new(s.queries_clamped),
            queries_rejected: AtomicU64::new(s.queries_rejected),
            degenerate_pits: AtomicU64::new(s.degenerate_pits),
            fallbacks_taken: AtomicU64::new(s.fallbacks_taken),
        }
    }
}

/// A plain-value view of [`RobustnessStats`], serializable into checkpoints
/// and reports.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessSnapshot {
    /// Stage-1/2 watchdog activations (non-finite or spiking loss).
    pub watchdog_trips: u64,
    /// Training batches whose update was discarded by the watchdog.
    pub batches_skipped: u64,
    /// Parameter rollbacks to the last good snapshot.
    pub rollbacks: u64,
    /// Queries whose coordinates or departure time needed clamping.
    pub queries_clamped: u64,
    /// Queries rejected outright by strict sanitization (`#[serde(default)]`
    /// keeps pre-existing checkpoints loadable).
    #[serde(default)]
    pub queries_rejected: u64,
    /// Inferred PiTs rejected as degenerate (empty or saturated).
    pub degenerate_pits: u64,
    /// Estimates served from the haversine-speed prior.
    pub fallbacks_taken: u64,
}

impl std::fmt::Display for RobustnessSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "watchdog_trips={} batches_skipped={} rollbacks={} \
             queries_clamped={} queries_rejected={} degenerate_pits={} \
             fallbacks_taken={}",
            self.watchdog_trips,
            self.batches_skipped,
            self.rollbacks,
            self.queries_clamped,
            self.queries_rejected,
            self.degenerate_pits,
            self.fallbacks_taken
        )
    }
}

/// Clamp one coordinate into `[lo, hi]`; non-finite values land on the
/// midpoint (the least-wrong guess when the input carries no information).
fn clamp_coord(v: f64, lo: f64, hi: f64) -> f64 {
    let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    if !v.is_finite() {
        (lo + hi) / 2.0
    } else {
        v.clamp(lo, hi)
    }
}

/// Project a query onto the nearest well-formed one for the given grid.
///
/// The clamping policy: non-finite or out-of-region coordinates move to the
/// grid midpoint / boundary; a non-finite departure becomes `0.0`; a
/// negative departure is folded into `[0, 86 400)` so time-of-day features
/// stay meaningful. Returns the sanitized query and whether anything
/// changed.
pub fn sanitize_odt(odt: &OdtInput, grid: &GridSpec) -> (OdtInput, bool) {
    let clamp_pt = |p: LngLat| LngLat {
        lng: clamp_coord(p.lng, grid.min.lng, grid.max.lng),
        lat: clamp_coord(p.lat, grid.min.lat, grid.max.lat),
    };
    let t_dep = if !odt.t_dep.is_finite() {
        0.0
    } else if odt.t_dep < 0.0 {
        odt.t_dep.rem_euclid(86_400.0)
    } else {
        odt.t_dep
    };
    let clean = OdtInput {
        origin: clamp_pt(odt.origin),
        dest: clamp_pt(odt.dest),
        t_dep,
    };
    let changed = clean != *odt
        // NaN != NaN, so an all-NaN query would otherwise report unchanged.
        || !odt.origin.lng.is_finite()
        || !odt.origin.lat.is_finite()
        || !odt.dest.lng.is_finite()
        || !odt.dest.lat.is_finite()
        || !odt.t_dep.is_finite();
    (clean, changed)
}

/// How far outside the area of interest a *finite* coordinate may lie, in
/// units of the grid's own span per axis, before strict sanitization
/// ([`sanitize_odt_strict`]) rejects the query instead of clamping it. A
/// point one full grid-width away from the boundary is not a noisy local
/// query — it is a query for a different city, and clamping it onto the
/// boundary would silently serve a nonsensical estimate.
pub const FAR_QUERY_SPANS: f64 = 1.0;

/// Typed reason a query was rejected by [`sanitize_odt_strict`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum QueryRejectReason {
    /// The origin lies this many grid-spans outside the area of interest.
    FarOrigin {
        /// Out-of-bounds excess, in units of the grid span (`> FAR_QUERY_SPANS`).
        spans: f64,
    },
    /// The destination lies this many grid-spans outside the area of
    /// interest.
    FarDestination {
        /// Out-of-bounds excess, in units of the grid span (`> FAR_QUERY_SPANS`).
        spans: f64,
    },
}

impl QueryRejectReason {
    /// Machine-readable reason tag (event field / drill report key).
    pub fn kind(&self) -> &'static str {
        match self {
            QueryRejectReason::FarOrigin { .. } => "far_origin",
            QueryRejectReason::FarDestination { .. } => "far_destination",
        }
    }

    /// The out-of-bounds excess in grid spans.
    pub fn spans(&self) -> f64 {
        match *self {
            QueryRejectReason::FarOrigin { spans } => spans,
            QueryRejectReason::FarDestination { spans } => spans,
        }
    }
}

impl std::fmt::Display for QueryRejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryRejectReason::FarOrigin { spans } => {
                write!(
                    f,
                    "origin {spans:.2} grid-spans outside the area of interest"
                )
            }
            QueryRejectReason::FarDestination { spans } => {
                write!(
                    f,
                    "destination {spans:.2} grid-spans outside the area of interest"
                )
            }
        }
    }
}

/// How many grid-spans outside the area of interest a point lies (0 when it
/// is inside). Non-finite coordinates report 0: they carry no location
/// information, so the clamping policy (midpoint) remains the least-wrong
/// repair — only *finite but far* coordinates mark a mis-routed query.
pub fn point_excess_spans(p: LngLat, grid: &GridSpec) -> f64 {
    let axis = |v: f64, lo: f64, hi: f64| -> f64 {
        if !v.is_finite() {
            return 0.0;
        }
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let span = (hi - lo).max(f64::EPSILON);
        ((lo - v).max(v - hi).max(0.0)) / span
    };
    axis(p.lng, grid.min.lng, grid.max.lng).max(axis(p.lat, grid.min.lat, grid.max.lat))
}

/// [`sanitize_odt`] with a rejection policy for far-out-of-region queries:
/// an endpoint more than [`FAR_QUERY_SPANS`] grid-spans outside the area of
/// interest yields a typed [`QueryRejectReason`] instead of a silently
/// clamped (and therefore meaningless) query. Everything else — nearby
/// out-of-bounds points, non-finite coordinates or departures — is repaired
/// exactly as by [`sanitize_odt`]. Returns the sanitized query and whether
/// anything changed.
pub fn sanitize_odt_strict(
    odt: &OdtInput,
    grid: &GridSpec,
) -> Result<(OdtInput, bool), QueryRejectReason> {
    let origin_excess = point_excess_spans(odt.origin, grid);
    if origin_excess > FAR_QUERY_SPANS {
        return Err(QueryRejectReason::FarOrigin {
            spans: origin_excess,
        });
    }
    let dest_excess = point_excess_spans(odt.dest, grid);
    if dest_excess > FAR_QUERY_SPANS {
        return Err(QueryRejectReason::FarDestination { spans: dest_excess });
    }
    Ok(sanitize_odt(odt, grid))
}

/// Fraction of grid cells above which an inferred PiT counts as saturated —
/// real urban routes on a `L_G × L_G` grid visit a thin band of cells, never
/// half the city.
pub const SATURATION_FRACTION: f64 = 0.5;

/// Whether an inferred PiT is unusable for estimation: (near-)empty, or
/// saturated (the reverse chain collapsed to "everything visited"). Such
/// PiTs would feed the estimator an input unlike anything it trained on.
pub fn pit_is_degenerate(pit: &Pit) -> bool {
    let visited = pit.num_visited();
    let cells = pit.lg() * pit.lg();
    visited < 2 || (visited as f64) >= SATURATION_FRACTION * cells as f64
}

/// Haversine great-circle distance in meters.
pub fn haversine_m(a: LngLat, b: LngLat) -> f64 {
    const R: f64 = 6_371_000.0;
    let (lat1, lat2) = (a.lat.to_radians(), b.lat.to_radians());
    let dlat = (b.lat - a.lat).to_radians();
    let dlng = (b.lng - a.lng).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlng / 2.0).sin().powi(2);
    2.0 * R * h.sqrt().asin()
}

/// Circuity factor for the fallback prior: road distance exceeds the crow
/// line by roughly this factor in urban networks.
pub const FALLBACK_CIRCUITY: f64 = 1.3;
/// Assumed average speed for the fallback prior, m/s (≈ 29 km/h urban).
pub const FALLBACK_SPEED_MPS: f64 = 8.0;
/// Fixed overhead of the fallback prior, seconds (pull-out, terminal time).
pub const FALLBACK_OVERHEAD_S: f64 = 60.0;

/// The degraded-mode travel-time estimate: haversine distance scaled by a
/// circuity factor over an urban speed prior, plus a fixed overhead. Always
/// finite and non-negative for sanitized queries; zero-distance queries get
/// the overhead alone.
pub fn fallback_estimate_seconds(odt: &OdtInput) -> f64 {
    let crow = haversine_m(odt.origin, odt.dest);
    let secs = FALLBACK_CIRCUITY * crow / FALLBACK_SPEED_MPS + FALLBACK_OVERHEAD_S;
    if secs.is_finite() {
        secs.max(0.0)
    } else {
        FALLBACK_OVERHEAD_S
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_tensor::Tensor;

    fn grid() -> GridSpec {
        GridSpec::new(
            LngLat {
                lng: 104.0,
                lat: 30.0,
            },
            LngLat {
                lng: 104.2,
                lat: 30.2,
            },
            8,
        )
    }

    #[test]
    fn sanitize_leaves_valid_queries_alone() {
        let odt = OdtInput {
            origin: LngLat {
                lng: 104.05,
                lat: 30.05,
            },
            dest: LngLat {
                lng: 104.15,
                lat: 30.15,
            },
            t_dep: 43_200.0,
        };
        let (clean, changed) = sanitize_odt(&odt, &grid());
        assert!(!changed);
        assert_eq!(clean, odt);
    }

    #[test]
    fn sanitize_clamps_out_of_region_and_nan() {
        let odt = OdtInput {
            origin: LngLat {
                lng: f64::NAN,
                lat: 95.0,
            },
            dest: LngLat {
                lng: 104.1,
                lat: f64::INFINITY,
            },
            t_dep: -3_600.0,
        };
        let (clean, changed) = sanitize_odt(&odt, &grid());
        assert!(changed);
        let g = grid();
        assert!((clean.origin.lng - (g.min.lng + g.max.lng) / 2.0).abs() < 1e-9);
        assert_eq!(clean.origin.lat, g.max.lat);
        assert!((clean.dest.lat - (g.min.lat + g.max.lat) / 2.0).abs() < 1e-9);
        // -1 h folds to 23:00.
        assert_eq!(clean.t_dep, 82_800.0);
        // Everything is finite afterwards.
        assert!(clean.origin.lng.is_finite() && clean.dest.lat.is_finite());
    }

    #[test]
    fn sanitize_handles_nonfinite_departure() {
        let odt = OdtInput {
            origin: LngLat {
                lng: 104.1,
                lat: 30.1,
            },
            dest: LngLat {
                lng: 104.1,
                lat: 30.1,
            },
            t_dep: f64::NAN,
        };
        let (clean, changed) = sanitize_odt(&odt, &grid());
        assert!(changed);
        assert_eq!(clean.t_dep, 0.0);
    }

    #[test]
    fn degenerate_pit_detection() {
        let lg = 8;
        // Empty PiT.
        let empty = Pit::from_tensor(Tensor::full(vec![3, lg, lg], -1.0));
        assert!(pit_is_degenerate(&empty));
        // Saturated PiT (every cell visited).
        let full = Pit::from_tensor(Tensor::full(vec![3, lg, lg], 1.0));
        assert!(pit_is_degenerate(&full));
        // A plausible thin route is fine.
        let mut t = Tensor::full(vec![3, lg, lg], -1.0);
        for i in 0..lg {
            t.set(&[0, i, i], 1.0);
        }
        assert!(!pit_is_degenerate(&Pit::from_tensor(t)));
    }

    #[test]
    fn fallback_is_finite_positive_and_scales_with_distance() {
        let near = OdtInput {
            origin: LngLat {
                lng: 104.0,
                lat: 30.0,
            },
            dest: LngLat {
                lng: 104.0,
                lat: 30.0,
            },
            t_dep: 0.0,
        };
        assert_eq!(fallback_estimate_seconds(&near), FALLBACK_OVERHEAD_S);
        let far = OdtInput {
            dest: LngLat {
                lng: 104.2,
                lat: 30.2,
            },
            ..near
        };
        let s = fallback_estimate_seconds(&far);
        assert!(s.is_finite() && s > FALLBACK_OVERHEAD_S);
        // ~28 km crow at 8 m/s with 1.3 circuity ≈ 75 min — sanity band.
        assert!(s > 600.0 && s < 4.0 * 3_600.0, "{s}");
    }

    #[test]
    fn strict_sanitize_rejects_far_but_clamps_near() {
        let g = grid();
        let inside = OdtInput {
            origin: LngLat {
                lng: 104.05,
                lat: 30.05,
            },
            dest: LngLat {
                lng: 104.15,
                lat: 30.15,
            },
            t_dep: 600.0,
        };
        // Clean query passes through untouched.
        let (clean, changed) = sanitize_odt_strict(&inside, &g).unwrap();
        assert!(!changed);
        assert_eq!(clean, inside);
        // Slightly outside (< FAR_QUERY_SPANS): clamped, not rejected.
        let near = OdtInput {
            origin: LngLat {
                lng: 104.25, // 0.25 spans past max on a 0.2-degree span
                lat: 30.1,
            },
            ..inside
        };
        let (clean, changed) = sanitize_odt_strict(&near, &g).unwrap();
        assert!(changed);
        assert_eq!(clean.origin.lng, g.max.lng);
        // Far outside (> FAR_QUERY_SPANS): typed rejection, per endpoint.
        let far_origin = OdtInput {
            origin: LngLat {
                lng: 116.4, // Beijing-ish vs a Chengdu grid — ~61 spans out
                lat: 39.9,
            },
            ..inside
        };
        let err = sanitize_odt_strict(&far_origin, &g).unwrap_err();
        assert_eq!(err.kind(), "far_origin");
        assert!(err.spans() > FAR_QUERY_SPANS, "{err}");
        let far_dest = OdtInput {
            dest: LngLat {
                lng: 104.1,
                lat: 31.0,
            },
            ..inside
        };
        let err = sanitize_odt_strict(&far_dest, &g).unwrap_err();
        assert_eq!(err.kind(), "far_destination");
        // Non-finite coordinates carry no location: clamp (midpoint), never
        // reject — matching the lenient path's behavior.
        let nan_q = OdtInput {
            origin: LngLat {
                lng: f64::NAN,
                lat: f64::INFINITY,
            },
            ..inside
        };
        let (clean, changed) = sanitize_odt_strict(&nan_q, &g).unwrap();
        assert!(changed);
        assert!(clean.origin.lng.is_finite() && clean.origin.lat.is_finite());
    }

    #[test]
    fn point_excess_is_zero_inside_and_scales_outside() {
        let g = grid();
        let inside = LngLat {
            lng: 104.1,
            lat: 30.1,
        };
        assert_eq!(point_excess_spans(inside, &g), 0.0);
        let one_span_out = LngLat {
            lng: 104.4, // exactly one 0.2-degree span past max
            lat: 30.1,
        };
        assert!((point_excess_spans(one_span_out, &g) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejected_counter_round_trips() {
        let stats = RobustnessStats::default();
        stats.record_query_rejected();
        stats.record_query_rejected();
        let snap = stats.snapshot();
        assert_eq!(snap.queries_rejected, 2);
        assert_eq!(
            RobustnessStats::from_snapshot(snap)
                .snapshot()
                .queries_rejected,
            2
        );
        assert!(format!("{snap}").contains("queries_rejected=2"));
    }

    #[test]
    fn stats_snapshot_round_trip() {
        let stats = RobustnessStats::default();
        stats.record_watchdog_trip();
        stats.record_watchdog_trip();
        stats.record_batch_skipped();
        stats.record_fallback();
        let snap = stats.snapshot();
        assert_eq!(snap.watchdog_trips, 2);
        assert_eq!(snap.batches_skipped, 1);
        assert_eq!(snap.fallbacks_taken, 1);
        assert_eq!(snap.rollbacks, 0);
        let restored = RobustnessStats::from_snapshot(snap);
        assert_eq!(restored.snapshot(), snap);
    }
}
