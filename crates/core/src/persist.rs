//! Checkpointing a trained DOT model to disk — with integrity guarantees.
//!
//! The two stages are trained separately and frozen (paper §5.2), so a
//! checkpoint is the configuration, the grid, the target statistics and the
//! two parameter sets. The experiment harness uses this to train a model
//! once and reuse it across tables.
//!
//! ## Checkpoint format v1
//!
//! ```text
//! DOTCKPT v1 crc32=xxxxxxxx len=NNNN\n   ← ASCII header line
//! {…payload json…}                       ← exactly `len` bytes
//! ```
//!
//! The CRC32 (IEEE) is computed over the payload bytes, so a truncated file
//! fails the length check and a bit-flipped one fails the CRC check *before*
//! any JSON parsing. Writes go to a temp file in the target directory and
//! are `rename`d into place, so a crash mid-save can never leave a
//! half-written checkpoint at the destination path. Loading validates every
//! tensor's shape and finiteness against the freshly built architecture
//! before any parameter is overwritten; failures surface as a typed
//! [`PersistError`] instead of a panic or a silently-wrong model.

use crate::config::DotConfig;
use crate::guard::{RobustnessSnapshot, RobustnessStats};
use crate::oracle::Dot;
use crate::train::{build_estimator, TrainingReport};
use odt_diffusion::{ConditionedDenoiser, Ddpm, DenoiserConfig, NoiseSchedule};
use odt_nn::serialize::StateDict;
use odt_nn::{state_dict, try_load_state_dict, HasParams, StateDictError};
use odt_traj::GridSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Magic tag of model checkpoints.
pub(crate) const CKPT_MAGIC: &str = "DOTCKPT";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint could not be saved or loaded.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The in-memory model could not be serialized.
    Serialize(serde_json::Error),
    /// The file is structurally damaged: bad magic, truncation, CRC
    /// mismatch, or unparseable payload.
    Corrupt {
        /// Human-readable description of what failed.
        detail: String,
    },
    /// The file is a checkpoint, but of a version this build cannot read.
    VersionMismatch {
        /// Version found in the file header (0 = legacy unversioned JSON).
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
    /// A stored tensor's shape disagrees with the architecture the config
    /// describes.
    ShapeMismatch {
        /// Parameter name.
        param: String,
        /// Shape the rebuilt architecture expects.
        expected: Vec<usize>,
        /// Shape found in the checkpoint.
        found: Vec<usize>,
    },
    /// A stored tensor (or scalar statistic) holds NaN/inf values.
    NonFiniteParams {
        /// Parameter name (or statistic field).
        param: String,
        /// Number of offending elements.
        count: usize,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            PersistError::Serialize(e) => write!(f, "checkpoint serialization failed: {e}"),
            PersistError::Corrupt { detail } => write!(f, "corrupt checkpoint: {detail}"),
            PersistError::VersionMismatch { found, supported } => write!(
                f,
                "checkpoint version {found} unsupported (this build reads v{supported})"
            ),
            PersistError::ShapeMismatch {
                param,
                expected,
                found,
            } => write!(
                f,
                "checkpoint shape mismatch for '{param}': expected {expected:?}, found {found:?}"
            ),
            PersistError::NonFiniteParams { param, count } => {
                write!(
                    f,
                    "checkpoint parameter '{param}' holds {count} non-finite value(s)"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Serialize(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<StateDictError> for PersistError {
    fn from(e: StateDictError) -> Self {
        match e {
            StateDictError::MissingParam { name } => PersistError::Corrupt {
                detail: format!("state dict missing parameter '{name}'"),
            },
            StateDictError::ShapeMismatch {
                name,
                expected,
                found,
            } => PersistError::ShapeMismatch {
                param: name,
                expected,
                found,
            },
            StateDictError::NonFinite { name, count } => {
                PersistError::NonFiniteParams { param: name, count }
            }
        }
    }
}

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320), bitwise — fast
/// enough for checkpoint-sized payloads and dependency-free.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Serialize `payload`, frame it with a `magic v1 crc32 len` header and
/// write it atomically: temp file in the destination directory, then rename.
pub(crate) fn write_versioned<T: Serialize>(
    path: &Path,
    magic: &str,
    payload: &T,
) -> Result<(), PersistError> {
    let body = serde_json::to_vec(payload).map_err(PersistError::Serialize)?;
    let header = format!(
        "{magic} v{CHECKPOINT_VERSION} crc32={:08x} len={}\n",
        crc32(&body),
        body.len()
    );
    let mut bytes = header.into_bytes();
    bytes.extend_from_slice(&body);

    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&tmp, &bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e.into())
        }
    }
}

/// Read a file written by [`write_versioned`], verifying magic, version,
/// length and CRC before deserializing the payload.
pub(crate) fn read_versioned<T: DeserializeOwned>(
    path: &Path,
    magic: &str,
) -> Result<T, PersistError> {
    let body = read_validated_bytes(path, magic)?;
    serde_json::from_slice(&body).map_err(|e| PersistError::Corrupt {
        detail: format!("payload json: {e}"),
    })
}

/// Verify a versioned file's framing — magic, version, declared length,
/// CRC32 — and return the raw payload bytes *without* deserializing
/// them. The model registry uses this to refuse damaged checkpoint
/// files before anything schema-aware (or allocation-heavy) touches
/// them.
pub(crate) fn read_validated_bytes(path: &Path, magic: &str) -> Result<Vec<u8>, PersistError> {
    let bytes = std::fs::read(path)?;
    // Legacy (pre-v1) checkpoints were bare JSON objects.
    if bytes.first() == Some(&b'{') {
        return Err(PersistError::VersionMismatch {
            found: 0,
            supported: CHECKPOINT_VERSION,
        });
    }
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| PersistError::Corrupt {
            detail: "missing header line".into(),
        })?;
    let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| PersistError::Corrupt {
        detail: "header is not UTF-8".into(),
    })?;
    let mut tokens = header.split_whitespace();
    let found_magic = tokens.next().unwrap_or("");
    if found_magic != magic {
        return Err(PersistError::Corrupt {
            detail: format!("bad magic '{found_magic}' (expected '{magic}')"),
        });
    }
    let version: u32 = tokens
        .next()
        .and_then(|t| t.strip_prefix('v'))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| PersistError::Corrupt {
            detail: "unparseable version".into(),
        })?;
    if version != CHECKPOINT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            supported: CHECKPOINT_VERSION,
        });
    }
    let mut crc_expect = None;
    let mut len_expect = None;
    for t in tokens {
        if let Some(v) = t.strip_prefix("crc32=") {
            crc_expect = u32::from_str_radix(v, 16).ok();
        } else if let Some(v) = t.strip_prefix("len=") {
            len_expect = v.parse::<usize>().ok();
        }
    }
    let (crc_expect, len_expect) = match (crc_expect, len_expect) {
        (Some(c), Some(l)) => (c, l),
        _ => {
            return Err(PersistError::Corrupt {
                detail: "header missing crc32/len".into(),
            });
        }
    };
    let body = &bytes[nl + 1..];
    if body.len() != len_expect {
        return Err(PersistError::Corrupt {
            detail: format!(
                "payload length {} disagrees with header len={len_expect} (truncated?)",
                body.len()
            ),
        });
    }
    let crc_found = crc32(body);
    if crc_found != crc_expect {
        return Err(PersistError::Corrupt {
            detail: format!("crc32 {crc_found:08x} disagrees with header crc32={crc_expect:08x}"),
        });
    }
    Ok(body.to_vec())
}

#[derive(Serialize, Deserialize)]
struct Checkpoint {
    cfg: DotConfig,
    grid: GridSpec,
    tt_mean: f64,
    tt_std: f64,
    stage1: StateDict,
    stage2: StateDict,
    stage1_seconds: f64,
    stage2_seconds: f64,
    stage1_final_loss: f32,
    best_val_mae: f64,
    #[serde(default)]
    robustness: RobustnessSnapshot,
}

impl Dot {
    /// Serialize the trained model to a checkpoint file (format v1: CRC32
    /// over the payload, atomic temp-file + rename write).
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        let ckpt = Checkpoint {
            cfg: self.cfg.clone(),
            grid: self.grid,
            tt_mean: self.tt_mean,
            tt_std: self.tt_std,
            stage1: state_dict(&self.denoiser.params()),
            stage2: state_dict(&self.estimator.estimator_params()),
            stage1_seconds: self.report.stage1_seconds,
            stage2_seconds: self.report.stage2_seconds,
            stage1_final_loss: self.report.stage1_final_loss,
            best_val_mae: self.report.best_val_mae,
            robustness: self.report.robustness,
        };
        write_versioned(path, CKPT_MAGIC, &ckpt)
    }

    /// Restore a model saved with [`Dot::save`], verifying integrity
    /// (magic, version, CRC) and validating every tensor's shape and
    /// finiteness before constructing the model.
    pub fn load(path: &Path) -> Result<Dot, PersistError> {
        let ckpt: Checkpoint = read_versioned(path, CKPT_MAGIC)?;
        for (name, v) in [("tt_mean", ckpt.tt_mean), ("tt_std", ckpt.tt_std)] {
            if !v.is_finite() {
                return Err(PersistError::NonFiniteParams {
                    param: name.into(),
                    count: 1,
                });
            }
        }
        // Rebuild the architecture deterministically, then overwrite the
        // parameters from the checkpoint (validated before any mutation).
        let mut rng = StdRng::seed_from_u64(ckpt.cfg.seed);
        let denoiser_cfg = DenoiserConfig {
            channels: 3,
            lg: ckpt.cfg.lg,
            base_channels: ckpt.cfg.base_channels,
            depth: ckpt.cfg.l_d,
            cond_dim: ckpt.cfg.cond_dim,
            attn_max_tokens: ckpt.cfg.attn_max_tokens,
        };
        let denoiser = ConditionedDenoiser::new(&mut rng, denoiser_cfg);
        try_load_state_dict(&denoiser.params(), &ckpt.stage1)?;
        let estimator = build_estimator(&ckpt.cfg, &mut rng);
        try_load_state_dict(&estimator.estimator_params(), &ckpt.stage2)?;
        let report = TrainingReport {
            stage1_seconds: ckpt.stage1_seconds,
            stage2_seconds: ckpt.stage2_seconds,
            stage1_params: denoiser.num_params(),
            stage2_params: estimator.estimator_params().iter().map(|p| p.numel()).sum(),
            stage1_final_loss: ckpt.stage1_final_loss,
            best_val_mae: ckpt.best_val_mae,
            robustness: ckpt.robustness,
        };
        Ok(Dot {
            ddpm: Ddpm::new(NoiseSchedule::linear_scaled(ckpt.cfg.n_steps)),
            grid: ckpt.grid,
            denoiser,
            estimator,
            tt_mean: ckpt.tt_mean,
            tt_std: ckpt.tt_std,
            stats: RobustnessStats::from_snapshot(ckpt.robustness),
            report,
            cfg: ckpt.cfg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_traj::{Dataset, OdtInput, Split};
    use std::path::PathBuf;

    /// Unique per-test checkpoint path: the fixed name used previously
    /// collided when several test binaries ran in parallel.
    fn unique_ckpt_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("odt_ckpt_{tag}_{}.json", std::process::id()))
    }

    fn tiny_trained() -> (Dataset, Dot) {
        let mut sim_cfg = odt_traj::sim::CitySimConfig::chengdu_like();
        sim_cfg.nx = 8;
        sim_cfg.ny = 8;
        let data = Dataset::simulated(sim_cfg, 150, 8, 11);
        let mut cfg = DotConfig::fast();
        cfg.lg = 8;
        cfg.n_steps = 6;
        cfg.base_channels = 4;
        cfg.cond_dim = 16;
        cfg.d_e = 16;
        cfg.stage1_iters = 6;
        cfg.stage2_iters = 12;
        cfg.early_stop_samples = 2;
        cfg.early_stop_every = 10;
        let model = Dot::train(cfg, &data, |_| {});
        (data, model)
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let (data, model) = tiny_trained();
        let path = unique_ckpt_path("round_trip");
        model.save(&path).unwrap();
        let restored = Dot::load(&path).unwrap();
        // Identical predictions on a fixed PiT.
        let t = &data.split(Split::Test)[0];
        let pit = odt_traj::Pit::from_trajectory(t, &data.grid);
        assert_eq!(
            model.estimate_from_pit(&pit),
            restored.estimate_from_pit(&pit)
        );
        // Identical PiT inference under the same seed.
        let odt = OdtInput::from_trajectory(t);
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let a = model.infer_pit(&odt, &mut r1);
        let b = restored.infer_pit(&odt, &mut r2);
        assert_eq!(a.tensor().data(), b.tensor().data());
        // Training diagnostics survive the round trip instead of
        // resurrecting as NaN.
        assert_eq!(
            model.report().stage1_final_loss.to_bits(),
            restored.report().stage1_final_loss.to_bits()
        );
        assert_eq!(
            model.report().best_val_mae.to_bits(),
            restored.report().best_val_mae.to_bits()
        );
        assert!(restored.report().stage1_final_loss.is_finite());
        assert!(restored.report().best_val_mae.is_finite());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_checkpoint_is_rejected_as_corrupt() {
        let (_data, model) = tiny_trained();
        let path = unique_ckpt_path("truncate");
        model.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 37]).unwrap();
        match Dot::load(&path) {
            Err(PersistError::Corrupt { detail }) => {
                assert!(detail.contains("truncated"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flipped_payload_is_rejected_by_crc() {
        let (_data, model) = tiny_trained();
        let path = unique_ckpt_path("bitflip");
        model.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit well inside the parameter payload.
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        match Dot::load(&path) {
            Err(PersistError::Corrupt { detail }) => {
                assert!(detail.contains("crc32"), "{detail}");
            }
            other => panic!("expected Corrupt (crc), got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_version_and_legacy_json_are_version_mismatches() {
        let (_data, model) = tiny_trained();
        let path = unique_ckpt_path("version");
        model.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        std::fs::write(&path, text.replacen("DOTCKPT v1", "DOTCKPT v9", 1)).unwrap();
        match Dot::load(&path) {
            Err(PersistError::VersionMismatch {
                found: 9,
                supported,
            }) => {
                assert_eq!(supported, CHECKPOINT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        // A legacy bare-JSON checkpoint reads as version 0.
        std::fs::write(&path, "{\"cfg\":{}}").unwrap();
        assert!(matches!(
            Dot::load(&path),
            Err(PersistError::VersionMismatch { found: 0, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nan_parameter_payload_is_rejected_before_model_construction() {
        let (_data, model) = tiny_trained();
        let path = unique_ckpt_path("nanparam");
        model.save(&path).unwrap();
        // Rewrite the checkpoint with a non-finite value smuggled into a
        // stage-1 tensor (1e39 overflows f32 to +inf on deserialization),
        // re-framed with a valid CRC so only the finite check can catch it.
        let bytes = std::fs::read(&path).unwrap();
        let nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        let mut ckpt: serde_json::Value = serde_json::from_slice(&bytes[nl + 1..]).unwrap();
        let stage1 = ckpt["stage1"]["entries"].as_object_mut().unwrap();
        let first = stage1.values_mut().next().unwrap();
        first["data"][0] = serde_json::json!(1e39);
        write_versioned(&path, CKPT_MAGIC, &ckpt).unwrap();
        match Dot::load(&path) {
            Err(PersistError::NonFiniteParams { count, .. }) => assert!(count >= 1),
            other => panic!("expected NonFiniteParams, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shape_mismatch_is_typed() {
        let (_data, model) = tiny_trained();
        let path = unique_ckpt_path("shape");
        model.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        let mut ckpt: serde_json::Value = serde_json::from_slice(&bytes[nl + 1..]).unwrap();
        // Drop one element from the first stage-1 tensor and shrink its
        // shape so the tensor itself stays internally consistent.
        let first = ckpt["stage1"]["entries"]
            .as_object_mut()
            .unwrap()
            .values_mut()
            .next()
            .unwrap();
        let data = first["data"].as_array_mut().unwrap();
        data.pop();
        let n = data.len();
        first["shape"] = serde_json::json!([n]);
        write_versioned(&path, CKPT_MAGIC, &ckpt).unwrap();
        assert!(matches!(
            Dot::load(&path),
            Err(PersistError::ShapeMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_no_temp_left_behind() {
        let (_data, model) = tiny_trained();
        let path = unique_ckpt_path("atomic");
        model.save(&path).unwrap();
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        assert!(!tmp.exists(), "temp file must be renamed away");
        assert!(path.exists());
        std::fs::remove_file(&path).ok();
    }
}
