//! Checkpointing a trained DOT model to disk.
//!
//! The two stages are trained separately and frozen (paper §5.2), so a
//! checkpoint is just the configuration, the grid, the target statistics
//! and the two parameter sets. The experiment harness uses this to train a
//! model once and reuse it across tables.

use crate::config::DotConfig;
use crate::oracle::Dot;
use crate::train::{build_estimator, TrainingReport};
use odt_diffusion::{ConditionedDenoiser, Ddpm, DenoiserConfig, NoiseSchedule};
use odt_nn::{load_state_dict, state_dict, HasParams};
use odt_nn::serialize::StateDict;
use odt_traj::GridSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::Path;

#[derive(Serialize, Deserialize)]
struct Checkpoint {
    cfg: DotConfig,
    grid: GridSpec,
    tt_mean: f64,
    tt_std: f64,
    stage1: StateDict,
    stage2: StateDict,
    stage1_seconds: f64,
    stage2_seconds: f64,
}

impl Dot {
    /// Serialize the trained model to a JSON file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let ckpt = Checkpoint {
            cfg: self.cfg.clone(),
            grid: self.grid,
            tt_mean: self.tt_mean,
            tt_std: self.tt_std,
            stage1: state_dict(&self.denoiser.params()),
            stage2: state_dict(&self.estimator.estimator_params()),
            stage1_seconds: self.report.stage1_seconds,
            stage2_seconds: self.report.stage2_seconds,
        };
        let json = serde_json::to_string(&ckpt).expect("checkpoint serialization");
        std::fs::write(path, json)
    }

    /// Restore a model saved with [`Dot::save`].
    pub fn load(path: &Path) -> std::io::Result<Dot> {
        let json = std::fs::read_to_string(path)?;
        let ckpt: Checkpoint = serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        // Rebuild the architecture deterministically, then overwrite the
        // parameters from the checkpoint.
        let mut rng = StdRng::seed_from_u64(ckpt.cfg.seed);
        let denoiser_cfg = DenoiserConfig {
            channels: 3,
            lg: ckpt.cfg.lg,
            base_channels: ckpt.cfg.base_channels,
            depth: ckpt.cfg.l_d,
            cond_dim: ckpt.cfg.cond_dim,
            attn_max_tokens: ckpt.cfg.attn_max_tokens,
        };
        let denoiser = ConditionedDenoiser::new(&mut rng, denoiser_cfg);
        load_state_dict(&denoiser.params(), &ckpt.stage1);
        let estimator = build_estimator(&ckpt.cfg, &mut rng);
        load_state_dict(&estimator.estimator_params(), &ckpt.stage2);
        let report = TrainingReport {
            stage1_seconds: ckpt.stage1_seconds,
            stage2_seconds: ckpt.stage2_seconds,
            stage1_params: denoiser.num_params(),
            stage2_params: estimator.estimator_params().iter().map(|p| p.numel()).sum(),
            stage1_final_loss: f32::NAN,
            best_val_mae: f64::NAN,
        };
        Ok(Dot {
            ddpm: Ddpm::new(NoiseSchedule::linear_scaled(ckpt.cfg.n_steps)),
            grid: ckpt.grid,
            denoiser,
            estimator,
            tt_mean: ckpt.tt_mean,
            tt_std: ckpt.tt_std,
            report,
            cfg: ckpt.cfg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odt_traj::{Dataset, OdtInput, Split};

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let mut sim_cfg = odt_traj::sim::CitySimConfig::chengdu_like();
        sim_cfg.nx = 8;
        sim_cfg.ny = 8;
        let data = Dataset::simulated(sim_cfg, 150, 8, 11);
        let mut cfg = DotConfig::fast();
        cfg.lg = 8;
        cfg.n_steps = 6;
        cfg.base_channels = 4;
        cfg.cond_dim = 16;
        cfg.d_e = 16;
        cfg.stage1_iters = 6;
        cfg.stage2_iters = 12;
        cfg.early_stop_samples = 2;
        cfg.early_stop_every = 10;
        let model = Dot::train(cfg, &data, |_| {});
        let dir = std::env::temp_dir().join("odt_ckpt_test.json");
        model.save(&dir).unwrap();
        let restored = Dot::load(&dir).unwrap();
        // Identical predictions on a fixed PiT.
        let t = &data.split(Split::Test)[0];
        let pit = odt_traj::Pit::from_trajectory(t, &data.grid);
        assert_eq!(
            model.estimate_from_pit(&pit),
            restored.estimate_from_pit(&pit)
        );
        // Identical PiT inference under the same seed.
        let odt = OdtInput::from_trajectory(t);
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let a = model.infer_pit(&odt, &mut r1);
        let b = restored.infer_pit(&odt, &mut r2);
        assert_eq!(a.tensor().data(), b.tensor().data());
        std::fs::remove_file(&dir).ok();
    }
}
