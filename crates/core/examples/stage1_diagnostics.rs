//! Stage-1 diagnostics: trains a DOT model at the fast profile and reports
//! (a) noise-prediction error split into route pixels vs background pixels
//! across noise levels, and (b) the mask statistics of sampled PiTs — the
//! analysis used to locate the CPU-scale bottleneck described in
//! EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p odt-core --example stage1_diagnostics
//! ```

use odt_core::{Dot, DotConfig};
use odt_diffusion::{Ddpm, NoiseSchedule};
use odt_tensor::{Graph, Tensor};
use odt_traj::{Dataset, OdtInput, Pit, Split};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let lg = 16;
    let data = Dataset::chengdu_like(1000, lg, 7);
    let mut cfg = DotConfig::fast();
    cfg.lg = lg;
    cfg.n_steps = 30;
    cfg.stage1_iters = 1600;
    cfg.stage2_iters = 600;
    cfg.lr = 2e-3;
    let model = Dot::train(cfg, &data, |m| {
        if m.contains("iter") && m.contains("00:") {
            eprintln!("{m}")
        }
    });

    // Path-vs-background eps error at several noise levels.
    let ddpm = Ddpm::new(NoiseSchedule::linear_scaled(30));
    let mut rng = StdRng::seed_from_u64(77);
    let trips = data.split(Split::Test);
    for n in [3usize, 10, 20, 29] {
        let (mut pe, mut be, mut pc, mut bc) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for t in trips.iter().take(10) {
            let pit = Pit::from_trajectory(t, &data.grid);
            let x0 = pit.tensor().reshape(vec![1, 3, lg, lg]);
            let eps = Ddpm::sample_noise(x0.shape().to_vec(), &mut rng);
            let xn = ddpm.q_sample(&x0, &[n], &eps);
            let odt = OdtInput::from_trajectory(t);
            let feats = odt.features(data.grid.min, data.grid.max);
            let cond = Tensor::from_vec(feats.to_vec(), vec![1, 5]);
            let g = Graph::new();
            let pred = g.value(model_pred(&model, &g, xn, n, &cond));
            for ch in 0..3 {
                for r in 0..lg {
                    for c in 0..lg {
                        let i = ((ch * lg) + r) * lg + c;
                        let e = (pred.data()[i] - eps.data()[i]).powi(2) as f64;
                        if pit.is_visited(r, c) {
                            pe += e;
                            pc += 1.0;
                        } else {
                            be += e;
                            bc += 1.0;
                        }
                    }
                }
            }
        }
        println!(
            "n={n}: path-pixel mse {:.3}, background mse {:.3}",
            pe / pc,
            be / bc
        );
    }

    // Sampled channel stats for one odt, 3 samples.
    let odt = OdtInput::from_trajectory(&trips[0]);
    let gt = Pit::from_trajectory(&trips[0], &data.grid);
    println!("gt visited {} cells", gt.num_visited());
    for s in 0..3 {
        let mut r2 = StdRng::seed_from_u64(100 + s);
        let pit = model.infer_pit(&odt, &mut r2);
        let raw = pit.tensor();
        let mask: Vec<f32> = (0..lg * lg).map(|i| raw.data()[i]).collect();
        let on = mask.iter().filter(|&&v| v >= 0.0).count();
        let mean: f32 = mask.iter().sum::<f32>() / mask.len() as f32;
        println!("sample {s}: mask mean {mean:.2}, cells on {on}/{}", lg * lg);
    }
}

fn model_pred(model: &Dot, g: &Graph, xn: Tensor, n: usize, cond: &Tensor) -> odt_tensor::Var {
    model.noise_pred(g, xn, n, cond)
}
