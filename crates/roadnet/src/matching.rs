//! Map matching: snapping GPS traces onto the road network.
//!
//! The paper's path-based pipeline map-matches origins/destinations
//! (`O → O'`, `D → D'` in Figure 1) and the historical trajectories used to
//! compute edge weights. We use nearest-node matching with shortest-path
//! gap filling — adequate because the simulator's GPS noise is small
//! relative to intersection spacing, and faithful to the paper's
//! observation that matching error is one source of path-method inaccuracy.

use crate::dijkstra::dijkstra;
use crate::geo::Point;
use crate::graph::{EdgeId, NodeId, RoadNetwork};

/// Snap one point to its nearest intersection.
pub fn match_point(net: &RoadNetwork, p: Point) -> NodeId {
    net.nearest_node(p)
}

/// Snap a GPS trace to a connected node path.
///
/// Each point maps to its nearest node; consecutive duplicates collapse;
/// non-adjacent consecutive nodes are joined by the distance-shortest path.
pub fn match_trajectory(net: &RoadNetwork, points: &[Point]) -> Vec<NodeId> {
    let snapped: Vec<NodeId> = points.iter().map(|&p| net.nearest_node(p)).collect();
    let mut dedup: Vec<NodeId> = Vec::with_capacity(snapped.len());
    for n in snapped {
        if dedup.last() != Some(&n) {
            dedup.push(n);
        }
    }
    if dedup.len() <= 1 {
        return dedup;
    }
    let dist = |e: EdgeId| net.edge(e).length_m;
    let mut path = vec![dedup[0]];
    for w in dedup.windows(2) {
        let (a, b) = (w[0], w[1]);
        if net.edge_between(a, b).is_some() {
            path.push(b);
        } else if let Some(r) = dijkstra(net, a, b, &dist) {
            path.extend_from_slice(&r.nodes[1..]);
        } else {
            // Disconnected; keep the jump — callers treat the result as a
            // best-effort match.
            path.push(b);
        }
    }
    path
}

/// Per-edge travel-time observations from a timestamped, matched trace.
///
/// `timestamps[i]` is the Unix time (seconds) of `points[i]`. The elapsed
/// time between consecutive GPS fixes is distributed over the edges
/// connecting their matched nodes proportionally to edge length.
pub fn edge_observations(
    net: &RoadNetwork,
    points: &[Point],
    timestamps: &[f64],
) -> Vec<(EdgeId, f64)> {
    assert_eq!(
        points.len(),
        timestamps.len(),
        "points/timestamps length mismatch"
    );
    let mut obs = Vec::new();
    let dist = |e: EdgeId| net.edge(e).length_m;
    for i in 1..points.len() {
        let a = net.nearest_node(points[i - 1]);
        let b = net.nearest_node(points[i]);
        if a == b {
            continue;
        }
        let dt = timestamps[i] - timestamps[i - 1];
        if !(dt.is_finite() && dt > 0.0) {
            continue;
        }
        let segment: Vec<NodeId> = if net.edge_between(a, b).is_some() {
            vec![a, b]
        } else if let Some(r) = dijkstra(net, a, b, &dist) {
            r.nodes
        } else {
            continue;
        };
        let total_len: f64 = segment
            .windows(2)
            .filter_map(|w| net.edge_between(w[0], w[1]).map(|e| net.edge(e).length_m))
            .sum();
        if total_len <= 0.0 {
            continue;
        }
        for w in segment.windows(2) {
            if let Some(e) = net.edge_between(w[0], w[1]) {
                let share = net.edge(e).length_m / total_len;
                obs.push((e, dt * share));
            }
        }
    }
    obs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_point_snap() {
        let net = RoadNetwork::grid_city(3, 3, 100.0, 2);
        assert_eq!(match_point(&net, Point::new(10.0, -3.0)), 0);
        assert_eq!(match_point(&net, Point::new(95.0, 104.0)), 4);
    }

    #[test]
    fn trajectory_matching_fills_gaps() {
        let net = RoadNetwork::grid_city(4, 4, 100.0, 2);
        // Sparse trace jumping two intersections: 0 -> 2 on row 0.
        let pts = vec![Point::new(2.0, 1.0), Point::new(201.0, 2.0)];
        let path = match_trajectory(&net, &pts);
        assert_eq!(path, vec![0, 1, 2]);
    }

    #[test]
    fn trajectory_matching_dedups() {
        let net = RoadNetwork::grid_city(3, 3, 100.0, 2);
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(98.0, 0.0),
        ];
        let path = match_trajectory(&net, &pts);
        assert_eq!(path, vec![0, 1]);
    }

    #[test]
    fn observations_split_time_by_length() {
        let net = RoadNetwork::grid_city(4, 2, 100.0, 2);
        // Trace 0 -> 2 (two 100 m edges) taking 40 s total.
        let pts = vec![Point::new(0.0, 0.0), Point::new(200.0, 0.0)];
        let ts = vec![0.0, 40.0];
        let obs = edge_observations(&net, &pts, &ts);
        assert_eq!(obs.len(), 2);
        for (_, t) in &obs {
            assert!((t - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stationary_points_produce_no_observations() {
        let net = RoadNetwork::grid_city(3, 3, 100.0, 2);
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let ts = vec![0.0, 30.0];
        assert!(edge_observations(&net, &pts, &ts).is_empty());
    }
}
