//! The road-network graph.

use crate::geo::Point;
use serde::{Deserialize, Serialize};

/// Index of an intersection node.
pub type NodeId = usize;
/// Index of a directed road segment.
pub type EdgeId = usize;

/// A directed road segment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Edge {
    /// Tail node.
    pub from: NodeId,
    /// Head node.
    pub to: NodeId,
    /// Segment length, meters.
    pub length_m: f64,
    /// Free-flow speed, meters per second.
    pub base_speed_mps: f64,
    /// Whether this segment belongs to an arterial road (faster, preferred
    /// by drivers — the simulator's congestion profile also differs).
    pub arterial: bool,
}

impl Edge {
    /// Free-flow traversal time, seconds.
    pub fn base_travel_time(&self) -> f64 {
        self.length_m / self.base_speed_mps
    }
}

/// A directed road network with planar node positions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoadNetwork {
    positions: Vec<Point>,
    edges: Vec<Edge>,
    out: Vec<Vec<EdgeId>>,
}

/// Free-flow speed of side streets (~30 km/h).
pub const SIDE_STREET_SPEED: f64 = 8.33;
/// Free-flow speed of arterial roads (~50 km/h).
pub const ARTERIAL_SPEED: f64 = 13.89;

impl RoadNetwork {
    /// Build a network from explicit nodes and edges.
    pub fn from_parts(positions: Vec<Point>, edges: Vec<Edge>) -> Self {
        let mut out = vec![Vec::new(); positions.len()];
        for (i, e) in edges.iter().enumerate() {
            assert!(
                e.from < positions.len() && e.to < positions.len(),
                "edge endpoint out of range"
            );
            assert!(
                e.length_m > 0.0 && e.base_speed_mps > 0.0,
                "degenerate edge"
            );
            out[e.from].push(i);
        }
        RoadNetwork {
            positions,
            edges,
            out,
        }
    }

    /// Generate a grid city: `nx × ny` intersections spaced `spacing_m`
    /// apart, connected by bidirectional streets. Every `arterial_every`-th
    /// row and column is an arterial with a higher free-flow speed — the
    /// structure that makes "fast detour vs. short side-street" route choice
    /// meaningful, as in the paper's motivating Figure 1.
    pub fn grid_city(nx: usize, ny: usize, spacing_m: f64, arterial_every: usize) -> Self {
        assert!(nx >= 2 && ny >= 2, "grid city needs at least 2x2 nodes");
        assert!(arterial_every >= 1, "arterial_every must be >= 1");
        let mut positions = Vec::with_capacity(nx * ny);
        for yi in 0..ny {
            for xi in 0..nx {
                positions.push(Point::new(xi as f64 * spacing_m, yi as f64 * spacing_m));
            }
        }
        let id = |xi: usize, yi: usize| yi * nx + xi;
        let mut edges = Vec::new();
        let mut push_both = |a: NodeId, b: NodeId, arterial: bool| {
            let length = spacing_m;
            let speed = if arterial {
                ARTERIAL_SPEED
            } else {
                SIDE_STREET_SPEED
            };
            edges.push(Edge {
                from: a,
                to: b,
                length_m: length,
                base_speed_mps: speed,
                arterial,
            });
            edges.push(Edge {
                from: b,
                to: a,
                length_m: length,
                base_speed_mps: speed,
                arterial,
            });
        };
        for yi in 0..ny {
            for xi in 0..nx {
                // Horizontal street along row yi.
                if xi + 1 < nx {
                    let arterial = yi % arterial_every == 0;
                    push_both(id(xi, yi), id(xi + 1, yi), arterial);
                }
                // Vertical street along column xi.
                if yi + 1 < ny {
                    let arterial = xi % arterial_every == 0;
                    push_both(id(xi, yi), id(xi, yi + 1), arterial);
                }
            }
        }
        Self::from_parts(positions, edges)
    }

    /// Number of intersection nodes.
    pub fn num_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Position of a node.
    pub fn position(&self, n: NodeId) -> Point {
        self.positions[n]
    }

    /// A directed edge by id.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e]
    }

    /// Outgoing edge ids of a node.
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out[n]
    }

    /// The edge from `a` to `b`, if one exists.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.out[a].iter().copied().find(|&e| self.edges[e].to == b)
    }

    /// Nearest node to a planar point (linear scan; networks here are small).
    pub fn nearest_node(&self, p: Point) -> NodeId {
        assert!(!self.positions.is_empty(), "empty network");
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, q) in self.positions.iter().enumerate() {
            let d = p.distance(q);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Bounding box of all node positions: `(min, max)`.
    pub fn bbox(&self) -> (Point, Point) {
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &self.positions {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        (min, max)
    }

    /// Total length of a node path, meters. Panics if consecutive nodes are
    /// not adjacent.
    pub fn path_length(&self, path: &[NodeId]) -> f64 {
        path.windows(2)
            .map(|w| {
                let e = self
                    .edge_between(w[0], w[1])
                    .unwrap_or_else(|| panic!("no edge {} -> {}", w[0], w[1]));
                self.edges[e].length_m
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_city_counts() {
        let net = RoadNetwork::grid_city(4, 3, 100.0, 2);
        assert_eq!(net.num_nodes(), 12);
        // Horizontal: 3 per row * 3 rows; vertical: 2 per column * 4 cols;
        // each bidirectional.
        assert_eq!(net.num_edges(), 2 * (3 * 3 + 2 * 4));
    }

    #[test]
    fn arterials_are_faster() {
        let net = RoadNetwork::grid_city(4, 4, 100.0, 3);
        let arterial_speeds: Vec<f64> = (0..net.num_edges())
            .map(|e| net.edge(e))
            .filter(|e| e.arterial)
            .map(|e| e.base_speed_mps)
            .collect();
        assert!(!arterial_speeds.is_empty());
        assert!(arterial_speeds.iter().all(|&s| s > SIDE_STREET_SPEED));
    }

    #[test]
    fn edge_between_finds_neighbors() {
        let net = RoadNetwork::grid_city(3, 3, 100.0, 2);
        assert!(net.edge_between(0, 1).is_some());
        assert!(net.edge_between(1, 0).is_some());
        assert!(net.edge_between(0, 8).is_none());
    }

    #[test]
    fn nearest_node_picks_closest_corner() {
        let net = RoadNetwork::grid_city(3, 3, 100.0, 2);
        assert_eq!(net.nearest_node(Point::new(-5.0, -5.0)), 0);
        assert_eq!(net.nearest_node(Point::new(205.0, 205.0)), 8);
        assert_eq!(net.nearest_node(Point::new(101.0, 99.0)), 4);
    }

    #[test]
    fn bbox_spans_grid() {
        let net = RoadNetwork::grid_city(3, 2, 50.0, 2);
        let (min, max) = net.bbox();
        assert_eq!((min.x, min.y), (0.0, 0.0));
        assert_eq!((max.x, max.y), (100.0, 50.0));
    }

    #[test]
    fn path_length_sums_edges() {
        let net = RoadNetwork::grid_city(3, 3, 100.0, 2);
        assert_eq!(net.path_length(&[0, 1, 2]), 200.0);
    }

    #[test]
    #[should_panic(expected = "no edge")]
    fn path_length_rejects_gaps() {
        let net = RoadNetwork::grid_city(3, 3, 100.0, 2);
        let _ = net.path_length(&[0, 8]);
    }
}
