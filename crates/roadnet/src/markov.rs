//! Destination-conditioned Markov transition routing — the stand-in for
//! DeepST (Li et al., ICDE 2020).
//!
//! DeepST "makes use of historical travel behavior derived from trajectory
//! data, thereby enhancing the accuracy of generated paths" (paper §2.1).
//! This router captures the same mechanism without a neural network: it
//! counts, from historical matched paths, how often drivers at node `u`
//! heading toward a destination in direction-octant `o` during time-slot `s`
//! chose each outgoing neighbor, and routes new queries by following the
//! most probable transitions. Unvisited states fall back to the
//! shortest-path direction, so the router always terminates.

use crate::dijkstra::dijkstra;
use crate::graph::{EdgeId, NodeId, RoadNetwork};
use std::collections::HashMap;

const OCTANTS: usize = 8;

/// A routing model over `(node, destination octant, time slot)` states.
///
/// The router does not own the network; pass the same [`RoadNetwork`] to
/// [`MarkovRouter::observe_path`] and [`MarkovRouter::route`].
pub struct MarkovRouter {
    slots: usize,
    /// `(state, next_node) -> count`.
    counts: HashMap<(usize, NodeId), u32>,
    /// Total count per state for normalization.
    totals: HashMap<usize, u32>,
}

impl MarkovRouter {
    /// An untrained router with `slots` time-of-day slots.
    pub fn new(slots: usize) -> Self {
        assert!(slots >= 1, "need at least one slot");
        MarkovRouter {
            slots,
            counts: HashMap::new(),
            totals: HashMap::new(),
        }
    }

    fn octant(&self, net: &RoadNetwork, from: NodeId, dest: NodeId) -> usize {
        let a = net.position(from);
        let b = net.position(dest);
        let angle = (b.y - a.y).atan2(b.x - a.x); // [-pi, pi]
        let frac = (angle + std::f64::consts::PI) / (2.0 * std::f64::consts::PI);
        ((frac * OCTANTS as f64) as usize).min(OCTANTS - 1)
    }

    fn state(&self, net: &RoadNetwork, node: NodeId, dest: NodeId, slot: usize) -> usize {
        (node * OCTANTS + self.octant(net, node, dest)) * self.slots + slot
    }

    /// Learn from one historical node path departing in `slot`.
    pub fn observe_path(&mut self, net: &RoadNetwork, path: &[NodeId], slot: usize) {
        assert!(slot < self.slots, "slot out of range");
        if path.len() < 2 {
            return;
        }
        let dest = *path.last().unwrap();
        for w in path.windows(2) {
            let s = self.state(net, w[0], dest, slot);
            *self.counts.entry((s, w[1])).or_insert(0) += 1;
            *self.totals.entry(s).or_insert(0) += 1;
        }
    }

    /// Number of distinct observed states (diagnostic).
    pub fn num_states(&self) -> usize {
        self.totals.len()
    }

    /// Route from `origin` to `dest` in `slot` by following the most
    /// probable learned transitions; falls back to the shortest-path next
    /// hop in unobserved states. Always returns a path ending at `dest`.
    pub fn route(
        &self,
        net: &RoadNetwork,
        origin: NodeId,
        dest: NodeId,
        slot: usize,
    ) -> Vec<NodeId> {
        assert!(slot < self.slots, "slot out of range");
        let mut path = vec![origin];
        let mut current = origin;
        let mut prev: Option<NodeId> = None;
        let max_steps = net.num_nodes() * 4;
        let dist = |e: EdgeId| net.edge(e).length_m;
        for _ in 0..max_steps {
            if current == dest {
                return path;
            }
            let s = self.state(net, current, dest, slot);
            // Most probable observed next hop, excluding an immediate
            // backtrack (which would loop forever on bidirectional edges).
            let mut best: Option<(NodeId, u32)> = None;
            for &e in net.out_edges(current) {
                let next = net.edge(e).to;
                if Some(next) == prev {
                    continue;
                }
                if let Some(&c) = self.counts.get(&(s, next)) {
                    if best.map_or(true, |(_, bc)| c > bc) {
                        best = Some((next, c));
                    }
                }
            }
            let next = match best {
                Some((n, _)) => n,
                None => {
                    // Unobserved state: take the shortest-path next hop.
                    match dijkstra(net, current, dest, &dist) {
                        Some(r) if r.nodes.len() >= 2 => r.nodes[1],
                        _ => return path, // unreachable destination
                    }
                }
            };
            prev = Some(current);
            current = next;
            path.push(current);
        }
        // Step budget exhausted (cyclic learned behavior): finish by
        // shortest path so the caller always gets a complete route.
        if current != dest {
            if let Some(r) = dijkstra(net, current, dest, &dist) {
                path.extend_from_slice(&r.nodes[1..]);
            }
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_router_follows_shortest_path() {
        let net = RoadNetwork::grid_city(4, 4, 100.0, 10);
        let router = MarkovRouter::new(4);
        let path = router.route(&net, 0, 3, 0);
        assert_eq!(path, vec![0, 1, 2, 3]);
    }

    #[test]
    fn learns_preferred_detour() {
        // Historical drivers go 0 -> 4 -> 5 -> 1 (detour via row 1) instead
        // of 0 -> 1 directly. After observing, routing 0 -> 1 must follow
        // the learned detour.
        let net = RoadNetwork::grid_city(4, 4, 100.0, 10);
        let mut router = MarkovRouter::new(1);
        for _ in 0..5 {
            router.observe_path(&net, &[0, 4, 5, 1], 0);
        }
        let path = router.route(&net, 0, 1, 0);
        assert_eq!(path, vec![0, 4, 5, 1]);
    }

    #[test]
    fn slots_separate_behavior() {
        // Slot 0 drivers detour; slot 1 has no data and uses shortest path.
        let net = RoadNetwork::grid_city(4, 4, 100.0, 10);
        let mut router = MarkovRouter::new(2);
        router.observe_path(&net, &[0, 4, 5, 1], 0);
        assert_eq!(router.route(&net, 0, 1, 0), vec![0, 4, 5, 1]);
        assert_eq!(router.route(&net, 0, 1, 1), vec![0, 1]);
    }

    #[test]
    fn route_always_reaches_destination() {
        let net = RoadNetwork::grid_city(5, 5, 100.0, 2);
        let mut router = MarkovRouter::new(2);
        // Observe some arbitrary paths.
        router.observe_path(&net, &[0, 1, 2, 7, 12], 0);
        router.observe_path(&net, &[24, 23, 22, 17], 1);
        for (o, d) in [(0usize, 24usize), (3, 20), (12, 0)] {
            for s in 0..2 {
                let p = router.route(&net, o, d, s);
                assert_eq!(*p.first().unwrap(), o);
                assert_eq!(*p.last().unwrap(), d);
                // Path must be connected.
                for w in p.windows(2) {
                    assert!(net.edge_between(w[0], w[1]).is_some());
                }
            }
        }
    }

    #[test]
    fn octants_partition_directions() {
        let net = RoadNetwork::grid_city(3, 3, 100.0, 2);
        let router = MarkovRouter::new(1);
        // From center node 4, the 8 neighbors' octants must not all agree.
        let octants: Vec<usize> = [0usize, 2, 6, 8, 1, 3, 5, 7]
            .iter()
            .map(|&d| router.octant(&net, 4, d))
            .collect();
        let distinct: std::collections::HashSet<_> = octants.iter().collect();
        assert!(distinct.len() >= 4, "octants {octants:?}");
    }
}
