//! Edge travel-time weights learned from historical trajectories.
//!
//! The paper's routing baselines get "a weighted road network, where the
//! weights represent the average travel time of road segments that is
//! calculated from historical trajectories" (§6.2.1). [`EdgeWeights`] is
//! that static average; [`TimeDependentWeights`] buckets the averages by
//! time-of-day slot, which the ablation harness uses to fill the temporal
//! PiT channels for routing-based variants (§6.5.4 observation 1).

use crate::graph::{EdgeId, RoadNetwork};
use serde::{Deserialize, Serialize};

/// Historical average travel time per directed edge, seconds. Edges never
/// observed fall back to their free-flow time.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EdgeWeights {
    avg: Vec<f64>,
}

impl EdgeWeights {
    /// Free-flow weights (no history).
    pub fn free_flow(net: &RoadNetwork) -> Self {
        EdgeWeights {
            avg: (0..net.num_edges())
                .map(|e| net.edge(e).base_travel_time())
                .collect(),
        }
    }

    /// Average observed traversal times; unobserved edges use free flow.
    pub fn from_observations(
        net: &RoadNetwork,
        observations: impl IntoIterator<Item = (EdgeId, f64)>,
    ) -> Self {
        let mut sum = vec![0.0; net.num_edges()];
        let mut count = vec![0usize; net.num_edges()];
        for (e, t) in observations {
            assert!(e < net.num_edges(), "edge id out of range");
            assert!(t.is_finite() && t >= 0.0, "invalid observation {t}");
            sum[e] += t;
            count[e] += 1;
        }
        let avg = (0..net.num_edges())
            .map(|e| {
                if count[e] > 0 {
                    sum[e] / count[e] as f64
                } else {
                    net.edge(e).base_travel_time()
                }
            })
            .collect();
        EdgeWeights { avg }
    }

    /// Weight of an edge, seconds.
    pub fn get(&self, e: EdgeId) -> f64 {
        self.avg[e]
    }

    /// A closure view usable with [`crate::dijkstra`].
    pub fn as_fn(&self) -> impl Fn(EdgeId) -> f64 + '_ {
        move |e| self.avg[e]
    }
}

/// Average edge travel times bucketed by time-of-day slot.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimeDependentWeights {
    slots: usize,
    /// `table[e * slots + s]` = average seconds in slot `s`.
    table: Vec<f64>,
}

impl TimeDependentWeights {
    /// Build from `(edge, slot, seconds)` observations; empty buckets fall
    /// back to the edge's all-day average, then to free flow.
    pub fn from_observations(
        net: &RoadNetwork,
        slots: usize,
        observations: impl IntoIterator<Item = (EdgeId, usize, f64)>,
    ) -> Self {
        assert!(slots >= 1, "need at least one slot");
        let ne = net.num_edges();
        let mut sum = vec![0.0; ne * slots];
        let mut count = vec![0usize; ne * slots];
        let mut day_sum = vec![0.0; ne];
        let mut day_count = vec![0usize; ne];
        for (e, s, t) in observations {
            assert!(e < ne && s < slots, "observation out of range");
            sum[e * slots + s] += t;
            count[e * slots + s] += 1;
            day_sum[e] += t;
            day_count[e] += 1;
        }
        let table = (0..ne * slots)
            .map(|i| {
                let e = i / slots;
                if count[i] > 0 {
                    sum[i] / count[i] as f64
                } else if day_count[e] > 0 {
                    day_sum[e] / day_count[e] as f64
                } else {
                    net.edge(e).base_travel_time()
                }
            })
            .collect();
        TimeDependentWeights { slots, table }
    }

    /// Number of time slots per day.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Weight of `e` in slot `s`, seconds.
    pub fn get(&self, e: EdgeId, s: usize) -> f64 {
        self.table[e * self.slots + s]
    }

    /// Map a second-of-day to a slot index.
    pub fn slot_of(&self, second_of_day: u32) -> usize {
        ((second_of_day as usize * self.slots) / 86_400).min(self.slots - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_edges_average() {
        let net = RoadNetwork::grid_city(3, 3, 100.0, 2);
        let w = EdgeWeights::from_observations(&net, vec![(0, 10.0), (0, 20.0), (1, 5.0)]);
        assert_eq!(w.get(0), 15.0);
        assert_eq!(w.get(1), 5.0);
    }

    #[test]
    fn unobserved_edges_fall_back_to_free_flow() {
        let net = RoadNetwork::grid_city(3, 3, 100.0, 2);
        let w = EdgeWeights::from_observations(&net, vec![]);
        for e in 0..net.num_edges() {
            assert!((w.get(e) - net.edge(e).base_travel_time()).abs() < 1e-9);
        }
    }

    #[test]
    fn time_dependent_buckets() {
        let net = RoadNetwork::grid_city(3, 3, 100.0, 2);
        let w = TimeDependentWeights::from_observations(
            &net,
            4,
            vec![(0, 0, 10.0), (0, 0, 14.0), (0, 2, 30.0)],
        );
        assert_eq!(w.get(0, 0), 12.0);
        assert_eq!(w.get(0, 2), 30.0);
        // Slot 1 unobserved -> all-day average of edge 0 = (10+14+30)/3 = 18.
        assert_eq!(w.get(0, 1), 18.0);
        // Unobserved edge -> free flow.
        assert!((w.get(5, 3) - net.edge(5).base_travel_time()).abs() < 1e-9);
    }

    #[test]
    fn slot_mapping_covers_day() {
        let net = RoadNetwork::grid_city(2, 2, 100.0, 2);
        let w = TimeDependentWeights::from_observations(&net, 24, vec![]);
        assert_eq!(w.slot_of(0), 0);
        assert_eq!(w.slot_of(3_600), 1);
        assert_eq!(w.slot_of(86_399), 23);
    }
}
