//! # odt-roadnet
//!
//! Road-network substrate for the DOT ODT-Oracle reproduction.
//!
//! The paper's routing baselines (§6.2.1) and its synthetic-data substitute
//! both need a road network:
//!
//! * [`RoadNetwork`] — a directed graph of intersections and road segments
//!   with planar geometry and a grid-city generator (arterials + side
//!   streets) used by the trajectory simulator.
//! * [`dijkstra`] / [`k_shortest_paths`] — shortest-path routing over
//!   arbitrary edge weights (the paper's Dijkstra baseline) and a
//!   penalty-based k-alternative router used for route-choice simulation.
//! * [`EdgeWeights`] — historical-average and time-dependent edge travel
//!   times ("we provide them with a weighted road network, where the weights
//!   represent the average travel time of road segments calculated from
//!   historical trajectories").
//! * [`matching`] — nearest-node map matching of GPS traces onto the graph.
//! * [`MarkovRouter`] — a destination-conditioned transition-probability
//!   router learned from historical paths. This is the stand-in for DeepST
//!   (ICDE'20), which "generates the most probable traveling path between
//!   origin and destination based on the learned historical travel
//!   behaviors"; see DESIGN.md for the substitution rationale.
//! * [`Projection`] — equirectangular meters↔degrees conversion so
//!   trajectories carry GPS-style lng/lat like the paper's data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dijkstra;
mod geo;
mod graph;
mod markov;
pub mod matching;
mod weights;

pub use dijkstra::{dijkstra, k_shortest_paths, path_cost, PathResult};
pub use geo::{LngLat, Point, Projection};
pub use graph::{EdgeId, NodeId, RoadNetwork};
pub use markov::MarkovRouter;
pub use weights::{EdgeWeights, TimeDependentWeights};
