//! Planar geometry and GPS projection.
//!
//! The simulator and router work in a local planar frame (meters); the
//! trajectory data model carries GPS-style longitude/latitude like the
//! paper's datasets. [`Projection`] converts between the two with an
//! equirectangular approximation, which is accurate to well under a meter
//! over the ~15–19 km city extents in Table 1.

use serde::{Deserialize, Serialize};

/// A point in the local planar frame, meters east (`x`) and north (`y`) of
/// the frame origin.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Meters east of the frame origin.
    pub x: f64,
    /// Meters north of the frame origin.
    pub y: f64,
}

impl Point {
    /// Construct from coordinates in meters.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point, meters.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A GPS coordinate in degrees.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LngLat {
    /// Longitude, degrees.
    pub lng: f64,
    /// Latitude, degrees.
    pub lat: f64,
}

/// Equirectangular projection anchored at a reference coordinate.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct Projection {
    origin: LngLat,
    meters_per_deg_lat: f64,
    meters_per_deg_lng: f64,
}

const EARTH_METERS_PER_DEG: f64 = 111_320.0;

impl Projection {
    /// A projection whose planar origin `(0, 0)` maps to `origin`.
    pub fn new(origin: LngLat) -> Self {
        Projection {
            origin,
            meters_per_deg_lat: EARTH_METERS_PER_DEG,
            meters_per_deg_lng: EARTH_METERS_PER_DEG * origin.lat.to_radians().cos(),
        }
    }

    /// Planar meters → GPS degrees.
    pub fn to_lnglat(&self, p: Point) -> LngLat {
        LngLat {
            lng: self.origin.lng + p.x / self.meters_per_deg_lng,
            lat: self.origin.lat + p.y / self.meters_per_deg_lat,
        }
    }

    /// GPS degrees → planar meters.
    pub fn to_point(&self, g: LngLat) -> Point {
        Point {
            x: (g.lng - self.origin.lng) * self.meters_per_deg_lng,
            y: (g.lat - self.origin.lat) * self.meters_per_deg_lat,
        }
    }

    /// The reference coordinate that maps to `(0, 0)`.
    pub fn origin(&self) -> LngLat {
        self.origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chengdu() -> Projection {
        Projection::new(LngLat {
            lng: 104.0,
            lat: 30.65,
        })
    }

    #[test]
    fn round_trip_is_lossless() {
        let proj = chengdu();
        let p = Point::new(5432.1, -1234.5);
        let back = proj.to_point(proj.to_lnglat(p));
        assert!((back.x - p.x).abs() < 1e-6);
        assert!((back.y - p.y).abs() < 1e-6);
    }

    #[test]
    fn one_km_north_is_about_009_degrees() {
        let proj = chengdu();
        let g = proj.to_lnglat(Point::new(0.0, 1000.0));
        assert!((g.lat - 30.65 - 1000.0 / 111_320.0).abs() < 1e-9);
        assert_eq!(g.lng, 104.0);
    }

    #[test]
    fn lng_scale_shrinks_with_latitude() {
        let equator = Projection::new(LngLat { lng: 0.0, lat: 0.0 });
        let arctic = Projection::new(LngLat {
            lng: 0.0,
            lat: 60.0,
        });
        let p = Point::new(1000.0, 0.0);
        let de = equator.to_lnglat(p).lng;
        let da = arctic.to_lnglat(p).lng;
        assert!(da > de * 1.9, "at 60N a km spans ~2x the longitude degrees");
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
    }
}
