//! Shortest-path routing: Dijkstra's algorithm (the paper's routing baseline
//! of §6.2.1) and a penalty-based k-alternative router used by the
//! trajectory simulator's route-choice model.

use crate::graph::{EdgeId, NodeId, RoadNetwork};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A routed path and its cost under the weight function used to compute it.
#[derive(Clone, Debug, PartialEq)]
pub struct PathResult {
    /// Node sequence from origin to destination inclusive.
    pub nodes: Vec<NodeId>,
    /// Total cost (seconds when weights are travel times).
    pub cost: f64,
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; costs are finite by construction.
        other.cost.total_cmp(&self.cost)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra's algorithm from `origin` to `dest` under an arbitrary
/// non-negative edge weight function. Returns `None` if unreachable.
pub fn dijkstra(
    net: &RoadNetwork,
    origin: NodeId,
    dest: NodeId,
    weight: &dyn Fn(EdgeId) -> f64,
) -> Option<PathResult> {
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[origin] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: origin,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if node == dest {
            break;
        }
        if cost > dist[node] {
            continue;
        }
        for &e in net.out_edges(node) {
            let w = weight(e);
            debug_assert!(w >= 0.0, "negative edge weight {w} on edge {e}");
            let next = net.edge(e).to;
            let nd = cost + w;
            if nd < dist[next] {
                dist[next] = nd;
                prev[next] = Some(node);
                heap.push(HeapEntry {
                    cost: nd,
                    node: next,
                });
            }
        }
    }
    if dist[dest].is_infinite() {
        return None;
    }
    let mut nodes = vec![dest];
    let mut cur = dest;
    while let Some(p) = prev[cur] {
        nodes.push(p);
        cur = p;
        if cur == origin {
            break;
        }
    }
    if *nodes.last().unwrap() != origin {
        // origin == dest case.
        if origin != dest {
            return None;
        }
    }
    nodes.reverse();
    Some(PathResult {
        nodes,
        cost: dist[dest],
    })
}

/// Cost of an explicit node path under a weight function. Panics if
/// consecutive nodes are not adjacent.
pub fn path_cost(net: &RoadNetwork, path: &[NodeId], weight: &dyn Fn(EdgeId) -> f64) -> f64 {
    path.windows(2)
        .map(|w| {
            let e = net
                .edge_between(w[0], w[1])
                .unwrap_or_else(|| panic!("no edge {} -> {}", w[0], w[1]));
            weight(e)
        })
        .sum()
}

/// Up to `k` distinct alternative paths by iterative edge penalization:
/// after each shortest path is found, the weights of its edges are
/// multiplied by `penalty` and Dijkstra re-runs. Costs reported are under
/// the *original* weights. This is the classic penalty method for
/// alternative routing — simpler than Yen's algorithm and sufficient for
/// simulating route choice.
pub fn k_shortest_paths(
    net: &RoadNetwork,
    origin: NodeId,
    dest: NodeId,
    weight: &dyn Fn(EdgeId) -> f64,
    k: usize,
    penalty: f64,
) -> Vec<PathResult> {
    assert!(penalty > 1.0, "penalty must exceed 1");
    let mut factor: Vec<f64> = vec![1.0; net.num_edges()];
    let mut results: Vec<PathResult> = Vec::new();
    for _ in 0..k * 3 {
        if results.len() >= k {
            break;
        }
        let penalized = |e: EdgeId| weight(e) * factor[e];
        let Some(found) = dijkstra(net, origin, dest, &penalized) else {
            break;
        };
        // Penalize this path's edges for the next round.
        for w in found.nodes.windows(2) {
            if let Some(e) = net.edge_between(w[0], w[1]) {
                factor[e] *= penalty;
            }
        }
        let true_cost = path_cost(net, &found.nodes, weight);
        let candidate = PathResult {
            nodes: found.nodes,
            cost: true_cost,
        };
        if !results.iter().any(|r| r.nodes == candidate.nodes) {
            results.push(candidate);
        }
    }
    results.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weight_time(net: &RoadNetwork) -> impl Fn(EdgeId) -> f64 + '_ {
        move |e| net.edge(e).base_travel_time()
    }

    #[test]
    fn straight_line_is_shortest() {
        let net = RoadNetwork::grid_city(5, 5, 100.0, 10);
        let w = weight_time(&net);
        let r = dijkstra(&net, 0, 4, &w).unwrap();
        assert_eq!(r.nodes, vec![0, 1, 2, 3, 4]);
        // Row 0 is an arterial in grid_city, so free-flow is arterial speed.
        assert!((r.cost - 4.0 * 100.0 / crate::graph::ARTERIAL_SPEED).abs() < 1e-6);
    }

    #[test]
    fn diagonal_uses_manhattan_distance() {
        let net = RoadNetwork::grid_city(4, 4, 100.0, 10);
        let w = weight_time(&net);
        let r = dijkstra(&net, 0, 15, &w).unwrap();
        // 3 east + 3 north = 6 edges regardless of interleaving.
        assert_eq!(r.nodes.len(), 7);
    }

    #[test]
    fn prefers_fast_arterial_detour() {
        // Arterial row 0 is ~1.7x faster; going along it should beat the
        // direct slow path when the detour is short.
        let net = RoadNetwork::grid_city(6, 3, 100.0, 3);
        let w = weight_time(&net);
        // From (0,1) to (5,1): direct along row 1 is slow unless row 1 is
        // arterial; with arterial_every=3 row 0 is arterial.
        let origin = 6; // (0,1)
        let dest = 11; // (5,1)
        let r = dijkstra(&net, origin, dest, &w).unwrap();
        let direct_cost = 5.0 * 100.0 / 8.33;
        assert!(r.cost <= direct_cost + 1e-9);
    }

    #[test]
    fn origin_equals_dest() {
        let net = RoadNetwork::grid_city(3, 3, 100.0, 2);
        let w = weight_time(&net);
        let r = dijkstra(&net, 4, 4, &w).unwrap();
        assert_eq!(r.nodes, vec![4]);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn k_shortest_distinct_and_sorted() {
        let net = RoadNetwork::grid_city(4, 4, 100.0, 10);
        let w = weight_time(&net);
        let paths = k_shortest_paths(&net, 0, 15, &w, 3, 1.5);
        assert!(paths.len() >= 2, "expected multiple alternatives");
        for pair in paths.windows(2) {
            assert!(pair[0].cost <= pair[1].cost);
            assert_ne!(pair[0].nodes, pair[1].nodes);
        }
        // All start/end correctly.
        for p in &paths {
            assert_eq!(*p.nodes.first().unwrap(), 0);
            assert_eq!(*p.nodes.last().unwrap(), 15);
        }
    }

    #[test]
    fn k_shortest_costs_use_original_weights() {
        let net = RoadNetwork::grid_city(4, 4, 100.0, 10);
        let w = weight_time(&net);
        let paths = k_shortest_paths(&net, 0, 3, &w, 2, 2.0);
        for p in &paths {
            let recomputed = path_cost(&net, &p.nodes, &w);
            assert!((p.cost - recomputed).abs() < 1e-9);
        }
    }
}
