//! Property-based tests for routing and matching invariants.

use odt_roadnet::{dijkstra, k_shortest_paths, matching, Point, RoadNetwork};
use proptest::prelude::*;

fn grid() -> RoadNetwork {
    RoadNetwork::grid_city(5, 5, 100.0, 3)
}

/// Brute-force shortest path cost by exhaustive BFS over bounded-length
/// paths (ok on a 5×5 grid with ≤ 8 hops for nearby pairs).
fn brute_force_cost(net: &RoadNetwork, from: usize, to: usize, max_hops: usize) -> Option<f64> {
    let weight = |e: usize| net.edge(e).base_travel_time();
    let mut best: Option<f64> = None;
    let mut stack = vec![(from, 0.0f64, vec![from])];
    while let Some((node, cost, path)) = stack.pop() {
        if best.map_or(false, |b| cost >= b) {
            continue;
        }
        if node == to {
            best = Some(best.map_or(cost, |b: f64| b.min(cost)));
            continue;
        }
        if path.len() > max_hops {
            continue;
        }
        for &e in net.out_edges(node) {
            let next = net.edge(e).to;
            if path.contains(&next) {
                continue;
            }
            let mut p = path.clone();
            p.push(next);
            stack.push((next, cost + weight(e), p));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dijkstra_matches_brute_force(from in 0usize..25, to in 0usize..25) {
        let net = grid();
        let weight = |e: usize| net.edge(e).base_travel_time();
        let d = dijkstra(&net, from, to, &weight).expect("grid is connected");
        // Bound hops to keep brute force tractable: grid diameter is 8.
        let bf = brute_force_cost(&net, from, to, 9);
        // Brute force with bounded hops may miss longer-but-cheaper routes
        // only if they exceed 9 hops; on a 5x5 grid the optimum never does.
        let bf = bf.expect("bounded search must reach the target");
        prop_assert!((d.cost - bf).abs() < 1e-9, "dijkstra {} vs brute {}", d.cost, bf);
    }

    #[test]
    fn dijkstra_path_is_connected_and_cost_consistent(from in 0usize..25, to in 0usize..25) {
        let net = grid();
        let weight = |e: usize| net.edge(e).base_travel_time();
        let d = dijkstra(&net, from, to, &weight).unwrap();
        prop_assert_eq!(*d.nodes.first().unwrap(), from);
        prop_assert_eq!(*d.nodes.last().unwrap(), to);
        let mut total = 0.0;
        for w in d.nodes.windows(2) {
            let e = net.edge_between(w[0], w[1]).expect("consecutive nodes adjacent");
            total += weight(e);
        }
        prop_assert!((total - d.cost).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_over_waypoints(a in 0usize..25, b in 0usize..25, c in 0usize..25) {
        let net = grid();
        let weight = |e: usize| net.edge(e).base_travel_time();
        let d = |x, y| dijkstra(&net, x, y, &weight).unwrap().cost;
        prop_assert!(d(a, c) <= d(a, b) + d(b, c) + 1e-9);
    }

    #[test]
    fn k_shortest_first_is_optimal(from in 0usize..25, to in 0usize..25) {
        prop_assume!(from != to);
        let net = grid();
        let weight = |e: usize| net.edge(e).base_travel_time();
        let best = dijkstra(&net, from, to, &weight).unwrap().cost;
        let alts = k_shortest_paths(&net, from, to, &weight, 3, 1.5);
        prop_assert!(!alts.is_empty());
        prop_assert!((alts[0].cost - best).abs() < 1e-9);
        for a in &alts[1..] {
            prop_assert!(a.cost >= best - 1e-9);
        }
    }

    #[test]
    fn matched_trajectories_are_connected(seed in 0u64..200) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let net = grid();
        let mut rng = StdRng::seed_from_u64(seed);
        // A random wandering trace with noise.
        let mut pts = Vec::new();
        let (mut x, mut y): (f64, f64) = (rng.gen_range(0.0..400.0), rng.gen_range(0.0..400.0));
        for _ in 0..8 {
            x = (x + rng.gen_range(-120.0..120.0)).clamp(0.0, 400.0);
            y = (y + rng.gen_range(-120.0..120.0)).clamp(0.0, 400.0);
            pts.push(Point::new(x, y));
        }
        let path = matching::match_trajectory(&net, &pts);
        prop_assert!(!path.is_empty());
        for w in path.windows(2) {
            prop_assert!(
                net.edge_between(w[0], w[1]).is_some(),
                "gap between {} and {}",
                w[0],
                w[1]
            );
        }
    }
}
