//! # odt-bench
//!
//! Criterion benchmarks backing the paper's timing results:
//!
//! * `benches/table5_efficiency.rs` — per-query estimation latency of every
//!   ODT-Oracle method (Table 5's "estimation speed" column).
//! * `benches/figure8_mvit_vs_vit.rs` — MViT vs vanilla ViT forward latency
//!   across grid lengths (Figure 8(c,d)).
//! * `benches/substrates.rs` — micro-benchmarks of the substrates (conv2d,
//!   matmul, Dijkstra, PiT rasterization, trip simulation).
//! * `benches/compute_kernels.rs` — parallel vs sequential latency of each
//!   `odt-compute`-backed kernel.
//!
//! Two plain binaries emit machine-readable reports (see
//! `scripts/bench_kernels.sh`):
//!
//! * `bench_kernels` — per-kernel parallel-vs-sequential timings →
//!   `BENCH_kernels.json`.
//! * `bench_serving` — N sequential `estimate` calls vs one
//!   `estimate_batch(N)` → `BENCH_serving.json`.
//!
//! Shared fixtures live in this library crate.

#![forbid(unsafe_code)]

use odt_baselines::OracleContext;
use odt_traj::Dataset;

/// A small, deterministic dataset shared by the benchmarks.
pub fn bench_dataset(lg: usize) -> Dataset {
    let mut cfg = odt_traj::sim::CitySimConfig::chengdu_like();
    cfg.nx = 12;
    cfg.ny = 12;
    Dataset::simulated(cfg, 400, lg, 99)
}

/// The oracle context of a dataset.
pub fn ctx_of(data: &Dataset) -> OracleContext {
    OracleContext {
        grid: data.grid,
        proj: data.proj,
    }
}
