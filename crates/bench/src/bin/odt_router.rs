//! `odt_router`: the cluster front door — shard placement, replica
//! failover, and degrade-to-prior, speaking `odt-wire/v1` on both sides.
//!
//! Hashes each query's `(origin cell, destination cell)` onto a shard
//! (rendezvous hashing over the placement grid; every router with the
//! same `--region`/`--cells`/`--seed` computes the same placement),
//! forwards to that shard's replicas with round-robin + health-probe +
//! circuit-breaker failover, and degrades to a router-local haversine
//! prior when a whole shard is dark — an answer, never a hang.
//!
//! ```text
//! odt_router --shard <wire[@admin]>[,<wire[@admin]>...]   (one per shard,
//!            repeatable)
//!            [--addr <host:port>] [--admin <host:port>]
//!            [--region <lng0,lat0,lng1,lat1>] [--cells <n>] [--seed <u64>]
//!            [--probe-interval-ms <ms>] [--probe-timeout-ms <ms>]
//!            [--scrape-interval-ms <ms>] [--scrape-timeout-ms <ms>]
//!            [--connect-timeout-ms <ms>] [--request-timeout-ms <ms>]
//!            [--instance <name>]
//!            [--quorum-wait-s <s>] [--max-run-s <s>] [--report <path>]
//! ```
//!
//! * `--shard`     — one shard's replicas, comma-separated. Each replica
//!                   is `wire_addr` or `wire_addr@admin_addr`; with an
//!                   admin address the health prober polls its `/readyz`
//!                   and the router routes around unready replicas.
//! * `--region`    — the placement grid's bbox (must match the shards'
//!                   served region; default: the loadgen default region).
//! * `--instance`  — this process's name in traces (`/tracez` tags every
//!                   span fragment with it so `cluster_report` can give
//!                   the router its own Perfetto track).
//! * `--admin`     — the router's own admin plane. Its `/readyz` is the
//!                   quorum aggregation: 200 only while every shard has
//!                   at least one routable replica, 503 otherwise and
//!                   during drain. `/varz` serves `odt-router-varz/v1`
//!                   (per-replica health/breaker rows, failover and
//!                   prior-serve totals). `/metrics/cluster` federates
//!                   every replica's `/metrics` (shard/replica labels +
//!                   exact merged `odt_cluster_*` histograms) and
//!                   `/varz/cluster` rolls up per-shard health, model
//!                   quality and cache state — both fed by a background
//!                   scraper (`--scrape-interval-ms`).
//!
//! Startup prints machine-readable lines in this order:
//!
//! ```text
//! odt_router listening on <addr>
//! odt_router admin on <addr>          # only with --admin
//! odt_router ready                    # quorum reached (or wait expired)
//! ```
//!
//! On drain the final report (`odt-router/v1`) carries the wire-port
//! connection counters, the full cluster snapshot (per-replica rows,
//! `failovers_total`, `prior_serves_total`, `quorum_ready`), and the
//! drain outcome; exit status is non-zero on forced drain or leaked
//! connections.

use odt_net::admin::{start_admin, AdminConfig, AdminSources};
use odt_net::cluster::{
    render_router_varz, start_health_prober, ClusterConfig, ClusterShared, ClusterSnapshot,
    ReplicaAddr, RouterBackend,
};
use odt_net::fed::{start_scraper, ClusterScraper};
use odt_net::loadgen::Region;
use odt_net::server::{set_instance_name, ServerConfig};
use odt_net::signal;
use odt_obs::json::push_str_escaped;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Every occurrence of `--shard <spec>`, in order.
fn shard_args() -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .enumerate()
        .filter(|(_, a)| a.as_str() == "--shard")
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

/// Parse one `--shard` spec: comma-separated `wire` or `wire@admin`.
fn parse_shard(spec: &str) -> Vec<ReplicaAddr> {
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|rep| match rep.split_once('@') {
            Some((wire, admin)) => ReplicaAddr::with_admin(wire, admin),
            None => ReplicaAddr::wire_only(rep),
        })
        .collect()
}

fn parse_region(spec: &str) -> Region {
    let parts: Vec<f64> = spec
        .split(',')
        .map(|p| p.trim().parse().expect("--region wants four floats"))
        .collect();
    assert_eq!(parts.len(), 4, "--region is <lng0,lat0,lng1,lat1>");
    Region {
        lng0: parts[0],
        lat0: parts[1],
        lng1: parts[2],
        lat1: parts[3],
    }
}

/// The report's cluster block (same shape as the varz cluster block).
fn cluster_json(snap: &ClusterSnapshot) -> String {
    let mut o = String::with_capacity(512);
    o.push_str(&format!(
        "{{ \"quorum_ready\": {}, \"forwarded_total\": {}, \"failovers_total\": {}, \
         \"prior_serves_total\": {}, \"refusals_total\": {}, \"transport_errors_total\": {}, \
         \"shards\": [",
        snap.quorum_ready,
        snap.forwarded,
        snap.failovers,
        snap.prior_serves,
        snap.refusals,
        snap.transport_errors
    ));
    for (s, replicas) in snap.shards.iter().enumerate() {
        if s > 0 {
            o.push(',');
        }
        o.push_str("{\"replicas\":[");
        for (r, rep) in replicas.iter().enumerate() {
            if r > 0 {
                o.push(',');
            }
            o.push_str("{\"addr\":");
            push_str_escaped(&mut o, &rep.addr);
            o.push_str(&format!(
                ",\"health\":\"{}\",\"breaker\":\"{}\",\"breaker_trips\":{},\
                 \"forwarded\":{},\"refusals\":{},\"transport_errors\":{}}}",
                rep.health,
                rep.breaker,
                rep.breaker_trips,
                rep.forwarded,
                rep.refusals,
                rep.transport_errors
            ));
        }
        o.push_str("]}");
    }
    o.push_str("] }");
    o
}

fn main() {
    odt_obs::flightrec::install_panic_hook();
    odt_obs::trace::init_from_env();
    odt_obs::flightrec::init_from_env();
    signal::install();

    let shards: Vec<Vec<ReplicaAddr>> = shard_args().iter().map(|s| parse_shard(s)).collect();
    assert!(
        !shards.is_empty() && shards.iter().all(|s| !s.is_empty()),
        "odt_router needs at least one --shard with at least one replica"
    );
    if let Some(name) = arg_value("--instance") {
        set_instance_name(&name);
    }
    let addr = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:7979".to_string());
    let admin_addr = arg_value("--admin");
    let report_path = arg_value("--report").unwrap_or_else(|| "BENCH_net_router.json".to_string());
    let max_run_s: Option<u64> =
        arg_value("--max-run-s").map(|v| v.parse().expect("--max-run-s must be an integer"));
    let quorum_wait_s: u64 = arg_value("--quorum-wait-s")
        .map(|v| v.parse().expect("--quorum-wait-s must be an integer"))
        .unwrap_or(30);
    let probe_interval_ms: u64 = arg_value("--probe-interval-ms")
        .map(|v| v.parse().expect("--probe-interval-ms must be an integer"))
        .unwrap_or(100);
    let probe_timeout_ms: u64 = arg_value("--probe-timeout-ms")
        .map(|v| v.parse().expect("--probe-timeout-ms must be an integer"))
        .unwrap_or(300);
    let scrape_interval_ms: u64 = arg_value("--scrape-interval-ms")
        .map(|v| v.parse().expect("--scrape-interval-ms must be an integer"))
        .unwrap_or(1_000);
    let scrape_timeout_ms: u64 = arg_value("--scrape-timeout-ms")
        .map(|v| v.parse().expect("--scrape-timeout-ms must be an integer"))
        .unwrap_or(500);

    // The federation scraper wants the topology before ClusterConfig
    // consumes it; it only ever talks to replica admin planes.
    let scraper = Arc::new(ClusterScraper::new(&shards, scrape_timeout_ms));

    let mut ccfg = ClusterConfig::new(shards);
    if let Some(v) = arg_value("--region") {
        ccfg.region = parse_region(&v);
    }
    if let Some(v) = arg_value("--cells") {
        ccfg.cells = v.parse().expect("--cells must be an integer");
    }
    if let Some(v) = arg_value("--seed") {
        ccfg.seed = v.parse().expect("--seed must be an integer");
    }
    if let Some(v) = arg_value("--connect-timeout-ms") {
        ccfg.connect_timeout_ms = v.parse().expect("--connect-timeout-ms must be an integer");
    }
    if let Some(v) = arg_value("--request-timeout-ms") {
        ccfg.request_timeout_ms = v.parse().expect("--request-timeout-ms must be an integer");
    }

    let mut scfg = ServerConfig {
        addr,
        ..ServerConfig::default()
    };
    if let Some(v) = arg_value("--max-conns") {
        scfg.max_connections = v.parse().expect("--max-conns must be an integer");
    }
    if let Some(v) = arg_value("--drain-budget-ms") {
        scfg.drain_budget_ms = v.parse().expect("--drain-budget-ms must be an integer");
    }

    let shared = ClusterShared::new(&ccfg);
    let prober = start_health_prober(Arc::clone(&shared), probe_interval_ms, probe_timeout_ms);
    let backend = RouterBackend::new(ccfg, Arc::clone(&shared));
    let handle = odt_net::server::start(scfg, backend).expect("binding the listen address");
    let bound = handle.addr();
    println!("odt_router listening on {bound}");
    let _ = std::io::stdout().flush();

    // The scraper pulls every replica's /metrics and /varz so the
    // router's admin plane can serve the single-pane cluster views.
    let fed = start_scraper(Arc::clone(&scraper), scrape_interval_ms);

    let admin = admin_addr.map(|a| {
        let stats_handle = handle.stats_handle();
        let varz_shared = Arc::clone(&shared);
        let fed_metrics = Arc::clone(&scraper);
        let fed_varz = Arc::clone(&scraper);
        let admin = start_admin(
            AdminConfig {
                addr: a,
                ..AdminConfig::default()
            },
            AdminSources {
                varz: Some(Box::new(move || {
                    render_router_varz(
                        stats_handle.state_name(),
                        &stats_handle.stats(),
                        &varz_shared.snapshot(),
                    )
                })),
                metrics_cluster: Some(Box::new(move || fed_metrics.federated())),
                varz_cluster: Some(Box::new(move || fed_varz.varz_cluster())),
                ..AdminSources::default()
            },
        )
        .expect("binding the admin address");
        println!("odt_router admin on {}", admin.addr());
        let _ = std::io::stdout().flush();
        admin
    });

    // The quorum wait: the ready line is the start-traffic signal for
    // scripts, so hold it until every shard has proven a routable
    // replica (or the wait expires — degraded but still answering).
    let t0 = Instant::now();
    while !shared.quorum_ready() && t0.elapsed().as_secs() < quorum_wait_s {
        std::thread::sleep(Duration::from_millis(20));
    }
    if !shared.quorum_ready() {
        println!("odt_router: quorum wait expired; serving degraded");
    }
    println!("odt_router ready");
    let _ = std::io::stdout().flush();

    let started = Instant::now();
    loop {
        // /readyz *is* the quorum aggregation: it retreats the moment
        // any shard loses its last routable replica, and returns when
        // the prober sees one come back.
        if let Some(a) = &admin {
            a.set_ready(shared.quorum_ready());
        }
        if signal::shutdown_requested() {
            println!("odt_router: shutdown signal, draining");
            break;
        }
        if let Some(s) = max_run_s {
            if started.elapsed().as_secs() >= s {
                println!("odt_router: --max-run-s reached, draining");
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    if let Some(a) = &admin {
        a.set_ready(false);
    }
    let uptime_s = started.elapsed().as_secs_f64();
    let report = handle.drain();
    prober.shutdown();
    fed.shutdown();
    let snap = shared.snapshot();
    let c = &report.stats;
    let pass = report.clean && c.active == 0;
    println!(
        "odt_router: drained (clean={}, forced={}, active={}), {} forwarded / {} failovers / {} prior serves",
        report.clean, report.forced_conns, c.active, snap.forwarded, snap.failovers, snap.prior_serves
    );

    let admin_json = match &admin {
        Some(a) => format!(
            "{{ \"addr\": \"{}\", \"requests\": {} }}",
            a.addr(),
            a.requests()
        ),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"schema\": \"odt-router/v1\",\n  \"addr\": \"{addr}\",\n  \"uptime_s\": {uptime_s:.3},\n  \"conns\": {{ \"opened\": {}, \"closed\": {}, \"active\": {}, \"rejected_capacity\": {}, \"rejected_draining\": {}, \"frames_in\": {}, \"frames_out\": {}, \"malformed\": {}, \"dispatch_shed\": {}, \"forced_closes\": {} }},\n  \"cluster\": {},\n  \"admin\": {admin_json},\n  \"drain\": {{ \"clean\": {}, \"forced_conns\": {}, \"wait_ms\": {} }},\n  \"pass\": {pass}\n}}\n",
        c.opened,
        c.closed,
        c.active,
        c.rejected_capacity,
        c.rejected_draining,
        c.frames_in,
        c.frames_out,
        c.malformed,
        c.dispatch_shed,
        c.forced_closes,
        cluster_json(&snap),
        report.clean,
        report.forced_conns,
        report.wait_ms,
        addr = bound,
    );
    std::fs::write(&report_path, json).unwrap_or_else(|e| panic!("writing {report_path}: {e}"));
    println!("wrote {report_path}");

    if let Some(a) = admin {
        a.shutdown();
    }
    if !pass {
        eprintln!("odt_router: drain was forced or connections leaked");
        std::process::exit(1);
    }
}
