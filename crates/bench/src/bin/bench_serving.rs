//! Serving benchmark: trains a small DOT oracle, then times N sequential
//! `estimate` calls against one `estimate_batch(N)` call. Written to
//! `BENCH_serving.json` in the current working directory (run from the repo
//! root, e.g. via `scripts/bench_kernels.sh`).
//!
//! Flags: `--quick` (smaller model/dataset — CI smoke mode),
//! `--batch <N>` (queries per run, default 64),
//! `--deadline-ms <a,b,c>` (deadline sweep through the `odt-serve`
//! frontend, default `5,20,100,1000`; `none` skips the sweep),
//! `--cache-sizes <a,b,c>` (estimate-cache capacity sweep, default
//! `16,64,256`; `none` skips it).
//!
//! Tracing: set `ODT_TRACE_SAMPLE=1` to trace every frontend request.
//! The sweep then also writes `BENCH_serving_trace.json` (Chrome/Perfetto
//! trace of the retained requests) and `BENCH_serving_spans.jsonl` (the
//! span stream consumed by the `trace_report` eval binary).
//!
//! Schema (`odt-bench-serving/v5`):
//!
//! ```json
//! {
//!   "schema": "odt-bench-serving/v5",
//!   "threads": usize,        // odt-compute pool width
//!   "quick": bool,
//!   "batch_size": usize,
//!   "lg": usize,             // grid side length of the benchmark model
//!   "train_seconds": f64,
//!   "sequential": { "queries": usize, "seconds": f64, "per_query_ms": f64 },
//!   "batched":    { "queries": usize, "seconds": f64, "per_query_ms": f64 },
//!   "speedup": f64,          // sequential.seconds / batched.seconds
//!   "quality_overhead": {    // shadow quality observer cost (odt_serve::shadow)
//!     "queries": usize,
//!     "observer_off": { "p50_ms": f64, "p99_ms": f64 },
//!     "observer_on":  { "p50_ms": f64, "p99_ms": f64,
//!                       "scored": u64, "mae_s": f64 },
//!     "delta_p50_ms": f64,   // on - off; the observer's per-request cost
//!     "delta_p99_ms": f64
//!   },
//!   "deadline_sweep": [      // one entry per --deadline-ms value
//!     { "deadline_ms": u64, "submitted": u64, "served": u64, "shed": u64,
//!       "sla_attainment": f64,   // deadline_met / submitted
//!       "rung_hits": { "cached": u64, "full_ddpm": u64, "ddim": u64,
//!                      "ddim_reduced": u64, "cached_stale": u64,
//!                      "fallback": u64 },
//!       "slo": { "fast_burn": f64, "slow_burn": f64, "alerts": u64 } }
//!   ],
//!   "cache_sweep": {         // hot-path estimate cache (odt_serve::cache)
//!     "workload": { "distinct_keys": usize, "requests": usize,
//!                   "zipf_s": f64 },  // Zipf-skewed hotspot replay
//!     "uncached": { "p50_ms": f64, "p99_ms": f64 },  // plain frontend,
//!                                                    // same workload
//!     "capacities": [        // one entry per --cache-sizes value;
//!                            // identical workload, fresh cache each
//!       { "capacity": usize, "hits": u64, "stale_hits": u64,
//!         "misses": u64, "hit_rate": f64, "evictions": u64,
//!         "admission_rejects": u64, "cached_serves": u64,
//!         "p50_ms": f64, "p99_ms": f64,
//!         "speedup_p50": f64 }   // uncached.p50_ms / p50_ms
//!     ]
//!   } | null,
//!   "trace": {               // end-to-end request tracing summary
//!     "enabled": bool, "sample_every": u64,
//!     "finished": u64,       // root spans closed
//!     "retained": u64,       // traces kept (sampled or force-retained)
//!     "p99_exemplar": "hex trace id" | null,  // which request was the p99
//!     "chrome_trace": "path" | null,
//!     "spans_jsonl": "path" | null
//!   }
//! }
//! ```

use odt_core::{Dot, DotConfig};
use odt_serve::{
    dot_frontend, dot_frontend_cached, CacheConfig, ChaosConfig, DotFrontendConfig, EstimateCache,
    FrontendConfig, HotTracker, Rung,
};
use odt_serve::{ShadowConfig, ShadowScorer};
use odt_traj::{OdtInput, Split};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};
use std::time::Instant;

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    // Crash observability first: a panic anywhere below flushes event
    // sinks and dumps the flight recorder before the process dies.
    odt_obs::flightrec::install_panic_hook();
    odt_obs::trace::init_from_env();
    odt_obs::flightrec::init_from_env();
    let quick = arg_flag("--quick");
    let batch_size: usize = arg_value("--batch")
        .map(|v| v.parse().expect("--batch must be an integer"))
        .unwrap_or(64)
        .max(1);
    odt_compute::ensure_initialized();
    let lg = if quick { 8 } else { 16 };
    println!(
        "serving bench: {} thread(s), quick={quick}, batch {batch_size}, lg {lg}",
        odt_compute::num_threads()
    );

    let data = odt_bench::bench_dataset(lg);
    let mut cfg = DotConfig::fast();
    cfg.lg = lg;
    if quick {
        cfg.n_steps = 8;
        cfg.base_channels = 4;
        cfg.cond_dim = 16;
        cfg.d_e = 16;
        cfg.stage1_iters = 12;
        cfg.stage1_batch = 4;
        cfg.stage2_iters = 40;
        cfg.stage2_batch = 4;
    } else {
        cfg.n_steps = 20;
        cfg.stage1_iters = 200;
        cfg.stage2_iters = 200;
    }
    cfg.early_stop_samples = 4;
    cfg.early_stop_every = 1_000;
    let t0 = Instant::now();
    let model = Dot::train(cfg, &data, |_| {});
    let train_seconds = t0.elapsed().as_secs_f64();
    println!("trained in {train_seconds:.1}s");

    let queries: Vec<OdtInput> = data
        .split(Split::Test)
        .iter()
        .cycle()
        .take(batch_size)
        .map(OdtInput::from_trajectory)
        .collect();

    // Same seed for both paths so the denoising workload is comparable.
    let mut rng = StdRng::seed_from_u64(7);
    let t0 = Instant::now();
    for q in &queries {
        let _ = model.estimate(q, &mut rng);
    }
    let seq_s = t0.elapsed().as_secs_f64();

    let mut rng = StdRng::seed_from_u64(7);
    let t0 = Instant::now();
    let ests = model.estimate_batch(&queries, &mut rng);
    let bat_s = t0.elapsed().as_secs_f64();
    assert_eq!(ests.len(), queries.len());
    assert!(ests.iter().all(|e| e.seconds.is_finite()));

    let n = queries.len();
    let per_ms = |s: f64| s / n as f64 * 1_000.0;
    let speedup = seq_s / bat_s.max(1e-9);
    println!(
        "sequential: {seq_s:.3}s ({:.2} ms/q)   batched: {bat_s:.3}s ({:.2} ms/q)   {speedup:.2}x",
        per_ms(seq_s),
        per_ms(bat_s)
    );

    // Quality-observer overhead: per-request service time with and
    // without the shadow scorer interleaved between requests, the way
    // the dispatcher's on_tick interleaves it with live traffic. The
    // dispatcher thread is serial, so a request arriving during a
    // scoring step waits behind it — the honest per-request cost is
    // time(step + estimate), throttled exactly as in production
    // (ShadowConfig::default's min_interval). p50 should not move;
    // p99 absorbs the occasional batch-of-8 scoring spike.
    let quantile_ms = |sorted_us: &[u64], q: f64| {
        let i = ((sorted_us.len() as f64 - 1.0) * q).round() as usize;
        sorted_us[i] as f64 / 1_000.0
    };
    // Enough iterations (cycling the query set) that the production
    // throttle lets several scoring steps fire during the timed loop.
    let iters = n.max(96);
    let mut rng = StdRng::seed_from_u64(11);
    let mut lat_off: Vec<u64> = Vec::with_capacity(iters);
    for q in queries.iter().cycle().take(iters) {
        let t = Instant::now();
        let _ = model.estimate(q, &mut rng);
        lat_off.push(t.elapsed().as_micros() as u64);
    }
    let holdout: Vec<(OdtInput, f64)> = data
        .split(Split::Test)
        .iter()
        .take(64)
        .map(|t| (OdtInput::from_trajectory(t), t.travel_time()))
        .collect();
    let mut scorer = ShadowScorer::new(holdout, ShadowConfig::default());
    let mut shadow_rng = StdRng::seed_from_u64(13);
    let mut rng = StdRng::seed_from_u64(11);
    let mut lat_on: Vec<u64> = Vec::with_capacity(iters);
    for q in queries.iter().cycle().take(iters) {
        let t = Instant::now();
        scorer.step(odt_obs::trace::now_us(), |qs: &[OdtInput]| {
            model
                .estimate_batch(qs, &mut shadow_rng)
                .into_iter()
                .map(|e| e.seconds)
                .collect()
        });
        let _ = model.estimate(q, &mut rng);
        lat_on.push(t.elapsed().as_micros() as u64);
    }
    lat_off.sort_unstable();
    lat_on.sort_unstable();
    let (off_p50, off_p99) = (quantile_ms(&lat_off, 0.50), quantile_ms(&lat_off, 0.99));
    let (on_p50, on_p99) = (quantile_ms(&lat_on, 0.50), quantile_ms(&lat_on, 0.99));
    let q_snap = scorer.quality(odt_obs::trace::now_us());
    let shadow_mae = if q_snap.mae_s.is_finite() {
        q_snap.mae_s
    } else {
        0.0
    };
    let scored = scorer.scored();
    let (d50, d99) = (on_p50 - off_p50, on_p99 - off_p99);
    println!(
        "quality observer: off p50/p99 {off_p50:.2}/{off_p99:.2} ms, on {on_p50:.2}/{on_p99:.2} ms \
         (delta {d50:+.2}/{d99:+.2}), {scored} shadow-scored (mae {shadow_mae:.1}s)"
    );

    // Deadline sweep: the same queries through the odt-serve frontend at
    // each deadline, recording which degradation-ladder rung answered.
    let deadlines_ms: Vec<u64> = match arg_value("--deadline-ms") {
        Some(s) if s == "none" => Vec::new(),
        Some(s) => s
            .split(',')
            .map(|d| d.trim().parse().expect("--deadline-ms must be integers"))
            .collect(),
        None => vec![5, 20, 100, 1_000],
    };
    let mut sweep_entries = Vec::new();
    for &ms in &deadlines_ms {
        // A fresh frontend per deadline point keeps counters clean; a
        // warmup pass seeds its latency ladder with measured rung costs.
        let fe_cfg = FrontendConfig {
            slo: Some(odt_obs::slo::BurnRateConfig::for_drill()),
            ..FrontendConfig::default()
        };
        let mut fe = dot_frontend(
            &model,
            DotFrontendConfig::default(),
            fe_cfg,
            ChaosConfig::quiet(7),
        );
        fe.warmup(&queries[..2.min(queries.len())]);
        let _ = fe.process_wave(queries.iter().map(|q| (*q, Some(ms * 1_000))));
        let s = fe.snapshot();
        let shed = s.submitted - s.served;
        let sla = if s.submitted == 0 {
            1.0
        } else {
            s.deadline_met as f64 / s.submitted as f64
        };
        let slo = s.slo.unwrap_or_default();
        println!(
            "deadline {ms:>5}ms: {}/{} served, sla {:.2}, burn {:.1}/{:.1}, rungs {:?}",
            s.served, s.submitted, sla, slo.fast_burn, slo.slow_burn, s.rung_hits
        );
        sweep_entries.push(format!(
            "    {{ \"deadline_ms\": {ms}, \"submitted\": {}, \"served\": {}, \"shed\": {shed}, \
             \"sla_attainment\": {sla:.4}, \"rung_hits\": {{ \"cached\": {}, \"full_ddpm\": {}, \
             \"ddim\": {}, \"ddim_reduced\": {}, \"cached_stale\": {}, \"fallback\": {} }}, \
             \"slo\": {{ \"fast_burn\": {:.4}, \"slow_burn\": {:.4}, \"alerts\": {} }} }}",
            s.submitted,
            s.served,
            s.rung_hits[0],
            s.rung_hits[1],
            s.rung_hits[2],
            s.rung_hits[3],
            s.rung_hits[4],
            s.rung_hits[5],
            slo.fast_burn,
            slo.slow_burn,
            slo.alerts
        ));
    }

    // Cache sweep: a Zipf-skewed hotspot workload over a fixed pool of
    // distinct OD queries, replayed identically against the plain
    // frontend (the uncached reference) and against cached frontends of
    // increasing capacity. Per-request latency is measured around a
    // one-request wave so the cache's probe/serve path is on the clock.
    let cache_sizes: Vec<usize> = match arg_value("--cache-sizes") {
        Some(s) if s == "none" => Vec::new(),
        Some(s) => s
            .split(',')
            .map(|c| c.trim().parse().expect("--cache-sizes must be integers"))
            .collect(),
        None => vec![16, 64, 256],
    };
    let mut cache_sweep_json = "null".to_string();
    if !cache_sizes.is_empty() {
        let zipf_s = 1.1f64;
        let pool: Vec<OdtInput> = data
            .split(Split::Test)
            .iter()
            .take(64)
            .map(OdtInput::from_trajectory)
            .collect();
        let pool_n = pool.len();
        let weights: Vec<f64> = (0..pool_n)
            .map(|i| 1.0 / ((i + 1) as f64).powf(zipf_s))
            .collect();
        let total_w: f64 = weights.iter().sum();
        let reqs = if quick { 256 } else { 512 };
        let mut wl_rng = StdRng::seed_from_u64(23);
        let workload: Vec<usize> = (0..reqs)
            .map(|_| {
                let mut x = wl_rng.gen::<f64>() * total_w;
                for (i, w) in weights.iter().enumerate() {
                    if x < *w {
                        return i;
                    }
                    x -= w;
                }
                pool_n - 1
            })
            .collect();
        // 100ms lands every uncached request on a model rung, never the
        // fallback — the reference is real DDIM cost, not a heuristic.
        let deadline = Some(100_000u64);

        let mut fe = dot_frontend(
            &model,
            DotFrontendConfig::default(),
            FrontendConfig::default(),
            ChaosConfig::quiet(7),
        );
        fe.warmup(&pool[..2.min(pool_n)]);
        let mut lat: Vec<u64> = Vec::with_capacity(reqs);
        for &i in &workload {
            let t = Instant::now();
            let _ = fe.process_wave(std::iter::once((pool[i], deadline)));
            lat.push(t.elapsed().as_micros() as u64);
        }
        lat.sort_unstable();
        let (un_p50, un_p99) = (quantile_ms(&lat, 0.50), quantile_ms(&lat, 0.99));
        println!(
            "cache sweep: {reqs} reqs over {pool_n} keys (zipf {zipf_s}), \
             uncached p50/p99 {un_p50:.2}/{un_p99:.2} ms"
        );

        let mut cap_entries = Vec::new();
        for &capacity in &cache_sizes {
            let cache = Arc::new(EstimateCache::new(CacheConfig {
                capacity,
                ..CacheConfig::default()
            }));
            let hot = Arc::new(Mutex::new(HotTracker::new(64)));
            let mut fe = dot_frontend_cached(
                &model,
                DotFrontendConfig::default(),
                FrontendConfig::default(),
                ChaosConfig::quiet(7),
                Arc::clone(&cache),
                Arc::clone(&hot),
            );
            fe.warmup(&pool[..2.min(pool_n)]);
            let mut lat: Vec<u64> = Vec::with_capacity(reqs);
            for &i in &workload {
                let t = Instant::now();
                let _ = fe.process_wave(std::iter::once((pool[i], deadline)));
                lat.push(t.elapsed().as_micros() as u64);
            }
            lat.sort_unstable();
            let (p50, p99) = (quantile_ms(&lat, 0.50), quantile_ms(&lat, 0.99));
            let cs = cache.stats();
            let s = fe.snapshot();
            let cached_serves =
                s.rung_hits[Rung::Cached.index()] + s.rung_hits[Rung::CachedStale.index()];
            let hit_rate = if cs.hit_rate().is_finite() {
                cs.hit_rate()
            } else {
                0.0
            };
            let speedup_p50 = un_p50 / p50.max(1e-9);
            println!(
                "  cache {capacity:>5}: hit rate {hit_rate:.3} ({} hits / {} misses), \
                 p50 {p50:.3} ms  p99 {p99:.3} ms  ({speedup_p50:.0}x p50)",
                cs.hits, cs.misses
            );
            cap_entries.push(format!(
                "      {{ \"capacity\": {capacity}, \"hits\": {}, \"stale_hits\": {}, \
                 \"misses\": {}, \"hit_rate\": {hit_rate:.4}, \"evictions\": {}, \
                 \"admission_rejects\": {}, \"cached_serves\": {cached_serves}, \
                 \"p50_ms\": {p50:.4}, \"p99_ms\": {p99:.4}, \"speedup_p50\": {speedup_p50:.2} }}",
                cs.hits, cs.stale_hits, cs.misses, cs.evictions, cs.admission_rejects
            ));
        }
        cache_sweep_json = format!(
            "{{ \"workload\": {{ \"distinct_keys\": {pool_n}, \"requests\": {reqs}, \
             \"zipf_s\": {zipf_s} }}, \"uncached\": {{ \"p50_ms\": {un_p50:.4}, \
             \"p99_ms\": {un_p99:.4} }}, \"capacities\": [\n{}\n    ] }}",
            cap_entries.join(",\n")
        );
    }

    // Trace export: when tracing is on (ODT_TRACE_SAMPLE > 0) the sweep's
    // requests produced retained traces; write them in both formats and
    // surface the p99 exemplar — "which request was the p99".
    let trace_enabled = odt_obs::trace::enabled();
    let (finished, _, _) = odt_obs::trace::trace_stats();
    let retained = odt_obs::trace::retained_count();
    let p99_exemplar = odt_obs::histogram("serve.request")
        .summary()
        .p99_exemplar
        .map(|raw| format!("{raw:016x}"));
    let (chrome_path, spans_path) = if trace_enabled && retained > 0 {
        let cp = "BENCH_serving_trace.json";
        let sp = "BENCH_serving_spans.jsonl";
        let n_chrome =
            odt_obs::trace::write_chrome_trace(cp).unwrap_or_else(|e| panic!("writing {cp}: {e}"));
        let n_spans =
            odt_obs::trace::write_spans_jsonl(sp).unwrap_or_else(|e| panic!("writing {sp}: {e}"));
        println!(
            "traces: {retained} retained ({finished} roots), {n_chrome} events -> {cp}, \
             {n_spans} lines -> {sp}, p99 exemplar {}",
            p99_exemplar.as_deref().unwrap_or("none")
        );
        (Some(cp), Some(sp))
    } else {
        (None, None)
    };
    let json_opt = |v: &Option<&str>| match v {
        Some(s) => format!("\"{s}\""),
        None => "null".to_string(),
    };

    let json = format!(
        "{{\n  \"schema\": \"odt-bench-serving/v5\",\n  \"threads\": {},\n  \
         \"quick\": {},\n  \"batch_size\": {},\n  \"lg\": {},\n  \
         \"train_seconds\": {:.3},\n  \
         \"sequential\": {{ \"queries\": {}, \"seconds\": {:.6}, \"per_query_ms\": {:.4} }},\n  \
         \"batched\": {{ \"queries\": {}, \"seconds\": {:.6}, \"per_query_ms\": {:.4} }},\n  \
         \"speedup\": {:.4},\n  \
         \"quality_overhead\": {{ \"queries\": {iters}, \
         \"observer_off\": {{ \"p50_ms\": {off_p50:.4}, \"p99_ms\": {off_p99:.4} }}, \
         \"observer_on\": {{ \"p50_ms\": {on_p50:.4}, \"p99_ms\": {on_p99:.4}, \
         \"scored\": {scored}, \"mae_s\": {shadow_mae:.3} }}, \
         \"delta_p50_ms\": {d50:.4}, \"delta_p99_ms\": {d99:.4} }},\n  \
         \"deadline_sweep\": [\n{}\n  ],\n  \
         \"cache_sweep\": {cache_sweep_json},\n  \
         \"trace\": {{ \"enabled\": {}, \"sample_every\": {}, \"finished\": {}, \
         \"retained\": {}, \"p99_exemplar\": {}, \"chrome_trace\": {}, \
         \"spans_jsonl\": {} }}\n}}\n",
        odt_compute::num_threads(),
        quick,
        batch_size,
        lg,
        train_seconds,
        n,
        seq_s,
        per_ms(seq_s),
        n,
        bat_s,
        per_ms(bat_s),
        speedup,
        sweep_entries.join(",\n"),
        trace_enabled,
        odt_obs::trace::sample_every(),
        finished,
        retained,
        json_opt(&p99_exemplar.as_deref()),
        json_opt(&chrome_path),
        json_opt(&spans_path)
    );
    let path = "BENCH_serving.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}
