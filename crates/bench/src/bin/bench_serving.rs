//! Serving benchmark: trains a small DOT oracle, then times N sequential
//! `estimate` calls against one `estimate_batch(N)` call. Written to
//! `BENCH_serving.json` in the current working directory (run from the repo
//! root, e.g. via `scripts/bench_kernels.sh`).
//!
//! Flags: `--quick` (smaller model/dataset — CI smoke mode),
//! `--batch <N>` (queries per run, default 64).
//!
//! Schema (`odt-bench-serving/v1`):
//!
//! ```json
//! {
//!   "schema": "odt-bench-serving/v1",
//!   "threads": usize,        // odt-compute pool width
//!   "quick": bool,
//!   "batch_size": usize,
//!   "lg": usize,             // grid side length of the benchmark model
//!   "train_seconds": f64,
//!   "sequential": { "queries": usize, "seconds": f64, "per_query_ms": f64 },
//!   "batched":    { "queries": usize, "seconds": f64, "per_query_ms": f64 },
//!   "speedup": f64           // sequential.seconds / batched.seconds
//! }
//! ```

use odt_core::{Dot, DotConfig};
use odt_traj::{OdtInput, Split};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let quick = arg_flag("--quick");
    let batch_size: usize = arg_value("--batch")
        .map(|v| v.parse().expect("--batch must be an integer"))
        .unwrap_or(64)
        .max(1);
    odt_compute::ensure_initialized();
    let lg = if quick { 8 } else { 16 };
    println!(
        "serving bench: {} thread(s), quick={quick}, batch {batch_size}, lg {lg}",
        odt_compute::num_threads()
    );

    let data = odt_bench::bench_dataset(lg);
    let mut cfg = DotConfig::fast();
    cfg.lg = lg;
    if quick {
        cfg.n_steps = 8;
        cfg.base_channels = 4;
        cfg.cond_dim = 16;
        cfg.d_e = 16;
        cfg.stage1_iters = 12;
        cfg.stage1_batch = 4;
        cfg.stage2_iters = 40;
        cfg.stage2_batch = 4;
    } else {
        cfg.n_steps = 20;
        cfg.stage1_iters = 200;
        cfg.stage2_iters = 200;
    }
    cfg.early_stop_samples = 4;
    cfg.early_stop_every = 1_000;
    let t0 = Instant::now();
    let model = Dot::train(cfg, &data, |_| {});
    let train_seconds = t0.elapsed().as_secs_f64();
    println!("trained in {train_seconds:.1}s");

    let queries: Vec<OdtInput> = data
        .split(Split::Test)
        .iter()
        .cycle()
        .take(batch_size)
        .map(OdtInput::from_trajectory)
        .collect();

    // Same seed for both paths so the denoising workload is comparable.
    let mut rng = StdRng::seed_from_u64(7);
    let t0 = Instant::now();
    for q in &queries {
        let _ = model.estimate(q, &mut rng);
    }
    let seq_s = t0.elapsed().as_secs_f64();

    let mut rng = StdRng::seed_from_u64(7);
    let t0 = Instant::now();
    let ests = model.estimate_batch(&queries, &mut rng);
    let bat_s = t0.elapsed().as_secs_f64();
    assert_eq!(ests.len(), queries.len());
    assert!(ests.iter().all(|e| e.seconds.is_finite()));

    let n = queries.len();
    let per_ms = |s: f64| s / n as f64 * 1_000.0;
    let speedup = seq_s / bat_s.max(1e-9);
    println!(
        "sequential: {seq_s:.3}s ({:.2} ms/q)   batched: {bat_s:.3}s ({:.2} ms/q)   {speedup:.2}x",
        per_ms(seq_s),
        per_ms(bat_s)
    );

    let json = format!(
        "{{\n  \"schema\": \"odt-bench-serving/v1\",\n  \"threads\": {},\n  \
         \"quick\": {},\n  \"batch_size\": {},\n  \"lg\": {},\n  \
         \"train_seconds\": {:.3},\n  \
         \"sequential\": {{ \"queries\": {}, \"seconds\": {:.6}, \"per_query_ms\": {:.4} }},\n  \
         \"batched\": {{ \"queries\": {}, \"seconds\": {:.6}, \"per_query_ms\": {:.4} }},\n  \
         \"speedup\": {:.4}\n}}\n",
        odt_compute::num_threads(),
        quick,
        batch_size,
        lg,
        train_seconds,
        n,
        seq_s,
        per_ms(seq_s),
        n,
        bat_s,
        per_ms(bat_s),
        speedup
    );
    let path = "BENCH_serving.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}
