//! `odt_loadgen`: drive an `odt_server` over TCP and report throughput
//! vs latency (`BENCH_net.json`).
//!
//! ```text
//! odt_loadgen --addr <host:port> [--mode open|closed] [--rate <rps>]
//!             [--sweep <rps,rps,...>] [--conns <n>] [--secs <s>]
//!             [--deadline-ms <ms>] [--seed <u64>]
//!             [--region <lng0,lat0,lng1,lat1>] [--trace-every <n>]
//!             [--zipf-s <s>] [--drift <frac>] [--p-hot <p>]
//!             [--connect-retry-ms <ms>] [--report <path>]
//! ```
//!
//! `--connect-retry-ms` bounds the per-connection retry budget for
//! connect refusals during server warmup (doubling backoff; `0` = fail
//! fast on the first refusal; default 10000). The report records the
//! retries actually taken and a `failed_requests` roll-up (lost + typed
//! error replies) per run — cluster smoke tests gate it to zero.
//!
//! * `--mode open` (default) — Poisson arrivals at `--rate` rps with the
//!   full schedule fixed up-front; latency is measured from each
//!   request's *scheduled* send time, so queue buildup in a saturated
//!   server is charged to the server, not hidden by a stalled sender
//!   (no coordinated omission). `--mode closed` sends the next request
//!   only after the previous response.
//! * `--sweep`  — run the open loop once per listed rate (overrides
//!   `--rate`/`--mode`); the report then traces the throughput-latency
//!   curve.
//! * `--region` — the box ODs are drawn from; paste the server's
//!   `odt_server region ...` line so strict admission accepts them.
//! * `--zipf-s` — Zipf exponent for hotspot rank selection: `0` (the
//!   default) picks hotspot centers uniformly, larger values concentrate
//!   traffic on a few OD cells (the cache-friendly regime). `--drift`
//!   moves hotspot centers sinusoidally with the query's time of day
//!   (fraction of the region span), so the hot set slowly reshapes.
//!   The report records the *achieved* key skew (distinct coarse OD
//!   keys, top-1/top-10 traffic share) per run.
//! * Every `--trace-every`-th request carries a trace id the server
//!   adopts into its spans (end-to-end tracing across the wire).
//!
//! The report (`odt-bench-net/v1`) has one row per run: offered vs
//! achieved rps, p50/p90/p99 latency, typed error counts, per-rung
//! answer counts, OK replies per serving replica (the wire `served_by`
//! field — through a router this is the per-shard attribution), and the
//! worst sender lag vs the schedule (a large lag means the *generator*
//! saturated and offered less than configured).
//! Exit status is non-zero if any run got zero OK replies.

use odt_net::loadgen::{self, LoadConfig, LoadMode, LoadReport, Region};
use std::time::Duration;

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn kv_json(pairs: &[(String, u64)]) -> String {
    if pairs.is_empty() {
        return "{}".to_string();
    }
    let inner: Vec<String> = pairs
        .iter()
        .map(|(k, v)| {
            let mut key = String::new();
            odt_obs::json::push_str_escaped(&mut key, k);
            format!("{key}: {v}")
        })
        .collect();
    format!("{{ {} }}", inner.join(", "))
}

fn row_json(r: &LoadReport) -> String {
    let l = &r.latency;
    // Every request that got no OK answer, whatever the failure mode —
    // the one number cluster smoke tests gate to zero.
    let failed_requests = r.lost + r.errors.iter().map(|(_, n)| n).sum::<u64>();
    format!(
        "    {{ \"mode\": \"{}\", \"offered_rps\": {:.1}, \"sent\": {}, \"ok\": {}, \
         \"lost\": {}, \"failed_requests\": {}, \"connect_retries\": {}, \"errors\": {}, \
         \"wall_s\": {:.3}, \"throughput_rps\": {:.1}, \
         \"latency\": {{ \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"max_ms\": {:.3}, \"mean_ms\": {:.3} }}, \"rungs\": {}, \"deadline_met\": {}, \
         \"send_lag_max_ms\": {:.3}, \"traces_sent\": {}, \"served_by\": {}, \"key_skew\": {{ \
         \"distinct\": {}, \"total\": {}, \"top1_share\": {:.4}, \"top10_share\": {:.4} }} }}",
        r.mode,
        r.offered_rps,
        r.sent,
        r.ok,
        r.lost,
        failed_requests,
        r.connect_retries,
        kv_json(&r.errors),
        r.wall_s,
        r.throughput_rps,
        l.p50_ms,
        l.p90_ms,
        l.p99_ms,
        l.max_ms,
        l.mean_ms,
        kv_json(&r.rungs),
        r.deadline_met,
        r.send_lag_max_ms,
        r.traces_sent,
        kv_json(&r.served_by),
        r.key_skew.distinct,
        r.key_skew.total,
        r.key_skew.top1_share,
        r.key_skew.top10_share,
    )
}

fn main() {
    odt_obs::flightrec::install_panic_hook();
    odt_obs::trace::init_from_env();

    let addr = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let conns: usize = arg_value("--conns")
        .map(|v| v.parse().expect("--conns must be an integer"))
        .unwrap_or(4)
        .max(1);
    let secs: f64 = arg_value("--secs")
        .map(|v| v.parse().expect("--secs must be a number"))
        .unwrap_or(5.0);
    let deadline_ms: Option<u64> = match arg_value("--deadline-ms").as_deref() {
        Some("none") => None,
        Some(v) => Some(v.parse().expect("--deadline-ms must be an integer")),
        None => Some(200),
    };
    let seed: u64 = arg_value("--seed")
        .map(|v| v.parse().expect("--seed must be an integer"))
        .unwrap_or(0xD07_CAFE);
    let trace_every: u64 = arg_value("--trace-every")
        .map(|v| v.parse().expect("--trace-every must be an integer"))
        .unwrap_or(64);
    let zipf_s: f64 = arg_value("--zipf-s")
        .map(|v| v.parse().expect("--zipf-s must be a number"))
        .unwrap_or(0.0);
    let center_drift: f64 = arg_value("--drift")
        .map(|v| v.parse().expect("--drift must be a number"))
        .unwrap_or(0.0);
    let p_hot: Option<f64> =
        arg_value("--p-hot").map(|v| v.parse().expect("--p-hot must be a number"));
    let connect_retry_ms: Option<u64> = arg_value("--connect-retry-ms")
        .map(|v| v.parse().expect("--connect-retry-ms must be an integer"));
    let report_path = arg_value("--report").unwrap_or_else(|| "BENCH_net.json".to_string());

    let region = match arg_value("--region") {
        None => Region::default(),
        Some(s) => {
            let parts: Vec<f64> = s
                .split(',')
                .map(|p| p.trim().parse().expect("--region must be 4 numbers"))
                .collect();
            assert_eq!(parts.len(), 4, "--region must be lng0,lat0,lng1,lat1");
            Region {
                lng0: parts[0],
                lat0: parts[1],
                lng1: parts[2],
                lat1: parts[3],
            }
        }
    };

    let modes: Vec<LoadMode> = match arg_value("--sweep") {
        Some(s) => s
            .split(',')
            .map(|r| LoadMode::Open {
                rate_rps: r.trim().parse().expect("--sweep must be numbers"),
            })
            .collect(),
        None => match arg_value("--mode").as_deref() {
            Some("closed") => vec![LoadMode::Closed],
            _ => vec![LoadMode::Open {
                rate_rps: arg_value("--rate")
                    .map(|v| v.parse().expect("--rate must be a number"))
                    .unwrap_or(200.0),
            }],
        },
    };

    let mut rows = Vec::new();
    let mut all_ok = true;
    for mode in modes {
        let mut cfg = LoadConfig {
            addr: addr.clone(),
            conns,
            duration: Duration::from_secs_f64(secs),
            mode,
            seed,
            deadline_ms,
            region,
            trace_every,
            zipf_s,
            center_drift,
            ..LoadConfig::default()
        };
        if let Some(p) = p_hot {
            cfg.p_hot = p;
        }
        if let Some(ms) = connect_retry_ms {
            cfg.connect_retry_ms = ms;
        }
        let report = loadgen::run(&cfg).expect("load run failed: no connection completed");
        println!(
            "{:>6} @ {:>7.1} rps: {} ok / {} sent ({} lost), {:.1} rps through, \
             p50 {:.2} ms  p99 {:.2} ms  lag {:.1} ms  top1 {:.0}% of {} keys",
            report.mode,
            report.offered_rps,
            report.ok,
            report.sent,
            report.lost,
            report.throughput_rps,
            report.latency.p50_ms,
            report.latency.p99_ms,
            report.send_lag_max_ms,
            report.key_skew.top1_share * 100.0,
            report.key_skew.distinct,
        );
        if report.ok == 0 {
            all_ok = false;
        }
        rows.push(row_json(&report));
    }

    let quiet = arg_flag("--quiet");
    let json = format!(
        "{{\n  \"schema\": \"odt-bench-net/v1\",\n  \"addr\": \"{addr}\",\n  \"conns\": {conns},\n  \"secs\": {secs},\n  \"deadline_ms\": {},\n  \"seed\": {seed},\n  \"zipf_s\": {zipf_s},\n  \"center_drift\": {center_drift},\n  \"runs\": [\n{}\n  ],\n  \"pass\": {all_ok}\n}}\n",
        deadline_ms
            .map(|d| d.to_string())
            .unwrap_or_else(|| "null".to_string()),
        rows.join(",\n"),
    );
    std::fs::write(&report_path, json).unwrap_or_else(|e| panic!("writing {report_path}: {e}"));
    if !quiet {
        println!("wrote {report_path}");
    }

    if !all_ok {
        eprintln!("odt_loadgen: a run finished with zero OK replies");
        std::process::exit(1);
    }
}
