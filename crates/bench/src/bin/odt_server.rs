//! `odt_server`: serve the OD travel-time oracle over TCP (`odt-wire/v1`).
//!
//! Trains a small DOT oracle on simulated Chengdu-like data, then serves
//! it through the hardened `odt-net` frontend: bounded admission, typed
//! overload errors, per-connection backpressure, and graceful drain on
//! SIGTERM/ctrl-c. With `--admin`, a live introspection plane rides
//! along on a second port: Prometheus `/metrics`, `/healthz`/`/readyz`
//! probes, `/varz`/`/tracez` JSON and `POST /flightrec`.
//!
//! ```text
//! odt_server [--addr <host:port>] [--admin <host:port>] [--quick]
//!            [--registry <dir>] [--cache <capacity>] [--holdout <n>]
//!            [--max-conns <n>] [--max-inflight <n>]
//!            [--drain-budget-ms <ms>] [--max-run-s <s>]
//!            [--instance <name>] [--report <path>] [--seed <u64>]
//! ```
//!
//! * `--addr`        — listen address (default `127.0.0.1:7878`; port `0`
//!                     picks a free port, printed on the listening line).
//! * `--admin`       — admin plane address (e.g. `127.0.0.1:9878`; port
//!                     `0` works; omitted = no admin plane).
//! * `--quick`       — tiny model, CI smoke mode.
//! * `--registry`    — model registry directory (created if missing). An
//!                     existing `CURRENT` model is reloaded instead of
//!                     retrained; a fresh registry gets the trained model
//!                     published as v1. Enables zero-downtime hot swap:
//!                     `POST /swap` on the admin plane (body = candidate
//!                     checkpoint path) validates framing + grid shape,
//!                     shadow-scores the candidate against the serving
//!                     model on dispatcher ticks, then promotes it into
//!                     the live [`ModelSlot`] — or refuses it with a
//!                     typed code (`corrupt`, `shape_mismatch`,
//!                     `drift_failed`, `busy`) — without ever pausing
//!                     serving.
//! * `--cache`       — attach the hot-path OD estimate cache with this
//!                     many entries (default: off). Turns on the cached
//!                     ladder rungs, a background prewarmer on dispatcher
//!                     idle ticks, and drift-alert invalidation (the
//!                     shadow scorer's drift alert flushes every cached
//!                     estimate).
//! * `--holdout`     — ground-truth trajectories shadow-scored on idle
//!                     ticks for model-quality telemetry (default 64;
//!                     `0` disables the quality observer).
//! * `--instance`    — this process's name in wire `served_by` replies
//!                     and `/tracez` fragments (default `pid-<pid>`);
//!                     give each replica a distinct name so
//!                     `cluster_report` and the federated metrics can
//!                     tell them apart.
//! * `--max-run-s`   — self-drain after this many seconds even without a
//!                     signal (CI watchdog; default: run until signaled).
//! * `--report`      — final JSON report path (default
//!                     `BENCH_net_server.json`).
//!
//! Startup prints machine-readable lines in this order:
//!
//! ```text
//! odt_server listening on <addr>      # socket bound; NOT ready yet
//! odt_server admin on <addr>          # only with --admin
//! odt_server region <lng0>,<lat0>,<lng1>,<lat1>
//! odt_server ready                    # model trained; /readyz flips 200
//! ```
//!
//! The listening line appears at bind time — the server accepts (and
//! queues) connections while the model still trains, and `/healthz`
//! answers from the admin line onward. **`odt_server ready` is the
//! routable-traffic signal**: scripts must key off it (or poll
//! `/readyz`, which flips 503 → 200 at the same instant), not off the
//! listening line. On drain the final report (`odt-net-server/v4`)
//! carries the connection counters (leak check: `conns.active == 0`),
//! the frontend snapshot (typed shed reasons, rung hits, SLO burn
//! rates), cache counters (when `--cache` is on), adopted wire trace
//! ids, admin-plane, model-quality and hot-swap summaries (current
//! model version, promoted/rejected counts), and the drain outcome;
//! the exit status is non-zero if the drain was forced or leaked
//! connections.

use odt_core::{Dot, DotConfig, ModelRegistry, RegistryError};
use odt_net::admin::{render_varz, start_admin, AdminConfig, AdminSources, SwapFn};
use odt_net::loadgen::Region;
use odt_net::server::{set_instance_name, FrontendBridge, ServerConfig, SharedFrontendStats};
use odt_net::signal;
use odt_obs::QualitySnapshot;
use odt_roadnet::LngLat;
use odt_serve::{
    dot_frontend, dot_frontend_cached, CacheConfig, ChaosConfig, DotFrontendConfig, DotSwapHost,
    DotSwapHostConfig, DriftInvalidator, EstimateCache, FrontendConfig, HotTracker, ModelSlot,
    PrewarmConfig, Prewarmer, SwapConfig, SwapController, SwapError, SwapOutcome, SwapStats,
};
use odt_serve::{ShadowConfig, ShadowScorer};
use odt_traj::{Dataset, GridSpec, OdtInput, Split};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn server_dataset(quick: bool) -> Dataset {
    let mut cfg = odt_traj::sim::CitySimConfig::chengdu_like();
    if quick {
        cfg.nx = 8;
        cfg.ny = 8;
        Dataset::simulated(cfg, 180, 8, 41)
    } else {
        cfg.nx = 12;
        cfg.ny = 12;
        Dataset::simulated(cfg, 400, 8, 41)
    }
}

fn server_model(data: &Dataset, quick: bool) -> Dot {
    let mut cfg = DotConfig::fast();
    cfg.lg = 8;
    cfg.n_steps = 8;
    cfg.base_channels = 4;
    cfg.cond_dim = 16;
    cfg.d_e = 16;
    if quick {
        cfg.stage1_iters = 15;
        cfg.stage2_iters = 30;
        cfg.early_stop_samples = 3;
        cfg.early_stop_every = 15;
    } else {
        cfg.stage1_iters = 60;
        cfg.stage2_iters = 120;
        cfg.early_stop_samples = 4;
        cfg.early_stop_every = 60;
    }
    Dot::train(cfg, data, |_| {})
}

/// The box strict admission accepts, shrunk 5% inside the grid so load
/// endpoints never land on the reject margin.
fn region_of(grid: &GridSpec) -> Region {
    let mx = (grid.max.lng - grid.min.lng) * 0.05;
    let my = (grid.max.lat - grid.min.lat) * 0.05;
    Region {
        lng0: grid.min.lng + mx,
        lat0: grid.min.lat + my,
        lng1: grid.max.lng - mx,
        lat1: grid.max.lat - my,
    }
}

/// One `POST /swap` request in flight from an admin handler thread to
/// the dispatcher's swap tick: candidate path + where to send the
/// outcome.
type SwapRequest = (String, std::sync::mpsc::Sender<SwapOutcome>);

/// An `odt-swap/v1` refusal body.
fn swap_json_err(code: &str, detail: &str) -> String {
    let mut out = String::from("{\"schema\":\"odt-swap/v1\",\"accepted\":false,\"code\":\"");
    out.push_str(code);
    out.push_str("\",\"detail\":\"");
    odt_obs::json::push_str_escaped(&mut out, detail);
    out.push_str("\"}");
    out
}

fn main() {
    odt_obs::flightrec::install_panic_hook();
    odt_obs::trace::init_from_env();
    odt_obs::flightrec::init_from_env();
    odt_compute::ensure_initialized();
    signal::install();

    let quick = arg_flag("--quick");
    if let Some(name) = arg_value("--instance") {
        set_instance_name(&name);
    }
    let addr = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let admin_addr = arg_value("--admin");
    let report_path = arg_value("--report").unwrap_or_else(|| "BENCH_net_server.json".to_string());
    let seed: u64 = arg_value("--seed")
        .map(|v| v.parse().expect("--seed must be an integer"))
        .unwrap_or(7);
    let holdout_n: usize = arg_value("--holdout")
        .map(|v| v.parse().expect("--holdout must be an integer"))
        .unwrap_or(64);
    let cache_capacity: Option<usize> = arg_value("--cache")
        .map(|v| v.parse().expect("--cache must be an integer"))
        .filter(|&c| c > 0);
    let max_run_s: Option<u64> =
        arg_value("--max-run-s").map(|v| v.parse().expect("--max-run-s must be an integer"));
    let registry: Option<ModelRegistry> = arg_value("--registry")
        .map(|d| ModelRegistry::open(&d).unwrap_or_else(|e| panic!("opening registry {d}: {e}")));
    let registry_enabled = registry.is_some();

    let mut cfg = ServerConfig {
        addr,
        ..ServerConfig::default()
    };
    if let Some(v) = arg_value("--max-conns") {
        cfg.max_connections = v.parse().expect("--max-conns must be an integer");
    }
    if let Some(v) = arg_value("--max-inflight") {
        cfg.max_inflight_per_conn = v.parse().expect("--max-inflight must be an integer");
    }
    if let Some(v) = arg_value("--drain-budget-ms") {
        cfg.drain_budget_ms = v.parse().expect("--drain-budget-ms must be an integer");
    }

    // Latest shadow-scored quality snapshot, published by the dispatcher
    // tick for `/varz` and the final report.
    let quality_slot: Arc<Mutex<Option<QualitySnapshot>>> = Arc::new(Mutex::new(None));

    // Hot-swap plane: admin handler threads enqueue `(candidate path,
    // reply sender)` pairs; the dispatcher's swap tick drains them so
    // the `!Send` model only ever moves on its own thread. The stats
    // slot mirrors `(serving model version, swap counters)` out to
    // `/varz` and the final report.
    let (swap_tx, swap_rx) = std::sync::mpsc::channel::<SwapRequest>();
    let swap_slot: Arc<Mutex<(u64, Option<SwapStats>)>> = Arc::new(Mutex::new((0, None)));

    // The estimate cache (if enabled) lives out here so `/varz` and the
    // final report can read its stats; the dispatcher-side frontend,
    // prewarmer and drift invalidator share it through the Arc.
    let cache: Option<Arc<EstimateCache>> = cache_capacity.map(|capacity| {
        Arc::new(EstimateCache::new(CacheConfig {
            capacity,
            ..CacheConfig::default()
        }))
    });

    // The DOT model's parameters are `Rc`-based (thread-local), so the
    // whole serving stack — train, warm up, bridge, shadow scorer — is
    // built *on* the dispatcher thread via the factory. The channel hands
    // the stats handle and the admission region back out, and doubles as
    // the "model ready" barrier: the ready line prints only after it.
    println!("odt_server: training oracle (quick={quick})");
    let (ready_tx, ready_rx) = std::sync::mpsc::channel();
    let handle = {
        let quality_slot = Arc::clone(&quality_slot);
        let cache_fe = cache.clone();
        let swap_pub = Arc::clone(&swap_slot);
        odt_net::server::start_with(cfg, move || {
            let data = server_dataset(quick);
            let t0 = Instant::now();
            // With --registry, a previously promoted model is reloaded
            // instead of retrained; a fresh registry gets the trained
            // model published as v1. Without a registry the model is
            // version 0 and unswappable.
            let (version, served_model) = match &registry {
                Some(reg) => match reg.load_current() {
                    Ok((v, m)) => {
                        println!("odt_server: loaded model v{v} from the registry");
                        (v, m)
                    }
                    Err(RegistryError::NoCurrent) => {
                        let m = server_model(&data, quick);
                        let v = reg.publish(&m).expect("publishing the trained model");
                        (v, m)
                    }
                    Err(e) => panic!("loading registry CURRENT: {e}"),
                },
                None => (0, server_model(&data, quick)),
            };
            let slot = ModelSlot::from_model(served_model, version);
            let train_s = t0.elapsed().as_secs_f64();
            let fe_cfg = FrontendConfig {
                slo: Some(odt_obs::slo::BurnRateConfig::for_drill()),
                ..FrontendConfig::default()
            };
            let hot: Arc<Mutex<HotTracker<OdtInput>>> = Arc::new(Mutex::new(HotTracker::new(128)));
            let mut fe = if let Some(cache) = &cache_fe {
                dot_frontend_cached(
                    slot.clone(),
                    DotFrontendConfig::default(),
                    fe_cfg,
                    ChaosConfig::quiet(seed),
                    Arc::clone(cache),
                    Arc::clone(&hot),
                )
            } else {
                dot_frontend(
                    slot.clone(),
                    DotFrontendConfig::default(),
                    fe_cfg,
                    ChaosConfig::quiet(seed),
                )
            };
            let warmup: Vec<OdtInput> = data
                .split(Split::Test)
                .iter()
                .take(2)
                .map(OdtInput::from_trajectory)
                .collect();
            fe.warmup(&warmup);
            let mut bridge = FrontendBridge::new(fe, |q: &odt_net::wire::WireQuery| OdtInput {
                origin: LngLat {
                    lng: q.o_lng,
                    lat: q.o_lat,
                },
                dest: LngLat {
                    lng: q.d_lng,
                    lat: q.d_lat,
                },
                t_dep: q.t_dep,
            });
            if holdout_n > 0 {
                // Shadow quality observer: ground-truth test trajectories
                // replayed through the live oracle on idle ticks. Drift
                // alerts route through the tracker into the SLO monitor
                // and the flight recorder (odt_obs::quality).
                let holdout: Vec<(OdtInput, f64)> = data
                    .split(Split::Test)
                    .iter()
                    .take(holdout_n)
                    .map(|t| (OdtInput::from_trajectory(t), t.travel_time()))
                    .collect();
                let shadow_cfg = ShadowConfig {
                    quality: odt_obs::QualityConfig {
                        slo: Some(odt_obs::slo::BurnRateConfig::default()),
                        ..odt_obs::QualityConfig::default()
                    },
                    ..ShadowConfig::default()
                };
                let mut scorer = ShadowScorer::new(holdout, shadow_cfg);
                let mut shadow_rng = StdRng::seed_from_u64(seed ^ 0x5AD0);
                let quality_shadow = Arc::clone(&quality_slot);
                let shadow_slot = slot.clone();
                bridge.add_tick("shadow_score", 0, move || {
                    let now = odt_obs::trace::now_us();
                    let scored = scorer.step(now, |qs: &[OdtInput]| {
                        shadow_slot
                            .model()
                            .estimate_batch(qs, &mut shadow_rng)
                            .into_iter()
                            .map(|e| e.seconds)
                            .collect()
                    });
                    if scored > 0 {
                        *quality_shadow.lock().unwrap() = Some(scorer.quality(now));
                    }
                });
            }
            if let Some(cache) = &cache_fe {
                // Prewarmer: re-infer the hottest OD keys on idle ticks
                // (forced insert, bypassing admission) so the next rush
                // lands on a warm cache. The tracker is fed by the
                // frontend's own cache probes.
                let pw_cfg = PrewarmConfig::default();
                let pw_interval = pw_cfg.min_interval_us;
                let mut prewarmer = Prewarmer::new(pw_cfg, Arc::clone(cache), Arc::clone(&hot));
                let mut prewarm_rng = StdRng::seed_from_u64(seed ^ 0x93E7);
                let prewarm_slot = slot.clone();
                bridge.add_tick("cache_prewarm", pw_interval, move || {
                    let now = odt_obs::trace::now_us();
                    let _ = prewarmer.step(now, |qs: &[OdtInput]| {
                        prewarm_slot
                            .model()
                            .estimate_batch(qs, &mut prewarm_rng)
                            .into_iter()
                            .map(|e| e.seconds)
                            .collect()
                    });
                });
                // Drift invalidation: a shadow-scorer drift alert means
                // the world the cached estimates were computed in is
                // gone — flush them all (generation bump) rather than
                // serve confidently stale answers.
                let drift_cache = Arc::clone(cache);
                let quality_drift = Arc::clone(&quality_slot);
                let mut invalidator = DriftInvalidator::new();
                bridge.add_tick("cache_drift_invalidate", 250_000, move || {
                    let q = quality_drift.lock().unwrap().clone();
                    if let Some(q) = q {
                        let _ = invalidator.observe(&q, &drift_cache);
                    }
                });
            }
            if let Some(reg) = registry {
                // Swap controller: owns the registry and the slot, does
                // one bounded step per dispatcher tick (load, then one
                // shadow batch at a time), so a swap in flight steals
                // microseconds from serving, never a pause.
                let holdout: Vec<(OdtInput, f64)> = data
                    .split(Split::Test)
                    .iter()
                    .map(|t| (OdtInput::from_trajectory(t), t.travel_time()))
                    .collect();
                let host = DotSwapHost::new(
                    reg,
                    slot.clone(),
                    holdout,
                    cache_fe.clone(),
                    DotSwapHostConfig {
                        rng_seed: seed ^ 0xC4AD,
                        ..DotSwapHostConfig::default()
                    },
                );
                let mut ctrl = SwapController::new(host, SwapConfig::default());
                *swap_pub.lock().unwrap() = (slot.version(), Some(ctrl.stats()));
                let swap_ver = slot.clone();
                bridge.add_tick("model_swap", 0, move || {
                    while let Ok((path, reply)) = swap_rx.try_recv() {
                        if let Err(e) = ctrl.request(&path, Some(reply.clone())) {
                            let _ = reply.send(SwapOutcome::Rejected(e));
                        }
                    }
                    let _ = ctrl.tick();
                    *swap_pub.lock().unwrap() = (swap_ver.version(), Some(ctrl.stats()));
                });
            } else {
                drop(swap_rx);
                *swap_pub.lock().unwrap() = (slot.version(), None);
            }
            let _ = ready_tx.send((
                bridge.shared_stats(),
                region_of(slot.model().grid()),
                train_s,
            ));
            bridge
        })
        .expect("binding the listen address")
    };
    let bound = handle.addr();
    println!("odt_server listening on {bound}");
    let _ = std::io::stdout().flush();

    // The admin plane comes up before the model finishes: /healthz is
    // green from here, /readyz stays 503 until the factory signals.
    let admin = admin_addr.map(|a| {
        let stats_handle = handle.stats_handle();
        let fe_slot: Arc<Mutex<Option<SharedFrontendStats>>> = Arc::new(Mutex::new(None));
        let varz_fe = Arc::clone(&fe_slot);
        let varz_quality = Arc::clone(&quality_slot);
        let varz_cache = cache.clone();
        // POST /swap bridges an admin handler thread to the dispatcher:
        // enqueue the candidate path, block on the reply channel until
        // the swap concludes (or times out), never touching the `!Send`
        // model from this thread.
        let swap: Option<SwapFn> = registry_enabled.then(|| {
            let tx = Mutex::new(swap_tx.clone());
            Box::new(move |path: &str| {
                let (reply_tx, reply_rx) = std::sync::mpsc::channel();
                if tx
                    .lock()
                    .unwrap()
                    .send((path.to_string(), reply_tx))
                    .is_err()
                {
                    return (503u16, swap_json_err("unavailable", "dispatcher is gone"));
                }
                match reply_rx.recv_timeout(Duration::from_secs(120)) {
                    Ok(SwapOutcome::Promoted {
                        version,
                        cand_mae_s,
                        serving_mae_s,
                    }) => (
                        200,
                        format!(
                            "{{\"schema\":\"odt-swap/v1\",\"accepted\":true,\
                             \"version\":{version},\"cand_mae_s\":{cand_mae_s:.3},\
                             \"serving_mae_s\":{serving_mae_s:.3}}}"
                        ),
                    ),
                    Ok(SwapOutcome::Rejected(e)) => {
                        let status = if matches!(e, SwapError::Busy) {
                            409
                        } else {
                            422
                        };
                        (status, swap_json_err(e.code(), &e.to_string()))
                    }
                    Err(_) => (
                        504,
                        swap_json_err("timeout", "swap did not conclude in time"),
                    ),
                }
            }) as SwapFn
        });
        let admin = start_admin(
            AdminConfig {
                addr: a,
                ..AdminConfig::default()
            },
            AdminSources {
                varz: Some(Box::new(move || {
                    let fe_pair = varz_fe.lock().unwrap().as_ref().map(|s| s.get());
                    let quality = varz_quality.lock().unwrap().clone();
                    let cache_stats = varz_cache.as_ref().map(|c| c.stats());
                    render_varz(
                        stats_handle.state_name(),
                        &stats_handle.stats(),
                        stats_handle.inflight(),
                        fe_pair.as_ref().map(|(snap, adopted)| (snap, *adopted)),
                        quality.as_ref(),
                        cache_stats.as_ref(),
                    )
                })),
                swap,
            },
        )
        .expect("binding the admin address");
        println!("odt_server admin on {}", admin.addr());
        let _ = std::io::stdout().flush();
        (admin, fe_slot)
    });

    let (shared, r, train_s) = ready_rx.recv().expect("backend init");
    if let Some((admin, fe_slot)) = &admin {
        *fe_slot.lock().unwrap() = Some(shared.clone());
        admin.set_ready(true);
    }
    println!("odt_server: trained in {train_s:.1}s");
    println!(
        "odt_server region {:.6},{:.6},{:.6},{:.6}",
        r.lng0, r.lat0, r.lng1, r.lat1
    );
    println!("odt_server ready");
    let _ = std::io::stdout().flush();

    let started = Instant::now();
    loop {
        if signal::shutdown_requested() {
            println!("odt_server: shutdown signal, draining");
            break;
        }
        if let Some(s) = max_run_s {
            if started.elapsed().as_secs() >= s {
                println!("odt_server: --max-run-s reached, draining");
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    // Readiness drops the instant the drain decision is made, so load
    // balancers stop routing before the wire port starts refusing.
    if let Some((admin, _)) = &admin {
        admin.set_ready(false);
    }
    let uptime_s = started.elapsed().as_secs_f64();
    let report = handle.drain();
    let (snap, adopted) = shared.get();
    let quality = quality_slot.lock().unwrap().clone();
    let c = &report.stats;
    let pass = report.clean && c.active == 0;
    println!(
        "odt_server: drained (clean={}, forced={}, active={}), {} served / {} submitted",
        report.clean, report.forced_conns, c.active, snap.served, snap.submitted
    );
    if let Some(q) = &quality {
        println!(
            "odt_server: quality over {} shadow samples: mae {:.1}s, mape {:.3}, drift {:.3} ({} alerts)",
            q.samples, q.mae_s, q.mape, q.drift_score, q.drift_alerts
        );
    }
    let cache_stats = cache.as_ref().map(|c| c.stats());
    if let Some(cs) = &cache_stats {
        println!(
            "odt_server: cache {}/{} entries, {} hits / {} stale / {} misses (hit rate {:.3}), {} prewarm batch(es), {} invalidation(s)",
            cs.len,
            cs.capacity,
            cs.hits,
            cs.stale_hits,
            cs.misses,
            if cs.hit_rate().is_finite() { cs.hit_rate() } else { 0.0 },
            cs.prewarm_batches,
            cs.invalidations
        );
    }

    let (model_version, swap_stats) = swap_slot.lock().unwrap().clone();
    if let Some(s) = &swap_stats {
        println!(
            "odt_server: model v{model_version}, swaps: {} requested / {} promoted / {} rejected",
            s.requested, s.promoted, s.rejected
        );
    }

    let slo_json = match &snap.slo {
        Some(s) => format!(
            "{{ \"fast_burn\": {:.4}, \"slow_burn\": {:.4}, \"alerts\": {} }}",
            s.fast_burn, s.slow_burn, s.alerts
        ),
        None => "null".to_string(),
    };
    let admin_json = match &admin {
        Some((a, _)) => format!(
            "{{ \"addr\": \"{}\", \"requests\": {} }}",
            a.addr(),
            a.requests()
        ),
        None => "null".to_string(),
    };
    let quality_json = match &quality {
        Some(q) => format!(
            "{{ \"samples\": {}, \"mae_s\": {:.3}, \"mape\": {:.4}, \"bias_s\": {:.3}, \"drift_score\": {:.4}, \"drift_alerts\": {}, \"reference_frozen\": {} }}",
            q.samples, q.mae_s, q.mape, q.bias_s, q.drift_score, q.drift_alerts, q.reference_frozen
        ),
        None => "null".to_string(),
    };
    let cache_json = match &cache_stats {
        Some(cs) => format!(
            "{{ \"len\": {}, \"capacity\": {}, \"generation\": {}, \"hits\": {}, \"stale_hits\": {}, \"misses\": {}, \"hit_rate\": {}, \"evictions\": {}, \"admission_rejects\": {}, \"prewarm_batches\": {}, \"invalidations\": {}, \"invalidated_entries\": {} }}",
            cs.len,
            cs.capacity,
            cs.generation,
            cs.hits,
            cs.stale_hits,
            cs.misses,
            if cs.hit_rate().is_finite() {
                format!("{:.4}", cs.hit_rate())
            } else {
                "null".to_string()
            },
            cs.evictions,
            cs.admission_rejects,
            cs.prewarm_batches,
            cs.invalidations,
            cs.invalidated_entries
        ),
        None => "null".to_string(),
    };
    let swap_json = match &swap_stats {
        Some(s) => format!(
            "{{ \"model_version\": {model_version}, \"state\": \"{}\", \"requested\": {}, \"promoted\": {}, \"rejected\": {}, \"last_reject_code\": {}, \"last_promoted_version\": {} }}",
            s.state,
            s.requested,
            s.promoted,
            s.rejected,
            s.last_reject_code
                .map(|c| format!("\"{c}\""))
                .unwrap_or_else(|| "null".to_string()),
            s.last_promoted_version
                .map(|v| v.to_string())
                .unwrap_or_else(|| "null".to_string()),
        ),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"schema\": \"odt-net-server/v4\",\n  \"addr\": \"{addr}\",\n  \"quick\": {quick},\n  \"uptime_s\": {uptime_s:.3},\n  \"conns\": {{ \"opened\": {}, \"closed\": {}, \"active\": {}, \"rejected_capacity\": {}, \"rejected_draining\": {}, \"frames_in\": {}, \"frames_out\": {}, \"malformed\": {}, \"too_large\": {}, \"timeouts_idle\": {}, \"timeouts_frame\": {}, \"read_errors\": {}, \"write_errors\": {}, \"backpressure_stalls\": {}, \"dispatch_shed\": {}, \"reply_drops\": {}, \"forced_closes\": {} }},\n  \"frontend\": {{ \"submitted\": {}, \"admitted\": {}, \"served\": {}, \"shed\": {{ \"queue_full\": {}, \"queue_expired\": {}, \"invalid_query\": {}, \"internal\": {} }}, \"rung_hits\": {{ \"cached\": {}, \"full_ddpm\": {}, \"ddim\": {}, \"ddim_reduced\": {}, \"cached_stale\": {}, \"fallback\": {} }}, \"deadline\": {{ \"met\": {}, \"missed\": {} }}, \"slo\": {slo_json} }},\n  \"cache\": {cache_json},\n  \"swap\": {swap_json},\n  \"adopted_traces\": {adopted},\n  \"admin\": {admin_json},\n  \"quality\": {quality_json},\n  \"drain\": {{ \"clean\": {}, \"forced_conns\": {}, \"wait_ms\": {} }},\n  \"flightrec_dumps\": {},\n  \"pass\": {pass}\n}}\n",
        c.opened,
        c.closed,
        c.active,
        c.rejected_capacity,
        c.rejected_draining,
        c.frames_in,
        c.frames_out,
        c.malformed,
        c.too_large,
        c.timeouts_idle,
        c.timeouts_frame,
        c.read_errors,
        c.write_errors,
        c.backpressure_stalls,
        c.dispatch_shed,
        c.reply_drops,
        c.forced_closes,
        snap.submitted,
        snap.admitted,
        snap.served,
        snap.shed_queue_full,
        snap.shed_deadline,
        snap.shed_invalid,
        snap.shed_internal,
        snap.rung_hits[0],
        snap.rung_hits[1],
        snap.rung_hits[2],
        snap.rung_hits[3],
        snap.rung_hits[4],
        snap.rung_hits[5],
        snap.deadline_met,
        snap.deadline_missed,
        report.clean,
        report.forced_conns,
        report.wait_ms,
        odt_obs::flightrec::dump_count(),
        addr = bound,
    );
    std::fs::write(&report_path, json).unwrap_or_else(|e| panic!("writing {report_path}: {e}"));
    println!("wrote {report_path}");

    // The admin plane outlives the drain (so a final /metrics scrape or
    // /varz pull sees the end state), then stops with the process.
    if let Some((a, _)) = admin {
        a.shutdown();
    }

    if !pass {
        eprintln!("odt_server: drain was forced or connections leaked");
        std::process::exit(1);
    }
}
