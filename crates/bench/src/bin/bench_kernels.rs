//! Kernel benchmark: parallel vs sequential latency of every hot kernel in
//! `odt-tensor`, written to `BENCH_kernels.json` (at the current working
//! directory — run from the repo root, e.g. via `scripts/bench_kernels.sh`).
//!
//! Flags: `--quick` (fewer reps, smaller shapes — CI smoke mode).
//!
//! Schema (`odt-bench-kernels/v1`):
//!
//! ```json
//! {
//!   "schema": "odt-bench-kernels/v1",
//!   "threads": usize,          // odt-compute pool width
//!   "quick": bool,
//!   "kernels": [
//!     { "name": str, "shape": str, "reps": usize,
//!       "sequential_ms": f64,  // per-rep, single-lane (ODT_THREADS=1 path)
//!       "parallel_ms": f64,    // per-rep, pool-wide
//!       "speedup": f64 }       // sequential_ms / parallel_ms
//!   ]
//! }
//! ```

use odt_tensor::{init, ops, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Row {
    name: &'static str,
    shape: String,
    reps: usize,
    sequential_ms: f64,
    parallel_ms: f64,
}

/// Per-rep wall-clock (ms) of `f`, with one warm-up rep.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1_000.0 / reps as f64
}

fn bench(name: &'static str, shape: String, reps: usize, mut f: impl FnMut()) -> Row {
    let parallel_ms = time_ms(reps, &mut f);
    let sequential_ms = odt_compute::run_sequential(|| time_ms(reps, &mut f));
    println!(
        "{name:<22} {shape:<28} seq {sequential_ms:8.3} ms  par {parallel_ms:8.3} ms  {:5.2}x",
        sequential_ms / parallel_ms.max(1e-9)
    );
    Row {
        name,
        shape,
        reps,
        sequential_ms,
        parallel_ms,
    }
}

fn main() {
    // Crash observability only: no root spans are minted here, so with
    // ODT_TRACE_SAMPLE=0 (or unset) the kernel loops see a single relaxed
    // atomic load per span guard and nothing else.
    odt_obs::flightrec::install_panic_hook();
    odt_obs::trace::init_from_env();
    odt_obs::flightrec::init_from_env();
    let quick = std::env::args().any(|a| a == "--quick");
    odt_compute::ensure_initialized();
    println!(
        "kernel bench: {} thread(s), quick={quick}",
        odt_compute::num_threads()
    );
    let mut rng = StdRng::seed_from_u64(42);
    let reps = if quick { 3 } else { 20 };
    let mm = if quick { 96 } else { 256 };
    let mut rows = Vec::new();

    let a = init::normal(&mut rng, vec![mm, mm], 1.0);
    let b = init::normal(&mut rng, vec![mm, mm], 1.0);
    rows.push(bench(
        "matmul",
        format!("[{mm},{mm}]x[{mm},{mm}]"),
        reps,
        || {
            let _ = ops::matmul(&a, &b);
        },
    ));

    let (ba, m, k, n) = if quick {
        (4, 32, 32, 32)
    } else {
        (8, 64, 64, 64)
    };
    let ta = init::normal(&mut rng, vec![ba, m, k], 1.0);
    let tb = init::normal(&mut rng, vec![ba, k, n], 1.0);
    rows.push(bench(
        "bmm",
        format!("[{ba},{m},{k}]x[{ba},{k},{n}]"),
        reps,
        || {
            let _ = ops::bmm(&ta, &tb);
        },
    ));

    let (cb, ch) = if quick { (4, 12) } else { (8, 20) };
    let x = init::normal(&mut rng, vec![cb, 8, ch, ch], 1.0);
    let w = init::normal(&mut rng, vec![16, 8, 3, 3], 0.1);
    let shape = format!("[{cb},8,{ch},{ch}] k3s1p1");
    rows.push(bench("conv2d", shape.clone(), reps, || {
        let _ = ops::conv2d(&x, &w, None, 1, 1);
    }));

    let y = ops::conv2d(&x, &w, None, 1, 1);
    rows.push(bench("conv2d_grad_input", shape.clone(), reps, || {
        let _ = ops::conv2d_grad_input(&y, &w, x.shape(), 1, 1);
    }));
    rows.push(bench("conv2d_grad_weight", shape, reps, || {
        let _ = ops::conv2d_grad_weight(&y, &x, w.shape(), 1, 1);
    }));

    let (sr, sc) = if quick { (64, 64) } else { (512, 256) };
    let s = init::normal(&mut rng, vec![sr, sc], 1.0);
    rows.push(bench(
        "softmax_lastdim",
        format!("[{sr},{sc}]"),
        reps,
        || {
            let _ = s.softmax_lastdim();
        },
    ));

    let big: usize = if quick { 1 << 16 } else { 1 << 20 };
    let mut buf = Tensor::zeros(vec![big]);
    rows.push(bench("chunked_map", format!("[{big}]"), reps, || {
        odt_compute::parallel_chunks_mut(buf.data_mut(), 8192, |i0, xs| {
            for (off, v) in xs.iter_mut().enumerate() {
                *v = ((i0 + off) as f32).sin();
            }
        });
    }));

    let kernels: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"name\": \"{}\", \"shape\": \"{}\", \"reps\": {}, \
                 \"sequential_ms\": {:.6}, \"parallel_ms\": {:.6}, \"speedup\": {:.4} }}",
                r.name,
                r.shape,
                r.reps,
                r.sequential_ms,
                r.parallel_ms,
                r.sequential_ms / r.parallel_ms.max(1e-9)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"odt-bench-kernels/v1\",\n  \"threads\": {},\n  \
         \"quick\": {},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        odt_compute::num_threads(),
        quick,
        kernels.join(",\n")
    );
    let path = "BENCH_kernels.json";
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}
