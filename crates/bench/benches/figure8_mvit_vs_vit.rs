//! Figure 8(c,d) as Criterion benchmarks: forward latency of the Masked
//! Vision Transformer vs the vanilla ViT across grid lengths.
//!
//! Paper shape to verify: at `L_G = 10` the two are comparable; as `L_G`
//! grows the PiT becomes sparser, ViT's cost grows with `L_G²` while
//! MViT's tracks the (almost constant) number of visited cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odt_bench::bench_dataset;
use odt_estimator::{MVit, MVitConfig, PitEstimator, VanillaVit};
use odt_tensor::Graph;
use odt_traj::{Pit, Split};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_mvit_vs_vit(c: &mut Criterion) {
    let cfg = MVitConfig {
        d_e: 32,
        l_e: 2,
        heads: 2,
        ffn_hidden: 64,
    };
    let mut group = c.benchmark_group("figure8/estimator_forward");
    group.sample_size(10);
    for lg in [10usize, 20, 30] {
        let data = bench_dataset(lg);
        let pit = Pit::from_trajectory(&data.split(Split::Test)[0], &data.grid);
        let mut rng = StdRng::seed_from_u64(0);
        let mvit = MVit::with_defaults(&mut rng, &cfg, lg);
        let vit = VanillaVit::new(&mut rng, &cfg, lg);
        group.bench_with_input(BenchmarkId::new("MViT", lg), &pit, |b, p| {
            b.iter(|| {
                let g = Graph::new();
                g.value(mvit.predict(&g, p))
            })
        });
        group.bench_with_input(BenchmarkId::new("ViT", lg), &pit, |b, p| {
            b.iter(|| {
                let g = Graph::new();
                g.value(vit.predict(&g, p))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mvit_vs_vit);
criterion_main!(benches);
