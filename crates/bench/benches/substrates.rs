//! Micro-benchmarks of the substrates every experiment rests on: the
//! tensor kernels that dominate training cost, shortest-path routing, PiT
//! rasterization, the UNet denoiser forward pass, and trip simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use odt_bench::bench_dataset;
use odt_diffusion::{ConditionedDenoiser, DenoiserConfig, NoisePredictor};
use odt_roadnet::{dijkstra, RoadNetwork};
use odt_tensor::{init, ops, Graph, Tensor};
use odt_traj::sim::{CitySim, CitySimConfig};
use odt_traj::{Pit, Split};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_tensor_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = init::normal(&mut rng, vec![128, 128], 1.0);
    let b = init::normal(&mut rng, vec![128, 128], 1.0);
    c.bench_function("substrates/matmul_128", |bch| {
        bch.iter(|| ops::matmul(&a, &b))
    });

    let x = init::normal(&mut rng, vec![8, 8, 16, 16], 1.0);
    let w = init::normal(&mut rng, vec![8, 8, 3, 3], 0.1);
    c.bench_function("substrates/conv2d_8x8x16x16_k3", |bch| {
        bch.iter(|| ops::conv2d(&x, &w, None, 1, 1))
    });

    let t = init::normal(&mut rng, vec![4, 3, 20, 20], 1.0);
    c.bench_function("substrates/autograd_square_sum", |bch| {
        bch.iter(|| {
            let g = Graph::new();
            let v = g.input(t.clone());
            let loss = g.mean_all(g.square(v));
            g.backward(loss);
            g.grad(v)
        })
    });
}

fn bench_roadnet(c: &mut Criterion) {
    let net = RoadNetwork::grid_city(20, 20, 800.0, 4);
    let weight = |e: usize| net.edge(e).base_travel_time();
    c.bench_function("substrates/dijkstra_20x20_corner_to_corner", |b| {
        b.iter(|| dijkstra(&net, 0, net.num_nodes() - 1, &weight))
    });
}

fn bench_pit_and_sim(c: &mut Criterion) {
    let data = bench_dataset(20);
    let trip = &data.split(Split::Train)[0];
    c.bench_function("substrates/pit_rasterize_lg20", |b| {
        b.iter(|| Pit::from_trajectory(trip, &data.grid))
    });

    let mut cfg = CitySimConfig::chengdu_like();
    cfg.nx = 12;
    cfg.ny = 12;
    let sim = CitySim::new(cfg);
    c.bench_function("substrates/simulate_one_trip", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| sim.generate_trip(&mut rng))
    });
}

fn bench_denoiser(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let cfg = DenoiserConfig {
        channels: 3,
        lg: 16,
        base_channels: 8,
        depth: 2,
        cond_dim: 32,
        attn_max_tokens: 128,
    };
    let den = ConditionedDenoiser::new(&mut rng, cfg);
    let x = init::normal(&mut rng, vec![8, 3, 16, 16], 1.0);
    let cond = Tensor::zeros(vec![8, 5]);
    let steps = vec![10usize; 8];
    let mut group = c.benchmark_group("substrates_slow");
    group.sample_size(10);
    group.bench_function("denoiser_forward_b8_lg16", |b| {
        b.iter(|| {
            let g = Graph::new();
            let xv = g.input(x.clone());
            g.value(den.predict(&g, xv, &steps, &cond))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tensor_kernels,
    bench_roadnet,
    bench_pit_and_sim,
    bench_denoiser
);
criterion_main!(benches);
