//! Table 5's "estimation speed" column as Criterion benchmarks: per-query
//! prediction latency of each ODT-Oracle method, plus DOT's split into PiT
//! inference (diffusion) and PiT estimation (MViT).
//!
//! Paper shape to verify: LR/GBM/ST-NN are fastest; TEMP is slowest among
//! the oracles (scans its memorized trips); DOT's *estimation* step is
//! competitive while its diffusion inference dominates its latency.

use criterion::{criterion_group, criterion_main, Criterion};
use odt_baselines::{Gbm, LinearRegression, NeuralConfig, OdtOracle, StNn, Temp};
use odt_bench::{bench_dataset, ctx_of};
use odt_core::{Dot, DotConfig};
use odt_traj::{OdtInput, Split};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_oracles(c: &mut Criterion) {
    let data = bench_dataset(12);
    let ctx = ctx_of(&data);
    let train = data.split(Split::Train);
    let neural = NeuralConfig {
        iters: 60,
        ..Default::default()
    };

    let temp = Temp::fit(ctx, train);
    let lr = LinearRegression::fit(ctx, train);
    let gbm = Gbm::fit(ctx, train);
    let stnn = StNn::fit(ctx, train, &neural);

    let query = OdtInput::from_trajectory(&data.split(Split::Test)[0]);

    let mut group = c.benchmark_group("table5/estimation_per_query");
    group.bench_function("TEMP", |b| b.iter(|| temp.predict_seconds(&query)));
    group.bench_function("LR", |b| b.iter(|| lr.predict_seconds(&query)));
    group.bench_function("GBM", |b| b.iter(|| gbm.predict_seconds(&query)));
    group.bench_function("ST-NN", |b| b.iter(|| stnn.predict_seconds(&query)));
    group.finish();
}

fn bench_dot(c: &mut Criterion) {
    let data = bench_dataset(12);
    let mut cfg = DotConfig::fast();
    cfg.lg = 12;
    cfg.n_steps = 10;
    cfg.base_channels = 4;
    cfg.cond_dim = 16;
    cfg.d_e = 16;
    cfg.stage1_iters = 10;
    cfg.stage2_iters = 20;
    cfg.early_stop_samples = 2;
    cfg.early_stop_every = 10;
    let model = Dot::train(cfg, &data, |_| {});
    let query = OdtInput::from_trajectory(&data.split(Split::Test)[0]);
    let pit = {
        let mut rng = StdRng::seed_from_u64(1);
        model.infer_pit(&query, &mut rng)
    };

    let mut group = c.benchmark_group("table5/dot");
    group.sample_size(10);
    group.bench_function("pit_inference_(diffusion)", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| model.infer_pit(&query, &mut rng))
    });
    group.bench_function("pit_estimation_(mvit)", |b| {
        b.iter(|| model.estimate_from_pit(&pit))
    });
    group.finish();
}

criterion_group!(benches, bench_oracles, bench_dot);
criterion_main!(benches);
