//! Criterion benchmarks of the parallel compute kernels: each hot kernel is
//! measured pool-wide and single-lane (`run_sequential`, the `ODT_THREADS=1`
//! execution mode), so regressions in either the kernels or the pool's
//! dispatch overhead show up in CI's quick mode
//! (`--warm-up-time 0.1 --measurement-time 0.2`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use odt_tensor::{init, ops};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pair(c: &mut Criterion, group: &str, shape: &str, mut f: impl FnMut()) {
    let mut g = c.benchmark_group(group);
    g.bench_with_input(BenchmarkId::new("parallel", shape), &(), |b, _| {
        b.iter(&mut f)
    });
    g.bench_with_input(BenchmarkId::new("sequential", shape), &(), |b, _| {
        b.iter(|| odt_compute::run_sequential(&mut f))
    });
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = init::normal(&mut rng, vec![128, 128], 1.0);
    let b = init::normal(&mut rng, vec![128, 128], 1.0);
    bench_pair(c, "compute/matmul", "128x128", || {
        let _ = ops::matmul(&a, &b);
    });
}

fn bench_bmm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = init::normal(&mut rng, vec![4, 48, 48], 1.0);
    let b = init::normal(&mut rng, vec![4, 48, 48], 1.0);
    bench_pair(c, "compute/bmm", "4x48x48", || {
        let _ = ops::bmm(&a, &b);
    });
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let x = init::normal(&mut rng, vec![4, 8, 16, 16], 1.0);
    let w = init::normal(&mut rng, vec![16, 8, 3, 3], 0.1);
    bench_pair(c, "compute/conv2d", "4x8x16x16_k3", || {
        let _ = ops::conv2d(&x, &w, None, 1, 1);
    });
    let y = ops::conv2d(&x, &w, None, 1, 1);
    bench_pair(c, "compute/conv2d_grad_weight", "4x8x16x16_k3", || {
        let _ = ops::conv2d_grad_weight(&y, &x, w.shape(), 1, 1);
    });
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let t = init::normal(&mut rng, vec![256, 128], 1.0);
    bench_pair(c, "compute/softmax_lastdim", "256x128", || {
        let _ = t.softmax_lastdim();
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_bmm,
    bench_conv2d,
    bench_softmax
);
criterion_main!(benches);
