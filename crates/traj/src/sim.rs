//! Synthetic city trajectory simulator — the stand-in for the proprietary
//! Didi Chengdu and Harbin taxi datasets (DESIGN.md §1).
//!
//! The simulator reproduces the causal structure the paper's evaluation
//! relies on:
//!
//! * **Multi-modal route choice.** Each trip picks among k alternative
//!   routes via a logit model on congested travel time, so the same OD pair
//!   is served by several plausible routes (Figure 1's `T_1..T_3`).
//! * **Outlier detours.** A configurable fraction of trips routes via a
//!   random waypoint, producing the long outlier trajectories (`T_4`) whose
//!   removal is DOT's raison d'être.
//! * **Time-varying congestion.** Gaussian rush-hour slowdowns make travel
//!   times depend on the departure time (Figure 11/12's phenomenon).
//! * **GPS realism.** Fixes are sampled at the datasets' mean intervals
//!   with Gaussian position noise, and trips carry lng/lat degrees.

use crate::types::{GpsPoint, Trajectory};
use odt_roadnet::{
    dijkstra, k_shortest_paths, EdgeId, LngLat, NodeId, Point, Projection, RoadNetwork,
};
use rand::Rng;

/// Time-of-day congestion: a speed multiplier in `(0, 1]`.
#[derive(Clone, Debug)]
pub struct CongestionProfile {
    /// Rush-hour dips: `(center_hour, width_hours, depth)`.
    pub peaks: Vec<(f64, f64, f64)>,
    /// Extra multiplicative slowdown applied to arterials at peak.
    pub arterial_extra: f64,
}

impl Default for CongestionProfile {
    fn default() -> Self {
        CongestionProfile {
            peaks: vec![(8.5, 1.2, 0.45), (18.0, 1.5, 0.50)],
            arterial_extra: 0.9,
        }
    }
}

impl CongestionProfile {
    /// Speed factor at a given second of day; 1.0 = free flow.
    pub fn speed_factor(&self, second_of_day: f64, arterial: bool) -> f64 {
        let h = second_of_day / 3_600.0;
        let mut dip: f64 = 0.0;
        for &(c, w, d) in &self.peaks {
            let z = (h - c) / w;
            dip += d * (-0.5 * z * z).exp();
        }
        let mut factor = (1.0 - dip).max(0.2);
        if arterial && dip > 0.05 {
            factor *= self.arterial_extra;
        }
        factor.max(0.15)
    }
}

/// Demand hotspot: a Gaussian blob of trip endpoints.
#[derive(Copy, Clone, Debug)]
pub struct Hotspot {
    /// Center as a fraction of the city extent, `[0, 1]²`.
    pub fx: f64,
    /// See `fx`.
    pub fy: f64,
    /// Sampling weight.
    pub weight: f64,
    /// Standard deviation, meters.
    pub sigma_m: f64,
}

/// Full simulator configuration.
#[derive(Clone, Debug)]
pub struct CitySimConfig {
    /// City name (diagnostics only).
    pub name: String,
    /// Grid intersections along x.
    pub nx: usize,
    /// Grid intersections along y.
    pub ny: usize,
    /// Intersection spacing, meters.
    pub spacing_m: f64,
    /// Every n-th row/column is an arterial.
    pub arterial_every: usize,
    /// GPS reference coordinate of the planar origin.
    pub origin: LngLat,
    /// Unix timestamp of day 0, 00:00.
    pub epoch_start: f64,
    /// Number of days the dataset spans.
    pub num_days: u32,
    /// Mean interval between GPS fixes, seconds.
    pub mean_sample_interval_s: f64,
    /// GPS noise standard deviation, meters.
    pub gps_noise_m: f64,
    /// Fraction of trips that take an outlier detour.
    pub outlier_rate: f64,
    /// Exponential distance-decay scale of destination choice, meters.
    pub od_distance_decay_m: f64,
    /// Minimum OD crow-fly distance, meters.
    pub min_od_distance_m: f64,
    /// Demand hotspots.
    pub hotspots: Vec<Hotspot>,
    /// Logit temperature on route cost (1/minutes).
    pub route_choice_beta: f64,
    /// Global speed multiplier modelling ambient traffic density (urban
    /// taxi speeds are far below free flow).
    pub speed_scale: f64,
    /// Number of route alternatives considered.
    pub route_alternatives: usize,
    /// Per-edge lognormal travel-time noise sigma.
    pub edge_noise_sigma: f64,
    /// Congestion profile.
    pub congestion: CongestionProfile,
}

impl CitySimConfig {
    /// A Chengdu-like configuration (Table 1: ~15.3 km extent, 29 s mean
    /// sample interval, ~3.3 km mean trip, ~13.7 min mean travel time).
    pub fn chengdu_like() -> Self {
        CitySimConfig {
            name: "Chengdu".into(),
            nx: 20,
            ny: 20,
            spacing_m: 800.0,
            arterial_every: 4,
            origin: LngLat {
                lng: 103.95,
                lat: 30.60,
            },
            epoch_start: 1_541_030_400.0, // 2018-11-01 00:00 UTC
            num_days: 10,
            mean_sample_interval_s: 29.0,
            gps_noise_m: 20.0,
            outlier_rate: 0.08,
            od_distance_decay_m: 1_150.0,
            min_od_distance_m: 700.0,
            hotspots: vec![
                Hotspot {
                    fx: 0.5,
                    fy: 0.5,
                    weight: 3.0,
                    sigma_m: 2_500.0,
                },
                Hotspot {
                    fx: 0.25,
                    fy: 0.7,
                    weight: 1.5,
                    sigma_m: 1_800.0,
                },
                Hotspot {
                    fx: 0.75,
                    fy: 0.3,
                    weight: 1.5,
                    sigma_m: 1_800.0,
                },
                Hotspot {
                    fx: 0.15,
                    fy: 0.15,
                    weight: 1.0,
                    sigma_m: 2_000.0,
                },
            ],
            route_choice_beta: 0.8,
            speed_scale: 0.60,
            route_alternatives: 3,
            edge_noise_sigma: 0.18,
            congestion: CongestionProfile::default(),
        }
    }

    /// A Harbin-like configuration (Table 1: ~18.5 km extent, 44 s mean
    /// sample interval, winter congestion slightly heavier).
    pub fn harbin_like() -> Self {
        CitySimConfig {
            name: "Harbin".into(),
            nx: 24,
            ny: 23,
            spacing_m: 800.0,
            arterial_every: 4,
            origin: LngLat {
                lng: 126.53,
                lat: 45.75,
            },
            epoch_start: 1_420_243_200.0, // 2015-01-03 00:00 UTC
            num_days: 5,
            mean_sample_interval_s: 44.0,
            gps_noise_m: 25.0,
            outlier_rate: 0.10,
            od_distance_decay_m: 1_200.0,
            min_od_distance_m: 700.0,
            hotspots: vec![
                Hotspot {
                    fx: 0.45,
                    fy: 0.55,
                    weight: 3.0,
                    sigma_m: 2_800.0,
                },
                Hotspot {
                    fx: 0.7,
                    fy: 0.25,
                    weight: 1.5,
                    sigma_m: 2_000.0,
                },
                Hotspot {
                    fx: 0.2,
                    fy: 0.4,
                    weight: 1.2,
                    sigma_m: 2_000.0,
                },
            ],
            route_choice_beta: 0.7,
            speed_scale: 0.57,
            route_alternatives: 3,
            edge_noise_sigma: 0.22,
            congestion: CongestionProfile {
                peaks: vec![(8.3, 1.3, 0.50), (17.5, 1.6, 0.55)],
                arterial_extra: 0.88,
            },
        }
    }
}

/// The simulator: a road network plus demand and traffic models.
pub struct CitySim {
    config: CitySimConfig,
    net: RoadNetwork,
    proj: Projection,
}

impl CitySim {
    /// Build the network and projection from a config.
    pub fn new(config: CitySimConfig) -> Self {
        let net = RoadNetwork::grid_city(
            config.nx,
            config.ny,
            config.spacing_m,
            config.arterial_every,
        );
        let proj = Projection::new(config.origin);
        CitySim { config, net, proj }
    }

    /// The underlying road network.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// The meters↔degrees projection.
    pub fn projection(&self) -> &Projection {
        &self.proj
    }

    /// The configuration.
    pub fn config(&self) -> &CitySimConfig {
        &self.config
    }

    /// Generate `n` trips.
    pub fn generate(&self, n: usize, rng: &mut impl Rng) -> Vec<Trajectory> {
        (0..n).map(|_| self.generate_trip(rng)).collect()
    }

    /// Generate one trip (resampling internally until OD constraints hold).
    pub fn generate_trip(&self, rng: &mut impl Rng) -> Trajectory {
        let (origin, dest) = self.sample_od(rng);
        let depart = self.sample_departure(rng);
        let outlier = rng.gen_bool(self.config.outlier_rate);
        let path = if outlier {
            self.outlier_route(origin, dest, rng)
        } else {
            self.choose_route(origin, dest, depart, rng)
        };
        self.traverse(&path, depart, rng)
    }

    // ------------------------------------------------------------------
    // Demand model
    // ------------------------------------------------------------------

    fn city_extent(&self) -> (f64, f64) {
        (
            (self.config.nx - 1) as f64 * self.config.spacing_m,
            (self.config.ny - 1) as f64 * self.config.spacing_m,
        )
    }

    fn sample_hotspot_point(&self, rng: &mut impl Rng) -> Point {
        let (ex, ey) = self.city_extent();
        let total: f64 = self.config.hotspots.iter().map(|h| h.weight).sum();
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = self.config.hotspots[0];
        for h in &self.config.hotspots {
            if pick < h.weight {
                chosen = *h;
                break;
            }
            pick -= h.weight;
        }
        let x = (chosen.fx * ex + randn(rng) * chosen.sigma_m).clamp(0.0, ex);
        let y = (chosen.fy * ey + randn(rng) * chosen.sigma_m).clamp(0.0, ey);
        Point::new(x, y)
    }

    fn sample_od(&self, rng: &mut impl Rng) -> (NodeId, NodeId) {
        for _ in 0..200 {
            let o = self.net.nearest_node(self.sample_hotspot_point(rng));
            let opos = self.net.position(o);
            // Distance-decayed destination choice among all nodes.
            let mut weights = Vec::with_capacity(self.net.num_nodes());
            let mut total = 0.0;
            for n in 0..self.net.num_nodes() {
                let d = opos.distance(&self.net.position(n));
                let w = if d < self.config.min_od_distance_m {
                    0.0
                } else {
                    (-d / self.config.od_distance_decay_m).exp()
                };
                weights.push(w);
                total += w;
            }
            if total <= 0.0 {
                continue;
            }
            let mut pick = rng.gen_range(0.0..total);
            for (n, &w) in weights.iter().enumerate() {
                if pick < w {
                    return (o, n);
                }
                pick -= w;
            }
        }
        panic!("failed to sample an OD pair; check demand configuration");
    }

    fn sample_departure(&self, rng: &mut impl Rng) -> f64 {
        let day = rng.gen_range(0..self.config.num_days) as f64;
        // Rejection-sample second-of-day from a base + rush-peak mixture.
        loop {
            let h = rng.gen_range(5.0..23.5);
            let mut w = 0.25;
            for &(c, width, _) in &self.config.congestion.peaks {
                let z: f64 = (h - c) / width;
                w += (-0.5 * z * z).exp();
            }
            if rng.gen_range(0.0..2.3) < w {
                return self.config.epoch_start + day * 86_400.0 + h * 3_600.0;
            }
        }
    }

    // ------------------------------------------------------------------
    // Route choice
    // ------------------------------------------------------------------

    /// Congested expected travel time of an edge at a given absolute time.
    fn edge_time(&self, e: EdgeId, at: f64) -> f64 {
        let edge = self.net.edge(e);
        let factor = self
            .config
            .congestion
            .speed_factor(at.rem_euclid(86_400.0), edge.arterial);
        edge.length_m / (edge.base_speed_mps * self.config.speed_scale * factor)
    }

    fn choose_route(
        &self,
        origin: NodeId,
        dest: NodeId,
        depart: f64,
        rng: &mut impl Rng,
    ) -> Vec<NodeId> {
        let weight = |e: EdgeId| self.edge_time(e, depart);
        let alts = k_shortest_paths(
            &self.net,
            origin,
            dest,
            &weight,
            self.config.route_alternatives,
            1.4,
        );
        assert!(!alts.is_empty(), "no route between {origin} and {dest}");
        // Logit choice on cost in minutes.
        let beta = self.config.route_choice_beta;
        let min_cost = alts.iter().map(|a| a.cost).fold(f64::INFINITY, f64::min);
        let weights: Vec<f64> = alts
            .iter()
            .map(|a| (-beta * (a.cost - min_cost) / 60.0).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut pick = rng.gen_range(0.0..total);
        for (i, &w) in weights.iter().enumerate() {
            if pick < w {
                return alts[i].nodes.clone();
            }
            pick -= w;
        }
        alts[0].nodes.clone()
    }

    fn outlier_route(&self, origin: NodeId, dest: NodeId, rng: &mut impl Rng) -> Vec<NodeId> {
        // Route via a random waypoint well away from the direct corridor —
        // the `T_4`-style detour of Figure 1.
        let dist = |e: EdgeId| self.net.edge(e).length_m;
        let od = self.net.position(origin).distance(&self.net.position(dest));
        for _ in 0..100 {
            let wp = rng.gen_range(0..self.net.num_nodes());
            let d_o = self.net.position(origin).distance(&self.net.position(wp));
            let d_d = self.net.position(dest).distance(&self.net.position(wp));
            // Require a real detour: at least ~60% longer than direct.
            if d_o + d_d < od * 1.6 || d_o < od * 0.4 || d_d < od * 0.4 {
                continue;
            }
            let leg1 = dijkstra(&self.net, origin, wp, &dist);
            let leg2 = dijkstra(&self.net, wp, dest, &dist);
            if let (Some(a), Some(b)) = (leg1, leg2) {
                let mut nodes = a.nodes;
                nodes.extend_from_slice(&b.nodes[1..]);
                return nodes;
            }
        }
        // Fallback: direct route (outlier suppressed).
        dijkstra(&self.net, origin, dest, &dist)
            .expect("grid city is connected")
            .nodes
    }

    // ------------------------------------------------------------------
    // Traversal & GPS sampling
    // ------------------------------------------------------------------

    fn traverse(&self, path: &[NodeId], depart: f64, rng: &mut impl Rng) -> Trajectory {
        assert!(path.len() >= 2, "path must span at least one edge");
        // Walk the path, accumulating (cumulative_distance, absolute_time)
        // breakpoints at every node.
        let mut breakpoints: Vec<(f64, f64, Point)> = Vec::with_capacity(path.len());
        let mut t = depart;
        let mut d = 0.0;
        breakpoints.push((d, t, self.net.position(path[0])));
        for w in path.windows(2) {
            let e = self
                .net
                .edge_between(w[0], w[1])
                .expect("route must follow edges");
            let base = self.edge_time(e, t);
            let noisy = base * (self.config.edge_noise_sigma * randn(rng)).exp();
            t += noisy;
            d += self.net.edge(e).length_m;
            breakpoints.push((d, t, self.net.position(w[1])));
        }
        let arrival = breakpoints.last().unwrap().1;

        // Sample GPS fixes at ~mean_sample_interval.
        let interval = self.config.mean_sample_interval_s * rng.gen_range(0.85..1.15);
        let mut fixes: Vec<GpsPoint> = Vec::new();
        let mut sample_at = depart;
        while sample_at < arrival {
            fixes.push(self.fix_at(&breakpoints, sample_at, rng));
            sample_at += interval * rng.gen_range(0.8..1.2);
        }
        // Always include the exact arrival fix so travel time is faithful.
        fixes.push(self.fix_at(&breakpoints, arrival, rng));
        if fixes.len() < 2 {
            fixes.insert(0, self.fix_at(&breakpoints, depart, rng));
        }
        // Enforce monotone timestamps (jitter could disorder the tail).
        for i in 1..fixes.len() {
            if fixes[i].t < fixes[i - 1].t {
                fixes[i].t = fixes[i - 1].t;
            }
        }
        Trajectory::new(fixes)
    }

    /// Interpolated, noisy GPS fix at absolute time `at`.
    fn fix_at(&self, breakpoints: &[(f64, f64, Point)], at: f64, rng: &mut impl Rng) -> GpsPoint {
        let pos = interpolate(breakpoints, at);
        let noise = self.config.gps_noise_m;
        let noisy = Point::new(pos.x + randn(rng) * noise, pos.y + randn(rng) * noise);
        GpsPoint {
            loc: self.proj.to_lnglat(noisy),
            t: at,
        }
    }
}

/// One standard-normal sample (Box–Muller).
fn randn(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Linear interpolation of position along timed breakpoints.
fn interpolate(breakpoints: &[(f64, f64, Point)], at: f64) -> Point {
    let first = &breakpoints[0];
    if at <= first.1 {
        return first.2;
    }
    for w in breakpoints.windows(2) {
        let (_, t0, p0) = w[0];
        let (_, t1, p1) = w[1];
        if at <= t1 {
            let frac = if t1 > t0 { (at - t0) / (t1 - t0) } else { 1.0 };
            return Point::new(p0.x + (p1.x - p0.x) * frac, p0.y + (p1.y - p0.y) * frac);
        }
    }
    breakpoints.last().unwrap().2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_sim() -> CitySim {
        let mut cfg = CitySimConfig::chengdu_like();
        cfg.nx = 10;
        cfg.ny = 10;
        CitySim::new(cfg)
    }

    #[test]
    fn congestion_slows_rush_hour() {
        let c = CongestionProfile::default();
        let free = c.speed_factor(3.0 * 3_600.0, false);
        let rush = c.speed_factor(8.5 * 3_600.0, false);
        assert!(free > 0.95);
        assert!(rush < 0.65, "rush factor {rush}");
        // Arterials suffer extra at peak.
        assert!(c.speed_factor(8.5 * 3_600.0, true) < rush);
    }

    #[test]
    fn trips_are_valid_trajectories() {
        let sim = small_sim();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let t = sim.generate_trip(&mut rng);
            assert!(t.len() >= 2);
            assert!(t.travel_time() > 0.0);
            // All fixes inside (a padded) city extent.
            let (ex, ey) = (
                (sim.config.nx - 1) as f64 * 800.0,
                (sim.config.ny - 1) as f64 * 800.0,
            );
            for p in &t.points {
                let q = sim.projection().to_point(p.loc);
                assert!(q.x > -500.0 && q.x < ex + 500.0, "x {}", q.x);
                assert!(q.y > -500.0 && q.y < ey + 500.0, "y {}", q.y);
            }
        }
    }

    #[test]
    fn sampling_interval_near_config() {
        let sim = small_sim();
        let mut rng = StdRng::seed_from_u64(2);
        let trips = sim.generate(50, &mut rng);
        let mean: f64 = trips
            .iter()
            .filter(|t| t.len() > 3)
            .map(|t| t.mean_sample_interval())
            .sum::<f64>()
            / trips.iter().filter(|t| t.len() > 3).count() as f64;
        assert!((mean - 29.0).abs() < 8.0, "mean interval {mean}");
    }

    #[test]
    fn departures_within_span() {
        let sim = small_sim();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let t = sim.generate_trip(&mut rng);
            let rel = t.departure() - sim.config.epoch_start;
            assert!(rel >= 0.0 && rel < 10.0 * 86_400.0);
        }
    }

    #[test]
    fn outliers_are_longer() {
        // Force outlier_rate to 1 and compare with 0 on fixed OD demand.
        let mut cfg = CitySimConfig::chengdu_like();
        cfg.nx = 10;
        cfg.ny = 10;
        cfg.outlier_rate = 0.0;
        let normal_sim = CitySim::new(cfg.clone());
        let mut cfg_out = cfg;
        cfg_out.outlier_rate = 1.0;
        let outlier_sim = CitySim::new(cfg_out);
        let mut rng1 = StdRng::seed_from_u64(4);
        let mut rng2 = StdRng::seed_from_u64(4);
        let proj = Projection::new(LngLat {
            lng: 103.95,
            lat: 30.60,
        });
        let n: f64 = normal_sim
            .generate(40, &mut rng1)
            .iter()
            .map(|t| t.travel_distance(&proj))
            .sum::<f64>()
            / 40.0;
        let o: f64 = outlier_sim
            .generate(40, &mut rng2)
            .iter()
            .map(|t| t.travel_distance(&proj))
            .sum::<f64>()
            / 40.0;
        assert!(o > n * 1.3, "outliers {o:.0} m vs normal {n:.0} m");
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = small_sim();
        let a = sim.generate(5, &mut StdRng::seed_from_u64(9));
        let b = sim.generate(5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn rush_hour_trips_take_longer() {
        // Same OD, different departure times: rush hour must be slower on
        // average. Use the edge_time model directly to avoid route noise.
        let sim = small_sim();
        let free = sim.edge_time(0, sim.config.epoch_start + 3.0 * 3_600.0);
        let rush = sim.edge_time(0, sim.config.epoch_start + 8.5 * 3_600.0);
        assert!(rush > free * 1.3, "rush {rush:.1} vs free {free:.1}");
    }
}
